"""Universal quantification as a set-valued integrity constraint.

The paper motivates division with "database systems that ... enforce
complex integrity constraints on sets" (Section 1).  This example
models a manufacturing rule:

    Every ACTIVE supplier must be certified for ALL safety standards
    that apply to the part categories it supplies.

The constraint is a relational division per category; the violation
report is the anti-quotient (suppliers in the category that are *not*
in the quotient).  The example also shows the incremental (early
output) variant reacting to certifications as they stream in -- the
dataflow-producer behaviour of Section 3.3.

Run with:  python examples/integrity_constraints.py
"""

from repro import Relation, divide
from repro.core.hash_division import HashDivision
from repro.executor.iterator import ExecContext
from repro.executor.scan import RelationSource
from repro.relalg import algebra

# Safety standards per part category.
STANDARDS = Relation.of_ints(
    ("category", "standard"),
    [
        (1, 101), (1, 102),                 # category 1: two standards
        (2, 101), (2, 103), (2, 104),       # category 2: three standards
    ],
    name="standards",
)

# Which supplier is certified for which standard.
CERTIFICATIONS = Relation.of_ints(
    ("supplier", "standard"),
    [
        (10, 101), (10, 102), (10, 103), (10, 104),  # fully certified
        (11, 101), (11, 102),                        # only category-1 set
        (12, 101), (12, 104),                        # incomplete everywhere
    ],
    name="certifications",
)

# Who supplies parts of which category.
SUPPLIES = Relation.of_ints(
    ("supplier", "category"),
    [(10, 1), (10, 2), (11, 1), (11, 2), (12, 1)],
    name="supplies",
)


def check_category(category: int) -> tuple[set, set]:
    """Return (compliant, violating) suppliers for one category."""
    from repro.relalg.predicates import AttributeEquals

    required = algebra.project(
        algebra.select(STANDARDS, AttributeEquals("category", category)),
        ["standard"],
    )
    # Suppliers certified for EVERY required standard:
    compliant = divide(CERTIFICATIONS, required).as_set()
    in_category = {
        (supplier,)
        for supplier, cat in SUPPLIES.rows
        if cat == category
    }
    return compliant & in_category, in_category - compliant


def streaming_compliance_monitor() -> list:
    """Early-output hash-division as a live compliance feed.

    As certification records stream in, a supplier is announced the
    moment its last missing standard arrives.
    """
    ctx = ExecContext()
    all_standards = algebra.project(STANDARDS, ["standard"])
    plan = HashDivision(
        RelationSource(ctx, CERTIFICATIONS),
        RelationSource(ctx, all_standards),
        early_output=True,
    )
    plan.open()
    announcements = list(plan)
    plan.close()
    return announcements


def main() -> None:
    print("Standards per category:", STANDARDS.rows)
    print("Certifications:        ", CERTIFICATIONS.rows)
    print("Supplies:              ", SUPPLIES.rows)
    print()
    for category in (1, 2):
        compliant, violating = check_category(category)
        print(f"Category {category}:")
        print(f"  compliant suppliers: {sorted(s for (s,) in compliant)}")
        print(f"  VIOLATIONS:          {sorted(s for (s,) in violating)}")
    # Sanity: supplier 11 supplies category 2 without the full
    # category-2 certification set -> must be reported.
    _, violating2 = check_category(2)
    assert (11,) in violating2

    fully = streaming_compliance_monitor()
    print(
        "\nStreaming monitor: suppliers certified for every standard "
        f"(announced incrementally): {sorted(s for (s,) in fully)}"
    )
    assert fully == [(10,)]


if __name__ == "__main__":
    main()
