"""Quickstart: relational division in three minutes.

Runs the paper's Figure 2 example ("which student has taken *all*
database courses?") through every division algorithm in the library,
then shows the cost meters that the experiments are built on.

Run with:  python examples/quickstart.py
"""

from repro import ExecContext, Relation, divide
from repro.costmodel.units import PAPER_UNITS
from repro.workloads.university import figure2_courses, figure2_transcript


def main() -> None:
    # -- the Figure 2 instance ---------------------------------------
    transcript = figure2_transcript()   # (student, course) pairs
    courses = figure2_courses()         # the database courses
    print("Transcript:", transcript.rows)
    print("Courses:   ", courses.rows)

    # -- division with the default algorithm (hash-division) ----------
    quotient = divide(transcript, courses)
    print("\nStudents who took ALL database courses:", quotient.rows)
    assert quotient.rows == [("Ann",)]

    # -- every algorithm gives the same answer ------------------------
    print("\nAll algorithms agree:")
    for algorithm in ("hash", "naive", "algebraic", "oracle"):
        result = divide(transcript, courses, algorithm=algorithm)
        print(f"  {algorithm:12s} -> {sorted(result.rows)}")
    # The counting strategies need a semi-join here, because Barb's
    # Optics tuple references a course outside the divisor:
    for algorithm in ("sort-aggregate", "hash-aggregate"):
        result = divide(transcript, courses, algorithm=algorithm, with_join=True)
        print(f"  {algorithm:12s} -> {sorted(result.rows)} (with_join=True)")

    # -- integer relations and the cost meters ------------------------
    enrollment = Relation.of_ints(
        ("student_id", "course_no"),
        [(s, c) for s in range(100) for c in range(10)]  # everyone took all
        + [(s, 999) for s in range(100)],                # plus one elective
        name="enrollment",
    )
    catalog_courses = Relation.of_ints(
        ("course_no",), [(c,) for c in range(10)], name="required"
    )
    ctx = ExecContext()
    quotient = divide(enrollment, catalog_courses, ctx=ctx)
    print(f"\n{len(quotient)} of 100 students completed all 10 required courses.")
    print(
        "Hash-division metering: "
        f"{ctx.cpu.hashes} hash computations, "
        f"{ctx.cpu.comparisons} comparisons, "
        f"{ctx.cpu.bit_ops} bit operations "
        f"= {PAPER_UNITS.cpu_cost_ms(ctx.cpu):.1f} model ms "
        "(Table 1 weights)"
    )


if __name__ == "__main__":
    main()
