"""Shared-nothing parallel hash-division (Section 6), hands on.

Divides a 60,000-tuple dividend on 1..16 simulated processors with
both partitioning strategies, with and without bit-vector filtering,
and prints the elapsed-time/speedup/network table.

Run with:  python examples/parallel_scaleout.py
"""

from repro.experiments.report import render_table
from repro.parallel import parallel_hash_division
from repro.workloads.synthetic import make_with_nonmatching


def main() -> None:
    # |S| = 60, |Q| = 500, plus 50% non-matching tuples for the filter
    # to chew on: 45,000 tuples total.
    dividend, divisor = make_with_nonmatching(
        60, 500, nonmatching_fraction=0.5, seed=13
    )
    print(
        f"dividend: {len(dividend)} tuples, divisor: {len(divisor)} tuples\n"
    )

    rows = []
    for strategy in ("quotient", "divisor"):
        for processors in (1, 2, 4, 8, 16):
            result = parallel_hash_division(
                dividend, divisor, processors, strategy=strategy
            )
            assert len(result.quotient) == 500
            if processors == 1:
                base = result.elapsed_ms
            rows.append(
                (
                    strategy,
                    processors,
                    result.elapsed_ms,
                    base / result.elapsed_ms,
                    result.network.total_bytes // 1024,
                    result.coordinator_ms,
                )
            )
    print(
        render_table(
            ("strategy", "procs", "elapsed ms", "speedup", "net KiB",
             "collection ms"),
            rows,
            title="Parallel hash-division scale-out",
        )
    )

    # Bit-vector filtering: keep the non-matching half off the network.
    print()
    filter_rows = []
    for bits in (None, 256, 4096, 65536):
        result = parallel_hash_division(
            dividend, divisor, 8, strategy="quotient", bit_vector_bits=bits
        )
        assert len(result.quotient) == 500
        filter_rows.append(
            (
                "off" if bits is None else bits,
                result.dividend_tuples_shipped,
                result.dividend_tuples_filtered,
                result.network.total_bytes // 1024,
            )
        )
    print(
        render_table(
            ("filter bits", "tuples shipped", "tuples filtered", "net KiB"),
            filter_rows,
            title="Bit-vector filtering on 8 processors",
        )
    )


if __name__ == "__main__":
    main()
