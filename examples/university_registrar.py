"""The paper's two running queries on a generated university database.

Query 1 -- "students who have taken ALL courses offered" -- divides the
Transcript projection by all course numbers (no join needed: every
transcript entry references an offered course).

Query 2 -- "students who have taken all DATABASE courses" -- restricts
the divisor with a selection first, which is exactly the case where the
counting strategies need a preceding semi-join and hash-division does
not (Sections 2 and 5).

The script runs both queries with all four algorithms over the
*metered, file-backed* execution stack and prints a cost table per
query, plus the physical plan of the hash-division query.

Run with:  python examples/university_registrar.py
"""

from repro.executor.iterator import ExecContext, run_to_relation
from repro.executor.scan import StoredRelationScan
from repro.experiments.report import render_table
from repro.experiments.runner import STRATEGIES, run_strategy
from repro.relalg import algebra
from repro.storage.catalog import Catalog
from repro.workloads.university import make_university


def run_query(dividend, divisor, query_name, skip_no_join):
    """Run every strategy over cold stored inputs; return table rows."""
    rows = []
    for strategy in STRATEGIES:
        if skip_no_join and strategy.endswith("no join"):
            rows.append((strategy, "wrong w/o join", "-", "-"))
            continue
        ctx = ExecContext()
        catalog = Catalog(ctx.pool, ctx.data_disk)
        catalog.store(dividend, name="dividend", cold=True)
        catalog.store(divisor, name="divisor", cold=True)
        ctx.reset_meters()
        run = run_strategy(strategy, ctx, catalog, "dividend", "divisor")
        rows.append((strategy, run.quotient_tuples, run.cpu_ms, run.io_ms))
    return render_table(
        ("strategy", "quotient", "cpu ms", "io ms"), rows, title=query_name
    )


def main() -> None:
    university = make_university(
        students=300,
        courses=40,
        database_courses=6,
        completionists=5,
        enrollment_probability=0.6,
        seed=7,
    )
    dividend = university.enrollment_dividend()
    print(
        f"{len(university.transcript)} transcript entries, "
        f"{len(university.courses)} courses "
        f"({university.database_course_count} database courses)\n"
    )

    # -- Query 1: all courses ------------------------------------------
    all_courses = university.all_courses_divisor()
    expected = algebra.divide_set_semantics(dividend, all_courses)
    print(f"Query 1 quotient (took every course): {sorted(expected.rows)}\n")
    print(run_query(dividend, all_courses, "Query 1: ÷ all courses", False))

    # -- Query 2: database courses only ---------------------------------
    database_courses = university.database_courses_divisor()
    expected = algebra.divide_set_semantics(dividend, database_courses)
    print(f"\nQuery 2 quotient (took every database course): "
          f"{len(expected)} students\n")
    print(
        run_query(
            dividend,
            database_courses,
            "Query 2: ÷ database courses (restricted divisor)",
            skip_no_join=True,
        )
    )

    # -- the hash-division plan, as the executor sees it ----------------
    ctx = ExecContext()
    catalog = Catalog(ctx.pool, ctx.data_disk)
    stored_dividend = catalog.store(dividend, name="enrollment")
    stored_divisor = catalog.store(database_courses, name="db-courses")
    from repro.core.hash_division import HashDivision

    plan = HashDivision(
        StoredRelationScan(ctx, stored_dividend),
        StoredRelationScan(ctx, stored_divisor),
    )
    print("\nPhysical plan:")
    print(plan.explain())
    quotient = run_to_relation(plan)
    print(f"-> {len(quotient)} quotient tuples")


if __name__ == "__main__":
    main()
