"""Hash-table overflow and partitioned division (Section 3.4), hands on.

Runs a division whose hash tables exceed a small memory budget, shows
the single-phase operator overflowing, and then resolves it with both
partitioning strategies -- including the divisor-partitioned collection
phase, which is "exactly the division problem again".

Run with:  python examples/overflow_partitioning.py
"""

from repro import Relation
from repro.core.hash_division import HashDivision
from repro.core.partitioned import (
    divisor_partitioned_division,
    hash_division_with_overflow,
    quotient_partitioned_division,
)
from repro.errors import HashTableOverflowError
from repro.executor.iterator import ExecContext, run_to_relation
from repro.executor.scan import RelationSource


def main() -> None:
    # 2,000 quotient candidates x 30 divisor values = 60,000 tuples;
    # the quotient table alone wants ~130 KiB.
    divisor = Relation.of_ints(("d",), [(d,) for d in range(30)], name="S")
    dividend = Relation.of_ints(
        ("q", "d"),
        [(q, d) for q in range(2_000) for d in range(30)],
        name="R",
    )
    budget = 64 * 1024
    print(f"dividend {len(dividend)} tuples, divisor {len(divisor)}, "
          f"memory budget {budget // 1024} KiB\n")

    # -- single phase: overflows ---------------------------------------
    ctx = ExecContext(memory_budget=budget)
    plan = HashDivision(RelationSource(ctx, dividend), RelationSource(ctx, divisor))
    try:
        run_to_relation(plan)
        raise SystemExit("expected overflow!")
    except HashTableOverflowError as error:
        print(f"single-phase hash-division: OVERFLOW\n  ({error})\n")
    assert ctx.memory.bytes_in_use == 0  # the failed attempt cleaned up

    # -- explicit quotient partitioning ----------------------------------
    ctx = ExecContext(memory_budget=budget)
    quotient = quotient_partitioned_division(
        RelationSource(ctx, dividend), RelationSource(ctx, divisor), partitions=8
    )
    print(f"quotient partitioning, 8 phases: {len(quotient)} quotient tuples, "
          f"peak memory {ctx.memory.stats.peak_bytes // 1024} KiB, "
          f"spool I/O {ctx.io_stats.cost_ms('temp'):.0f} model ms")

    # -- explicit divisor partitioning (with collection phase) ------------
    ctx = ExecContext()
    quotient = divisor_partitioned_division(
        RelationSource(ctx, dividend), RelationSource(ctx, divisor), partitions=4
    )
    print(f"divisor partitioning, 4 phases + collection: "
          f"{len(quotient)} quotient tuples")

    # -- the adaptive driver ----------------------------------------------
    ctx = ExecContext(memory_budget=budget)
    quotient = hash_division_with_overflow(
        lambda: RelationSource(ctx, dividend),
        lambda: RelationSource(ctx, divisor),
        strategy="quotient",
    )
    print(f"adaptive driver: {len(quotient)} quotient tuples under the "
          f"{budget // 1024} KiB budget")
    assert len(quotient) == 2_000


if __name__ == "__main__":
    main()
