"""The 'contains' clause the paper asks query languages to adopt.

Section 5.2: "universal quantification should be included as a
language construct in database query languages, e.g., as a 'contains'
clause" -- because an optimizer that *sees* the for-all can compile it
to the right division algorithm, while one that only sees a clever
aggregate expression is stuck with the inferior strategy.

This example expresses both of the paper's running queries with the
library's ``contains`` construct and shows the planner switching
algorithms when the divisor is restricted.

Run with:  python examples/contains_clause.py
"""

from repro import Query
from repro.relalg.predicates import AttributeContains
from repro.workloads.university import make_university


def main() -> None:
    university = make_university(
        students=200,
        courses=30,
        database_courses=5,
        completionists=3,
        enrollment_probability=0.55,
        seed=19,
    )

    # Query 1: students who have taken ALL courses.
    all_courses = (
        Query(university.transcript)
        .project("student_id", "course_no")
        .contains(Query(university.courses).project("course_no"))
    )
    print("Query 1 -- transcript CONTAINS all courses")
    print(all_courses.explain())
    result = all_courses.run()
    print(f"-> {len(result)} students\n")

    # Query 2: students who have taken all DATABASE courses.  The
    # divisor is restricted, so the planner must avoid the no-join
    # counting strategies -- watch the strategy change.
    database_courses = (
        Query(university.transcript)
        .project("student_id", "course_no")
        .contains(
            Query(university.courses)
            .where(AttributeContains("title", "database"))
            .project("course_no")
        )
    )
    print("Query 2 -- transcript CONTAINS the database courses")
    print(database_courses.explain())
    result = database_courses.run()
    print(f"-> {len(result)} students")

    plan1 = all_courses.plan()
    plan2 = database_courses.plan()
    assert "no join" in plan1.strategy        # clean divisor: counting is fine
    assert "no join" not in plan2.strategy    # restricted: it is not
    print(
        f"\nplanner: unrestricted -> {plan1.strategy!r}, "
        f"restricted -> {plan2.strategy!r}"
    )


if __name__ == "__main__":
    main()
