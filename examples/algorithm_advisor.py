"""Choosing the division algorithm like an optimizer would.

Section 5.2 warns that "the possible error in the selectivity estimate
makes it imperative to choose the division algorithm very carefully."
This example drives the cost advisor across the situations the paper
discusses -- clean inputs, a restricted divisor, duplicated inputs, an
empty divisor -- and then validates each recommendation by actually
running the recommended strategy against the measured alternatives.

Run with:  python examples/algorithm_advisor.py
"""

from repro import divide_with_advisor
from repro.costmodel import DivisionEstimates, rank_strategies
from repro.experiments.report import render_table
from repro.experiments.runner import STRATEGIES, run_strategy_on_relations
from repro.workloads.synthetic import make_exact_division


def show_ranking(title: str, estimates: DivisionEstimates) -> str:
    ranked = rank_strategies(estimates)
    print(
        render_table(
            ("rank", "strategy", "estimated ms", "note"),
            [
                (i + 1, entry.strategy, entry.estimated_ms, entry.note)
                for i, entry in enumerate(ranked)
            ],
            title=title,
        )
    )
    print()
    return ranked[0].strategy


def main() -> None:
    # -- the paper's largest size point --------------------------------
    estimates = DivisionEstimates(
        dividend_tuples=160_000, divisor_tuples=400, quotient_tuples=400
    )
    pick_clean = show_ranking("Clean inputs (|R|=160k, |S|=|Q|=400):", estimates)

    estimates = DivisionEstimates(
        dividend_tuples=160_000, divisor_tuples=400, quotient_tuples=400,
        divisor_restricted=True,
    )
    pick_restricted = show_ranking("Same sizes, restricted divisor:", estimates)

    estimates = DivisionEstimates(
        dividend_tuples=160_000, divisor_tuples=400, quotient_tuples=400,
        may_contain_duplicates=True,
    )
    pick_duplicates = show_ranking("Same sizes, inputs may hold duplicates:",
                                   estimates)

    print(f"advisor picks: clean={pick_clean!r}, "
          f"restricted={pick_restricted!r}, duplicates={pick_duplicates!r}\n")

    # -- validate the clean-input pick against measurements --------------
    dividend, divisor = make_exact_division(50, 100, seed=21)
    measured = {
        strategy: run_strategy_on_relations(
            strategy, dividend, divisor, expected_quotient=100
        ).total_ms
        for strategy in STRATEGIES
    }
    winner = min(measured, key=measured.get)
    print(render_table(
        ("strategy", "measured ms"),
        sorted(measured.items(), key=lambda kv: kv[1]),
        title="Measured (|S|=50, |Q|=100, clean):",
    ))
    print(f"\nmeasured winner: {winner!r} -- advisor said {pick_clean!r}")
    assert winner == pick_clean

    # -- end-to-end convenience: divide_with_advisor ---------------------
    quotient, strategy = divide_with_advisor(dividend, divisor)
    print(f"divide_with_advisor ran {strategy!r} and returned "
          f"{len(quotient)} quotient tuples")


if __name__ == "__main__":
    main()
