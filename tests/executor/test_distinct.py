"""Tests for hash-based duplicate elimination."""

import pytest

from repro.errors import HashTableOverflowError
from repro.executor.distinct import HashDistinct
from repro.executor.iterator import ExecContext, run_to_relation
from repro.executor.scan import RelationSource
from repro.relalg.relation import Relation


def source(ctx, rows):
    return RelationSource(ctx, Relation.of_ints(("a", "b"), rows))


class TestHashDistinct:
    def test_removes_duplicates_keeps_first_order(self, ctx):
        rows = [(1, 1), (2, 2), (1, 1), (3, 3), (2, 2)]
        result = run_to_relation(HashDistinct(source(ctx, rows)))
        assert result.rows == [(1, 1), (2, 2), (3, 3)]

    def test_no_duplicates_passthrough(self, ctx):
        rows = [(1, 1), (2, 2)]
        assert run_to_relation(HashDistinct(source(ctx, rows))).rows == rows

    def test_empty_input(self, ctx):
        assert run_to_relation(HashDistinct(source(ctx, []))).rows == []

    def test_memory_grows_with_distinct_count(self, ctx):
        """The paper's warning: hash dup-elim holds the whole distinct
        input in memory -- unlike hash aggregation."""
        rows = [(i, i) for i in range(1000)]
        run_to_relation(HashDistinct(source(ctx, rows)))
        per_entry = ctx.memory.stats.peak_bytes / 1000
        assert per_entry >= 16  # at least the record size per entry

    def test_overflow_on_large_distinct_input(self):
        ctx = ExecContext(memory_budget=4 * 1024)
        rows = [(i, i) for i in range(1000)]
        with pytest.raises(HashTableOverflowError):
            run_to_relation(HashDistinct(source(ctx, rows)))

    def test_duplicate_heavy_input_fits_small_budget(self):
        # Many tuples, few distinct: memory tracks distinct count.
        ctx = ExecContext(memory_budget=8 * 1024)
        rows = [(i % 10, 0) for i in range(5000)]
        result = run_to_relation(HashDistinct(source(ctx, rows)))
        assert len(result) == 10

    def test_memory_released_on_close(self, ctx):
        run_to_relation(HashDistinct(source(ctx, [(1, 1)])))
        assert ctx.memory.bytes_in_use == 0
