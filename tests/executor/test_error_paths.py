"""Error-path guarantees of the iterator state machine.

A failed ``open()`` never reaches ``_close`` (the state machine stays
CLOSED), so every multi-input or resource-holding operator must unwind
its own partial work: children opened so far are closed and charged
hash tables / bit maps / run files are released.  These tests drive
each operator's ``open()`` into a failure and assert

* the exception propagates unchanged,
* the memory pool is back to zero live bytes (nothing leaked),
* already-opened children are closed again (provable by re-opening).
"""

from __future__ import annotations

import pytest

from repro.errors import SchemaError
from repro.executor.aggregate import HashGroupCount
from repro.executor.distinct import HashDistinct
from repro.executor.filter import Select
from repro.executor.hash_join import HashJoin, HashSemiJoin
from repro.executor.iterator import ExecContext, QueryIterator, open_all
from repro.executor.scan import RelationSource
from repro.executor.sort import ExternalSort
from repro.core.hash_division import HashDivision
from repro.core.naive_division import NaiveDivision
from repro.relalg.predicates import AttributeEquals
from repro.relalg.relation import Relation
from repro.relalg.schema import Schema


class Boom(RuntimeError):
    """The injected failure."""


class FailingOpen(QueryIterator):
    """An operator whose ``open()`` always raises."""

    def __init__(self, ctx, schema: Schema) -> None:
        super().__init__(ctx, schema)

    def _open(self) -> None:
        raise Boom("open failed")

    def _next(self):  # pragma: no cover - never opened
        return None


class ExplodingNext(QueryIterator):
    """Produce ``rows``, then raise instead of reporting exhaustion."""

    def __init__(self, source: RelationSource) -> None:
        super().__init__(source.ctx, source.schema)
        self.source = source

    def _open(self) -> None:
        self.source.open()

    def _next(self):
        row = self.source.next()
        if row is None:
            raise Boom("next failed")
        return row

    def _close(self) -> None:
        self.source.close()

    def children(self) -> tuple[QueryIterator, ...]:
        return (self.source,)


def ints(names, rows, name=""):
    return Relation.of_ints(tuple(names), rows, name=name)


def assert_reopenable(operator: QueryIterator) -> None:
    """The operator ended CLOSED: a fresh open/close cycle succeeds."""
    operator.open()
    operator.close()


class TestOpenAll:
    def test_unwinds_already_opened_children(self, ctx):
        first = RelationSource(ctx, ints(("a",), [(1,)]))
        second = FailingOpen(ctx, Schema.of_ints("b"))
        with pytest.raises(Boom):
            open_all((first, second))
        # ``first`` was closed during the unwind: it can be re-opened.
        assert_reopenable(first)

    def test_success_leaves_all_open(self, ctx):
        first = RelationSource(ctx, ints(("a",), [(1,)]))
        second = RelationSource(ctx, ints(("b",), [(2,)]))
        open_all((first, second))
        assert first.next() == (1,)
        assert second.next() == (2,)
        first.close()
        second.close()


class TestSingleInputOperators:
    def test_select_bad_predicate_leaves_input_closed(self, ctx):
        source = RelationSource(ctx, ints(("a",), [(1,)]))
        select = Select(source, AttributeEquals("missing", 1))
        with pytest.raises(SchemaError):
            select.open()
        # The predicate failed to compile before the child was touched.
        assert_reopenable(source)

    def test_hash_distinct_frees_table_when_child_open_fails(self, ctx):
        child = FailingOpen(ctx, Schema.of_ints("a"))
        distinct = HashDistinct(child)
        with pytest.raises(Boom):
            distinct.open()
        assert ctx.memory.bytes_in_use == 0

    def test_hash_group_count_mid_stream_failure(self, ctx):
        source = RelationSource(ctx, ints(("a",), [(1,), (2,)]))
        child = ExplodingNext(source)
        # expected_groups > 0 selects the lazy single-pass mode: the
        # table exists and the child is open when the failure hits.
        counts = HashGroupCount(child, ("a",), expected_groups=4)
        with pytest.raises(Boom):
            counts.open()
        assert ctx.memory.bytes_in_use == 0
        assert_reopenable(source)

    def test_external_sort_destroys_spilled_runs(self, ctx):
        sort = ExternalSort(
            RelationSource(ctx, ints(("a",), [])), key_names=("a",)
        )
        capacity = ctx.config.sort_run_capacity_records(
            sort._codec.record_size
        )
        rows = [(i,) for i in range(capacity + 8)]
        source = RelationSource(ctx, ints(("a",), rows))
        sort = ExternalSort(ExplodingNext(source), key_names=("a",))
        with pytest.raises(Boom):
            sort.open()
        # At least one run had been spilled before the failure; all of
        # them were destroyed during the unwind.
        assert sort._runs == []
        assert_reopenable(source)


class TestJoins:
    def test_semi_join_failed_probe_open_frees_build_table(self, ctx):
        build = RelationSource(ctx, ints(("a",), [(1,), (2,)]))
        probe = FailingOpen(ctx, Schema.of_ints("a", "b"))
        join = HashSemiJoin(probe, build, ("a",))
        with pytest.raises(Boom):
            join.open()
        assert ctx.memory.bytes_in_use == 0
        assert_reopenable(build)

    def test_hash_join_failed_probe_open_frees_build_table(self, ctx):
        build = RelationSource(ctx, ints(("a",), [(1,)]))
        probe = FailingOpen(ctx, Schema.of_ints("a", "b"))
        join = HashJoin(probe, build, ("a",))
        with pytest.raises(Boom):
            join.open()
        assert ctx.memory.bytes_in_use == 0


class TestDivisionOperators:
    def test_hash_division_failed_dividend_open_releases_tables(self, ctx):
        divisor = RelationSource(ctx, ints(("c",), [(1,), (2,)]))
        dividend = FailingOpen(ctx, Schema.of_ints("s", "c"))
        division = HashDivision(dividend, divisor, early_output=True)
        with pytest.raises(Boom):
            division.open()
        # Divisor table and quotient table were both released.
        assert ctx.memory.bytes_in_use == 0
        assert_reopenable(divisor)

    def test_naive_division_failed_dividend_open_clears_divisor_list(self, ctx):
        divisor = RelationSource(ctx, ints(("c",), [(1,), (2,)]))
        dividend = FailingOpen(ctx, Schema.of_ints("s", "c"))
        division = NaiveDivision(dividend, divisor)
        with pytest.raises(Boom):
            division.open()
        assert division._divisor_list == []
        assert_reopenable(divisor)


class TestFailedOpenUnderInjectedFaults:
    """Failed opens under *real device faults*, not synthetic Booms.

    A failed ``open()`` leaves the operator CLOSED and ``close()`` is a
    silent no-op (the serving layer's unwind paths call it
    unconditionally), and ``_close`` is never reached -- so spool and
    run files written before the fault must be reclaimed by ``_open``
    itself.
    These tests inject permanent write faults on the temp and run
    devices (tiny pages + a tiny buffer pool force eviction write-back
    during the append) and assert the device ends with zero live pages.
    """

    @staticmethod
    def _faulted_ctx(device: str) -> ExecContext:
        from repro.faults import FaultInjector, FaultRule
        from repro.storage.config import StorageConfig

        ctx = ExecContext(
            config=StorageConfig(
                page_size=512,
                sort_run_page_size=256,
                buffer_size=4 * 512,
                sort_buffer_size=4 * 512,
            )
        )
        ctx.attach_fault_injector(
            FaultInjector(
                [FaultRule("permanent", op="write", device=device)], seed=0
            )
        )
        return ctx

    def test_materialize_failed_spool_destroys_temp_file(self):
        from repro.errors import DiskFaultError
        from repro.executor.materialize import Materialize

        ctx = self._faulted_ctx("temp")
        rows = [(i, i % 7) for i in range(400)]
        spool = Materialize(RelationSource(ctx, ints(("a", "b"), rows)))
        with pytest.raises(DiskFaultError):
            spool.open()
        # The state machine stayed CLOSED: close() is an idempotent
        # no-op after the failed attempt, not the cleanup path ...
        spool.close()
        # ... so _open itself must have reclaimed the partial spool.
        assert spool._file is None
        assert ctx.temp_disk.page_count == 0
        assert ctx.pool.fixed_page_count() == 0
        ctx.close()

    def test_sort_failed_spill_destroys_partial_runs(self):
        from repro.errors import DiskFaultError

        ctx = self._faulted_ctx("runs")
        capacity = ctx.config.sort_run_capacity_records(
            Schema.of_ints("a").codec().record_size
        )
        rows = [(i,) for i in range(capacity * 3)]
        sort = ExternalSort(
            RelationSource(ctx, ints(("a",), rows)), key_names=("a",)
        )
        with pytest.raises(DiskFaultError):
            sort.open()
        sort.close()  # idempotent no-op after the failed attempt
        assert sort._runs == []
        assert ctx.run_disk.page_count == 0
        assert ctx.pool.fixed_page_count() == 0
        ctx.close()

    def test_one_shot_fault_then_reopen_succeeds(self):
        """After a faulted open the operator is reopenable once the
        fault clears -- nothing about the failure is sticky."""
        from repro.errors import DiskFaultError
        from repro.executor.materialize import Materialize
        from repro.faults import FaultInjector, FaultRule
        from repro.storage.config import StorageConfig

        ctx = ExecContext(
            config=StorageConfig(
                page_size=512,
                sort_run_page_size=256,
                buffer_size=4 * 512,
                sort_buffer_size=4 * 512,
            )
        )
        ctx.attach_fault_injector(
            FaultInjector(
                [
                    FaultRule(
                        "permanent", op="write", device="temp", max_fires=1
                    )
                ],
                seed=0,
            )
        )
        rows = [(i, i) for i in range(400)]
        spool = Materialize(RelationSource(ctx, ints(("a", "b"), rows)))
        with pytest.raises(DiskFaultError):
            spool.open()
        # The rule is exhausted; the same operator opens cleanly now.
        spool.open()
        assert sum(1 for _ in spool) == len(rows)
        spool.close()
        assert ctx.temp_disk.page_count == 0
        ctx.close()
