"""Tests for Select and Project."""

from repro.executor.filter import Select
from repro.executor.iterator import run_to_relation
from repro.executor.project import Project
from repro.executor.scan import RelationSource
from repro.relalg.predicates import AttributeEquals, ComparisonPredicate
from repro.relalg.relation import Relation


class TestSelect:
    def test_filters_rows(self, ctx):
        relation = Relation.of_ints(("a",), [(1,), (2,), (3,)])
        plan = Select(RelationSource(ctx, relation), ComparisonPredicate("a", ">", 1))
        assert run_to_relation(plan).rows == [(2,), (3,)]

    def test_charges_one_comparison_per_input_tuple(self, ctx):
        relation = Relation.of_ints(("a",), [(i,) for i in range(10)])
        plan = Select(RelationSource(ctx, relation), AttributeEquals("a", 3))
        run_to_relation(plan)
        assert ctx.cpu.comparisons == 10

    def test_empty_result(self, ctx):
        relation = Relation.of_ints(("a",), [(1,)])
        plan = Select(RelationSource(ctx, relation), AttributeEquals("a", 99))
        assert run_to_relation(plan).rows == []


class TestProject:
    def test_keeps_duplicates(self, ctx):
        relation = Relation.of_ints(("a", "b"), [(1, 10), (1, 20)])
        plan = Project(RelationSource(ctx, relation), ["a"])
        assert run_to_relation(plan).rows == [(1,), (1,)]

    def test_reorders_attributes(self, ctx):
        relation = Relation.of_ints(("a", "b"), [(1, 2)])
        plan = Project(RelationSource(ctx, relation), ["b", "a"])
        result = run_to_relation(plan)
        assert result.rows == [(2, 1)]
        assert result.schema.names == ("b", "a")

    def test_composes_with_select(self, ctx):
        relation = Relation.of_ints(("a", "b"), [(1, 10), (2, 20), (3, 30)])
        plan = Project(
            Select(RelationSource(ctx, relation), ComparisonPredicate("a", ">=", 2)),
            ["b"],
        )
        assert run_to_relation(plan).rows == [(20,), (30,)]
