"""Tests for the external merge sort."""

import pytest

from repro.errors import ExecutionError
from repro.executor.iterator import ExecContext, run_to_relation
from repro.executor.scan import RelationSource
from repro.executor.sort import ExternalSort, count_reducer
from repro.relalg.relation import Relation
from repro.storage.config import StorageConfig


def tiny_sort_config(sort_records: int, record_size: int = 16) -> StorageConfig:
    """A config whose sort buffer holds exactly ``sort_records`` rows."""
    return StorageConfig(
        page_size=8192,
        sort_run_page_size=1024,
        buffer_size=64 * 1024,
        memory_limit=256 * 1024,
        sort_buffer_size=sort_records * record_size,
    )


class TestInMemorySort:
    def test_sorts_small_input_without_io(self, ctx):
        relation = Relation.of_ints(("a", "b"), [(3, 0), (1, 0), (2, 0)])
        plan = ExternalSort(RelationSource(ctx, relation), ["a"])
        assert run_to_relation(plan).rows == [(1, 0), (2, 0), (3, 0)]
        assert ctx.io_cost_ms() == 0.0
        assert plan.merge_passes_performed == 0

    def test_major_minor_keys(self, ctx):
        relation = Relation.of_ints(("q", "d"), [(2, 1), (1, 2), (1, 1), (2, 0)])
        plan = ExternalSort(RelationSource(ctx, relation), ["q", "d"])
        assert run_to_relation(plan).rows == [(1, 1), (1, 2), (2, 0), (2, 1)]

    def test_distinct_removes_full_duplicates(self, ctx):
        relation = Relation.of_ints(("a", "b"), [(1, 1), (1, 1), (2, 2)])
        plan = ExternalSort(RelationSource(ctx, relation), ["a", "b"], distinct=True)
        assert run_to_relation(plan).rows == [(1, 1), (2, 2)]

    def test_distinct_and_reducer_mutually_exclusive(self, ctx):
        relation = Relation.of_ints(("a",), [])
        reducer = count_reducer(relation.schema, ["a"])
        with pytest.raises(ExecutionError):
            ExternalSort(
                RelationSource(ctx, relation), ["a"], distinct=True, reducer=reducer
            )

    def test_charges_quicksort_comparisons(self, ctx):
        relation = Relation.of_ints(("a",), [(i,) for i in range(64)])
        run_to_relation(ExternalSort(RelationSource(ctx, relation), ["a"]))
        # 2 n log2 n = 2 * 64 * 6 = 768.
        assert ctx.cpu.comparisons == 768


class TestExternalSort:
    def test_spills_and_sorts(self):
        ctx = ExecContext(config=tiny_sort_config(sort_records=32))
        rows = [(i * 37 % 997, i) for i in range(500)]
        relation = Relation.of_ints(("k", "v"), rows)
        plan = ExternalSort(RelationSource(ctx, relation), ["k", "v"])
        result = run_to_relation(plan)
        assert result.rows == sorted(rows)

    def test_spilled_runs_reach_disk_under_buffer_pressure(self):
        # With a one-page buffer the run pages cannot all stay
        # resident, so physical run I/O must occur.
        config = StorageConfig(
            page_size=8192,
            sort_run_page_size=1024,
            buffer_size=8192,
            memory_limit=2 * 8192,
            sort_buffer_size=32 * 16,
        )
        ctx = ExecContext(config=config)
        rows = [(i * 37 % 997, i) for i in range(2000)]
        relation = Relation.of_ints(("k", "v"), rows)
        plan = ExternalSort(RelationSource(ctx, relation), ["k", "v"])
        result = run_to_relation(plan)
        assert result.rows == sorted(rows)
        counters = ctx.io_stats.counters("runs")
        assert counters.writes > 0 and counters.reads > 0

    def test_multiple_merge_passes_with_tiny_fan_in(self):
        config = StorageConfig(
            page_size=8192,
            sort_run_page_size=1024,
            buffer_size=64 * 1024,
            memory_limit=256 * 1024,
            sort_buffer_size=2 * 1024,  # fan-in 2, 128 records per run
        )
        ctx = ExecContext(config=config)
        rows = [((i * 7919) % 104729, 0) for i in range(3000)]
        relation = Relation.of_ints(("k", "v"), rows)
        plan = ExternalSort(RelationSource(ctx, relation), ["k"])
        result = run_to_relation(plan)
        assert [row[0] for row in result.rows] == sorted(row[0] for row in rows)
        assert plan.merge_passes_performed >= 1

    def test_spilled_distinct(self):
        ctx = ExecContext(config=tiny_sort_config(sort_records=16))
        rows = [(i % 50, i % 50) for i in range(400)]
        relation = Relation.of_ints(("a", "b"), rows)
        plan = ExternalSort(RelationSource(ctx, relation), ["a", "b"], distinct=True)
        assert run_to_relation(plan).rows == [(i, i) for i in range(50)]

    def test_run_files_destroyed_on_close(self):
        ctx = ExecContext(config=tiny_sort_config(sort_records=16))
        relation = Relation.of_ints(("a", "b"), [(i, 0) for i in range(200)])
        plan = ExternalSort(RelationSource(ctx, relation), ["a"])
        run_to_relation(plan)
        assert ctx.run_disk.page_count == 0

    def test_reopen_resorts(self, ctx):
        relation = Relation.of_ints(("a",), [(2,), (1,)])
        plan = ExternalSort(RelationSource(ctx, relation), ["a"])
        assert run_to_relation(plan).rows == [(1,), (2,)]
        assert run_to_relation(plan).rows == [(1,), (2,)]


class TestEarlyAggregation:
    def test_count_reducer_in_memory(self, ctx):
        relation = Relation.of_ints(("q", "d"), [(1, 5), (1, 6), (2, 5)])
        reducer = count_reducer(relation.schema, ["q"])
        plan = ExternalSort(RelationSource(ctx, relation), ["q"], reducer=reducer)
        result = run_to_relation(plan)
        assert result.rows == [(1, 2), (2, 1)]
        assert result.schema.names == ("q", "count")

    def test_count_reducer_spilled_keeps_runs_small(self):
        """"No intermediate run contains duplicate sort keys": early
        aggregation bounds run size by the number of groups."""
        ctx = ExecContext(config=tiny_sort_config(sort_records=64))
        rows = [(i % 4, i) for i in range(2000)]
        relation = Relation.of_ints(("q", "d"), rows)
        reducer = count_reducer(relation.schema, ["q"])
        plan = ExternalSort(RelationSource(ctx, relation), ["q"], reducer=reducer)
        result = run_to_relation(plan)
        assert result.rows == [(q, 500) for q in range(4)]
        # Each spilled run holds at most 4 (collapsed) tuples, so run
        # I/O is tiny compared to the input size.
        assert ctx.io_stats.counters("runs").bytes_written <= 2000 * 16

    def test_empty_input(self, ctx):
        relation = Relation.of_ints(("q", "d"), [])
        reducer = count_reducer(relation.schema, ["q"])
        plan = ExternalSort(RelationSource(ctx, relation), ["q"], reducer=reducer)
        assert run_to_relation(plan).rows == []
