"""Tests for materialization and temp file scans."""

from repro.executor.iterator import run_to_relation
from repro.executor.materialize import Materialize, TempFileScan
from repro.executor.scan import RelationSource
from repro.relalg.relation import Relation


class TestMaterialize:
    def test_passthrough_contents(self, ctx):
        relation = Relation.of_ints(("a", "b"), [(1, 2), (3, 4)])
        plan = Materialize(RelationSource(ctx, relation))
        assert run_to_relation(plan).bag_equal(relation)

    def test_temp_pages_released_on_close(self, ctx):
        relation = Relation.of_ints(("a", "b"), [(i, i) for i in range(2000)])
        plan = Materialize(RelationSource(ctx, relation))
        run_to_relation(plan)
        assert ctx.temp_disk.page_count == 0

    def test_small_result_stays_in_buffer(self, ctx):
        relation = Relation.of_ints(("a", "b"), [(1, 1)])
        plan = Materialize(RelationSource(ctx, relation))
        run_to_relation(plan)
        # One page, written and read entirely inside the pool.
        assert ctx.io_stats.counters("temp").reads == 0


class TestTempFileScan:
    def test_scans_prewritten_file(self, ctx):
        schema = Relation.of_ints(("a",), []).schema
        codec = schema.codec()
        file = ctx.temp_file("temp")
        file.append_many(codec.encode((i,)) for i in range(5))
        plan = TempFileScan(ctx, file, schema)
        assert run_to_relation(plan).rows == [(i,) for i in range(5)]
        # Not destroyed: scan again.
        plan2 = TempFileScan(ctx, file, schema, destroy_on_close=True)
        assert run_to_relation(plan2).rows == [(i,) for i in range(5)]
        assert ctx.temp_disk.page_count == 0

    def test_destroy_on_close(self, ctx):
        schema = Relation.of_ints(("a",), []).schema
        file = ctx.temp_file("temp")
        file.append(schema.codec().encode((1,)))
        run_to_relation(TempFileScan(ctx, file, schema, destroy_on_close=True))
        assert ctx.temp_disk.page_count == 0
