"""Tests for plan explanation and per-operator row counters."""

from repro.executor.filter import Select
from repro.executor.iterator import run_to_relation
from repro.executor.project import Project
from repro.executor.scan import RelationSource
from repro.relalg.predicates import ComparisonPredicate
from repro.relalg.relation import Relation


def make_plan(ctx):
    relation = Relation.of_ints(
        ("a", "b"), [(i, i * 10) for i in range(10)], name="r"
    )
    return Project(
        Select(RelationSource(ctx, relation), ComparisonPredicate("a", ">=", 7)),
        ["b"],
    )


class TestRowCounters:
    def test_counts_rows_per_operator(self, ctx):
        plan = make_plan(ctx)
        run_to_relation(plan)
        assert plan.rows_produced == 3
        select = plan.children()[0]
        source = select.children()[0]
        assert select.rows_produced == 3
        assert source.rows_produced == 10

    def test_reopen_resets_counters(self, ctx):
        plan = make_plan(ctx)
        run_to_relation(plan)
        run_to_relation(plan)
        assert plan.rows_produced == 3  # not 6

    def test_partial_drain_counts_partially(self, ctx):
        plan = make_plan(ctx)
        plan.open()
        plan.next()
        assert plan.rows_produced == 1
        plan.close()


class TestExplainAnalyze:
    def test_plain_explain_has_no_counts(self, ctx):
        plan = make_plan(ctx)
        assert "rows=" not in plan.explain()

    def test_analyze_shows_counts_after_run(self, ctx):
        plan = make_plan(ctx)
        run_to_relation(plan)
        text = plan.explain(analyze=True)
        assert "[rows=3]" in text
        assert "[rows=10]" in text

    def test_analyze_structure_matches_tree(self, ctx):
        plan = make_plan(ctx)
        run_to_relation(plan)
        lines = plan.explain(analyze=True).splitlines()
        assert lines[0].startswith("Project")
        assert lines[1].strip().startswith("Select")
        assert lines[2].strip().startswith("RelationSource")
