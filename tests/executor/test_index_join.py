"""Tests for index join and index semi-join."""

import pytest

from repro.errors import ExecutionError
from repro.executor.index_join import IndexJoin, IndexSemiJoin
from repro.executor.iterator import run_to_relation
from repro.executor.scan import RelationSource
from repro.relalg.relation import Relation
from repro.storage.index import SecondaryIndex


@pytest.fixture
def course_index(catalog, courses):
    stored = catalog.store(courses)
    return SecondaryIndex.build(stored, ["course_no"])


class TestIndexSemiJoin:
    def test_filters_by_index_existence(self, ctx, transcript, course_index):
        plan = IndexSemiJoin(RelationSource(ctx, transcript), course_index)
        result = run_to_relation(plan)
        # Course-99 tuples match no indexed course.
        assert all(row[1] in {10, 11} for row in result.rows)
        assert len(result) == 6

    def test_duplicates_in_outer_preserved(self, ctx, courses, catalog):
        stored = catalog.store(courses, name="c2")
        index = SecondaryIndex.build(stored, ["course_no"])
        outer = Relation.of_ints(
            ("student_id", "course_no"), [(1, 10), (1, 10)]
        )
        plan = IndexSemiJoin(RelationSource(ctx, outer), index)
        assert len(run_to_relation(plan)) == 2

    def test_missing_key_attribute_rejected(self, ctx, course_index):
        outer = Relation.of_ints(("x",), [])
        with pytest.raises(ExecutionError):
            IndexSemiJoin(RelationSource(ctx, outer), course_index)

    def test_agrees_with_hash_semi_join(self, ctx, catalog):
        import random

        rng = random.Random(4)
        inner = Relation.of_ints(
            ("k",), [(v,) for v in rng.sample(range(50), 20)], name="inner"
        )
        outer = Relation.of_ints(
            ("k", "a"), [(rng.randrange(50), i) for i in range(200)]
        )
        stored = catalog.store(inner)
        index = SecondaryIndex.build(stored, ["k"])
        via_index = run_to_relation(
            IndexSemiJoin(RelationSource(ctx, outer), index)
        )
        from repro.executor.hash_join import HashSemiJoin

        via_hash = run_to_relation(
            HashSemiJoin(
                RelationSource(ctx, outer), RelationSource(ctx, inner), ["k"]
            )
        )
        assert via_index.bag_equal(via_hash)


class TestIndexJoin:
    def test_fetches_inner_attributes(self, ctx, catalog):
        inner = Relation.of_ints(("k", "payload"), [(1, 100), (2, 200)], name="inner")
        stored = catalog.store(inner)
        index = SecondaryIndex.build(stored, ["k"])
        outer = Relation.of_ints(("k", "a"), [(1, 10), (3, 30)])
        plan = IndexJoin(RelationSource(ctx, outer), index)
        result = run_to_relation(plan)
        assert result.rows == [(1, 10, 100)]
        assert result.schema.names == ("k", "a", "payload")

    def test_one_to_many(self, ctx, catalog):
        inner = Relation.of_ints(("k", "p"), [(1, 0), (1, 1), (1, 2)], name="inner")
        stored = catalog.store(inner)
        index = SecondaryIndex.build(stored, ["k"])
        outer = Relation.of_ints(("k",), [(1,)])
        plan = IndexJoin(RelationSource(ctx, outer), index)
        assert len(run_to_relation(plan)) == 3

    def test_join_on_full_inner_schema(self, ctx, catalog):
        inner = Relation.of_ints(("k",), [(1,), (2,)], name="inner")
        stored = catalog.store(inner)
        index = SecondaryIndex.build(stored, ["k"])
        outer = Relation.of_ints(("k", "a"), [(2, 20)])
        result = run_to_relation(IndexJoin(RelationSource(ctx, outer), index))
        assert result.rows == [(2, 20)]
        assert result.schema.names == ("k", "a")

    def test_random_fetches_can_cost_random_io(self, ctx, catalog):
        # A big cold inner + scattered probes: record fetches miss the
        # buffer and pay (random) reads.
        inner = Relation.of_ints(
            ("k", "p"), [(i, i) for i in range(20_000)], name="inner"
        )
        stored = catalog.store(inner, cold=True)
        index = SecondaryIndex.build(stored, ["k"])
        ctx.io_stats.reset()
        # Index build scanned the file; drop the buffered pages again.
        ctx.pool.drop_device_pages("data")
        ctx.io_stats.reset()
        outer = Relation.of_ints(("k",), [(i * 977 % 20_000,) for i in range(50)])
        run_to_relation(IndexJoin(RelationSource(ctx, outer), index))
        counters = ctx.io_stats.counters("data")
        assert counters.reads > 0
        assert counters.seeks > counters.reads // 2  # scattered = seeky
