"""Property-based tests for the external sort."""

from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.executor.iterator import ExecContext, run_to_relation
from repro.executor.scan import RelationSource
from repro.executor.sort import ExternalSort, count_reducer
from repro.relalg.relation import Relation
from repro.storage.config import StorageConfig

rows_strategy = st.lists(
    st.tuples(
        st.integers(min_value=-100, max_value=100),
        st.integers(min_value=-100, max_value=100),
    ),
    max_size=300,
)


def spilling_ctx() -> ExecContext:
    """A context whose sort buffer holds only 8 records of 16 bytes."""
    return ExecContext(
        config=StorageConfig(
            page_size=8192,
            sort_run_page_size=1024,
            buffer_size=64 * 1024,
            memory_limit=256 * 1024,
            sort_buffer_size=8 * 16,
        )
    )


@given(rows_strategy)
@settings(max_examples=60, deadline=None)
def test_sort_output_is_sorted_permutation(rows):
    ctx = spilling_ctx()
    relation = Relation.of_ints(("a", "b"), rows)
    plan = ExternalSort(RelationSource(ctx, relation), ["a", "b"])
    result = run_to_relation(plan)
    assert result.rows == sorted(rows)
    assert Counter(result.rows) == Counter(tuple(r) for r in rows)


@given(rows_strategy)
@settings(max_examples=60, deadline=None)
def test_distinct_output_matches_set(rows):
    ctx = spilling_ctx()
    relation = Relation.of_ints(("a", "b"), rows)
    plan = ExternalSort(RelationSource(ctx, relation), ["a", "b"], distinct=True)
    result = run_to_relation(plan)
    assert result.rows == sorted(set(map(tuple, rows)))


@given(rows_strategy)
@settings(max_examples=60, deadline=None)
def test_count_reducer_matches_counter(rows):
    ctx = spilling_ctx()
    relation = Relation.of_ints(("a", "b"), rows)
    reducer = count_reducer(relation.schema, ["a"])
    plan = ExternalSort(RelationSource(ctx, relation), ["a"], reducer=reducer)
    result = run_to_relation(plan)
    expected = Counter(row[0] for row in rows)
    assert dict(((k,), v) for k, v in expected.items()) == {
        (row[0],): row[1] for row in result.rows
    }
    assert [row[0] for row in result.rows] == sorted(expected)
