"""Executor-level instrumentation: sort spills, hash-table overflows,
and the adaptive division driver's retry metrics.

These counters feed the ``repro_sort_*``, ``repro_hash_table_*`` and
``repro_division_*`` metric families; every one is also readable as a
plain attribute so tests (and cost studies) need no tracer at all.
"""

import pytest

from repro.core.partitioned import hash_division_with_overflow
from repro.errors import HashTableOverflowError
from repro.executor.hash_table import ChainedHashTable
from repro.executor.iterator import ExecContext, run_to_relation
from repro.executor.scan import RelationSource
from repro.executor.sort import ExternalSort
from repro.metering import CpuCounters
from repro.obs.span import Tracer
from repro.relalg.relation import Relation
from repro.storage.config import StorageConfig
from repro.storage.memory import MemoryPool


def sort_ctx(sort_records: int, tracer=None) -> ExecContext:
    """A context whose sort buffer holds exactly ``sort_records`` rows."""
    record_size = 16
    config = StorageConfig(sort_buffer_size=sort_records * record_size)
    return ExecContext(config=config, tracer=tracer)


def shuffled(rows: int) -> Relation:
    values = [((rows - i) * 7 % rows, i) for i in range(rows)]
    return Relation.of_ints(("k", "v"), values)


class TestSortSpillCounters:
    def test_in_memory_sort_spills_nothing(self):
        ctx = sort_ctx(sort_records=128)
        plan = ExternalSort(RelationSource(ctx, shuffled(64)), ["k"])
        run_to_relation(plan)
        assert plan.runs_spilled == 0
        assert plan.run_lengths == []

    def test_spilling_sort_counts_runs_and_lengths(self):
        ctx = sort_ctx(sort_records=32)
        plan = ExternalSort(RelationSource(ctx, shuffled(100)), ["k"])
        result = run_to_relation(plan)
        assert len(result) == 100
        assert plan.runs_spilled == len(plan.run_lengths)
        assert plan.runs_spilled >= 2
        assert sum(plan.run_lengths) == 100
        assert all(length <= 32 for length in plan.run_lengths)

    def test_sort_metrics_reach_the_tracer(self):
        tracer = Tracer()
        ctx = sort_ctx(sort_records=32, tracer=tracer)
        plan = ExternalSort(RelationSource(ctx, shuffled(100)), ["k"])
        run_to_relation(plan)
        assert (
            tracer.metrics.value("repro_sort_spill_runs_total") == plan.runs_spilled
        )
        histogram = tracer.metrics.histogram("repro_sort_run_length_rows")
        assert histogram.count == plan.runs_spilled
        assert histogram.sum == sum(plan.run_lengths)

    def test_reopen_resets_spill_counters(self):
        ctx = sort_ctx(sort_records=32)
        plan = ExternalSort(RelationSource(ctx, shuffled(100)), ["k"])
        run_to_relation(plan)
        first = plan.runs_spilled
        run_to_relation(plan)  # second open/drain cycle
        assert first >= 2
        assert plan.runs_spilled == first  # reset, then recounted


class TestHashTableOverflowCounters:
    def tight_table(self, tracer=None) -> ChainedHashTable:
        return ChainedHashTable(
            CpuCounters(),
            MemoryPool(budget=512),
            bucket_count=4,
            entry_bytes=64,
            tag="test-table",
            tracer=tracer,
        )

    def fill_until_overflow(self, table: ChainedHashTable) -> None:
        with pytest.raises(HashTableOverflowError):
            for i in range(1000):
                table.insert((i,), i)

    def test_overflow_attribute_counts(self):
        table = self.tight_table()
        assert table.overflows == 0
        self.fill_until_overflow(table)
        assert table.overflows == 1

    def test_overflow_metric_labelled_by_table_and_site(self):
        tracer = Tracer()
        table = self.tight_table(tracer=tracer)
        self.fill_until_overflow(table)
        assert (
            tracer.metrics.value(
                "repro_hash_table_overflows_total",
                table="test-table",
                site="insert",
            )
            == 1
        )

    def test_no_tracer_means_no_metrics_but_still_counts(self):
        table = self.tight_table(tracer=None)
        self.fill_until_overflow(table)
        assert table.overflows == 1  # attribute works without any tracer


class TestDivisionRetryMetrics:
    def big_workload(self):
        divisor = Relation.of_ints(("d",), [(d,) for d in range(40)], name="S")
        dividend = Relation.of_ints(
            ("q", "d"), [(q, d) for q in range(300) for d in range(40)], name="R"
        )
        return dividend, divisor

    def test_retries_and_fanout_are_recorded(self):
        dividend, divisor = self.big_workload()
        tracer = Tracer()
        ctx = ExecContext(memory_budget=12 * 1024, tracer=tracer)
        result = hash_division_with_overflow(
            lambda: RelationSource(ctx, dividend),
            lambda: RelationSource(ctx, divisor),
            strategy="quotient",
        )
        assert len(result) == 300
        retries = tracer.metrics.value(
            "repro_division_overflow_retries_total", strategy="quotient"
        )
        fanout = tracer.metrics.value(
            "repro_division_partition_fanout", strategy="quotient"
        )
        assert retries >= 1
        # The gauge keeps the fan-out that finally fit: 2^retries.
        assert fanout == 2**retries

    def test_single_phase_fit_records_nothing(self):
        dividend, divisor = self.big_workload()
        tracer = Tracer()
        ctx = ExecContext(tracer=tracer)  # unbounded: no retry needed
        hash_division_with_overflow(
            lambda: RelationSource(ctx, dividend),
            lambda: RelationSource(ctx, divisor),
        )
        with pytest.raises(KeyError):
            tracer.metrics.value(
                "repro_division_overflow_retries_total", strategy="quotient"
            )
