"""Tests for scan operators."""

from repro.executor.iterator import run_to_relation
from repro.executor.scan import RelationSource, StoredRelationScan
from repro.relalg.relation import Relation


class TestRelationSource:
    def test_yields_all_rows_without_io(self, ctx):
        relation = Relation.of_ints(("a",), [(i,) for i in range(10)])
        result = run_to_relation(RelationSource(ctx, relation))
        assert result.bag_equal(relation)
        assert ctx.io_cost_ms() == 0.0

    def test_schema_passthrough(self, ctx):
        relation = Relation.of_ints(("x", "y"), [])
        assert RelationSource(ctx, relation).schema == relation.schema


class TestStoredRelationScan:
    def test_scans_stored_tuples(self, ctx, catalog, transcript):
        stored = catalog.store(transcript)
        result = run_to_relation(StoredRelationScan(ctx, stored))
        assert result.bag_equal(transcript)

    def test_cold_scan_pays_sequential_read_io(self, ctx, catalog):
        relation = Relation.of_ints(
            ("a", "b"), [(i, i) for i in range(5000)], name="big"
        )
        stored = catalog.store(relation, cold=True)
        ctx.io_stats.reset()
        run_to_relation(StoredRelationScan(ctx, stored))
        counters = ctx.io_stats.counters("data")
        assert counters.reads == stored.page_count
        assert counters.writes == 0
        # Contiguous extents: far fewer seeks than reads.
        assert counters.seeks <= stored.page_count // 2 + 1

    def test_second_scan_hits_buffer(self, ctx, catalog, courses):
        stored = catalog.store(courses, cold=True)
        run_to_relation(StoredRelationScan(ctx, stored))
        ctx.io_stats.reset()
        run_to_relation(StoredRelationScan(ctx, stored))
        assert ctx.io_stats.counters("data").reads == 0

    def test_rescan_via_reopen(self, ctx, catalog, courses):
        stored = catalog.store(courses)
        scan = StoredRelationScan(ctx, stored)
        first = run_to_relation(scan)
        second = run_to_relation(scan)
        assert first.bag_equal(second)
