"""Tests for the open-next-close protocol machinery."""

import pytest

from repro.errors import ExecutionError
from repro.executor.iterator import run_to_relation
from repro.executor.scan import RelationSource
from repro.relalg.relation import Relation


class TestProtocol:
    def test_next_before_open_rejected(self, ctx):
        source = RelationSource(ctx, Relation.of_ints(("a",), [(1,)]))
        with pytest.raises(ExecutionError):
            source.next()

    def test_double_open_rejected(self, ctx):
        source = RelationSource(ctx, Relation.of_ints(("a",), [(1,)]))
        source.open()
        with pytest.raises(ExecutionError):
            source.open()

    def test_close_without_open_rejected(self, ctx):
        source = RelationSource(ctx, Relation.of_ints(("a",), [(1,)]))
        with pytest.raises(ExecutionError):
            source.close()

    def test_next_after_exhaustion_keeps_returning_none(self, ctx):
        source = RelationSource(ctx, Relation.of_ints(("a",), [(1,)]))
        source.open()
        assert source.next() == (1,)
        assert source.next() is None
        assert source.next() is None
        source.close()

    def test_reopen_after_close_restarts(self, ctx):
        source = RelationSource(ctx, Relation.of_ints(("a",), [(1,), (2,)]))
        source.open()
        assert source.next() == (1,)
        source.close()
        source.open()
        assert source.next() == (1,)
        source.close()

    def test_iteration_protocol(self, ctx):
        relation = Relation.of_ints(("a",), [(1,), (2,), (3,)])
        source = RelationSource(ctx, relation)
        source.open()
        assert list(source) == relation.rows
        source.close()


class TestRunToRelation:
    def test_collects_and_closes(self, ctx):
        relation = Relation.of_ints(("a", "b"), [(1, 2), (3, 4)])
        source = RelationSource(ctx, relation)
        result = run_to_relation(source, name="out")
        assert result.bag_equal(relation.rename("out"))
        assert result.name == "out"
        # The operator is closed: it can be reopened.
        source.open()
        source.close()


class TestExplain:
    def test_explain_renders_tree(self, ctx):
        from repro.executor.filter import Select
        from repro.relalg.predicates import TruePredicate

        source = RelationSource(ctx, Relation.of_ints(("a",), [], name="r"))
        plan = Select(source, TruePredicate())
        text = plan.explain()
        assert "Select" in text
        assert "RelationSource(r" in text
        # The child is indented under the parent.
        lines = text.splitlines()
        assert lines[1].startswith("  ")


class TestExecContext:
    def test_temp_file_kinds(self, ctx):
        runs = ctx.temp_file("runs")
        temp = ctx.temp_file("temp")
        assert runs.disk.page_size == ctx.config.sort_run_page_size
        assert temp.disk.page_size == ctx.config.page_size
        with pytest.raises(ExecutionError):
            ctx.temp_file("bogus")

    def test_temp_file_names_unique(self, ctx):
        assert ctx.temp_file().name != ctx.temp_file().name

    def test_reset_meters(self, ctx):
        ctx.cpu.comparisons += 5
        ctx.io_stats.record_transfer("data", 0, 100, is_write=False)
        ctx.reset_meters()
        assert ctx.cpu.comparisons == 0
        assert ctx.io_cost_ms() == 0.0
