"""Satellite regression: ``close()`` is idempotent on every operator.

The serving layer's unwind paths (scheduler-thrown cancellation, the
hash-overflow fallback, ``finally: root.close()`` after either) can
close the same operator twice -- or close an operator whose ``open()``
failed partway.  Before this PR a second ``close()`` raised
``ExecutionError`` mid-unwind, aborting cleanup and leaking sibling
resources.  This module pins the contract for **every** operator class:

* ``open -> drain -> close -> close`` is silent,
* ``open -> close -> close`` (no draining) is silent,
* ``close()`` on a *never-opened* operator is still a protocol error
  (it holds nothing: the call is a caller bug),
* a failed ``open()`` leaves the operator closable (no resources held).
"""

import pytest

from repro.errors import ExecutionError, HashTableOverflowError
from repro.executor.aggregate import (
    HashGroupCount,
    ScalarCount,
    SortedGroupCount,
)
from repro.executor.distinct import HashDistinct
from repro.executor.filter import Select
from repro.executor.hash_join import HashJoin, HashSemiJoin
from repro.executor.index_join import IndexJoin, IndexSemiJoin
from repro.executor.iterator import ExecContext
from repro.executor.materialize import Materialize
from repro.executor.merge_join import MergeJoin, MergeSemiJoin
from repro.executor.project import Project
from repro.executor.scan import RelationSource, StoredRelationScan
from repro.executor.sort import ExternalSort
from repro.plan.physical import (
    DIVISION_OPERATOR_STRATEGIES,
    build_division_operator,
)
from repro.relalg.predicates import TruePredicate
from repro.storage.index import SecondaryIndex

# -- operator builders ----------------------------------------------------
# Each builder returns a fresh operator tree over the running example
# (transcript / courses).  ``env`` carries (ctx, catalog, transcript,
# courses) so index/scan builders can store relations first.


def _stored(env, relation, name):
    ctx, catalog = env[0], env[1]
    try:
        return catalog.get(name)
    except Exception:  # noqa: BLE001 - first build stores it
        return catalog.store(relation, name)


def _src(env, which):
    ctx, _, transcript, courses = env
    return RelationSource(ctx, transcript if which == "dividend" else courses)


BUILDERS = {
    "RelationSource": lambda env: _src(env, "dividend"),
    "StoredRelationScan": lambda env: StoredRelationScan(
        env[0], _stored(env, env[2], "transcript")
    ),
    "Select": lambda env: Select(_src(env, "dividend"), TruePredicate()),
    "Project": lambda env: Project(_src(env, "dividend"), ("student_id",)),
    "Materialize": lambda env: Materialize(_src(env, "dividend")),
    "ExternalSort": lambda env: ExternalSort(
        _src(env, "dividend"), key_names=("student_id", "course_no")
    ),
    "ExternalSortDistinct": lambda env: ExternalSort(
        _src(env, "dividend"), key_names=("course_no",), distinct=True
    ),
    "HashDistinct": lambda env: HashDistinct(_src(env, "dividend")),
    "ScalarCount": lambda env: ScalarCount(_src(env, "divisor")),
    "SortedGroupCount": lambda env: SortedGroupCount(
        ExternalSort(_src(env, "dividend"), key_names=("student_id",)),
        ("student_id",),
    ),
    "HashGroupCount": lambda env: HashGroupCount(
        _src(env, "dividend"), ("student_id",)
    ),
    "HashJoin": lambda env: HashJoin(
        _src(env, "dividend"), _src(env, "divisor"), ("course_no",)
    ),
    "HashSemiJoin": lambda env: HashSemiJoin(
        _src(env, "dividend"), _src(env, "divisor"), ("course_no",)
    ),
    "MergeJoin": lambda env: MergeJoin(
        ExternalSort(_src(env, "dividend"), key_names=("course_no",)),
        ExternalSort(_src(env, "divisor"), key_names=("course_no",)),
        ("course_no",),
    ),
    "MergeSemiJoin": lambda env: MergeSemiJoin(
        ExternalSort(_src(env, "dividend"), key_names=("course_no",)),
        ExternalSort(_src(env, "divisor"), key_names=("course_no",)),
        ("course_no",),
    ),
    "IndexJoin": lambda env: IndexJoin(
        _src(env, "dividend"),
        SecondaryIndex.build(_stored(env, env[3], "courses"), ["course_no"]),
    ),
    "IndexSemiJoin": lambda env: IndexSemiJoin(
        _src(env, "dividend"),
        SecondaryIndex.build(_stored(env, env[3], "courses"), ["course_no"]),
    ),
}


@pytest.fixture
def env(ctx, catalog, transcript, courses):
    return (ctx, catalog, transcript, courses)


@pytest.mark.parametrize("name", sorted(BUILDERS))
class TestEveryOperator:
    def test_double_close_after_drain_is_silent(self, env, name):
        op = BUILDERS[name](env)
        op.open()
        while op.next() is not None:
            pass
        op.close()
        op.close()  # must be a no-op, not an ExecutionError

    def test_double_close_without_drain_is_silent(self, env, name):
        op = BUILDERS[name](env)
        op.open()
        op.close()
        op.close()

    def test_close_before_any_open_is_a_protocol_error(self, env, name):
        op = BUILDERS[name](env)
        with pytest.raises(ExecutionError):
            op.close()


@pytest.mark.parametrize("strategy", DIVISION_OPERATOR_STRATEGIES)
def test_division_trees_survive_double_close(env, strategy):
    ctx, _, transcript, courses = env
    root = build_division_operator(
        strategy,
        RelationSource(ctx, transcript),
        RelationSource(ctx, courses),
        expected_divisor=2,
        expected_quotient=4,
    )
    root.open()
    rows = set()
    while True:
        row = root.next()
        if row is None:
            break
        rows.add(row)
    root.close()
    root.close()
    # Still computed a quotient.  (Only student 1's membership is
    # strategy-independent here: the "no join" counting variants assume
    # a divisor-restricted dividend, which the raw transcript is not.)
    assert (1,) in rows


def test_failed_open_leaves_the_operator_closable():
    """A budget overflow *inside* ``open()`` must not poison ``close()``.

    This is the serve-layer fallback path: ``root.open()`` raises
    ``HashTableOverflowError``, the handler degrades to partitioned
    division, and both the handler and the ``finally`` call
    ``root.close()`` on the never-successfully-opened root.
    """
    from repro.relalg.relation import Relation

    ctx = ExecContext(memory_budget=256)
    rows = [(i, j) for i in range(32) for j in range(4)]
    big = Relation.of_ints(("q", "d"), rows, name="big")
    op = HashGroupCount(RelationSource(ctx, big), ("q",), expected_groups=32)
    with pytest.raises(HashTableOverflowError):
        op.open()
    op.close()  # idempotent: the failed open cleaned up after itself
    op.close()
    assert ctx.memory.bytes_in_use == 0  # nothing leaked by the failed open
