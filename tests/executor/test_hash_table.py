"""Tests for the bucket-chained hash table."""

import pytest

from repro.errors import HashTableOverflowError
from repro.executor.hash_table import ChainedHashTable
from repro.metering import CpuCounters
from repro.storage.memory import (
    BUCKET_HEADER_BYTES,
    CHAIN_ELEMENT_BYTES,
    MemoryPool,
)


def make_table(buckets=8, entry_bytes=8, budget=None):
    cpu = CpuCounters()
    memory = MemoryPool(budget)
    table = ChainedHashTable(cpu, memory, buckets, entry_bytes, tag="t")
    return table, cpu, memory


class TestBasics:
    def test_insert_and_find(self):
        table, _, _ = make_table()
        table.insert((1,), "a")
        assert table.find((1,)) == "a"
        assert table.find((2,)) is None
        assert len(table) == 1

    def test_find_or_insert(self):
        table, _, _ = make_table()
        payload, inserted = table.find_or_insert((1,), lambda: [0])
        assert inserted
        payload[0] += 1
        again, inserted = table.find_or_insert((1,), lambda: [0])
        assert not inserted
        assert again[0] == 1
        assert len(table) == 1

    def test_items_covers_all_entries(self):
        table, _, _ = make_table(buckets=4)
        for i in range(20):
            table.insert((i,), i)
        assert sorted(table.items()) == [((i,), i) for i in range(20)]

    def test_chains_handle_collisions(self):
        table, _, _ = make_table(buckets=1)
        for i in range(10):
            table.insert((i,), i)
        assert all(table.find((i,)) == i for i in range(10))
        assert table.average_chain_length == 10.0

    def test_buckets_for_targets_hbs_two(self):
        # hbs = 2 (Section 4.6): bucket count ~ entries / 2, power of 2.
        assert ChainedHashTable.buckets_for(64) == 32
        assert ChainedHashTable.buckets_for(100) == 64
        assert ChainedHashTable.buckets_for(0) == 16

    def test_bucket_count_must_be_positive(self):
        with pytest.raises(ValueError):
            make_table(buckets=0)


class TestMetering:
    def test_insert_charges_one_hash(self):
        table, cpu, _ = make_table()
        table.insert((1,), "a")
        assert cpu.hashes == 1
        assert cpu.comparisons == 0

    def test_find_charges_hash_plus_chain_comparisons(self):
        table, cpu, _ = make_table(buckets=1)
        for i in range(4):
            table.insert((i,), i)
        cpu.reset()
        table.find((3,))
        assert cpu.hashes == 1
        assert cpu.comparisons == 4  # walked the whole chain

    def test_miss_walks_entire_chain(self):
        table, cpu, _ = make_table(buckets=1)
        for i in range(4):
            table.insert((i,), i)
        cpu.reset()
        table.find((99,))
        assert cpu.comparisons == 4


class TestMemoryCharging:
    def test_creation_charges_bucket_array(self):
        _, _, memory = make_table(buckets=8)
        assert memory.bytes_in_use == 8 * BUCKET_HEADER_BYTES

    def test_insert_charges_chain_element_plus_entry(self):
        table, _, memory = make_table(buckets=8, entry_bytes=16)
        base = memory.bytes_in_use
        table.insert((1,), "x")
        assert memory.bytes_in_use == base + CHAIN_ELEMENT_BYTES + 16

    def test_overflow_raises_hash_table_overflow(self):
        table, _, _ = make_table(buckets=4, entry_bytes=64, budget=256)
        with pytest.raises(HashTableOverflowError):
            for i in range(100):
                table.insert((i,), i)

    def test_creation_overflow(self):
        with pytest.raises(HashTableOverflowError):
            make_table(buckets=1024, budget=64)

    def test_free_releases_everything(self):
        table, _, memory = make_table()
        for i in range(10):
            table.insert((i,), i)
        table.free()
        assert memory.bytes_in_use == 0

    def test_free_is_idempotent_and_blocks_use(self):
        table, _, _ = make_table()
        table.free()
        table.free()
        with pytest.raises(HashTableOverflowError):
            table.insert((1,), 1)

    def test_two_tables_free_independently(self):
        cpu = CpuCounters()
        memory = MemoryPool()
        a = ChainedHashTable(cpu, memory, 4, 8, tag="a")
        b = ChainedHashTable(cpu, memory, 4, 8, tag="b")
        a.insert((1,), 1)
        b.insert((1,), 1)
        a.free()
        assert b.find((1,)) == 1
        assert memory.bytes_in_use > 0
        b.free()
        assert memory.bytes_in_use == 0
