"""String-schema pipelines: the Figure 2 shapes through every spilling
operator.

Most executor tests use all-integer schemas (the paper's experimental
records); these make sure the codec-backed paths -- sort runs,
materialization, partition spooling -- survive fixed-width string
attributes, which the Figure 2 relations actually use.
"""

from repro.core.hash_division import HashDivision
from repro.core.partitioned import quotient_partitioned_division
from repro.executor.iterator import ExecContext, run_to_relation
from repro.executor.materialize import Materialize
from repro.executor.scan import RelationSource
from repro.executor.sort import ExternalSort
from repro.relalg.relation import Relation
from repro.relalg.schema import Attribute, DataType, Schema
from repro.storage.config import StorageConfig

NAMES = ("ann", "barb", "carl", "dora", "eli", "fran", "gus", "hana")
COURSES = ("algebra", "biology", "chem")

ENROLLMENT_SCHEMA = Schema(
    (
        Attribute("student", DataType.STRING, 8),
        Attribute("course", DataType.STRING, 12),
    )
)
COURSE_SCHEMA = Schema((Attribute("course", DataType.STRING, 12),))


def spilled_ctx():
    record = ENROLLMENT_SCHEMA.record_size
    return ExecContext(
        config=StorageConfig(
            page_size=8192,
            sort_run_page_size=1024,
            buffer_size=64 * 1024,
            memory_limit=256 * 1024,
            sort_buffer_size=4 * record,  # tiny: force runs
        )
    )


def enrollment(complete: int):
    rows = []
    for index, student in enumerate(NAMES):
        courses = COURSES if index < complete else COURSES[:-1]
        rows.extend((student, course) for course in courses)
    return Relation(ENROLLMENT_SCHEMA, rows, name="enrollment")


class TestStringSort:
    def test_external_sort_spills_strings(self):
        ctx = spilled_ctx()
        relation = enrollment(complete=8)
        plan = ExternalSort(
            RelationSource(ctx, relation), ["student", "course"]
        )
        result = run_to_relation(plan)
        assert result.rows == sorted(relation.rows)
        assert ctx.io_stats.counters("runs").writes >= 0  # ran through codec

    def test_distinct_on_strings(self):
        ctx = spilled_ctx()
        relation = Relation(
            ENROLLMENT_SCHEMA,
            [("ann", "algebra")] * 5 + [("barb", "biology")] * 3,
        )
        plan = ExternalSort(
            RelationSource(ctx, relation), ["student", "course"], distinct=True
        )
        assert run_to_relation(plan).rows == [
            ("ann", "algebra"),
            ("barb", "biology"),
        ]


class TestStringMaterializeAndPartition:
    def test_materialize_roundtrips_strings(self, ctx):
        relation = enrollment(complete=4)
        result = run_to_relation(Materialize(RelationSource(ctx, relation)))
        assert result.bag_equal(relation)

    def test_partitioned_division_with_string_keys(self, ctx):
        dividend = enrollment(complete=3)
        divisor = Relation(COURSE_SCHEMA, [(c,) for c in COURSES])
        result = quotient_partitioned_division(
            RelationSource(ctx, dividend), RelationSource(ctx, divisor), 3
        )
        assert sorted(result.rows) == sorted((n,) for n in NAMES[:3])

    def test_hash_division_with_string_keys(self, ctx):
        dividend = enrollment(complete=5)
        divisor = Relation(COURSE_SCHEMA, [(c,) for c in COURSES])
        plan = HashDivision(
            RelationSource(ctx, dividend), RelationSource(ctx, divisor)
        )
        result = run_to_relation(plan)
        assert sorted(result.rows) == sorted((n,) for n in NAMES[:5])
