"""Tests for file-backed execution contexts ("a UNIX file or main
memory", Section 5.1)."""

import os

from repro.core.hash_division import HashDivision
from repro.executor.iterator import ExecContext, run_to_relation
from repro.executor.scan import StoredRelationScan
from repro.executor.sort import ExternalSort
from repro.executor.scan import RelationSource
from repro.relalg import algebra
from repro.relalg.relation import Relation
from repro.storage.catalog import Catalog
from repro.storage.config import StorageConfig


class TestFileBackedContext:
    def test_devices_create_backing_files(self, tmp_path):
        ctx = ExecContext(storage_dir=str(tmp_path))
        for device in ("data", "temp", "runs"):
            assert os.path.exists(tmp_path / f"{device}.disk")
        ctx.close()

    def test_division_runs_on_files(self, tmp_path):
        ctx = ExecContext(storage_dir=str(tmp_path))
        catalog = Catalog(ctx.pool, ctx.data_disk)
        dividend = Relation.of_ints(
            ("q", "d"), [(q, d) for q in range(30) for d in range(6)], name="R"
        )
        divisor = Relation.of_ints(("d",), [(d,) for d in range(6)], name="S")
        stored_r = catalog.store(dividend, cold=True)
        stored_s = catalog.store(divisor, cold=True)
        plan = HashDivision(
            StoredRelationScan(ctx, stored_r), StoredRelationScan(ctx, stored_s)
        )
        result = run_to_relation(plan)
        expected = algebra.divide_set_semantics(dividend, divisor)
        assert result.set_equal(expected)
        assert ctx.io_stats.counters("data").reads > 0
        ctx.close()

    def test_sort_spills_to_the_runs_file(self, tmp_path):
        config = StorageConfig(
            page_size=8192,
            sort_run_page_size=1024,
            buffer_size=8192,
            memory_limit=2 * 8192,
            sort_buffer_size=32 * 16,
        )
        ctx = ExecContext(config=config, storage_dir=str(tmp_path))
        rows = [(i * 31 % 503, i) for i in range(1500)]
        plan = ExternalSort(
            RelationSource(ctx, Relation.of_ints(("k", "v"), rows)), ["k", "v"]
        )
        assert run_to_relation(plan).rows == sorted(rows)
        assert (tmp_path / "runs.disk").stat().st_size > 0
        ctx.close()

    def test_meters_identical_to_memory_backed(self, tmp_path):
        """Both device flavours charge the same model costs."""
        dividend = Relation.of_ints(
            ("q", "d"), [(q, d) for q in range(50) for d in range(10)], name="R"
        )
        divisor = Relation.of_ints(("d",), [(d,) for d in range(10)], name="S")

        def run(ctx):
            catalog = Catalog(ctx.pool, ctx.data_disk)
            stored_r = catalog.store(dividend, cold=True)
            stored_s = catalog.store(divisor, cold=True)
            ctx.reset_meters()
            plan = HashDivision(
                StoredRelationScan(ctx, stored_r),
                StoredRelationScan(ctx, stored_s),
            )
            run_to_relation(plan)
            return ctx.io_cost_ms(), ctx.cpu.snapshot()

        memory_io, memory_cpu = run(ExecContext())
        file_ctx = ExecContext(storage_dir=str(tmp_path))
        file_io, file_cpu = run(file_ctx)
        file_ctx.close()
        assert memory_io == file_io
        assert memory_cpu == file_cpu
