"""Tests for hash join and hash semi-join."""

from repro.errors import HashTableOverflowError
from repro.executor.hash_join import HashJoin, HashSemiJoin
from repro.executor.iterator import ExecContext, run_to_relation
from repro.executor.scan import RelationSource
from repro.relalg.relation import Relation

import pytest


def source(ctx, names, rows):
    return RelationSource(ctx, Relation.of_ints(names, rows))


class TestHashSemiJoin:
    def test_keeps_matching_probe_rows(self, ctx):
        probe = source(ctx, ("k", "a"), [(1, 10), (2, 20), (3, 30)])
        build = source(ctx, ("k",), [(1,), (3,)])
        result = run_to_relation(HashSemiJoin(probe, build, ["k"]))
        assert sorted(result.rows) == [(1, 10), (3, 30)]

    def test_probe_duplicates_preserved(self, ctx):
        probe = source(ctx, ("k", "a"), [(1, 10), (1, 10)])
        build = source(ctx, ("k",), [(1,)])
        assert len(run_to_relation(HashSemiJoin(probe, build, ["k"]))) == 2

    def test_build_duplicates_collapsed(self, ctx):
        probe = source(ctx, ("k", "a"), [(1, 10)])
        build = source(ctx, ("k",), [(1,), (1,), (1,)])
        result = run_to_relation(HashSemiJoin(probe, build, ["k"]))
        assert result.rows == [(1, 10)]

    def test_output_order_is_probe_order(self, ctx):
        probe = source(ctx, ("k", "a"), [(3, 1), (1, 2), (2, 3)])
        build = source(ctx, ("k",), [(1,), (2,), (3,)])
        result = run_to_relation(HashSemiJoin(probe, build, ["k"]))
        assert result.rows == [(3, 1), (1, 2), (2, 3)]

    def test_build_table_freed_on_close(self, ctx):
        probe = source(ctx, ("k", "a"), [(1, 10)])
        build = source(ctx, ("k",), [(1,)])
        run_to_relation(HashSemiJoin(probe, build, ["k"]))
        assert ctx.memory.bytes_in_use == 0

    def test_memory_budget_enforced(self):
        ctx = ExecContext(memory_budget=512)
        probe = source(ctx, ("k", "a"), [(i, i) for i in range(10)])
        build = source(ctx, ("k",), [(i,) for i in range(100)])
        plan = HashSemiJoin(probe, build, ["k"])
        with pytest.raises(HashTableOverflowError):
            run_to_relation(plan)


class TestHashJoin:
    def test_basic_join(self, ctx):
        probe = source(ctx, ("k", "a"), [(1, 10), (2, 20)])
        build = source(ctx, ("k", "b"), [(1, 100), (1, 101), (3, 300)])
        result = run_to_relation(HashJoin(probe, build, ["k"]))
        assert sorted(result.rows) == [(1, 10, 100), (1, 10, 101)]
        assert result.schema.names == ("k", "a", "b")

    def test_join_on_all_build_attributes(self, ctx):
        probe = source(ctx, ("k", "a"), [(1, 10), (2, 20)])
        build = source(ctx, ("k",), [(1,)])
        result = run_to_relation(HashJoin(probe, build, ["k"]))
        assert result.rows == [(1, 10)]
        assert result.schema.names == ("k", "a")

    def test_m_to_n_multiplicity(self, ctx):
        probe = source(ctx, ("k", "a"), [(1, 0), (1, 1)])
        build = source(ctx, ("k", "b"), [(1, 0), (1, 1), (1, 2)])
        assert len(run_to_relation(HashJoin(probe, build, ["k"]))) == 6

    def test_agrees_with_merge_join(self, ctx):
        import random

        rng = random.Random(5)
        probe_rows = [(rng.randrange(8), i) for i in range(50)]
        build_rows = [(rng.randrange(8), i + 100) for i in range(30)]
        hash_result = run_to_relation(
            HashJoin(
                source(ctx, ("k", "a"), probe_rows),
                source(ctx, ("k", "b"), build_rows),
                ["k"],
            )
        )
        from repro.executor.merge_join import MergeJoin

        merge_result = run_to_relation(
            MergeJoin(
                source(ctx, ("k", "a"), sorted(probe_rows)),
                source(ctx, ("k", "b"), sorted(build_rows)),
                ["k"],
            )
        )
        assert hash_result.as_bag() == merge_result.as_bag()
