"""Tests for the aggregation operators."""

from repro.executor.aggregate import HashGroupCount, ScalarCount, SortedGroupCount
from repro.executor.iterator import run_to_relation
from repro.executor.scan import RelationSource
from repro.relalg.relation import Relation


def source(ctx, names, rows):
    return RelationSource(ctx, Relation.of_ints(names, rows))


class TestScalarCount:
    def test_counts_all_rows(self, ctx):
        plan = ScalarCount(source(ctx, ("a",), [(1,), (2,), (2,)]))
        assert run_to_relation(plan).rows == [(3,)]

    def test_empty_input(self, ctx):
        plan = ScalarCount(source(ctx, ("a",), []))
        assert run_to_relation(plan).rows == [(0,)]

    def test_schema(self, ctx):
        plan = ScalarCount(source(ctx, ("a",), []))
        assert plan.schema.names == ("count",)


class TestSortedGroupCount:
    def test_counts_consecutive_groups(self, ctx):
        rows = [(1, 0), (1, 1), (2, 0), (3, 0), (3, 1), (3, 2)]
        plan = SortedGroupCount(source(ctx, ("g", "x"), rows), ["g"])
        assert run_to_relation(plan).rows == [(1, 2), (2, 1), (3, 3)]

    def test_single_group(self, ctx):
        plan = SortedGroupCount(source(ctx, ("g",), [(7,), (7,)]), ["g"])
        assert run_to_relation(plan).rows == [(7, 2)]

    def test_empty_input(self, ctx):
        plan = SortedGroupCount(source(ctx, ("g",), []), ["g"])
        assert run_to_relation(plan).rows == []

    def test_unsorted_input_recounts_groups(self, ctx):
        # Documents the sortedness requirement: an unsorted input
        # produces one row per run of equal keys, not per key.
        rows = [(1, 0), (2, 0), (1, 0)]
        plan = SortedGroupCount(source(ctx, ("g", "x"), rows), ["g"])
        assert run_to_relation(plan).rows == [(1, 1), (2, 1), (1, 1)]

    def test_charges_one_comparison_per_row_after_first(self, ctx):
        rows = [(1, 0)] * 10
        plan = SortedGroupCount(source(ctx, ("g", "x"), rows), ["g"])
        run_to_relation(plan)
        assert ctx.cpu.comparisons == 9


class TestHashGroupCount:
    def test_counts_groups_any_order(self, ctx):
        rows = [(1, 0), (2, 0), (1, 1), (3, 0), (1, 2)]
        plan = HashGroupCount(source(ctx, ("g", "x"), rows), ["g"])
        result = run_to_relation(plan)
        assert sorted(result.rows) == [(1, 3), (2, 1), (3, 1)]

    def test_table_holds_one_entry_per_group(self, ctx):
        # 10,000 input tuples but only 5 groups: memory stays tiny
        # ("it is not necessary that the aggregation input fit into
        # main memory", Section 2.2.2).
        rows = [(i % 5, i) for i in range(10_000)]
        plan = HashGroupCount(
            source(ctx, ("g", "x"), rows), ["g"], expected_groups=5
        )
        result = run_to_relation(plan)
        assert sorted(result.rows) == [(g, 2000) for g in range(5)]
        assert ctx.memory.stats.peak_bytes < 5 * 1024

    def test_expected_groups_zero_sizes_from_input(self, ctx):
        rows = [(i, 0) for i in range(100)]
        plan = HashGroupCount(source(ctx, ("g", "x"), rows), ["g"])
        assert len(run_to_relation(plan)) == 100

    def test_memory_freed_after_close(self, ctx):
        plan = HashGroupCount(source(ctx, ("g",), [(1,)]), ["g"])
        run_to_relation(plan)
        assert ctx.memory.bytes_in_use == 0

    def test_empty_input(self, ctx):
        plan = HashGroupCount(source(ctx, ("g",), []), ["g"])
        assert run_to_relation(plan).rows == []

    def test_agrees_with_sorted_group_count(self, ctx):
        import random

        rng = random.Random(9)
        rows = [(rng.randrange(10), i) for i in range(500)]
        hashed = run_to_relation(
            HashGroupCount(source(ctx, ("g", "x"), rows), ["g"])
        )
        sorted_counts = run_to_relation(
            SortedGroupCount(source(ctx, ("g", "x"), sorted(rows)), ["g"])
        )
        assert hashed.set_equal(sorted_counts)
