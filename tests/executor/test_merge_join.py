"""Tests for merge join and merge semi-join."""

import pytest

from repro.errors import ExecutionError
from repro.executor.iterator import ExecContext, run_to_relation
from repro.executor.merge_join import MergeJoin, MergeSemiJoin
from repro.executor.scan import RelationSource
from repro.relalg.relation import Relation


def sorted_source(ctx, names, rows):
    return RelationSource(ctx, Relation.of_ints(names, sorted(rows)))


class TestMergeJoin:
    def test_basic_join(self, ctx):
        outer = sorted_source(ctx, ("k", "a"), [(1, 10), (2, 20), (3, 30)])
        inner = sorted_source(ctx, ("k", "b"), [(2, 200), (3, 300), (4, 400)])
        result = run_to_relation(MergeJoin(outer, inner, ["k"]))
        assert sorted(result.rows) == [(2, 20, 200), (3, 30, 300)]
        assert result.schema.names == ("k", "a", "b")

    def test_inner_group_buffered_for_outer_duplicates(self, ctx):
        outer = sorted_source(ctx, ("k", "a"), [(1, 10), (1, 11)])
        inner = sorted_source(ctx, ("k", "b"), [(1, 100), (1, 101)])
        result = run_to_relation(MergeJoin(outer, inner, ["k"]))
        assert len(result) == 4

    def test_disjoint_inputs(self, ctx):
        outer = sorted_source(ctx, ("k", "a"), [(1, 0)])
        inner = sorted_source(ctx, ("k", "b"), [(2, 0)])
        assert run_to_relation(MergeJoin(outer, inner, ["k"])).rows == []

    def test_join_on_all_inner_attributes(self, ctx):
        outer = sorted_source(ctx, ("k", "a"), [(1, 10), (2, 20)])
        inner = sorted_source(ctx, ("k",), [(2,)])
        result = run_to_relation(MergeJoin(outer, inner, ["k"]))
        assert result.rows == [(2, 20)]
        assert result.schema.names == ("k", "a")

    def test_contexts_must_match(self, ctx):
        other = ExecContext()
        outer = sorted_source(ctx, ("k",), [])
        inner = sorted_source(other, ("k",), [])
        with pytest.raises(ExecutionError):
            MergeJoin(outer, inner, ["k"])


class TestMergeSemiJoin:
    def test_keeps_matching_outer_rows(self, ctx):
        outer = sorted_source(ctx, ("k", "a"), [(1, 10), (2, 20), (3, 30)])
        inner = sorted_source(ctx, ("k",), [(2,), (3,)])
        result = run_to_relation(MergeSemiJoin(outer, inner, ["k"]))
        assert result.rows == [(2, 20), (3, 30)]
        assert result.schema.names == ("k", "a")

    def test_outer_duplicates_preserved(self, ctx):
        outer = sorted_source(ctx, ("k", "a"), [(1, 10), (1, 10)])
        inner = sorted_source(ctx, ("k",), [(1,)])
        assert len(run_to_relation(MergeSemiJoin(outer, inner, ["k"]))) == 2

    def test_inner_duplicates_do_not_multiply_output(self, ctx):
        outer = sorted_source(ctx, ("k", "a"), [(1, 10)])
        inner = sorted_source(ctx, ("k",), [(1,), (1,)])
        assert len(run_to_relation(MergeSemiJoin(outer, inner, ["k"]))) == 1

    def test_exhausted_inner_ends_output(self, ctx):
        outer = sorted_source(ctx, ("k", "a"), [(1, 10), (5, 50)])
        inner = sorted_source(ctx, ("k",), [(1,)])
        result = run_to_relation(MergeSemiJoin(outer, inner, ["k"]))
        assert result.rows == [(1, 10)]

    def test_paper_semi_join_shape(self, ctx, transcript, courses):
        """The paper's with-join preprocessing: keep only transcript
        tuples whose course appears in the (restricted) divisor."""
        outer = RelationSource(ctx, transcript.sorted_by(("course_no",)))
        inner = RelationSource(ctx, courses.sorted_by(("course_no",)))
        result = run_to_relation(MergeSemiJoin(outer, inner, ["course_no"]))
        assert all(row[1] in {10, 11} for row in result.rows)
        assert len(result) == 6  # the two course-99 tuples are gone
