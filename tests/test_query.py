"""Tests for the 'contains' query construct (§5.2's recommendation)."""

import pytest

from repro.query import Query
from repro.relalg import algebra
from repro.relalg.predicates import AttributeContains, ComparisonPredicate
from repro.relalg.relation import Relation
from repro.workloads.university import make_university


@pytest.fixture
def university():
    return make_university(
        students=40, courses=10, database_courses=3, completionists=4,
        enrollment_probability=0.5, seed=3,
    )


class TestPipeline:
    def test_where_project_run(self, university):
        database_courses = (
            Query(university.courses)
            .where(AttributeContains("title", "database"))
            .project("course_no")
            .run()
        )
        assert len(database_courses) == 3
        assert database_courses.schema.names == ("course_no",)

    def test_project_is_bag_semantics(self):
        relation = Relation.of_ints(("a", "b"), [(1, 1), (1, 2)])
        projected = Query(relation).project("a").run()
        assert projected.rows == [(1,), (1,)]

    def test_distinct(self):
        relation = Relation.of_ints(("a",), [(1,), (1,), (2,)])
        assert Query(relation).distinct().run().rows == [(1,), (2,)]

    def test_queries_are_immutable(self):
        relation = Relation.of_ints(("a",), [(1,), (2,)])
        base = Query(relation)
        restricted = base.where(ComparisonPredicate("a", ">", 1))
        assert base.run().rows == [(1,), (2,)]
        assert restricted.run().rows == [(2,)]

    def test_describe(self, university):
        text = (
            Query(university.courses)
            .where(AttributeContains("title", "database"))
            .project("course_no")
            .describe()
        )
        assert "Courses" in text and "where" in text and "project" in text


class TestContains:
    def test_first_example_query(self, university):
        """Students who took ALL courses -- the unrestricted divisor."""
        query = (
            Query(university.transcript)
            .project("student_id", "course_no")
            .contains(Query(university.courses).project("course_no"))
        )
        expected = algebra.divide_set_semantics(
            university.enrollment_dividend(), university.all_courses_divisor()
        )
        assert query.run().set_equal(expected)

    def test_second_example_query(self, university):
        """Students who took all DATABASE courses -- restricted divisor."""
        query = (
            Query(university.transcript)
            .project("student_id", "course_no")
            .contains(
                Query(university.courses)
                .where(AttributeContains("title", "database"))
                .project("course_no")
            )
        )
        expected = algebra.divide_set_semantics(
            university.enrollment_dividend(),
            university.database_courses_divisor(),
        )
        assert query.run().set_equal(expected)

    def test_planner_respects_restriction(self, university):
        unrestricted = (
            Query(university.transcript)
            .project("student_id", "course_no")
            .contains(Query(university.courses).project("course_no"))
        )
        restricted = (
            Query(university.transcript)
            .project("student_id", "course_no")
            .contains(
                Query(university.courses)
                .where(AttributeContains("title", "database"))
                .project("course_no")
            )
        )
        # A restricted divisor must never plan a no-join counting
        # strategy (Section 2.2's correctness requirement).
        assert "no join" not in restricted.plan().strategy
        assert restricted.plan().estimates.divisor_restricted
        assert not unrestricted.plan().estimates.divisor_restricted

    def test_duplicates_detected_in_plan(self):
        dividend = Relation.of_ints(("q", "d"), [(1, 5), (1, 5), (1, 6)])
        divisor = Relation.of_ints(("d",), [(5,), (6,)])
        query = Query(dividend).contains(Query(divisor))
        plan = query.plan()
        assert plan.estimates.may_contain_duplicates
        assert query.run().rows == [(1,)]

    def test_explain_names_the_strategy(self, university):
        query = (
            Query(university.transcript)
            .project("student_id", "course_no")
            .contains(
                Query(university.courses)
                .where(AttributeContains("title", "database"))
                .project("course_no")
            )
        )
        text = query.explain()
        assert "relational division via" in text
        assert "(restricted)" in text
        assert "quotient: student_id" in text

    def test_ctx_metering(self, university, ctx):
        query = (
            Query(university.transcript)
            .project("student_id", "course_no")
            .contains(Query(university.courses).project("course_no"))
        )
        query.run(ctx=ctx)
        assert ctx.cpu.comparisons + ctx.cpu.hashes > 0


class TestProfiling:
    def test_pipeline_profile_tree(self, university):
        from repro.obs.span import FakeClock
        from repro.query import ProfiledResult

        query = (
            Query(university.transcript)
            .project("student_id", "course_no")
            .distinct()
        )
        result = query.run(profile=True, clock=FakeClock(auto_tick=0.001))
        assert isinstance(result, ProfiledResult)
        assert result.relation.rows == query.run().rows
        # The compiled pipeline is a physical iterator tree, so the
        # profile names the streaming operators, not the logical steps.
        ops = [stats.op_class for stats in result.profile.all_operators()]
        assert ops == ["HashDistinct", "Project", "RelationSource"]
        assert result.profile.wall_s > 0

    def test_contains_explain_analyze_tree(self, university):
        query = (
            Query(university.transcript)
            .project("student_id", "course_no")
            .contains(
                Query(university.courses)
                .where(AttributeContains("title", "database"))
                .project("course_no")
            )
        )
        profile = query.explain_analyze()
        text = profile.render()
        assert "EXPLAIN ANALYZE" in text
        # The restricted divisor forces hash-division; the quotient must
        # still be the completionists, tracing or not.
        assert "HashDivision" in text
        assert query.last_profile is profile

    def test_profiled_run_matches_plain_run(self, university, ctx):
        from repro.query import ProfiledResult

        query = (
            Query(university.transcript)
            .project("student_id", "course_no")
            .contains(Query(university.courses).project("course_no"))
        )
        plain = query.run()
        profiled = query.run(profile=True)
        assert isinstance(profiled, ProfiledResult)
        assert sorted(plain.rows) == sorted(profiled.relation.rows)
        # The borrowed context's tracer is restored afterwards.
        query.run(ctx=ctx, profile=True)
        assert ctx.tracer.enabled is False
