"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import ExecContext, Relation
from repro.storage.catalog import Catalog


@pytest.fixture
def ctx() -> ExecContext:
    """A fresh, unbudgeted execution context."""
    return ExecContext()


@pytest.fixture
def catalog(ctx: ExecContext) -> Catalog:
    """A catalog on the context's data disk."""
    return Catalog(ctx.pool, ctx.data_disk)


@pytest.fixture
def transcript() -> Relation:
    """The running example's dividend: (student_id, course_no).

    Students: 1 took all of {10, 11}; 2 took 11 and an unlisted 99;
    3 took 10 only; 4 took both plus 99.
    """
    return Relation.of_ints(
        ("student_id", "course_no"),
        [(1, 10), (1, 11), (2, 11), (2, 99), (3, 10), (4, 10), (4, 11), (4, 99)],
        name="transcript",
    )


@pytest.fixture
def courses() -> Relation:
    """The running example's divisor: courses {10, 11}."""
    return Relation.of_ints(("course_no",), [(10,), (11,)], name="courses")


@pytest.fixture
def expected_quotient() -> set:
    """Who took all courses: students 1 and 4."""
    return {(1,), (4,)}
