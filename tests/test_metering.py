"""Tests for the metering primitives."""

import pytest

from repro.metering import CpuCounters, MeterReading


class TestMeterReading:
    def test_total(self):
        reading = MeterReading(cpu_ms=10.0, io_ms=5.0)
        assert reading.total_ms == 15.0

    def test_addition_merges_details(self):
        a = MeterReading(1.0, 2.0, {"sort": 1.0})
        b = MeterReading(3.0, 4.0, {"sort": 2.0, "scan": 5.0})
        merged = a + b
        assert merged.cpu_ms == 4.0
        assert merged.io_ms == 6.0
        assert merged.detail == {"sort": 3.0, "scan": 5.0}

    def test_defaults(self):
        assert MeterReading().total_ms == 0.0


class TestCpuCountersReset:
    def test_reset_zeroes_everything(self):
        counters = CpuCounters(comparisons=1, hashes=2, moves=3.0, bit_ops=4)
        counters.reset()
        assert counters == CpuCounters()

    def test_delta_roundtrip(self):
        counters = CpuCounters(comparisons=10)
        snap = counters.snapshot()
        counters.comparisons += 7
        counters.bit_ops += 3
        delta = counters.delta_since(snap)
        assert delta == CpuCounters(comparisons=7, bit_ops=3)


class TestErrorsHierarchy:
    def test_every_error_is_a_repro_error(self):
        import inspect

        from repro import errors

        classes = [
            obj
            for _name, obj in inspect.getmembers(errors, inspect.isclass)
            if issubclass(obj, Exception)
        ]
        assert len(classes) > 10
        for cls in classes:
            assert issubclass(cls, errors.ReproError), cls

    def test_overflow_is_an_execution_error(self):
        from repro.errors import ExecutionError, HashTableOverflowError

        assert issubclass(HashTableOverflowError, ExecutionError)

    def test_catching_the_base_class(self):
        from repro import Relation, divide
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            divide(
                Relation.of_ints(("a",), []),
                Relation.of_ints(("b",), []),
            )
