"""Catalog write-counters: the cache-invalidation contract.

The serve layer's correctness proof obligation is
``same versions => same stored bytes``.  These tests pin the half of
it that lives in the catalog: every catalog-mediated write bumps the
counter -- including failed/partial and no-op writes, where a spurious
bump costs one cache miss but a missed bump would serve stale rows.
"""

import pytest

from repro.errors import StorageError


@pytest.fixture
def stored(catalog, transcript):
    return catalog.store(transcript, "transcript")


class TestVersionCounter:
    def test_store_counts_the_bulk_load(self, catalog, stored):
        assert catalog.version("transcript") == 1

    def test_insert_bumps(self, catalog, stored):
        new_version = catalog.insert_rows("transcript", [(9, 10)])
        assert new_version == 2
        assert catalog.version("transcript") == 2

    def test_delete_bumps(self, catalog, stored):
        deleted, version = catalog.delete_rows(
            "transcript", keep=lambda row: row[1] != 99
        )
        assert deleted == 2
        assert version == 2

    def test_noop_delete_still_bumps(self, catalog, stored):
        # The *write happened*; the invariant must not depend on
        # predicate reasoning about whether it changed anything.
        deleted, version = catalog.delete_rows(
            "transcript", keep=lambda row: True
        )
        assert deleted == 0
        assert version == 2

    def test_empty_insert_still_bumps(self, catalog, stored):
        assert catalog.insert_rows("transcript", []) == 2

    def test_failed_insert_still_bumps(self, catalog, stored, monkeypatch):
        # A device fault mid-append may have applied a prefix of the
        # rows: the stored bytes may differ, so caches must die.
        def broken(records):
            raise StorageError("device fault mid-append")

        monkeypatch.setattr(stored.file, "append_many", broken)
        with pytest.raises(StorageError):
            catalog.insert_rows("transcript", [(9, 10)])
        assert catalog.version("transcript") == 2


class TestVersionsOf:
    def test_sorted_and_deduplicated(self, catalog, stored, courses):
        catalog.store(courses, "courses")
        snapshot = catalog.versions_of(["transcript", "courses", "transcript"])
        assert snapshot == (("courses", 1), ("transcript", 1))

    def test_snapshot_reflects_later_writes(self, catalog, stored, courses):
        catalog.store(courses, "courses")
        before = catalog.versions_of(["transcript", "courses"])
        catalog.insert_rows("transcript", [(9, 10)])
        after = catalog.versions_of(["transcript", "courses"])
        assert before != after
        assert dict(after)["courses"] == dict(before)["courses"]
