"""Tests for the main-memory manager."""

import pytest

from repro.errors import MemoryPoolError
from repro.storage.memory import MemoryPool


class TestAllocation:
    def test_allocate_and_free(self):
        pool = MemoryPool(budget=100)
        handle = pool.allocate(40, tag="t")
        assert pool.bytes_in_use == 40
        assert pool.bytes_free == 60
        pool.free(handle)
        assert pool.bytes_in_use == 0

    def test_budget_enforced(self):
        pool = MemoryPool(budget=100)
        pool.allocate(80)
        with pytest.raises(MemoryPoolError):
            pool.allocate(21)

    def test_exact_fit_allowed(self):
        pool = MemoryPool(budget=100)
        pool.allocate(100)
        assert pool.bytes_free == 0

    def test_unbounded_pool(self):
        pool = MemoryPool()
        pool.allocate(10**9)
        assert pool.bytes_free is None
        assert pool.can_allocate(10**12)

    def test_negative_size_rejected(self):
        with pytest.raises(MemoryPoolError):
            MemoryPool().allocate(-1)

    def test_zero_budget_rejected(self):
        with pytest.raises(MemoryPoolError):
            MemoryPool(budget=0)

    def test_double_free_rejected(self):
        pool = MemoryPool()
        handle = pool.allocate(10)
        pool.free(handle)
        with pytest.raises(MemoryPoolError):
            pool.free(handle)


class TestTaggedRelease:
    def test_free_all_by_tag(self):
        pool = MemoryPool()
        pool.allocate(10, tag="divisor")
        pool.allocate(20, tag="quotient")
        pool.allocate(30, tag="divisor")
        released = pool.free_all(tag="divisor")
        assert released == 40
        assert pool.bytes_in_use == 20

    def test_free_all_everything(self):
        pool = MemoryPool()
        pool.allocate(10)
        pool.allocate(20)
        assert pool.free_all() == 30
        assert pool.bytes_in_use == 0


class TestStats:
    def test_peak_tracking(self):
        pool = MemoryPool()
        a = pool.allocate(100)
        pool.allocate(50)
        pool.free(a)
        pool.allocate(10)
        assert pool.stats.peak_bytes == 150

    def test_by_tag_accumulates(self):
        pool = MemoryPool()
        pool.allocate(5, tag="x")
        pool.allocate(7, tag="x")
        assert pool.stats.by_tag["x"] == 12
        assert pool.stats.total_allocations == 2

    def test_can_allocate_reflects_budget(self):
        pool = MemoryPool(budget=50)
        assert pool.can_allocate(50)
        pool.allocate(1)
        assert not pool.can_allocate(50)
