"""Tests for the B+-tree."""

import random

import pytest

from repro.errors import BTreeError
from repro.metering import CpuCounters
from repro.storage.btree import BPlusTree


class TestBasics:
    def test_empty_tree(self):
        tree = BPlusTree(order=4)
        assert len(tree) == 0
        assert tree.search((1,)) is None
        assert list(tree.items()) == []
        assert tree.height == 1

    def test_insert_and_search(self):
        tree = BPlusTree(order=4)
        tree.insert((5,), "five")
        tree.insert((3,), "three")
        assert tree.search((5,)) == "five"
        assert tree.search((3,)) == "three"
        assert tree.search((4,)) is None
        assert (5,) in tree and (4,) not in tree

    def test_duplicate_key_rejected(self):
        tree = BPlusTree(order=4)
        tree.insert((1,), "a")
        with pytest.raises(BTreeError):
            tree.insert((1,), "b")

    def test_insert_multi_allows_duplicates(self):
        tree = BPlusTree(order=4)
        tree.insert_multi((1,), "rid-a")
        tree.insert_multi((1,), "rid-b")
        values = [value for _, value in tree.range((1,), (1, "￿"))]
        assert sorted(values) == ["rid-a", "rid-b"]

    def test_order_must_be_at_least_three(self):
        with pytest.raises(BTreeError):
            BPlusTree(order=2)


class TestOrderingAndRange:
    def test_items_sorted(self):
        tree = BPlusTree(order=4)
        keys = list(range(50))
        random.Random(1).shuffle(keys)
        for key in keys:
            tree.insert((key,), key)
        assert [key for key, _ in tree.items()] == [(i,) for i in range(50)]

    def test_range_with_bounds(self):
        tree = BPlusTree(order=4)
        for key in range(20):
            tree.insert((key,), key)
        assert [v for _, v in tree.range((5,), (8,))] == [5, 6, 7, 8]

    def test_range_open_bounds(self):
        tree = BPlusTree(order=4)
        for key in range(10):
            tree.insert((key,), key)
        assert [v for _, v in tree.range(low=(7,))] == [7, 8, 9]
        assert [v for _, v in tree.range(high=(2,))] == [0, 1, 2]

    def test_range_between_keys(self):
        tree = BPlusTree(order=4)
        for key in (0, 10, 20):
            tree.insert((key,), key)
        assert [v for _, v in tree.range((5,), (15,))] == [10]


class TestSplitsAndHeight:
    def test_height_grows_with_size(self):
        tree = BPlusTree(order=4)
        for key in range(100):
            tree.insert((key,), key)
        assert tree.height >= 3
        assert len(tree) == 100

    def test_descending_insertions(self):
        tree = BPlusTree(order=4)
        for key in reversed(range(64)):
            tree.insert((key,), key)
        assert [key for key, _ in tree.items()] == [(i,) for i in range(64)]


class TestDelete:
    def test_delete_returns_value(self):
        tree = BPlusTree(order=4)
        tree.insert((1,), "one")
        assert tree.delete((1,)) == "one"
        assert len(tree) == 0
        assert tree.search((1,)) is None

    def test_delete_missing_rejected(self):
        tree = BPlusTree(order=4)
        with pytest.raises(BTreeError):
            tree.delete((9,))

    def test_delete_everything_in_random_order(self):
        tree = BPlusTree(order=4)
        keys = list(range(200))
        rng = random.Random(2)
        rng.shuffle(keys)
        for key in keys:
            tree.insert((key,), key)
        rng.shuffle(keys)
        for key in keys:
            assert tree.delete((key,)) == key
        assert len(tree) == 0
        assert list(tree.items()) == []
        assert tree.height == 1

    def test_interleaved_insert_delete(self):
        tree = BPlusTree(order=4)
        model: dict[tuple, int] = {}
        rng = random.Random(3)
        for step in range(2000):
            key = (rng.randrange(100),)
            if key in model and rng.random() < 0.5:
                assert tree.delete(key) == model.pop(key)
            elif key not in model:
                tree.insert(key, step)
                model[key] = step
        assert len(tree) == len(model)
        assert dict(tree.items()) == model
        assert [k for k, _ in tree.items()] == sorted(model)


class TestBulkLoad:
    def test_bulk_load_roundtrip(self):
        items = [((i,), i * 10) for i in range(1000)]
        tree = BPlusTree.bulk_load(items, order=8)
        assert len(tree) == 1000
        assert tree.search((500,)) == 5000
        assert [key for key, _ in tree.items()] == [key for key, _ in items]

    def test_bulk_load_empty(self):
        tree = BPlusTree.bulk_load([], order=8)
        assert len(tree) == 0

    def test_bulk_load_single(self):
        tree = BPlusTree.bulk_load([((1,), "x")], order=8)
        assert tree.search((1,)) == "x"

    def test_bulk_load_rejects_unsorted(self):
        with pytest.raises(BTreeError):
            BPlusTree.bulk_load([((2,), 0), ((1,), 0)], order=8)

    def test_bulk_load_rejects_duplicates(self):
        with pytest.raises(BTreeError):
            BPlusTree.bulk_load([((1,), 0), ((1,), 0)], order=8)

    def test_bulk_loaded_tree_is_mutable(self):
        tree = BPlusTree.bulk_load([((i,), i) for i in range(100)], order=8)
        tree.insert((1000,), "new")
        tree.delete((50,))
        assert tree.search((1000,)) == "new"
        assert tree.search((50,)) is None
        assert len(tree) == 100


class TestMetering:
    def test_comparisons_charged(self):
        cpu = CpuCounters()
        tree = BPlusTree(order=4, cpu=cpu)
        for key in range(32):
            tree.insert((key,), key)
        assert cpu.comparisons > 0
        before = cpu.comparisons
        tree.search((16,))
        assert cpu.comparisons > before
