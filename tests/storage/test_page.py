"""Tests for slotted pages."""

import pytest

from repro.errors import PageError, RecordNotFoundError
from repro.storage.page import HEADER_SIZE, SLOT_SIZE, SlottedPage


@pytest.fixture
def page():
    return SlottedPage.format(bytearray(256))


class TestFormatAndCapacity:
    def test_fresh_page_is_empty(self, page):
        assert page.slot_count == 0
        assert page.record_count == 0

    def test_free_space_accounts_for_slot_entry(self, page):
        initial = page.free_space
        page.insert(b"x" * 10)
        assert page.free_space == initial - 10 - SLOT_SIZE

    def test_capacity_for(self):
        capacity = SlottedPage.capacity_for(256, 16)
        assert capacity == (256 - HEADER_SIZE) // (16 + SLOT_SIZE)
        # And the page really holds that many.
        page = SlottedPage.format(bytearray(256))
        for _ in range(capacity):
            page.insert(b"y" * 16)
        assert not page.fits(16)

    def test_too_small_page_rejected(self):
        with pytest.raises(PageError):
            SlottedPage(bytearray(2))


class TestInsertGet:
    def test_roundtrip(self, page):
        slot = page.insert(b"hello")
        assert bytes(page.get(slot)) == b"hello"

    def test_slots_are_assigned_in_order(self, page):
        assert page.insert(b"a") == 0
        assert page.insert(b"bb") == 1
        assert bytes(page.get(1)) == b"bb"

    def test_variable_length_records(self, page):
        slots = [page.insert(bytes([i]) * (i + 1)) for i in range(5)]
        for i, slot in enumerate(slots):
            assert bytes(page.get(slot)) == bytes([i]) * (i + 1)

    def test_overfull_insert_rejected(self, page):
        with pytest.raises(PageError):
            page.insert(b"z" * 300)

    def test_get_out_of_range(self, page):
        with pytest.raises(RecordNotFoundError):
            page.get(0)

    def test_get_returns_view_into_buffer(self):
        buffer = bytearray(128)
        page = SlottedPage.format(buffer)
        slot = page.insert(b"abc")
        view = page.get(slot)
        assert isinstance(view, memoryview)
        # Mutating through the view mutates the page (zero copy).
        view[0] = ord("X")
        assert bytes(page.get(slot)) == b"Xbc"


class TestDelete:
    def test_delete_tombstones(self, page):
        slot = page.insert(b"dead")
        page.delete(slot)
        assert page.record_count == 0
        assert page.slot_count == 1
        with pytest.raises(RecordNotFoundError):
            page.get(slot)

    def test_double_delete_rejected(self, page):
        slot = page.insert(b"x")
        page.delete(slot)
        with pytest.raises(RecordNotFoundError):
            page.delete(slot)

    def test_other_records_survive_delete(self, page):
        keep = page.insert(b"keep")
        kill = page.insert(b"kill")
        page.delete(kill)
        assert bytes(page.get(keep)) == b"keep"


class TestScan:
    def test_records_iterates_live_records_in_slot_order(self, page):
        page.insert(b"a")
        dead = page.insert(b"b")
        page.insert(b"c")
        page.delete(dead)
        assert [(slot, bytes(record)) for slot, record in page.records()] == [
            (0, b"a"),
            (2, b"c"),
        ]

    def test_reinterpreting_existing_bytes(self):
        buffer = bytearray(128)
        original = SlottedPage.format(buffer)
        original.insert(b"persisted")
        # A second view over the same bytes sees the same records.
        reopened = SlottedPage(buffer)
        assert [bytes(r) for _, r in reopened.records()] == [b"persisted"]
