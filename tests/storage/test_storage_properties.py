"""Property-based and stateful tests for the storage layer.

The buffer pool and heap file are where subtle bugs hide (write-back
ordering, eviction under pressure, tombstones).  These tests drive
them with random operation sequences against plain-Python models.
"""

from hypothesis import given, settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.relalg.schema import Attribute, DataType, Schema
from repro.storage.buffer import BufferPool
from repro.storage.config import StorageConfig
from repro.storage.disk import SimulatedDisk
from repro.storage.heapfile import HeapFile
from repro.storage.stats import IoStatistics


# -- record codec roundtrip ------------------------------------------------

int_values = st.integers(min_value=-(2**62), max_value=2**62)
float_values = st.floats(allow_nan=False, allow_infinity=False, width=64)
short_text = st.text(
    alphabet=st.characters(codec="ascii", categories=("L", "N")), max_size=8
)


@given(st.lists(int_values, min_size=1, max_size=6))
@settings(max_examples=200)
def test_int_codec_roundtrip(values):
    schema = Schema.of_ints(*[f"c{i}" for i in range(len(values))])
    codec = schema.codec()
    encoded = codec.encode(tuple(values))
    assert len(encoded) == schema.record_size
    assert codec.decode(encoded) == tuple(values)


@given(short_text, int_values, float_values)
@settings(max_examples=200)
def test_mixed_codec_roundtrip(text, integer, floating):
    schema = Schema(
        (
            Attribute("t", DataType.STRING, 16),
            Attribute("i"),
            Attribute("f", DataType.FLOAT64),
        )
    )
    codec = schema.codec()
    decoded = codec.decode(codec.encode((text, integer, floating)))
    assert decoded == (text, integer, floating)


# -- heap file vs dict model ---------------------------------------------------


class HeapFileMachine(RuleBasedStateMachine):
    """Random append/delete/get/scan against a dict model, with a
    buffer small enough to force eviction and re-reads."""

    def __init__(self):
        super().__init__()
        config = StorageConfig(
            page_size=128,
            sort_run_page_size=128,
            buffer_size=2 * 128,
            memory_limit=4 * 128,
            sort_buffer_size=128,
        )
        self.pool = BufferPool(config)
        self.disk = self.pool.register_device(
            SimulatedDisk("d", 128, IoStatistics())
        )
        self.file = HeapFile(self.pool, self.disk, extent_pages=2)
        self.model: dict = {}
        self.counter = 0

    @rule()
    def append(self):
        payload = bytes([self.counter % 251]) * (8 + self.counter % 24)
        rid = self.file.append(payload)
        assert rid not in self.model
        self.model[rid] = payload
        self.counter += 1

    @rule(data=st.data())
    @precondition(lambda self: self.model)
    def get_existing(self, data):
        rid = data.draw(st.sampled_from(sorted(self.model)))
        assert self.file.get(rid) == self.model[rid]

    @rule(data=st.data())
    @precondition(lambda self: self.model)
    def delete_existing(self, data):
        rid = data.draw(st.sampled_from(sorted(self.model)))
        self.file.delete(rid)
        del self.model[rid]

    @rule()
    def flush(self):
        self.pool.flush_device("d")

    @rule()
    def drop_cache(self):
        self.pool.drop_device_pages("d")

    @invariant()
    def scan_matches_model(self):
        scanned = dict(self.file.scan())
        assert scanned == self.model
        assert self.file.record_count == len(self.model)


TestHeapFileStateful = HeapFileMachine.TestCase
TestHeapFileStateful.settings = settings(
    max_examples=30, stateful_step_count=30, deadline=None
)


# -- buffer pool vs byte-array model ---------------------------------------------


class BufferPoolMachine(RuleBasedStateMachine):
    """Random fix/write/unfix/flush against a byte model.

    The invariant: fixing any previously written page always observes
    the bytes last written to it, regardless of eviction order.
    """

    PAGES = 6

    def __init__(self):
        super().__init__()
        config = StorageConfig(
            page_size=64,
            sort_run_page_size=64,
            buffer_size=2 * 64,
            memory_limit=4 * 64,
            sort_buffer_size=64,
        )
        self.pool = BufferPool(config)
        self.disk = self.pool.register_device(
            SimulatedDisk("d", 64, IoStatistics())
        )
        self.pages = [self.disk.allocate_page() for _ in range(self.PAGES)]
        self.model = {page: bytes(64) for page in self.pages}
        self.fixed: set[int] = set()

    @rule(page_index=st.integers(min_value=0, max_value=PAGES - 1),
          fill=st.integers(min_value=0, max_value=255))
    def write_page(self, page_index, fill):
        page = self.pages[page_index]
        if page in self.fixed:
            return
        view = self.pool.fix("d", page)
        view[:] = bytes([fill]) * 64
        self.pool.unfix("d", page, dirty=True)
        self.model[page] = bytes([fill]) * 64

    @rule(page_index=st.integers(min_value=0, max_value=PAGES - 1))
    def read_page(self, page_index):
        page = self.pages[page_index]
        if page in self.fixed:
            return
        view = self.pool.fix("d", page)
        assert bytes(view) == self.model[page]
        self.pool.unfix("d", page)

    @rule(page_index=st.integers(min_value=0, max_value=PAGES - 1))
    def pin(self, page_index):
        page = self.pages[page_index]
        if page in self.fixed or len(self.fixed) >= 3:
            return
        self.pool.fix("d", page)
        self.fixed.add(page)

    @rule(page_index=st.integers(min_value=0, max_value=PAGES - 1))
    def unpin(self, page_index):
        page = self.pages[page_index]
        if page not in self.fixed:
            return
        self.pool.unfix("d", page)
        self.fixed.discard(page)

    @rule()
    def flush(self):
        self.pool.flush_device("d")

    @invariant()
    def pool_within_limits(self):
        assert self.pool.bytes_in_use <= self.pool.config.memory_limit


TestBufferPoolStateful = BufferPoolMachine.TestCase
TestBufferPoolStateful.settings = settings(
    max_examples=30, stateful_step_count=40, deadline=None
)
