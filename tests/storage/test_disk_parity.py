"""Parity between the two disk simulations.

The paper's experiments ran on a main-memory disk simulation, with a
UNIX-file simulation as the alternative (Section 5.1).  The cost model
must not care which one is underneath: both devices report through the
single classification path of :class:`PagedDiskBase`, so any random
access sequence must produce *identical* :class:`IoStatistics` --
transfer for transfer, seek for seek, millisecond for millisecond --
and identical bytes.
"""

import tempfile
from pathlib import Path

from hypothesis import given, settings, strategies as st

from repro.storage.disk import SimulatedDisk
from repro.storage.filedisk import FileBackedDisk
from repro.storage.stats import IoStatistics

PAGE = 512


# An operation is (op_code, operand); operands are reduced modulo the
# number of live pages, so every generated sequence is valid.
operations = st.lists(
    st.tuples(st.integers(min_value=0, max_value=4), st.integers(0, 1_000)),
    min_size=1,
    max_size=60,
)


def apply_ops(disk, ops) -> tuple[list, IoStatistics]:
    """Drive one disk through the op sequence; returns observations."""
    observed = []
    live: list[int] = []
    for code, operand in ops:
        if code == 0:  # allocate one page
            live.append(disk.allocate_page())
        elif code == 1:  # allocate a small extent
            live.extend(disk.allocate_extent(1 + operand % 4))
        elif code == 2 and live:  # write a deterministic pattern
            page = live[operand % len(live)]
            disk.write_page(page, bytes([operand % 251] * PAGE))
        elif code == 3 and live:  # read back
            page = live[operand % len(live)]
            observed.append((page, bytes(disk.read_page(page))))
        elif code == 4 and live:  # free a page
            disk.free_page(live.pop(operand % len(live)))
    return observed, disk.stats


@given(operations)
@settings(max_examples=50, deadline=None)
def test_both_disks_produce_identical_statistics(ops):
    memory_stats = IoStatistics()
    memory_disk = SimulatedDisk("dev", PAGE, memory_stats)
    with tempfile.TemporaryDirectory() as tmp:
        file_stats = IoStatistics()
        file_disk = FileBackedDisk(
            "dev", PAGE, str(Path(tmp) / "dev.disk"), file_stats
        )
        try:
            memory_observed, _ = apply_ops(memory_disk, ops)
            file_observed, _ = apply_ops(file_disk, ops)
        finally:
            file_disk.close()
        memory_disk.close()

    # Same bytes read back from the same pages.
    assert memory_observed == file_observed

    # Same statistics: counters and Table 3 milliseconds, per device.
    mem = memory_stats.counters("dev")
    fil = file_stats.counters("dev")
    assert (mem.reads, mem.writes, mem.seeks) == (fil.reads, fil.writes, fil.seeks)
    assert (mem.bytes_read, mem.bytes_written) == (fil.bytes_read, fil.bytes_written)
    assert memory_stats.cost_ms() == file_stats.cost_ms()


@given(operations)
@settings(max_examples=25, deadline=None)
def test_both_disks_emit_identical_event_streams(ops):
    """With tracing attached, the *event logs* match field for field
    (except file/operator stamps, which no bare disk populates)."""
    from repro.obs.iotrace import IoEventLog

    memory_log = IoEventLog()
    memory_disk = SimulatedDisk("dev", PAGE, IoStatistics(trace=memory_log))
    with tempfile.TemporaryDirectory() as tmp:
        file_log = IoEventLog()
        file_disk = FileBackedDisk(
            "dev", PAGE, str(Path(tmp) / "dev.disk"), IoStatistics(trace=file_log)
        )
        try:
            apply_ops(memory_disk, ops)
            apply_ops(file_disk, ops)
        finally:
            file_disk.close()
        memory_disk.close()
    assert memory_log.events() == file_log.events()
