"""Structural-maintenance and access counters on the B+-tree."""

from repro.obs.metrics import MetricsRegistry, absorb_btree
from repro.storage.btree import BPlusTree


def loaded_tree(order: int = 4, keys: int = 50) -> BPlusTree:
    tree = BPlusTree(order=order)
    for key in range(keys):
        tree.insert(key, key * 10)
    return tree


class TestBTreeStats:
    def test_fresh_tree_has_zeroed_stats(self):
        tree = BPlusTree(order=4)
        stats = tree.stats
        assert stats.searches == 0
        assert stats.inserts == 0
        assert stats.deletes == 0
        assert stats.leaf_splits == 0
        assert stats.interior_splits == 0
        assert stats.leaf_scans == 0
        assert stats.leaves_visited == 0

    def test_inserts_and_splits_are_counted(self):
        tree = loaded_tree(order=4, keys=50)
        assert tree.stats.inserts == 50
        # Order 4 over 50 keys forces many leaf splits and at least one
        # interior split (the tree is 3+ levels tall).
        assert tree.stats.leaf_splits > 0
        assert tree.stats.interior_splits > 0
        assert tree.height >= 3

    def test_searches_are_counted_hit_or_miss(self):
        tree = loaded_tree()
        assert tree.search(7) == 70
        assert tree.search(999) is None
        assert tree.stats.searches == 2

    def test_contains_does_not_inflate_search_count(self):
        # ``in`` goes through search(); either way the count moves in
        # lock-step with the number of probes issued.
        tree = loaded_tree()
        before = tree.stats.searches
        assert 3 in tree
        assert tree.stats.searches == before + 1

    def test_range_counts_scans_and_leaves(self):
        tree = loaded_tree(order=4, keys=50)
        drained = list(tree.range(10, 30))
        assert len(drained) == 21
        assert tree.stats.leaf_scans == 1
        assert tree.stats.leaves_visited >= 1
        # A full scan touches every leaf; a bounded one touches fewer.
        bounded = tree.stats.leaves_visited
        list(tree.items())
        assert tree.stats.leaf_scans == 2
        assert tree.stats.leaves_visited > bounded

    def test_deletes_are_counted(self):
        tree = loaded_tree(order=4, keys=20)
        for key in range(5):
            tree.delete(key)
        assert tree.stats.deletes == 5
        assert len(tree) == 15

    def test_absorb_btree_metric_families(self):
        tree = loaded_tree(order=4, keys=50)
        tree.search(1)
        list(tree.range(0, 9))
        registry = MetricsRegistry()
        absorb_btree(registry, tree, index="pk")
        stats = tree.stats
        assert registry.value("repro_btree_inserts_total", index="pk") == stats.inserts
        assert (
            registry.value("repro_btree_searches_total", index="pk") == stats.searches
        )
        assert (
            registry.value("repro_btree_leaf_splits_total", index="pk")
            == stats.leaf_splits
        )
        assert (
            registry.value("repro_btree_interior_splits_total", index="pk")
            == stats.interior_splits
        )
        assert (
            registry.value("repro_btree_leaf_scans_total", index="pk")
            == stats.leaf_scans
        )
        assert (
            registry.value("repro_btree_leaves_visited_total", index="pk")
            == stats.leaves_visited
        )
        assert registry.value("repro_btree_height", index="pk") == tree.height
        assert registry.value("repro_btree_entries", index="pk") == len(tree)
