"""Tests for the file-backed disk, including a contract test shared
with the in-memory disk."""

import pytest

from repro.errors import DiskError
from repro.storage.disk import SimulatedDisk
from repro.storage.filedisk import FileBackedDisk
from repro.storage.stats import IoStatistics


@pytest.fixture(params=["memory", "file"])
def disk(request, tmp_path):
    """Either disk flavour -- both must satisfy the same contract."""
    if request.param == "memory":
        device = SimulatedDisk("d", page_size=64, stats=IoStatistics())
    else:
        device = FileBackedDisk(
            "d", page_size=64, path=tmp_path / "disk.bin", stats=IoStatistics()
        )
    yield device
    device.close()


class TestDeviceContract:
    """The shared behaviour every device flavour must provide."""

    def test_write_read_roundtrip(self, disk):
        page = disk.allocate_page()
        payload = bytes(range(64))
        disk.write_page(page, payload)
        assert bytes(disk.read_page(page)) == payload

    def test_fresh_pages_zeroed(self, disk):
        assert bytes(disk.read_page(disk.allocate_page())) == b"\x00" * 64

    def test_freed_pages_recycled(self, disk):
        page = disk.allocate_page()
        disk.write_page(page, b"\x07" * 64)
        disk.free_page(page)
        assert disk.page_count == 0
        again = disk.allocate_page()
        assert again == page
        assert bytes(disk.read_page(again)) == b"\x00" * 64

    def test_extent_contiguous(self, disk):
        extent = disk.allocate_extent(4)
        assert extent == list(range(extent[0], extent[0] + 4))
        for page in extent:
            disk.write_page(page, bytes(64))

    def test_out_of_range_rejected(self, disk):
        with pytest.raises(DiskError):
            disk.read_page(99)

    def test_short_write_rejected(self, disk):
        page = disk.allocate_page()
        with pytest.raises(DiskError):
            disk.write_page(page, b"short")

    def test_freed_page_access_rejected(self, disk):
        page = disk.allocate_page()
        disk.free_page(page)
        with pytest.raises(DiskError):
            disk.read_page(page)

    def test_sequential_access_counts_one_seek(self, disk):
        pages = disk.allocate_extent(5)
        for page in pages:
            disk.read_page(page)
        assert disk.stats.counters("d").seeks == 1

    def test_closed_device_rejects_use(self, disk):
        page = disk.allocate_page()
        disk.close()
        with pytest.raises(DiskError):
            disk.read_page(page)


class TestFileBackedSpecifics:
    def test_data_lands_in_the_backing_file(self, tmp_path):
        path = tmp_path / "disk.bin"
        device = FileBackedDisk("d", page_size=32, path=path)
        page = device.allocate_page()
        device.write_page(page, b"\xab" * 32)
        device.close()
        assert path.read_bytes()[:32] == b"\xab" * 32

    def test_heapfile_stack_runs_on_file_disk(self, tmp_path):
        from repro.relalg.relation import Relation
        from repro.storage.buffer import BufferPool
        from repro.storage.catalog import Catalog
        from repro.storage.config import StorageConfig

        config = StorageConfig()
        pool = BufferPool(config)
        device = FileBackedDisk(
            "data", config.page_size, tmp_path / "db.bin", IoStatistics()
        )
        pool.register_device(device)
        catalog = Catalog(pool, device)
        relation = Relation.of_ints(
            ("a", "b"), [(i, i * 2) for i in range(2000)], name="r"
        )
        stored = catalog.store(relation, cold=True)
        assert stored.to_relation().bag_equal(relation)
        device.close()
