"""Tests for the buffer manager."""

import pytest

from repro.errors import BufferPoolError, StorageError
from repro.storage.buffer import BufferPool
from repro.storage.config import StorageConfig
from repro.storage.disk import SimulatedDisk
from repro.storage.stats import IoStatistics


def make_pool(pages: int = 4, page_size: int = 1024, limit_pages: int = 8):
    config = StorageConfig(
        page_size=page_size,
        sort_run_page_size=page_size,
        buffer_size=pages * page_size,
        memory_limit=limit_pages * page_size,
        sort_buffer_size=page_size,
    )
    pool = BufferPool(config)
    disk = pool.register_device(SimulatedDisk("d", page_size, IoStatistics()))
    return pool, disk


class TestFixUnfix:
    def test_new_page_is_fixed_and_zeroed(self):
        pool, disk = make_pool()
        page_no, view = pool.new_page("d")
        assert bytes(view) == b"\x00" * 1024
        assert pool.fixed_page_count() == 1
        pool.unfix("d", page_no, dirty=True)
        assert pool.fixed_page_count() == 0

    def test_fix_hit_avoids_disk_read(self):
        pool, disk = make_pool()
        page_no, view = pool.new_page("d")
        pool.unfix("d", page_no, dirty=True)
        pool.fix("d", page_no)
        pool.unfix("d", page_no)
        assert disk.stats.counters("d").reads == 0
        assert pool.stats.misses == 0

    def test_fix_miss_reads_from_disk(self):
        pool, disk = make_pool()
        page_no = disk.allocate_page()
        disk.write_page(page_no, b"\x07" * 1024)
        view = pool.fix("d", page_no)
        assert bytes(view[:1]) == b"\x07"
        pool.unfix("d", page_no)
        assert pool.stats.misses == 1

    def test_unfix_unfixed_page_rejected(self):
        pool, _ = make_pool()
        with pytest.raises(BufferPoolError, match=r"\('d', 0\) is not fixed"):
            pool.unfix("d", 0)

    def test_double_unfix_is_a_distinct_error_naming_the_page(self):
        """Unbalanced fix/unfix on a *resident* frame is its own error,
        distinct from unfixing a page that was never brought in."""
        pool, _ = make_pool()
        page_no, _ = pool.new_page("d")
        pool.unfix("d", page_no)
        with pytest.raises(
            BufferPoolError,
            match=rf"double unfix of page \('d', {page_no}\).*already zero",
        ):
            pool.unfix("d", page_no)
        # The frame itself is unharmed: it can be fixed again.
        pool.fix("d", page_no)
        pool.unfix("d", page_no)
        assert pool.fixed_page_count() == 0

    def test_nested_fixes_require_matching_unfixes(self):
        pool, _ = make_pool()
        page_no, _ = pool.new_page("d")
        pool.fix("d", page_no)
        pool.unfix("d", page_no)
        assert pool.fixed_page_count() == 1
        pool.unfix("d", page_no)
        assert pool.fixed_page_count() == 0

    def test_unknown_device_rejected(self):
        pool, _ = make_pool()
        with pytest.raises(StorageError):
            pool.fix("nope", 0)

    def test_duplicate_device_name_rejected(self):
        pool, _ = make_pool()
        with pytest.raises(StorageError):
            pool.register_device(SimulatedDisk("d", 1024))


class TestEvictionAndWriteback:
    def test_dirty_page_written_back_on_eviction(self):
        pool, disk = make_pool(pages=2, limit_pages=2)
        first, view = pool.new_page("d")
        view[0] = 0xAB
        pool.unfix("d", first, dirty=True)
        # Fill the pool so the first page is evicted.
        for _ in range(3):
            page_no, _ = pool.new_page("d")
            pool.unfix("d", page_no, dirty=True)
        assert disk.stats.counters("d").writes >= 1
        # Re-reading returns the written contents.
        assert bytes(pool.fix("d", first)[:1]) == b"\xab"
        pool.unfix("d", first)

    def test_pool_shrinks_back_to_buffer_size_after_unfix(self):
        pool, _ = make_pool(pages=2, limit_pages=6)
        pages = []
        for _ in range(5):
            page_no, _ = pool.new_page("d")
            pages.append(page_no)
        assert pool.bytes_in_use == 5 * 1024  # grown past buffer_size
        for page_no in pages:
            pool.unfix("d", page_no, dirty=True)
        assert pool.bytes_in_use <= 2 * 1024

    def test_exhausted_pool_raises(self):
        pool, _ = make_pool(pages=2, limit_pages=2)
        pool.new_page("d")
        pool.new_page("d")
        with pytest.raises(BufferPoolError):
            pool.new_page("d")

    def test_discard_drops_clean_page_without_writeback(self):
        pool, disk = make_pool()
        page_no, _ = pool.new_page("d")
        pool.unfix("d", page_no, dirty=True, discard=True)
        writes_after_discard = disk.stats.counters("d").writes
        assert writes_after_discard == 1  # the dirty new page must reach disk
        # A clean re-fix + discard writes nothing further.
        pool.fix("d", page_no)
        pool.unfix("d", page_no, discard=True)
        assert disk.stats.counters("d").writes == writes_after_discard


class TestVirtualDevices:
    def test_virtual_pages_never_touch_disk(self):
        pool, disk = make_pool()
        pool.create_virtual_device("v", 1024)
        page_no, view = pool.new_page("v")
        view[0] = 1
        pool.unfix("v", page_no)
        assert disk.stats.totals().transfers == 0
        assert pool.is_virtual("v") and not pool.is_virtual("d")

    def test_virtual_page_readable_while_buffered(self):
        pool, _ = make_pool()
        pool.create_virtual_device("v", 1024)
        page_no, view = pool.new_page("v")
        view[0] = 9
        pool.unfix("v", page_no)
        assert bytes(pool.fix("v", page_no)[:1]) == b"\x09"
        pool.unfix("v", page_no)

    def test_discarded_virtual_page_disappears(self):
        pool, _ = make_pool()
        pool.create_virtual_device("v", 1024)
        page_no, _ = pool.new_page("v")
        pool.unfix("v", page_no, discard=True)
        with pytest.raises(BufferPoolError):
            pool.fix("v", page_no)

    def test_evicted_virtual_page_is_lost(self):
        pool, _ = make_pool(pages=1, limit_pages=1)
        pool.create_virtual_device("v", 1024)
        page_no, _ = pool.new_page("v")
        pool.unfix("v", page_no)
        other, _ = pool.new_page("d")  # forces eviction of the virtual page
        pool.unfix("d", other, dirty=True)
        with pytest.raises(BufferPoolError):
            pool.fix("v", page_no)


class TestMaintenance:
    def test_flush_device_writes_dirty_frames(self):
        pool, disk = make_pool()
        page_no, view = pool.new_page("d")
        view[0] = 0x55
        pool.unfix("d", page_no, dirty=True)
        pool.flush_device("d")
        assert disk.read_page(page_no)[0] == 0x55

    def test_forget_page_drops_without_writeback(self):
        pool, disk = make_pool()
        page_no, _ = pool.new_page("d")
        pool.unfix("d", page_no, dirty=True)
        pool.forget_page("d", page_no)
        assert disk.stats.counters("d").writes == 0

    def test_forget_fixed_page_rejected(self):
        pool, _ = make_pool()
        page_no, _ = pool.new_page("d")
        with pytest.raises(BufferPoolError):
            pool.forget_page("d", page_no)
        pool.unfix("d", page_no, dirty=True)

    def test_hit_ratio(self):
        pool, disk = make_pool()
        page_no = disk.allocate_page()
        disk.write_page(page_no, bytes(1024))
        pool.fix("d", page_no)
        pool.unfix("d", page_no)
        pool.fix("d", page_no)
        pool.unfix("d", page_no)
        assert pool.stats.hit_ratio == pytest.approx(0.5)
