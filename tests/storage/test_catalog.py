"""Tests for the catalog and the Relation <-> HeapFile bridge."""

import pytest

from repro.errors import StorageError
from repro.relalg.relation import Relation
from repro.relalg.schema import Attribute, DataType, Schema


class TestStoreAndLoad:
    def test_roundtrip(self, catalog, transcript):
        stored = catalog.store(transcript)
        assert stored.record_count == len(transcript)
        assert stored.to_relation().bag_equal(transcript)

    def test_scan_rows_decodes(self, catalog, courses):
        stored = catalog.store(courses)
        rows = [row for _, row in stored.scan_rows()]
        assert rows == courses.rows

    def test_string_attributes_roundtrip(self, catalog):
        schema = Schema((Attribute("name", DataType.STRING, 12), Attribute("n")))
        relation = Relation(schema, [("Ann", 1), ("Barb", 2)], name="people")
        stored = catalog.store(relation)
        assert stored.to_relation().bag_equal(relation)

    def test_cold_store_forces_read_io_on_scan(self, ctx, catalog, transcript):
        stored = catalog.store(transcript, cold=True)
        ctx.io_stats.reset()
        stored.to_relation()
        assert ctx.io_stats.counters("data").reads == stored.page_count

    def test_warm_store_scans_from_buffer(self, ctx, catalog, transcript):
        stored = catalog.store(transcript, cold=False)
        ctx.io_stats.reset()
        stored.to_relation()
        assert ctx.io_stats.counters("data").reads == 0


class TestRegistry:
    def test_names_and_contains(self, catalog, transcript, courses):
        catalog.store(transcript)
        catalog.store(courses)
        assert set(catalog.names()) == {"transcript", "courses"}
        assert "transcript" in catalog and "nope" not in catalog

    def test_get_unknown_raises(self, catalog):
        with pytest.raises(StorageError):
            catalog.get("missing")

    def test_duplicate_name_rejected(self, catalog, courses):
        catalog.store(courses)
        with pytest.raises(StorageError):
            catalog.store(courses)

    def test_anonymous_relation_needs_explicit_name(self, catalog):
        anonymous = Relation.of_ints(("a",), [(1,)])
        with pytest.raises(StorageError):
            catalog.store(anonymous)
        catalog.store(anonymous, name="named")
        assert "named" in catalog

    def test_drop_frees_pages(self, catalog, ctx, transcript):
        catalog.store(transcript)
        catalog.drop("transcript")
        assert "transcript" not in catalog
        assert ctx.data_disk.page_count == 0

    def test_create_empty(self, catalog):
        stored = catalog.create("empty", Schema.of_ints("a"))
        assert stored.record_count == 0
        assert stored.to_relation().rows == []
