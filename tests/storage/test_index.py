"""Tests for secondary indexes."""

import pytest

from repro.errors import StorageError
from repro.relalg.relation import Relation
from repro.storage.index import SecondaryIndex


@pytest.fixture
def stored_transcript(catalog, transcript):
    return catalog.store(transcript)


class TestBuildAndProbe:
    def test_build_indexes_every_record(self, stored_transcript):
        index = SecondaryIndex.build(stored_transcript, ["course_no"])
        assert len(index) == stored_transcript.record_count

    def test_probe_nonunique_key(self, stored_transcript):
        index = SecondaryIndex.build(stored_transcript, ["course_no"])
        rids = index.probe((10,))
        assert len(rids) == 3  # students 1, 3, 4 took course 10

    def test_probe_missing_key(self, stored_transcript):
        index = SecondaryIndex.build(stored_transcript, ["course_no"])
        assert index.probe((12345,)) == []
        assert not index.contains((12345,))

    def test_contains(self, stored_transcript):
        index = SecondaryIndex.build(stored_transcript, ["course_no"])
        assert index.contains((99,))
        assert not index.contains((0,))

    def test_fetch_decodes_rows(self, stored_transcript):
        index = SecondaryIndex.build(stored_transcript, ["student_id"])
        rows = sorted(index.fetch((4,)))
        assert rows == [(4, 10), (4, 11), (4, 99)]

    def test_composite_key(self, stored_transcript):
        index = SecondaryIndex.build(
            stored_transcript, ["student_id", "course_no"]
        )
        assert len(index.probe((1, 10))) == 1
        assert index.probe((1, 99)) == []

    def test_scan_keys_ordered_distinct(self, stored_transcript):
        index = SecondaryIndex.build(stored_transcript, ["course_no"])
        assert list(index.scan_keys()) == [(10,), (11,), (99,)]

    def test_empty_key_rejected(self, stored_transcript):
        with pytest.raises(StorageError):
            SecondaryIndex(stored_transcript, [])


class TestMaintenance:
    def test_insert_and_delete(self, catalog):
        relation = Relation.of_ints(("a", "b"), [(1, 10)], name="r")
        stored = catalog.store(relation)
        index = SecondaryIndex.build(stored, ["a"])
        rid = stored.file.append(stored.codec.encode((1, 11)))
        index.insert((1, 11), rid)
        assert len(index.probe((1,))) == 2
        index.delete((1, 11), rid)
        assert len(index.probe((1,))) == 1

    def test_duplicate_rows_both_indexed(self, catalog):
        relation = Relation.of_ints(("a",), [(7,), (7,)], name="dups")
        stored = catalog.store(relation)
        index = SecondaryIndex.build(stored, ["a"])
        assert len(index.probe((7,))) == 2


class TestMetering:
    def test_probes_charge_comparisons(self, ctx, catalog):
        relation = Relation.of_ints(
            ("a", "b"), [(i, i) for i in range(500)], name="big"
        )
        stored = catalog.store(relation)
        index = SecondaryIndex.build(stored, ["a"], cpu=ctx.cpu)
        before = ctx.cpu.comparisons
        index.probe((250,))
        assert ctx.cpu.comparisons > before
