"""Per-device buffer statistics and the live observer hook."""

import pytest

from repro.obs.metrics import (
    MetricsRegistry,
    absorb_buffer_stats,
    observe_buffer_pool,
    unobserve_buffer_pool,
)
from repro.storage.buffer import BufferPool
from repro.storage.config import KIB, StorageConfig
from repro.storage.disk import SimulatedDisk
from repro.storage.stats import IoStatistics


def small_pool() -> tuple[BufferPool, SimulatedDisk]:
    """A pool of 4 one-KiB frames over one device (evicts quickly)."""
    config = StorageConfig(
        page_size=1 * KIB,
        buffer_size=4 * KIB,
        memory_limit=4 * KIB,
        sort_buffer_size=1 * KIB,
    )
    pool = BufferPool(config)
    disk = pool.register_device(SimulatedDisk("data", 1 * KIB, IoStatistics()))
    return pool, disk


def churn(pool: BufferPool, disk: SimulatedDisk, pages: int = 8) -> list[int]:
    numbers = []
    for _ in range(pages):
        page_no, _buf = pool.new_page(disk.name)
        numbers.append(page_no)
        pool.unfix(disk.name, page_no, dirty=True)
    for page_no in numbers:  # re-fix: misses for the evicted ones
        pool.fix(disk.name, page_no)
        pool.unfix(disk.name, page_no)
    return numbers


class TestPerDeviceStats:
    def test_by_device_breakdown_sums_to_globals(self):
        pool, disk = small_pool()
        churn(pool, disk)
        stats = pool.stats
        assert set(stats.by_device) == {"data"}
        device = stats.by_device["data"]
        assert device.fixes == stats.fixes
        assert device.misses == stats.misses
        assert device.evictions == stats.evictions
        assert device.writebacks == stats.writebacks

    def test_hits_and_hit_ratio(self):
        pool, disk = small_pool()
        churn(pool, disk)
        stats = pool.stats
        assert stats.hits == stats.fixes - stats.misses
        assert stats.hit_ratio == pytest.approx(1.0 - stats.misses / stats.fixes)
        device = stats.by_device["data"]
        assert device.hits == device.fixes - device.misses
        assert 0.0 <= device.hit_ratio <= 1.0

    def test_eviction_pressure_is_counted(self):
        pool, disk = small_pool()
        churn(pool, disk, pages=10)
        # 10 one-KiB pages through 4 frames: evictions are inevitable.
        assert pool.stats.evictions > 0
        assert pool.stats.writebacks > 0

    def test_two_devices_are_separated(self):
        config = StorageConfig(
            page_size=1 * KIB,
            buffer_size=4 * KIB,
            memory_limit=4 * KIB,
            sort_buffer_size=1 * KIB,
        )
        pool = BufferPool(config)
        stats_sink = IoStatistics()
        a = pool.register_device(SimulatedDisk("a", 1 * KIB, stats_sink))
        pool.register_device(SimulatedDisk("b", 1 * KIB, stats_sink))
        page, _buf = pool.new_page("a")
        pool.unfix("a", page, dirty=True)
        assert "a" in pool.stats.by_device
        assert "b" not in pool.stats.by_device  # untouched device, no entry
        assert pool.stats.by_device["a"].fixes == 1
        del a

    def test_absorb_buffer_stats_per_device_families(self):
        pool, disk = small_pool()
        churn(pool, disk)
        registry = MetricsRegistry()
        absorb_buffer_stats(registry, pool.stats)
        assert registry.value("repro_buffer_fixes_total") == pool.stats.fixes
        assert registry.value("repro_buffer_hits_total") == pool.stats.hits
        assert (
            registry.value("repro_buffer_device_fixes_total", device="data")
            == pool.stats.by_device["data"].fixes
        )
        assert (
            registry.value("repro_buffer_device_misses_total", device="data")
            == pool.stats.by_device["data"].misses
        )
        assert registry.value(
            "repro_buffer_device_hit_ratio", device="data"
        ) == pytest.approx(pool.stats.by_device["data"].hit_ratio)


class TestObserverHook:
    def test_observer_sees_lifecycle_events(self):
        pool, disk = small_pool()
        seen: list[tuple[str, str, int]] = []
        pool.observer = lambda event, device, page_no: seen.append(
            (event, device, page_no)
        )
        churn(pool, disk)
        events = {event for event, _, _ in seen}
        assert {"fix", "miss", "unfix", "eviction", "writeback"} <= events
        assert all(device == "data" for _, device, _ in seen)

    def test_observer_counts_match_stats(self):
        pool, disk = small_pool()
        counts: dict[str, int] = {}
        pool.observer = lambda event, device, page_no: counts.__setitem__(
            event, counts.get(event, 0) + 1
        )
        churn(pool, disk)
        assert counts.get("fix", 0) == pool.stats.fixes
        assert counts.get("miss", 0) == pool.stats.misses
        assert counts.get("eviction", 0) == pool.stats.evictions
        assert counts.get("writeback", 0) == pool.stats.writebacks

    def test_observe_buffer_pool_streams_metrics(self):
        pool, disk = small_pool()
        registry = MetricsRegistry()
        observer = observe_buffer_pool(pool, registry)
        assert pool.observer is observer
        churn(pool, disk)
        assert (
            registry.value("repro_buffer_events_total", event="fix", device="data")
            == pool.stats.fixes
        )
        assert (
            registry.value("repro_buffer_events_total", event="miss", device="data")
            == pool.stats.misses
        )
        unobserve_buffer_pool(pool, observer)
        assert pool.observer is None

    def test_unobserve_leaves_foreign_observer_alone(self):
        pool, _disk = small_pool()
        registry = MetricsRegistry()
        mine = observe_buffer_pool(pool, registry)
        other = lambda event, device, page_no: None
        pool.observer = other
        unobserve_buffer_pool(pool, mine)  # not mine any more: no-op
        assert pool.observer is other
