"""Tests for I/O statistics and Table 3 costing."""

import pytest

from repro.storage.stats import DeviceCounters, IoStatistics, IoWeights


class TestRecording:
    def test_reads_and_writes_counted_separately(self):
        stats = IoStatistics()
        stats.record_transfer("d", 0, 1024, is_write=False)
        stats.record_transfer("d", 1, 1024, is_write=True)
        counters = stats.counters("d")
        assert counters.reads == 1 and counters.writes == 1
        assert counters.transfers == 2
        assert counters.bytes_total == 2048

    def test_devices_tracked_independently(self):
        stats = IoStatistics()
        stats.record_transfer("a", 0, 100, is_write=False)
        stats.record_transfer("b", 0, 100, is_write=False)
        assert stats.counters("a").reads == 1
        assert stats.counters("b").reads == 1
        assert stats.totals().reads == 2

    def test_sequentiality_is_per_device(self):
        stats = IoStatistics()
        stats.record_transfer("a", 0, 10, is_write=False)
        stats.record_transfer("b", 5, 10, is_write=False)
        stats.record_transfer("a", 1, 10, is_write=False)  # sequential on a
        assert stats.counters("a").seeks == 1
        assert stats.counters("b").seeks == 1


class TestCosting:
    def test_cost_matches_table3_weights(self):
        # One seek + one 8 KiB transfer:
        # 20 (seek) + 8 (latency) + 2 (cpu) + 8 * 0.5 (transfer) = 34 ms.
        stats = IoStatistics(IoWeights())
        stats.record_transfer("d", 0, 8192, is_write=False)
        assert stats.cost_ms() == pytest.approx(20 + 8 + 2 + 4)

    def test_sequential_pages_share_the_seek(self):
        stats = IoStatistics(IoWeights())
        for page in range(10):
            stats.record_transfer("d", page, 8192, is_write=False)
        # 1 seek + 10 * (8 + 2 + 4).
        assert stats.cost_ms() == pytest.approx(20 + 10 * 14)

    def test_custom_weights(self):
        weights = IoWeights(seek_ms=1, latency_ms_per_transfer=0,
                            transfer_ms_per_kib=0, cpu_ms_per_transfer=0)
        stats = IoStatistics(weights)
        stats.record_transfer("d", 3, 1024, is_write=True)
        assert stats.cost_ms() == 1.0

    def test_per_device_cost(self):
        stats = IoStatistics(IoWeights())
        stats.record_transfer("a", 0, 1024, is_write=False)
        stats.record_transfer("b", 0, 1024, is_write=False)
        assert stats.cost_ms("a") < stats.cost_ms()


class TestSnapshots:
    def test_cost_since_snapshot(self):
        stats = IoStatistics(IoWeights())
        stats.record_transfer("d", 0, 8192, is_write=False)
        snapshot = stats.snapshot()
        stats.record_transfer("d", 1, 8192, is_write=False)  # sequential
        assert stats.cost_since(snapshot) == pytest.approx(8 + 2 + 4)

    def test_cost_since_sees_new_devices(self):
        stats = IoStatistics(IoWeights())
        snapshot = stats.snapshot()
        stats.record_transfer("new", 0, 1024, is_write=False)
        assert stats.cost_since(snapshot) > 0

    def test_reset(self):
        stats = IoStatistics()
        stats.record_transfer("d", 0, 100, is_write=False)
        stats.reset()
        assert stats.totals() == DeviceCounters()
        # Sequentiality state resets too: the next access seeks again.
        stats.record_transfer("d", 1, 100, is_write=False)
        assert stats.counters("d").seeks == 1
