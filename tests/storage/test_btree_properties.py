"""Property-based tests for the B+-tree against a dict model."""

from hypothesis import given, settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.errors import BTreeError
from repro.storage.btree import BPlusTree

keys = st.tuples(st.integers(min_value=-50, max_value=50))


@given(st.lists(st.tuples(keys, st.integers()), unique_by=lambda kv: kv[0]))
@settings(max_examples=150)
def test_insert_then_items_sorted(pairs):
    tree = BPlusTree(order=4)
    for key, value in pairs:
        tree.insert(key, value)
    items = list(tree.items())
    assert items == sorted(pairs)
    assert len(tree) == len(pairs)


@given(
    st.dictionaries(keys, st.integers(), max_size=80),
    st.lists(keys, max_size=20),
)
@settings(max_examples=150)
def test_search_matches_dict(model, probes):
    tree = BPlusTree(order=4)
    for key, value in model.items():
        tree.insert(key, value)
    for probe in list(model) + probes:
        assert tree.search(probe) == model.get(probe)


@given(
    st.dictionaries(keys, st.integers(), min_size=1, max_size=80),
    st.data(),
)
@settings(max_examples=100)
def test_range_matches_sorted_slice(model, data):
    tree = BPlusTree(order=4)
    for key, value in model.items():
        tree.insert(key, value)
    low = data.draw(keys)
    high = data.draw(keys)
    expected = sorted(
        (k, v) for k, v in model.items() if low <= k <= high
    )
    assert list(tree.range(low, high)) == expected


class BTreeMachine(RuleBasedStateMachine):
    """Stateful comparison of the tree against a plain dict."""

    def __init__(self):
        super().__init__()
        self.tree = BPlusTree(order=4)
        self.model: dict[tuple, int] = {}

    @rule(key=keys, value=st.integers())
    def insert(self, key, value):
        if key in self.model:
            try:
                self.tree.insert(key, value)
                raise AssertionError("duplicate insert must raise")
            except BTreeError:
                pass
        else:
            self.tree.insert(key, value)
            self.model[key] = value

    @rule(key=keys)
    def delete(self, key):
        if key in self.model:
            assert self.tree.delete(key) == self.model.pop(key)
        else:
            try:
                self.tree.delete(key)
                raise AssertionError("deleting a missing key must raise")
            except BTreeError:
                pass

    @rule(key=keys)
    def search(self, key):
        assert self.tree.search(key) == self.model.get(key)

    @invariant()
    def sorted_and_sized(self):
        items = list(self.tree.items())
        assert items == sorted(self.model.items())
        assert len(self.tree) == len(self.model)


TestBTreeStateful = BTreeMachine.TestCase
