"""Tests for extent-based heap files."""

import pytest

from repro.errors import RecordNotFoundError, StorageError
from repro.storage.buffer import BufferPool
from repro.storage.config import StorageConfig
from repro.storage.disk import SimulatedDisk
from repro.storage.heapfile import HeapFile, RecordId
from repro.storage.stats import IoStatistics


def make_file(page_size=256, buffer_pages=4, extent_pages=2):
    config = StorageConfig(
        page_size=page_size,
        sort_run_page_size=page_size,
        buffer_size=buffer_pages * page_size,
        memory_limit=4 * buffer_pages * page_size,
        sort_buffer_size=page_size,
    )
    pool = BufferPool(config)
    disk = pool.register_device(SimulatedDisk("d", page_size, IoStatistics()))
    return HeapFile(pool, disk, name="f", extent_pages=extent_pages), pool, disk


class TestAppendGet:
    def test_append_returns_rid(self):
        file, _, _ = make_file()
        rid = file.append(b"hello")
        assert isinstance(rid, RecordId)
        assert file.get(rid) == b"hello"
        assert file.record_count == 1

    def test_records_pack_onto_pages(self):
        file, _, _ = make_file(page_size=256)
        rids = [file.append(bytes([i]) * 16) for i in range(10)]
        assert file.page_count == 1
        assert len({rid.page_no for rid in rids}) == 1

    def test_new_page_allocated_when_full(self):
        file, _, _ = make_file(page_size=64)
        for i in range(8):
            file.append(bytes([i]) * 16)
        assert file.page_count > 1

    def test_append_many(self):
        file, _, _ = make_file()
        count = file.append_many(bytes([i]) for i in range(5))
        assert count == 5
        assert file.record_count == 5


class TestScan:
    def test_scan_in_insertion_order(self):
        file, _, _ = make_file(page_size=64)
        payloads = [bytes([i]) * 8 for i in range(20)]
        for payload in payloads:
            file.append(payload)
        assert [record for _, record in file.scan()] == payloads

    def test_scan_skips_deleted(self):
        file, _, _ = make_file()
        keep = file.append(b"keep")
        kill = file.append(b"kill")
        file.delete(kill)
        assert [record for _, record in file.scan()] == [b"keep"]
        assert file.record_count == 1
        assert file.get(keep) == b"keep"

    def test_cold_scan_is_sequential(self):
        file, pool, disk = make_file(page_size=64, buffer_pages=2, extent_pages=8)
        for i in range(30):
            file.append(bytes([i]) * 16)
        pool.flush_device("d")
        pool.drop_device_pages("d")
        disk.stats.reset()
        list(file.scan())
        counters = disk.stats.counters("d")
        assert counters.reads == file.page_count
        # Extent allocation keeps the file contiguous: one seek.
        assert counters.seeks == 1


class TestDelete:
    def test_delete_unknown_page_rejected(self):
        file, _, _ = make_file()
        file.append(b"x")
        with pytest.raises(RecordNotFoundError):
            file.delete(RecordId(999, 0))

    def test_delete_then_get_rejected(self):
        file, _, _ = make_file()
        rid = file.append(b"x")
        file.delete(rid)
        with pytest.raises(RecordNotFoundError):
            file.get(rid)


class TestDestroy:
    def test_destroy_frees_pages_without_writeback(self):
        file, pool, disk = make_file()
        for i in range(5):
            file.append(bytes([i]) * 32)
        writes_before = disk.stats.counters("d").writes
        file.destroy()
        assert disk.stats.counters("d").writes == writes_before
        assert disk.page_count == 0

    def test_destroyed_file_rejects_use(self):
        file, _, _ = make_file()
        file.destroy()
        with pytest.raises(StorageError):
            file.append(b"x")
        with pytest.raises(StorageError):
            list(file.scan())

    def test_destroy_is_idempotent(self):
        file, _, _ = make_file()
        file.append(b"x")
        file.destroy()
        file.destroy()

    def test_pages_recycled_after_destroy(self):
        file, pool, disk = make_file(extent_pages=2)
        file.append(b"x" * 32)
        file.destroy()
        replacement = HeapFile(pool, disk, name="g", extent_pages=2)
        replacement.append(b"y" * 32)
        # The replacement reuses the freed extent pages (via new extents).
        assert disk.page_count <= 4


class TestInvariants:
    def test_extent_pages_must_be_positive(self):
        _, pool, disk = make_file()
        with pytest.raises(StorageError):
            HeapFile(pool, disk, extent_pages=0)

    def test_roundtrip_survives_eviction(self):
        # Buffer of 2 pages, file of many pages: early pages are evicted
        # (written back) and re-read during the scan.
        file, pool, disk = make_file(page_size=64, buffer_pages=2)
        payloads = [bytes([i % 250]) * 16 for i in range(60)]
        for payload in payloads:
            file.append(payload)
        assert [record for _, record in file.scan()] == payloads
        assert disk.stats.counters("d").writes > 0
