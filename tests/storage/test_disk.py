"""Tests for the simulated disk."""

import pytest

from repro.errors import DiskError
from repro.storage.disk import SimulatedDisk
from repro.storage.stats import IoStatistics


@pytest.fixture
def disk():
    return SimulatedDisk("d", page_size=64, stats=IoStatistics())


class TestAllocation:
    def test_allocate_returns_consecutive_pages(self, disk):
        assert disk.allocate_page() == 0
        assert disk.allocate_page() == 1
        assert disk.page_count == 2

    def test_freed_pages_are_recycled(self, disk):
        first = disk.allocate_page()
        disk.free_page(first)
        assert disk.page_count == 0
        assert disk.allocate_page() == first

    def test_extent_is_contiguous_and_never_recycled(self, disk):
        a = disk.allocate_page()
        disk.free_page(a)
        extent = disk.allocate_extent(4)
        assert extent == list(range(extent[0], extent[0] + 4))
        assert a not in extent

    def test_extent_size_must_be_positive(self, disk):
        with pytest.raises(DiskError):
            disk.allocate_extent(0)

    def test_invalid_page_size(self):
        with pytest.raises(DiskError):
            SimulatedDisk("bad", page_size=0)


class TestTransfers:
    def test_write_read_roundtrip(self, disk):
        page = disk.allocate_page()
        payload = bytes(range(64))
        disk.write_page(page, payload)
        assert bytes(disk.read_page(page)) == payload

    def test_read_returns_copy(self, disk):
        page = disk.allocate_page()
        disk.write_page(page, b"\x01" * 64)
        copy = disk.read_page(page)
        copy[0] = 0xFF
        assert disk.read_page(page)[0] == 0x01

    def test_short_write_rejected(self, disk):
        page = disk.allocate_page()
        with pytest.raises(DiskError):
            disk.write_page(page, b"short")

    def test_out_of_range_page_rejected(self, disk):
        with pytest.raises(DiskError):
            disk.read_page(5)

    def test_freed_page_access_rejected(self, disk):
        page = disk.allocate_page()
        disk.free_page(page)
        with pytest.raises(DiskError):
            disk.read_page(page)

    def test_fresh_pages_are_zeroed(self, disk):
        page = disk.allocate_page()
        assert bytes(disk.read_page(page)) == b"\x00" * 64


class TestStatistics:
    def test_sequential_scan_charges_one_seek(self, disk):
        pages = disk.allocate_extent(5)
        for page in pages:
            disk.read_page(page)
        counters = disk.stats.counters("d")
        assert counters.reads == 5
        assert counters.seeks == 1

    def test_random_access_charges_a_seek_each(self, disk):
        pages = disk.allocate_extent(4)
        for page in reversed(pages):
            disk.read_page(page)
        assert disk.stats.counters("d").seeks == 4

    def test_write_then_sequential_read_counts_seek_on_direction_change(self, disk):
        pages = disk.allocate_extent(2)
        disk.write_page(pages[0], bytes(64))
        disk.write_page(pages[1], bytes(64))
        disk.read_page(pages[0])
        counters = disk.stats.counters("d")
        assert counters.writes == 2 and counters.reads == 1
        assert counters.seeks == 2  # one for the first write, one to go back


class TestLifecycle:
    def test_closed_disk_rejects_everything(self, disk):
        page = disk.allocate_page()
        disk.close()
        with pytest.raises(DiskError):
            disk.read_page(page)
        with pytest.raises(DiskError):
            disk.allocate_page()
