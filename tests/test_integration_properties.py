"""End-to-end property test: random workloads through the full stack.

The strongest integration check in the suite: random relations are
stored cold on the simulated disk and divided by *every* strategy the
runner knows, through real file scans, sorts, joins, and hash tables --
and each result must equal the in-memory oracle.
"""

from hypothesis import given, settings, strategies as st

from repro.experiments.runner import STRATEGIES, run_strategy_on_relations
from repro.relalg import algebra
from repro.relalg.relation import Relation

quotient_keys = st.integers(min_value=0, max_value=8)
divisor_keys = st.integers(min_value=100, max_value=107)

dividend_rows = st.lists(st.tuples(quotient_keys, divisor_keys), max_size=60)
divisor_rows = st.lists(st.tuples(divisor_keys), min_size=1, max_size=8)


@given(dividend_rows, divisor_rows)
@settings(max_examples=25, deadline=None)
def test_all_strategies_through_the_storage_stack(dividend, divisor):
    # Restrict to the referential-integrity case so the no-join
    # strategies apply; deduplicate (the paper's analyzed setting).
    divisor = list(dict.fromkeys(divisor))
    divisor_values = {d for (d,) in divisor}
    dividend = list(dict.fromkeys(
        (q, d) for q, d in dividend if d in divisor_values
    ))
    dividend_relation = Relation.of_ints(("q", "d"), dividend, name="R")
    divisor_relation = Relation.of_ints(("d",), divisor, name="S")
    expected = algebra.divide_set_semantics(dividend_relation, divisor_relation)
    for strategy in STRATEGIES:
        run = run_strategy_on_relations(
            strategy, dividend_relation, divisor_relation
        )
        assert run.quotient_tuples == len(expected), (strategy, dividend, divisor)


@given(dividend_rows, divisor_rows, st.integers(min_value=1, max_value=4))
@settings(max_examples=15, deadline=None)
def test_direct_strategies_with_arbitrary_inputs_and_duplicates(
    dividend, divisor, copies
):
    """The duplicate-tolerant configurations, with duplicated inputs
    and non-matching tuples, through the stack."""
    noisy = dividend * copies + [(q, 999) for q, _ in dividend[:5]]
    dividend_relation = Relation.of_ints(("q", "d"), noisy, name="R")
    divisor_relation = Relation.of_ints(("d",), divisor * copies, name="S")
    expected = algebra.divide_set_semantics(dividend_relation, divisor_relation)
    for strategy in ("hash-division", "naive", "sort-agg with join",
                     "hash-agg with join"):
        run = run_strategy_on_relations(
            strategy,
            dividend_relation,
            divisor_relation,
            duplicate_free_inputs=False,
        )
        assert run.quotient_tuples == len(expected), (strategy, noisy, divisor)
