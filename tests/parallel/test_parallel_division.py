"""Tests for parallel hash-division on the shared-nothing simulation."""

import pytest

from repro.errors import PartitioningError
from repro.parallel import parallel_hash_division
from repro.relalg import algebra
from repro.relalg.relation import Relation


@pytest.fixture
def workload():
    divisor = Relation.of_ints(("d",), [(d,) for d in range(12)], name="S")
    rows = [(q, d) for q in range(30) for d in range(12)]
    rows = [r for r in rows if not (r[0] % 3 == 0 and r[1] == 5)]  # disqualify
    rows += [(q, 500 + q) for q in range(30)]  # non-matching noise
    dividend = Relation.of_ints(("q", "d"), rows, name="R")
    expected = algebra.divide_set_semantics(dividend, divisor)
    return dividend, divisor, expected


class TestCorrectness:
    @pytest.mark.parametrize("strategy", ["quotient", "divisor"])
    @pytest.mark.parametrize("processors", [1, 2, 5])
    def test_matches_oracle(self, workload, strategy, processors):
        dividend, divisor, expected = workload
        result = parallel_hash_division(
            dividend, divisor, processors, strategy=strategy
        )
        assert result.quotient.set_equal(expected)

    @pytest.mark.parametrize("strategy", ["quotient", "divisor"])
    def test_bit_vector_preserves_result(self, workload, strategy):
        dividend, divisor, expected = workload
        result = parallel_hash_division(
            dividend, divisor, 4, strategy=strategy, bit_vector_bits=256
        )
        assert result.quotient.set_equal(expected)

    def test_empty_divisor_vacuous(self):
        dividend = Relation.of_ints(("q", "d"), [(1, 5), (2, 6)])
        divisor = Relation.of_ints(("d",), [])
        for strategy in ("quotient", "divisor"):
            result = parallel_hash_division(dividend, divisor, 3, strategy=strategy)
            assert sorted(result.quotient.rows) == [(1,), (2,)]

    def test_invalid_parameters(self, workload):
        dividend, divisor, _ = workload
        with pytest.raises(PartitioningError):
            parallel_hash_division(dividend, divisor, 0)
        with pytest.raises(PartitioningError):
            parallel_hash_division(dividend, divisor, 2, strategy="bogus")


class TestScaling:
    def make_big(self):
        divisor = Relation.of_ints(("d",), [(d,) for d in range(60)])
        dividend = Relation.of_ints(
            ("q", "d"), [(q, d) for q in range(200) for d in range(60)]
        )
        return dividend, divisor

    def test_speedup_with_more_processors(self):
        dividend, divisor = self.make_big()
        one = parallel_hash_division(dividend, divisor, 1, strategy="quotient")
        eight = parallel_hash_division(dividend, divisor, 8, strategy="quotient")
        assert eight.elapsed_ms < one.elapsed_ms
        assert one.elapsed_ms / eight.elapsed_ms > 3.0  # decent scaling

    def test_total_work_roughly_conserved(self):
        dividend, divisor = self.make_big()
        one = parallel_hash_division(dividend, divisor, 1, strategy="quotient")
        eight = parallel_hash_division(dividend, divisor, 8, strategy="quotient")
        # Parallelism redistributes work; it must not multiply it.
        assert eight.total_work_ms < 1.5 * one.total_work_ms

    def test_divisor_strategy_reports_phases(self):
        dividend, divisor = self.make_big()
        result = parallel_hash_division(dividend, divisor, 4, strategy="divisor")
        assert result.detail["phases"] == 4
        assert result.coordinator_ms > 0  # the collection site works

    def test_per_node_memory_fits_with_divisor_partitioning(self):
        """Section 6, second question: a divisor table too large for
        one node fits once partitioned across nodes."""
        divisor = Relation.of_ints(("d",), [(d,) for d in range(1500)])
        dividend = Relation.of_ints(
            ("q", "d"), [(q, d) for q in range(3) for d in range(1500)]
        )
        budget = 24 * 1024  # too small for the whole divisor table
        result = parallel_hash_division(
            dividend, divisor, 8, strategy="divisor",
            memory_budget_per_node=budget,
        )
        assert sorted(result.quotient.rows) == [(0,), (1,), (2,)]


class TestBitVectorFiltering:
    def test_filter_cuts_shipped_tuples(self):
        divisor = Relation.of_ints(("d",), [(d,) for d in range(20)])
        rows = [(q, d) for q in range(50) for d in range(20)]
        rows += [(q, 10_000 + q) for q in range(50) for _ in range(20)]
        dividend = Relation.of_ints(("q", "d"), rows)
        unfiltered = parallel_hash_division(dividend, divisor, 4, strategy="quotient")
        filtered = parallel_hash_division(
            dividend, divisor, 4, strategy="quotient", bit_vector_bits=8192
        )
        assert filtered.quotient.set_equal(unfiltered.quotient)
        assert filtered.dividend_tuples_filtered > 0
        assert filtered.dividend_tuples_shipped < unfiltered.dividend_tuples_shipped
        assert filtered.network.total_bytes < unfiltered.network.total_bytes

    def test_narrow_filter_drops_nothing_it_should_not(self):
        divisor = Relation.of_ints(("d",), [(d,) for d in range(20)])
        dividend = Relation.of_ints(
            ("q", "d"), [(q, d) for q in range(10) for d in range(20)]
        )
        result = parallel_hash_division(
            dividend, divisor, 4, strategy="quotient", bit_vector_bits=4
        )
        assert len(result.quotient) == 10  # everything still qualifies


class TestAccounting:
    def test_result_repr_and_fields(self, workload):
        dividend, divisor, _ = workload
        result = parallel_hash_division(dividend, divisor, 3, strategy="quotient")
        assert result.processors == 3
        assert len(result.local_ms) == 3
        assert result.strategy == "quotient"
        assert "3" in repr(result)

    def test_quotient_strategy_has_no_coordinator(self, workload):
        dividend, divisor, _ = workload
        result = parallel_hash_division(dividend, divisor, 3, strategy="quotient")
        assert result.coordinator_ms == 0.0

    def test_network_traffic_present_with_multiple_nodes(self, workload):
        dividend, divisor, _ = workload
        result = parallel_hash_division(dividend, divisor, 4, strategy="quotient")
        assert result.network.total_bytes > 0
