"""Interconnect faults: drops, duplicates, retransmission, idempotence.

Exactly-once *results* without exactly-once *delivery*: a retransmitted
batch pays wire cost twice but arrives once; a duplicated batch arrives
twice but the consumers are idempotent (divisor tables eliminate
duplicates per Section 3.3; bitmaps set the same bit twice), so the
parallel quotient is unchanged.
"""

import pytest

from repro.errors import NetworkFaultError
from repro.faults import FaultInjector, FaultRule
from repro.parallel import parallel_hash_division
from repro.parallel.network import Interconnect
from repro.relalg.algebra import divide_set_semantics
from repro.workloads.synthetic import make_exact_division


class TestSendValidation:
    def test_negative_tuples_rejected(self):
        with pytest.raises(ValueError, match="tuples must be >= 0"):
            Interconnect().send(0, 1, -1, 16)

    def test_negative_tuple_bytes_rejected(self):
        with pytest.raises(ValueError, match="tuple_bytes must be >= 0"):
            Interconnect().send(0, 1, 4, -16)

    def test_max_attempts_must_be_positive(self):
        with pytest.raises(ValueError, match="max_attempts"):
            Interconnect(max_attempts=0)

    def test_zero_tuples_is_free_local_delivery(self):
        network = Interconnect()
        assert network.send(0, 1, 0, 16) == 1
        assert network.total_tuples == 0


class TestFaultedSend:
    def test_dropped_batch_is_retransmitted(self):
        network = Interconnect(
            injector=FaultInjector([FaultRule("drop", max_fires=1)], seed=0)
        )
        copies = network.send(0, 1, 10, 16)
        assert copies == 1
        assert network.fault_counters.drops == 1
        assert network.fault_counters.retransmits == 1
        # Both attempts paid full wire cost.
        assert network.total_tuples == 20

    def test_retransmission_budget_exhausts_to_typed_error(self):
        network = Interconnect(
            injector=FaultInjector([FaultRule("drop")], seed=0), max_attempts=3
        )
        with pytest.raises(NetworkFaultError, match="dropped 3 times"):
            network.send(2, 5, 10, 16)
        assert network.fault_counters.drops == 3
        assert network.fault_counters.retransmits == 2

    def test_duplicate_batch_delivers_two_copies(self):
        network = Interconnect(
            injector=FaultInjector([FaultRule("duplicate", max_fires=1)], seed=0)
        )
        assert network.send(0, 1, 10, 16) == 2
        assert network.fault_counters.duplicates == 1
        assert network.total_tuples == 20  # the copy also crossed the wire

    def test_local_send_bypasses_the_injector(self):
        injector = FaultInjector([FaultRule("drop")], seed=0)
        network = Interconnect(injector=injector)
        assert network.send(3, 3, 10, 16) == 1
        assert injector.operations_seen == 0

    def test_no_injector_fast_path(self):
        network = Interconnect()
        assert network.send(0, 1, 10, 16) == 1
        assert network.fault_counters.to_dict() == {
            "drops": 0,
            "retransmits": 0,
            "duplicates": 0,
        }


class TestParallelIdempotence:
    @pytest.mark.parametrize("strategy", ["quotient", "divisor"])
    @pytest.mark.parametrize("kind", ["drop", "duplicate"])
    def test_faulted_links_do_not_change_the_quotient(self, strategy, kind):
        """Drops are healed by retransmission, duplicates by idempotent
        consumers: the parallel quotient equals the serial oracle."""
        dividend, divisor = make_exact_division(6, 24, seed=5)
        oracle = set(divide_set_semantics(dividend, divisor))
        injector = FaultInjector(
            [FaultRule(kind, probability=0.25)], seed=17
        )
        result = parallel_hash_division(
            dividend, divisor, processors=4, strategy=strategy, injector=injector
        )
        assert set(result.quotient.rows) == oracle
        assert injector.counters.total > 0  # faults actually fired

    @pytest.mark.parametrize("strategy", ["quotient", "divisor"])
    def test_persistent_drops_surface_as_typed_error(self, strategy):
        dividend, divisor = make_exact_division(4, 16, seed=3)
        injector = FaultInjector([FaultRule("drop")], seed=0)
        with pytest.raises(NetworkFaultError):
            parallel_hash_division(
                dividend, divisor, processors=4, strategy=strategy, injector=injector
            )

    def test_decentralized_collection_survives_duplicates(self):
        dividend, divisor = make_exact_division(6, 24, seed=9)
        oracle = set(divide_set_semantics(dividend, divisor))
        injector = FaultInjector([FaultRule("duplicate", probability=0.3)], seed=23)
        result = parallel_hash_division(
            dividend,
            divisor,
            processors=4,
            strategy="quotient",
            collection="decentralized",
            injector=injector,
        )
        assert set(result.quotient.rows) == oracle

    def test_no_faults_matches_fault_free_run_exactly(self):
        """An injector whose rules never fire must leave the simulation
        byte-identical to a run without any injector."""
        dividend, divisor = make_exact_division(4, 16, seed=1)
        plain = parallel_hash_division(dividend, divisor, processors=4)
        nulled = parallel_hash_division(
            dividend,
            divisor,
            processors=4,
            injector=FaultInjector([FaultRule("drop", probability=0.0)], seed=0),
        )
        assert list(plain.quotient.rows) == list(nulled.quotient.rows)
        assert plain.elapsed_ms == nulled.elapsed_ms
        assert plain.network.total_bytes == nulled.network.total_bytes
