"""Tests for the interconnect cost model."""

import pytest

from repro.parallel.network import Interconnect, NetworkWeights


class TestTrafficAccounting:
    def test_send_accumulates(self):
        net = Interconnect()
        net.send(0, 1, tuples=10, tuple_bytes=16)
        net.send(0, 1, tuples=5, tuple_bytes=16)
        assert net.total_tuples == 15
        assert net.total_bytes == 240

    def test_local_delivery_is_free(self):
        net = Interconnect()
        net.send(2, 2, tuples=100, tuple_bytes=16)
        assert net.total_tuples == 0
        assert net.cost_ms() == 0.0

    def test_zero_tuples_free(self):
        net = Interconnect()
        net.send(0, 1, tuples=0, tuple_bytes=16)
        assert net.total_bytes == 0


class TestCosting:
    def test_cost_prices_messages_and_bytes(self):
        weights = NetworkWeights(ms_per_message=2.0, ms_per_kib=0.5, batch_bytes=1024)
        net = Interconnect(weights)
        net.send(0, 1, tuples=64, tuple_bytes=16)  # 1024 bytes = 1 batch
        assert net.cost_ms() == pytest.approx(2.0 + 0.5)

    def test_partial_batch_rounds_up(self):
        weights = NetworkWeights(ms_per_message=1.0, ms_per_kib=0.0, batch_bytes=1024)
        net = Interconnect(weights)
        net.send(0, 1, tuples=1, tuple_bytes=8)
        assert net.cost_ms() == pytest.approx(1.0)

    def test_empty_network_costs_nothing(self):
        assert Interconnect().cost_ms() == 0.0
        assert Interconnect().busiest_receiver_ms() == 0.0


class TestBottleneckView:
    def test_busiest_receiver_identifies_collection_site(self):
        net = Interconnect()
        # Everyone ships to node 0 (a collection site)...
        for sender in range(1, 8):
            net.send(sender, 0, tuples=100, tuple_bytes=16)
        # ...plus one small side transfer.
        net.send(0, 3, tuples=1, tuple_bytes=16)
        inbound = net.receiver_bytes()
        assert inbound[0] == 7 * 100 * 16
        assert net.busiest_receiver_ms() < net.cost_ms()
        assert net.busiest_receiver_ms() == pytest.approx(
            net._price(inbound[0])
        )

    def test_balanced_traffic_has_low_bottleneck(self):
        net = Interconnect()
        for sender in range(4):
            for receiver in range(4):
                if sender != receiver:
                    net.send(sender, receiver, tuples=50_000, tuple_bytes=16)
        # Each receiver gets 1/4 of the traffic; once bytes dominate the
        # per-message overhead, the bottleneck is ~1/4 of the total.
        assert net.busiest_receiver_ms() <= net.cost_ms() / 3
