"""Tests for declustering helpers."""

import pytest

from repro.errors import PartitioningError
from repro.parallel.partitioning import (
    hash_partition,
    partition_relation,
    range_partition,
    round_robin,
)
from repro.relalg.relation import Relation
from repro.relalg.schema import Schema

SCHEMA = Schema.of_ints("q", "d")


class TestHashPartition:
    def test_partitions_cover_input(self):
        rows = [(i, i * 2) for i in range(100)]
        clusters = hash_partition(rows, SCHEMA, ["q"], 7)
        assert sum(len(c) for c in clusters) == 100
        assert sorted(r for c in clusters for r in c) == rows

    def test_equal_keys_land_together(self):
        rows = [(1, d) for d in range(10)] + [(2, d) for d in range(10)]
        clusters = hash_partition(rows, SCHEMA, ["q"], 5)
        for cluster in clusters:
            keys = {row[0] for row in cluster}
            # A cluster may hold both keys, but each key is whole.
            for key in keys:
                assert sum(1 for row in cluster if row[0] == key) == 10

    def test_single_partition(self):
        rows = [(1, 2)]
        assert hash_partition(rows, SCHEMA, ["q"], 1) == [rows]

    def test_invalid_count(self):
        with pytest.raises(PartitioningError):
            hash_partition([], SCHEMA, ["q"], 0)


class TestRangePartition:
    def test_boundaries_split_ordered(self):
        # Cluster i holds keys in (boundaries[i-1], boundaries[i]].
        rows = [(i, 0) for i in range(10)]
        clusters = range_partition(rows, SCHEMA, ["q"], [(3,), (7,)])
        assert clusters[0] == [(i, 0) for i in range(4)]
        assert clusters[1] == [(i, 0) for i in range(4, 8)]
        assert clusters[2] == [(i, 0) for i in range(8, 10)]

    def test_unsorted_boundaries_rejected(self):
        with pytest.raises(PartitioningError):
            range_partition([], SCHEMA, ["q"], [(7,), (3,)])

    def test_no_boundaries_single_cluster(self):
        rows = [(1, 0), (2, 0)]
        assert range_partition(rows, SCHEMA, ["q"], []) == [rows]


class TestRoundRobin:
    def test_even_distribution(self):
        rows = [(i, 0) for i in range(10)]
        clusters = round_robin(rows, 3)
        assert [len(c) for c in clusters] == [4, 3, 3]

    def test_invalid_count(self):
        with pytest.raises(PartitioningError):
            round_robin([], 0)


class TestPartitionRelation:
    def test_produces_named_subrelations(self):
        relation = Relation(SCHEMA, [(i, 0) for i in range(20)], name="R")
        parts = partition_relation(relation, ["q"], 4)
        assert len(parts) == 4
        assert parts[0].name == "R[0]"
        assert sum(len(p) for p in parts) == 20
        assert all(p.schema == SCHEMA for p in parts)
