"""Tests for the bit-vector filter."""

import pytest

from repro.metering import CpuCounters
from repro.parallel.bitvector import BitVectorFilter


class TestSemantics:
    def test_no_false_negatives(self):
        keys = [(i,) for i in range(100)]
        bit_vector = BitVectorFilter.built_from(keys, bits=64)
        assert all(bit_vector.may_contain(key) for key in keys)

    def test_rejects_most_non_members_when_wide(self):
        members = [(i,) for i in range(10)]
        bit_vector = BitVectorFilter.built_from(members, bits=4096)
        probes = [(i,) for i in range(1000, 2000)]
        false_positives = sum(bit_vector.may_contain(p) for p in probes)
        # Fill ratio ~ 10/4096: false positives should be rare.
        assert false_positives < 50

    def test_false_positives_possible_when_narrow(self):
        """The paper: "the selection of tuples is only a heuristic" --
        an unrelated key can map to a set bit."""
        members = [(i,) for i in range(30)]
        bit_vector = BitVectorFilter.built_from(members, bits=8)
        probes = [(i,) for i in range(100, 300)]
        assert any(bit_vector.may_contain(p) for p in probes)

    def test_fill_ratio(self):
        bit_vector = BitVectorFilter(bits=100)
        assert bit_vector.fill_ratio == 0.0
        bit_vector.insert((1,))
        assert 0.0 < bit_vector.fill_ratio <= 0.01 + 1e-9

    def test_size_bytes_scales_with_bits(self):
        assert BitVectorFilter(bits=64).size_bytes == 8
        assert BitVectorFilter(bits=1024).size_bytes == 128

    def test_zero_bits_rejected(self):
        with pytest.raises(ValueError):
            BitVectorFilter(bits=0)


class TestMetering:
    def test_insert_and_probe_charge_hash_and_bit(self):
        cpu = CpuCounters()
        bit_vector = BitVectorFilter(bits=64, cpu=cpu)
        cpu.reset()
        bit_vector.insert((1,))
        assert cpu.hashes == 1 and cpu.bit_ops == 1
        bit_vector.may_contain((1,))
        assert cpu.hashes == 2 and cpu.bit_ops == 2
