"""Tests for the decentralized collection phase (§6)."""

import pytest

from repro.errors import PartitioningError
from repro.parallel import parallel_hash_division
from repro.relalg import algebra
from repro.relalg.relation import Relation


@pytest.fixture
def workload():
    divisor = Relation.of_ints(("d",), [(d,) for d in range(16)], name="S")
    rows = [(q, d) for q in range(40) for d in range(16)]
    rows = [r for r in rows if not (r[0] % 5 == 2 and r[1] == 9)]
    dividend = Relation.of_ints(("q", "d"), rows, name="R")
    expected = algebra.divide_set_semantics(dividend, divisor)
    return dividend, divisor, expected


class TestCorrectness:
    @pytest.mark.parametrize("processors", [1, 2, 4, 8])
    def test_matches_central(self, workload, processors):
        dividend, divisor, expected = workload
        central = parallel_hash_division(
            dividend, divisor, processors, strategy="divisor", collection="central"
        )
        decentralized = parallel_hash_division(
            dividend, divisor, processors, strategy="divisor",
            collection="decentralized",
        )
        assert central.quotient.set_equal(expected)
        assert decentralized.quotient.set_equal(expected)

    def test_with_bit_vector(self, workload):
        dividend, divisor, expected = workload
        result = parallel_hash_division(
            dividend, divisor, 4, strategy="divisor",
            collection="decentralized", bit_vector_bits=512,
        )
        assert result.quotient.set_equal(expected)

    def test_unknown_mode_rejected(self, workload):
        dividend, divisor, _ = workload
        with pytest.raises(PartitioningError):
            parallel_hash_division(
                dividend, divisor, 4, strategy="divisor", collection="bogus"
            )

    def test_collection_mode_ignored_for_quotient_strategy(self, workload):
        dividend, divisor, expected = workload
        result = parallel_hash_division(
            dividend, divisor, 4, strategy="quotient",
            collection="decentralized",
        )
        assert result.quotient.set_equal(expected)


class TestBottleneckRelief:
    def make_collection_heavy(self):
        # A large quotient makes the collection phase the dominant
        # cost: every candidate survives every phase.
        divisor = Relation.of_ints(("d",), [(d,) for d in range(16)])
        dividend = Relation.of_ints(
            ("q", "d"), [(q, d) for q in range(800) for d in range(16)]
        )
        return dividend, divisor

    def test_decentralization_removes_the_coordinator(self):
        dividend, divisor = self.make_collection_heavy()
        central = parallel_hash_division(
            dividend, divisor, 8, strategy="divisor", collection="central"
        )
        decentralized = parallel_hash_division(
            dividend, divisor, 8, strategy="divisor", collection="decentralized"
        )
        assert central.coordinator_ms > 0
        assert decentralized.coordinator_ms == 0.0
        assert decentralized.elapsed_ms < central.elapsed_ms

    def test_decentralization_spreads_inbound_traffic(self):
        dividend, divisor = self.make_collection_heavy()
        central = parallel_hash_division(
            dividend, divisor, 8, strategy="divisor", collection="central"
        )
        decentralized = parallel_hash_division(
            dividend, divisor, 8, strategy="divisor", collection="decentralized"
        )
        assert (
            decentralized.network.busiest_receiver_ms()
            < central.network.busiest_receiver_ms()
        )
