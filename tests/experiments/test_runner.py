"""Tests for the experiment runner."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.runner import (
    STRATEGIES,
    build_strategy_plan,
    run_strategy_on_relations,
)
from repro.relalg import algebra
from repro.workloads.synthetic import make_exact_division, make_with_duplicates


class TestRunStrategy:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_every_strategy_produces_the_right_quotient(self, strategy):
        dividend, divisor = make_exact_division(10, 20, seed=1)
        run = run_strategy_on_relations(strategy, dividend, divisor,
                                        expected_quotient=20)
        assert run.quotient_tuples == 20
        assert run.dividend_tuples == 200
        assert run.divisor_tuples == 10

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_meters_are_positive(self, strategy):
        dividend, divisor = make_exact_division(10, 20, seed=1)
        run = run_strategy_on_relations(strategy, dividend, divisor)
        assert run.cpu_ms > 0
        assert run.io_ms > 0  # cold input scans always pay read I/O
        assert run.total_ms == pytest.approx(run.cpu_ms + run.io_ms)
        assert run.wall_seconds > 0

    def test_unknown_strategy_rejected(self):
        dividend, divisor = make_exact_division(2, 2)
        with pytest.raises(ExperimentError):
            run_strategy_on_relations("quantum", dividend, divisor)

    def test_duplicate_inputs_need_the_flag(self):
        dividend, divisor = make_with_duplicates(5, 10, duplication_factor=1.0)
        expected = algebra.divide_set_semantics(dividend, divisor)
        # Duplicate-safe configuration: all strategies correct.
        for strategy in STRATEGIES:
            run = run_strategy_on_relations(
                strategy, dividend, divisor, duplicate_free_inputs=False
            )
            assert run.quotient_tuples == len(expected), strategy

    def test_io_detail_reports_devices(self):
        dividend, divisor = make_exact_division(10, 50, seed=2)
        run = run_strategy_on_relations("hash-division", dividend, divisor)
        assert "data" in run.io_detail
        assert run.io_detail["data"] > 0


class TestRanking:
    def test_paper_ranking_on_a_mid_size_point(self):
        """The Table 4 shape at (|S|, |Q|) = (50, 50): hash beats sort,
        joins cost extra, hash-division lands within a whisker of
        hash-aggregation."""
        dividend, divisor = make_exact_division(50, 50, seed=3)
        totals = {}
        for strategy in STRATEGIES:
            run = run_strategy_on_relations(
                strategy, dividend, divisor, expected_quotient=50
            )
            totals[strategy] = run.total_ms
        assert totals["hash-agg no join"] < totals["hash-division"]
        assert totals["hash-division"] < totals["sort-agg no join"]
        assert totals["hash-division"] < totals["naive"]
        assert totals["sort-agg no join"] < totals["sort-agg with join"]
        assert totals["hash-division"] < totals["hash-agg with join"] * 1.05
        # Hash-division within ~25% of the fastest (paper: ~10% on the
        # MicroVAX; the exact gap is implementation-dependent).
        assert totals["hash-division"] / totals["hash-agg no join"] < 2.0


class TestPlanBuilder:
    def test_plans_are_query_iterators(self, ctx, catalog):
        from repro.executor.scan import StoredRelationScan

        dividend, divisor = make_exact_division(4, 4)
        stored_r = catalog.store(dividend, name="R")
        stored_s = catalog.store(divisor, name="S")
        for strategy in STRATEGIES:
            plan = build_strategy_plan(
                strategy,
                StoredRelationScan(ctx, stored_r),
                StoredRelationScan(ctx, stored_s),
                expected_divisor=4,
                expected_quotient=4,
            )
            from repro.executor.iterator import run_to_relation

            assert len(run_to_relation(plan)) == 4


class TestClockInjection:
    def test_wall_time_is_deterministic_with_a_fake_clock(self):
        from repro.obs.span import FakeClock

        dividend, divisor = make_exact_division(5, 5, seed=2)
        run = run_strategy_on_relations(
            "hash-division",
            dividend,
            divisor,
            expected_quotient=5,
            clock=FakeClock(start=100.0),
        )
        # The fake clock never advances between the runner's two
        # readings, so the measured wall window is exactly zero --
        # the meters, not the clock, carry the result.
        assert run.wall_seconds == 0.0
        assert run.cpu_ms > 0

    def test_identical_runs_meter_identically(self):
        from repro.obs.span import FakeClock

        dividend, divisor = make_exact_division(5, 5, seed=2)
        runs = [
            run_strategy_on_relations(
                "sort-agg no join",
                dividend,
                divisor,
                expected_quotient=5,
                clock=FakeClock(),
            )
            for _ in range(2)
        ]
        assert runs[0].cpu_ms == runs[1].cpu_ms
        assert runs[0].io_ms == runs[1].io_ms
        assert runs[0].wall_seconds == runs[1].wall_seconds


class TestRunnerProfiles:
    def test_tracer_attaches_a_profile(self):
        from repro.obs.span import Tracer

        dividend, divisor = make_exact_division(5, 5, seed=3)
        run = run_strategy_on_relations(
            "hash-division",
            dividend,
            divisor,
            expected_quotient=5,
            tracer=Tracer(),
        )
        assert run.profile is not None
        assert run.profile.total_model_ms == pytest.approx(run.total_ms)

    def test_no_tracer_means_no_profile(self):
        dividend, divisor = make_exact_division(5, 5, seed=3)
        run = run_strategy_on_relations(
            "hash-division", dividend, divisor, expected_quotient=5
        )
        assert run.profile is None
