"""Tests for table rendering."""

from repro.experiments.report import render_comparison, render_table


class TestRenderTable:
    def test_alignment_and_title(self):
        text = render_table(
            ("name", "value"),
            [("a", 1), ("bbbb", 22)],
            title="T",
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5

    def test_number_formatting(self):
        text = render_table(("x",), [(1234567,), (3.14159,), (123.4,)])
        assert "1,234,567" in text
        assert "3.14" in text
        assert "123" in text

    def test_bool_formatting(self):
        text = render_table(("ok",), [(True,), (False,)])
        assert "yes" in text and "no" in text

    def test_empty_rows(self):
        text = render_table(("a", "b"), [])
        assert "a" in text and "b" in text


class TestRenderComparison:
    def test_interleaves_sources(self):
        text = render_comparison(
            ("v",),
            [(1,), (2,)],
            [(10,), (20,)],
        )
        lines = text.splitlines()
        assert "measured" in lines[2]
        assert "paper" in lines[3]
        assert len(lines) == 6
