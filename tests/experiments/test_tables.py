"""Tests for the table regeneration modules."""

from repro.experiments import table1, table2, table3, table4


class TestTable1:
    def test_rows(self):
        rows = table1.rows()
        assert len(rows) == 6
        assert rows[0] == ("RIO", 30.0, "random I/O, one page from or to disk")

    def test_render_mentions_every_unit(self):
        text = table1.render()
        for unit in ("RIO", "SIO", "Comp", "Hash", "Move", "Bit"):
            assert unit in text


class TestTable2:
    def test_rows_carry_deviations(self):
        rows = table2.rows()
        assert len(rows) == 9
        for entry in rows:
            assert set(entry["computed"]) == set(entry["paper"])
            assert all(dev < 2e-4 for dev in entry["deviation"].values())

    def test_max_deviation_is_rounding_only(self):
        assert table2.max_deviation() < 2e-4

    def test_render_interleaves_sources(self):
        text = table2.render()
        assert "computed" in text and "paper" in text
        assert "2,536,369" in text or "2536369" in text


class TestTable3:
    def test_rows(self):
        rows = table3.rows()
        assert [ms for ms, _ in rows] == [20.0, 8.0, 0.5, 2.0]

    def test_render(self):
        text = table3.render()
        assert "Physical seek" in text


class TestTable4:
    def test_run_point_smallest(self):
        row = table4.run_point(25, 25)
        assert set(row.runs) == set(table4.STRATEGIES)
        for strategy in table4.STRATEGIES:
            assert row.runs[strategy].quotient_tuples == 25
        # The paper's headline observation at this size: a factor >= 2
        # between fastest and slowest (paper saw ~3x on the MicroVAX).
        totals = [row.total_ms(s) for s in table4.STRATEGIES]
        assert max(totals) / min(totals) > 2.0

    def test_ranking_matches_paper_at_small_point(self):
        row = table4.run_point(25, 25)
        assert row.total_ms("hash-agg no join") < row.total_ms("sort-agg no join")
        assert row.total_ms("hash-division") < row.total_ms("naive")
        assert row.total_ms("sort-agg with join") == max(
            row.total_ms(s) for s in table4.STRATEGIES
        )

    def test_render_includes_paper_reference(self):
        row = table4.run_point(25, 25)
        text = table4.render([row])
        assert "measured" in text and "paper" in text
        assert "978" in text  # the printed naive figure

    def test_paper_reference_table_shape(self):
        assert len(table4.PAPER_TABLE4) == 9
        assert all(len(v) == 6 for v in table4.PAPER_TABLE4.values())
        # The reconstructed columns respect the stated relationships.
        for figures in table4.PAPER_TABLE4.values():
            hash_nj, hash_wj, hash_div = figures[3], figures[4], figures[5]
            assert hash_wj == 2 * hash_nj
            assert abs(hash_div - 1.1 * hash_nj) < 1.0


class TestTable4Breakdown:
    def test_breakdown_splits_cpu_and_io(self):
        row = table4.run_point(25, 25)
        text = table4.render_breakdown([row])
        assert "cpu ms" in text and "io ms" in text
        # One line per strategy plus header/title/rule.
        assert len(text.splitlines()) == 3 + len(table4.STRATEGIES)
