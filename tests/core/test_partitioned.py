"""Tests for partitioned hash-division and the overflow driver (§3.4)."""

import pytest

from repro.errors import HashTableOverflowError, PartitioningError
from repro.core.hash_division import HashDivision
from repro.core.partitioned import (
    divisor_partitioned_division,
    hash_division_with_overflow,
    quotient_partitioned_division,
)
from repro.executor.iterator import ExecContext, run_to_relation
from repro.executor.scan import RelationSource
from repro.relalg import algebra
from repro.relalg.relation import Relation


@pytest.fixture
def workload():
    dividend_rows = [(q, d) for q in range(20) for d in range(8)]
    # Disqualify half the candidates and add noise.
    dividend_rows = [r for r in dividend_rows if not (r[0] % 2 and r[1] == 3)]
    dividend_rows += [(q, 999) for q in range(20)]
    dividend = Relation.of_ints(("q", "d"), dividend_rows, name="R")
    divisor = Relation.of_ints(("d",), [(d,) for d in range(8)], name="S")
    expected = algebra.divide_set_semantics(dividend, divisor)
    return dividend, divisor, expected


class TestQuotientPartitioning:
    @pytest.mark.parametrize("partitions", [1, 2, 3, 7])
    def test_matches_oracle(self, ctx, workload, partitions):
        dividend, divisor, expected = workload
        result = quotient_partitioned_division(
            RelationSource(ctx, dividend),
            RelationSource(ctx, divisor),
            partitions,
        )
        assert result.set_equal(expected)

    def test_partition_count_validated(self, ctx, workload):
        dividend, divisor, _ = workload
        with pytest.raises(PartitioningError):
            quotient_partitioned_division(
                RelationSource(ctx, dividend), RelationSource(ctx, divisor), 0
            )

    def test_temp_pages_released(self, ctx, workload):
        dividend, divisor, _ = workload
        quotient_partitioned_division(
            RelationSource(ctx, dividend), RelationSource(ctx, divisor), 4
        )
        assert ctx.temp_disk.page_count == 0

    def test_spooling_charges_hashes(self, ctx, workload):
        dividend, divisor, _ = workload
        before = ctx.cpu.hashes
        quotient_partitioned_division(
            RelationSource(ctx, dividend), RelationSource(ctx, divisor), 4
        )
        assert ctx.cpu.hashes - before >= len(dividend)


class TestDivisorPartitioning:
    @pytest.mark.parametrize("partitions", [1, 2, 3, 7])
    def test_matches_oracle(self, ctx, workload, partitions):
        dividend, divisor, expected = workload
        result = divisor_partitioned_division(
            RelationSource(ctx, dividend),
            RelationSource(ctx, divisor),
            partitions,
        )
        assert result.set_equal(expected)

    def test_more_partitions_than_divisor_values(self, ctx):
        # Some divisor clusters are empty and must be skipped.
        dividend = Relation.of_ints(("q", "d"), [(1, 5), (1, 6), (2, 5)])
        divisor = Relation.of_ints(("d",), [(5,), (6,)])
        result = divisor_partitioned_division(
            RelationSource(ctx, dividend), RelationSource(ctx, divisor), 16
        )
        assert result.rows == [(1,)]

    def test_empty_divisor_vacuous(self, ctx):
        dividend = Relation.of_ints(("q", "d"), [(1, 5), (2, 6)])
        divisor = Relation.of_ints(("d",), [])
        result = divisor_partitioned_division(
            RelationSource(ctx, dividend), RelationSource(ctx, divisor), 4
        )
        assert sorted(result.rows) == [(1,), (2,)]


class TestOverflowDriver:
    def make_big(self):
        divisor = Relation.of_ints(("d",), [(d,) for d in range(40)], name="S")
        dividend = Relation.of_ints(
            ("q", "d"), [(q, d) for q in range(300) for d in range(40)], name="R"
        )
        return dividend, divisor

    def test_single_phase_overflows_under_budget(self):
        dividend, divisor = self.make_big()
        ctx = ExecContext(memory_budget=12 * 1024)
        plan = HashDivision(
            RelationSource(ctx, dividend), RelationSource(ctx, divisor)
        )
        with pytest.raises(HashTableOverflowError):
            run_to_relation(plan)
        # Cleanup: the failed attempt leaks no memory.
        assert ctx.memory.bytes_in_use == 0

    def test_quotient_partitioning_recovers_from_large_quotient(self):
        """Quotient partitioning shrinks the quotient table per phase;
        it is the right strategy when the quotient is the memory hog
        (the divisor table must stay resident throughout)."""
        dividend, divisor = self.make_big()  # 300 candidates, 40 divisor values
        ctx = ExecContext(memory_budget=12 * 1024)
        result = hash_division_with_overflow(
            lambda: RelationSource(ctx, dividend),
            lambda: RelationSource(ctx, divisor),
            strategy="quotient",
        )
        expected = algebra.divide_set_semantics(dividend, divisor)
        assert result.set_equal(expected)
        assert ctx.memory.bytes_in_use == 0

    def test_divisor_partitioning_recovers_from_large_divisor(self):
        """Divisor partitioning shrinks the divisor table (and the bit
        maps) per phase; it is the right strategy when the divisor is
        the memory hog (Section 6's second question)."""
        divisor = Relation.of_ints(("d",), [(d,) for d in range(2000)], name="S")
        dividend = Relation.of_ints(
            ("q", "d"), [(q, d) for q in range(4) for d in range(2000)], name="R"
        )
        ctx = ExecContext(memory_budget=24 * 1024)
        result = hash_division_with_overflow(
            lambda: RelationSource(ctx, dividend),
            lambda: RelationSource(ctx, divisor),
            strategy="divisor",
        )
        assert sorted(result.rows) == [(q,) for q in range(4)]
        assert ctx.memory.bytes_in_use == 0

    def test_driver_uses_single_phase_when_it_fits(self):
        dividend, divisor = self.make_big()
        ctx = ExecContext()  # unbounded
        result = hash_division_with_overflow(
            lambda: RelationSource(ctx, dividend),
            lambda: RelationSource(ctx, divisor),
        )
        assert len(result) == 300
        # No partitioning happened: nothing was spooled to temp.
        assert ctx.io_stats.counters("temp").transfers == 0

    def test_driver_gives_up_past_max_partitions(self):
        dividend, divisor = self.make_big()
        ctx = ExecContext(memory_budget=1024)  # hopeless
        with pytest.raises(HashTableOverflowError):
            hash_division_with_overflow(
                lambda: RelationSource(ctx, dividend),
                lambda: RelationSource(ctx, divisor),
                max_partitions=4,
            )

    def test_unknown_strategy_rejected(self):
        ctx = ExecContext()
        empty = Relation.of_ints(("q", "d"), [])
        divisor = Relation.of_ints(("d",), [])
        with pytest.raises(PartitioningError):
            hash_division_with_overflow(
                lambda: RelationSource(ctx, empty),
                lambda: RelationSource(ctx, divisor),
                strategy="bogus",
            )
