"""Tests for hybrid quotient partitioning (§3.4, hybrid-hash style)."""

import pytest

from repro.core.partitioned import quotient_partitioned_division
from repro.executor.iterator import ExecContext
from repro.executor.scan import RelationSource
from repro.relalg import algebra
from repro.relalg.relation import Relation


@pytest.fixture
def workload():
    rows = [(q, d) for q in range(60) for d in range(10)]
    rows = [r for r in rows if not (r[0] % 7 == 3 and r[1] == 4)]
    dividend = Relation.of_ints(("q", "d"), rows, name="R")
    divisor = Relation.of_ints(("d",), [(d,) for d in range(10)], name="S")
    expected = algebra.divide_set_semantics(dividend, divisor)
    return dividend, divisor, expected


class TestHybrid:
    @pytest.mark.parametrize("partitions", [1, 2, 4, 7])
    def test_matches_oracle(self, ctx, workload, partitions):
        dividend, divisor, expected = workload
        result = quotient_partitioned_division(
            RelationSource(ctx, dividend),
            RelationSource(ctx, divisor),
            partitions,
            hybrid=True,
        )
        assert result.set_equal(expected)

    def test_hybrid_spools_less(self, workload):
        dividend, divisor, _ = workload
        plain_ctx = ExecContext()
        quotient_partitioned_division(
            RelationSource(plain_ctx, dividend),
            RelationSource(plain_ctx, divisor),
            4,
            hybrid=False,
        )
        hybrid_ctx = ExecContext()
        quotient_partitioned_division(
            RelationSource(hybrid_ctx, dividend),
            RelationSource(hybrid_ctx, divisor),
            4,
            hybrid=True,
        )
        plain_bytes = plain_ctx.io_stats.counters("temp").bytes_total
        hybrid_bytes = hybrid_ctx.io_stats.counters("temp").bytes_total
        # Cluster 0 (~1/4 of the dividend) never hits the temp device.
        assert hybrid_bytes <= plain_bytes

    def test_single_partition_hybrid_never_spools(self, ctx, workload):
        dividend, divisor, expected = workload
        result = quotient_partitioned_division(
            RelationSource(ctx, dividend),
            RelationSource(ctx, divisor),
            1,
            hybrid=True,
        )
        assert result.set_equal(expected)
        assert ctx.io_stats.counters("temp").transfers == 0

    def test_temp_pages_released(self, ctx, workload):
        dividend, divisor, _ = workload
        quotient_partitioned_division(
            RelationSource(ctx, dividend),
            RelationSource(ctx, divisor),
            4,
            hybrid=True,
        )
        assert ctx.temp_disk.page_count == 0
