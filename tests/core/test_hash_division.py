"""Tests for the hash-division operator (Figure 1 and Section 3.3)."""

import pytest

from repro.errors import DivisionError, ExecutionError
from repro.core.hash_division import HashDivision, hash_division
from repro.executor.iterator import ExecContext, run_to_relation
from repro.executor.scan import RelationSource
from repro.relalg.relation import Relation


def operator(ctx, dividend, divisor, **kwargs):
    return HashDivision(
        RelationSource(ctx, dividend), RelationSource(ctx, divisor), **kwargs
    )


class TestBasicDivision:
    def test_paper_first_example(self, ctx, transcript, courses, expected_quotient):
        dividend = Relation.of_ints(
            ("student_id", "course_no"),
            [(s, c) for s, c in transcript.rows],
        )
        result = run_to_relation(operator(ctx, dividend, courses))
        assert set(result.rows) == expected_quotient

    def test_wrapper_function(self, transcript, courses, expected_quotient):
        dividend = Relation.of_ints(
            ("student_id", "course_no"), list(transcript.rows)
        )
        assert set(hash_division(dividend, courses).rows) == expected_quotient

    def test_quotient_schema(self, ctx):
        dividend = Relation.of_ints(("q1", "d", "q2"), [])
        divisor = Relation.of_ints(("d",), [])
        plan = operator(ctx, dividend, divisor)
        assert plan.schema.names == ("q1", "q2")

    def test_nonmatching_dividend_tuples_discarded(self, ctx):
        dividend = Relation.of_ints(("q", "d"), [(1, 5), (1, 99), (2, 99)])
        divisor = Relation.of_ints(("d",), [(5,)])
        result = run_to_relation(operator(ctx, dividend, divisor))
        assert result.rows == [(1,)]

    def test_empty_dividend(self, ctx):
        dividend = Relation.of_ints(("q", "d"), [])
        divisor = Relation.of_ints(("d",), [(1,)])
        assert run_to_relation(operator(ctx, dividend, divisor)).rows == []

    def test_empty_divisor_is_vacuous(self, ctx):
        dividend = Relation.of_ints(("q", "d"), [(1, 5), (2, 6), (1, 7)])
        divisor = Relation.of_ints(("d",), [])
        result = run_to_relation(operator(ctx, dividend, divisor))
        assert sorted(result.rows) == [(1,), (2,)]

    def test_invalid_schemas_rejected(self, ctx):
        dividend = Relation.of_ints(("q", "d"), [])
        with pytest.raises(DivisionError):
            operator(ctx, dividend, Relation.of_ints(("other",), []))

    def test_contexts_must_match(self, transcript, courses):
        a, b = ExecContext(), ExecContext()
        with pytest.raises(ExecutionError):
            HashDivision(RelationSource(a, transcript), RelationSource(b, courses))

    def test_unknown_mode_rejected(self, ctx, transcript, courses):
        dividend = Relation.of_ints(("s", "c"), list(transcript.rows))
        with pytest.raises(DivisionError):
            operator(ctx, dividend, courses, mode="bogus")


class TestDuplicateHandling:
    def test_divisor_duplicates_eliminated_on_the_fly(self, ctx):
        dividend = Relation.of_ints(("q", "d"), [(1, 5), (1, 6)])
        divisor = Relation.of_ints(("d",), [(5,), (5,), (6,), (5,)])
        result = run_to_relation(operator(ctx, dividend, divisor))
        assert result.rows == [(1,)]

    def test_dividend_duplicates_ignored(self, ctx):
        dividend = Relation.of_ints(
            ("q", "d"), [(1, 5), (1, 5), (1, 5), (2, 5), (2, 6), (1, 6)]
        )
        divisor = Relation.of_ints(("d",), [(5,), (6,)])
        result = run_to_relation(operator(ctx, dividend, divisor))
        assert sorted(result.rows) == [(1,), (2,)]

    def test_counter_mode_correct_without_duplicates(self, ctx):
        dividend = Relation.of_ints(("q", "d"), [(1, 5), (1, 6), (2, 5)])
        divisor = Relation.of_ints(("d",), [(5,), (6,)])
        result = run_to_relation(operator(ctx, dividend, divisor, mode="counter"))
        assert result.rows == [(1,)]

    def test_counter_mode_fooled_by_duplicates(self, ctx):
        """Section 3.3: counters are only safe without duplicates --
        a duplicated tuple inflates the count to the divisor count."""
        dividend = Relation.of_ints(("q", "d"), [(2, 5), (2, 5)])
        divisor = Relation.of_ints(("d",), [(5,), (6,)])
        wrong = run_to_relation(operator(ctx, dividend, divisor, mode="counter"))
        assert wrong.rows == [(2,)]  # the documented failure
        right = run_to_relation(operator(ctx, dividend, divisor, mode="bitmap"))
        assert right.rows == []


class TestEarlyOutput:
    def test_streams_quotient_tuples(self, ctx):
        dividend = Relation.of_ints(
            ("q", "d"), [(1, 5), (1, 6), (2, 5), (2, 6), (3, 5)]
        )
        divisor = Relation.of_ints(("d",), [(5,), (6,)])
        plan = operator(ctx, dividend, divisor, early_output=True)
        result = run_to_relation(plan)
        assert sorted(result.rows) == [(1,), (2,)]

    def test_tuple_emitted_at_completion_point(self, ctx):
        """Each quotient tuple appears as soon as its last divisor bit
        arrives, in dividend order."""
        dividend = Relation.of_ints(
            ("q", "d"), [(2, 5), (1, 5), (1, 6), (2, 6)]
        )
        divisor = Relation.of_ints(("d",), [(5,), (6,)])
        plan = operator(ctx, dividend, divisor, early_output=True)
        assert run_to_relation(plan).rows == [(1,), (2,)]

    def test_no_duplicates_emitted(self, ctx):
        dividend = Relation.of_ints(
            ("q", "d"), [(1, 5), (1, 6), (1, 5), (1, 6), (1, 6)]
        )
        divisor = Relation.of_ints(("d",), [(5,), (6,)])
        plan = operator(ctx, dividend, divisor, early_output=True)
        assert run_to_relation(plan).rows == [(1,)]

    def test_early_output_counter_mode(self, ctx):
        dividend = Relation.of_ints(("q", "d"), [(1, 5), (1, 6), (2, 5)])
        divisor = Relation.of_ints(("d",), [(5,), (6,)])
        plan = operator(
            ctx, dividend, divisor, early_output=True, mode="counter"
        )
        assert run_to_relation(plan).rows == [(1,)]

    def test_early_output_vacuous_divisor(self, ctx):
        dividend = Relation.of_ints(("q", "d"), [(1, 9), (1, 9), (2, 9)])
        divisor = Relation.of_ints(("d",), [])
        plan = operator(ctx, dividend, divisor, early_output=True)
        assert run_to_relation(plan).rows == [(1,), (2,)]


class TestResourceHandling:
    def test_tables_freed_after_close(self, ctx, transcript):
        dividend = Relation.of_ints(("s", "c"), list(transcript.rows))
        divisor = Relation.of_ints(("c",), [(10,), (11,)])
        run_to_relation(operator(ctx, dividend, divisor))
        assert ctx.memory.bytes_in_use == 0

    def test_divisor_table_freed_before_output_phase(self, ctx):
        """Figure 1 frees the divisor table once the dividend is
        consumed; memory during step 3 holds only the quotient table."""
        dividend = Relation.of_ints(("q", "d"), [(i, 0) for i in range(100)])
        divisor = Relation.of_ints(("d",), [(0,)])
        plan = operator(ctx, dividend, divisor)
        plan.open()
        bytes_during_output = ctx.memory.bytes_in_use
        tags_alive = {
            allocation.tag.split("#")[0]
            for allocation in ctx.memory._live.values()
        }
        assert "divisor-table" not in tags_alive
        assert bytes_during_output > 0
        plan.close()
        assert ctx.memory.bytes_in_use == 0

    def test_cpu_metering_shape(self, ctx):
        """Roughly |S| hashes to build + 2 hashes per matching dividend
        tuple (divisor probe + quotient probe), plus one bit per tuple."""
        divisor_rows = [(d,) for d in range(50)]
        dividend_rows = [(q, d) for q in range(10) for d in range(50)]
        dividend = Relation.of_ints(("q", "d"), dividend_rows)
        divisor = Relation.of_ints(("d",), divisor_rows)
        run_to_relation(operator(ctx, dividend, divisor))
        assert ctx.cpu.hashes == 50 + 2 * len(dividend_rows)
        # One set-bit per tuple plus bitmap init/scan overhead.
        assert ctx.cpu.bit_ops >= len(dividend_rows)

    def test_metering_counts_io_for_stored_inputs(self, catalog, ctx):
        dividend = Relation.of_ints(
            ("q", "d"), [(q, d) for q in range(100) for d in range(20)], name="R"
        )
        divisor = Relation.of_ints(("d",), [(d,) for d in range(20)], name="S")
        stored_r = catalog.store(dividend)
        stored_s = catalog.store(divisor)
        ctx.io_stats.reset()
        from repro.executor.scan import StoredRelationScan

        plan = HashDivision(
            StoredRelationScan(ctx, stored_r), StoredRelationScan(ctx, stored_s)
        )
        result = run_to_relation(plan)
        assert len(result) == 100
        reads = ctx.io_stats.counters("data").reads
        assert reads == stored_r.page_count + stored_s.page_count
