"""Property-based cross-validation of every division implementation.

The single most important invariant in the repository: all four
algorithms (plus the algebraic identity and both partitioned drivers)
compute the same quotient as the set-semantics definition, on arbitrary
inputs -- including duplicates and non-matching tuples, for the
algorithms that claim to tolerate them.
"""

from hypothesis import given, settings, strategies as st

from repro.core.hash_division import hash_division
from repro.core.naive_division import naive_division
from repro.core.aggregate_division import (
    hash_aggregate_division,
    sort_aggregate_division,
)
from repro.core.partitioned import (
    divisor_partitioned_division,
    quotient_partitioned_division,
)
from repro.executor.iterator import ExecContext
from repro.executor.scan import RelationSource
from repro.relalg import algebra
from repro.relalg.relation import Relation

quotient_keys = st.integers(min_value=0, max_value=5)
divisor_keys = st.integers(min_value=100, max_value=105)
noise_keys = st.integers(min_value=900, max_value=903)

dividend_rows = st.lists(
    st.tuples(quotient_keys, st.one_of(divisor_keys, noise_keys)), max_size=50
)
divisor_rows = st.lists(st.tuples(divisor_keys), max_size=8)


def as_relations(dividend, divisor):
    return (
        Relation.of_ints(("q", "d"), dividend, name="R"),
        Relation.of_ints(("d",), divisor, name="S"),
    )


@given(dividend_rows, divisor_rows)
@settings(max_examples=120, deadline=None)
def test_hash_division_matches_oracle(dividend, divisor):
    R, S = as_relations(dividend, divisor)
    expected = algebra.divide_set_semantics(R, S)
    assert hash_division(R, S).set_equal(expected)


@given(dividend_rows, divisor_rows)
@settings(max_examples=120, deadline=None)
def test_hash_division_early_output_matches_oracle(dividend, divisor):
    R, S = as_relations(dividend, divisor)
    expected = algebra.divide_set_semantics(R, S)
    assert hash_division(R, S, early_output=True).set_equal(expected)


@given(dividend_rows, divisor_rows)
@settings(max_examples=120, deadline=None)
def test_naive_division_matches_oracle(dividend, divisor):
    R, S = as_relations(dividend, divisor)
    expected = algebra.divide_set_semantics(R, S)
    assert naive_division(R, S).set_equal(expected)


@given(dividend_rows, divisor_rows)
@settings(max_examples=100, deadline=None)
def test_aggregation_with_join_matches_oracle(dividend, divisor):
    R, S = as_relations(dividend, divisor)
    if not len(S):
        return  # counting cannot express the vacuous case
    expected = algebra.divide_set_semantics(R, S)
    assert sort_aggregate_division(R, S, with_join=True).set_equal(expected)
    assert hash_aggregate_division(R, S, with_join=True).set_equal(expected)


@given(
    st.lists(st.tuples(quotient_keys, divisor_keys), max_size=50),
    st.lists(st.tuples(divisor_keys), min_size=1, max_size=8),
)
@settings(max_examples=100, deadline=None)
def test_aggregation_without_join_under_referential_integrity(dividend, divisor):
    """Without a join, counting is correct when every dividend divisor
    value occurs in the divisor -- enforce that here by filtering."""
    divisor_values = {d for (d,) in divisor}
    dividend = [(q, d) for q, d in dividend if d in divisor_values]
    R, S = as_relations(dividend, divisor)
    expected = algebra.divide_set_semantics(R, S)
    assert sort_aggregate_division(R, S, with_join=False).set_equal(expected)
    assert hash_aggregate_division(R, S, with_join=False).set_equal(expected)


@given(dividend_rows, divisor_rows, st.integers(min_value=1, max_value=5))
@settings(max_examples=80, deadline=None)
def test_partitioned_division_matches_oracle(dividend, divisor, partitions):
    R, S = as_relations(dividend, divisor)
    expected = algebra.divide_set_semantics(R, S)
    ctx = ExecContext()
    quotient = quotient_partitioned_division(
        RelationSource(ctx, R), RelationSource(ctx, S), partitions
    )
    assert quotient.set_equal(expected)
    by_divisor = divisor_partitioned_division(
        RelationSource(ctx, R), RelationSource(ctx, S), partitions
    )
    assert by_divisor.set_equal(expected)


@given(st.lists(st.tuples(quotient_keys, divisor_keys), max_size=40), divisor_rows)
@settings(max_examples=80, deadline=None)
def test_counter_mode_matches_bitmap_on_duplicate_free_input(dividend, divisor):
    dividend = list(dict.fromkeys(dividend))  # deduplicate
    R, S = as_relations(dividend, divisor)
    bitmap_result = hash_division(R, S, mode="bitmap")
    counter_result = hash_division(R, S, mode="counter")
    assert bitmap_result.set_equal(counter_result)
