"""Tests for division by counting (sort- and hash-based aggregation)."""

import pytest

from repro.errors import DivisionError
from repro.core.aggregate_division import (
    hash_aggregate_division,
    sort_aggregate_division,
)
from repro.executor.iterator import ExecContext
from repro.relalg.relation import Relation

STRATEGIES = (sort_aggregate_division, hash_aggregate_division)


@pytest.fixture
def clean_case():
    """A dividend whose divisor values all occur in the divisor (the
    referential-integrity case where no join is needed)."""
    dividend = Relation.of_ints(
        ("q", "d"), [(1, 5), (1, 6), (2, 5), (3, 5), (3, 6)]
    )
    divisor = Relation.of_ints(("d",), [(5,), (6,)])
    return dividend, divisor, {(1,), (3,)}


@pytest.fixture
def restricted_case():
    """A dividend with values outside the divisor (the paper's second
    example: the divisor was restricted, so a join is mandatory)."""
    dividend = Relation.of_ints(
        ("q", "d"), [(1, 5), (1, 6), (2, 5), (2, 99), (3, 98), (3, 97)]
    )
    divisor = Relation.of_ints(("d",), [(5,), (6,)])
    return dividend, divisor, {(1,)}


class TestWithoutJoin:
    @pytest.mark.parametrize("division", STRATEGIES)
    def test_correct_under_referential_integrity(self, division, clean_case):
        dividend, divisor, expected = clean_case
        assert set(division(dividend, divisor).rows) == expected

    @pytest.mark.parametrize("division", STRATEGIES)
    def test_wrong_without_join_when_divisor_restricted(
        self, division, restricted_case
    ):
        """Documents the precondition: without the semi-join, tuples
        referencing non-divisor values are miscounted."""
        dividend, divisor, expected = restricted_case
        result = set(division(dividend, divisor, with_join=False).rows)
        assert result != expected  # (2,) or (3,) sneaks in


class TestWithJoin:
    @pytest.mark.parametrize("division", STRATEGIES)
    def test_correct_with_restricted_divisor(self, division, restricted_case):
        dividend, divisor, expected = restricted_case
        assert set(division(dividend, divisor, with_join=True).rows) == expected

    @pytest.mark.parametrize("division", STRATEGIES)
    def test_join_harmless_on_clean_input(self, division, clean_case):
        dividend, divisor, expected = clean_case
        assert set(division(dividend, divisor, with_join=True).rows) == expected


class TestDuplicates:
    @pytest.mark.parametrize("division", STRATEGIES)
    def test_duplicates_handled_when_elimination_requested(self, division):
        dividend = Relation.of_ints(
            ("q", "d"), [(1, 5), (1, 5), (1, 6), (2, 5), (2, 5)]
        )
        divisor = Relation.of_ints(("d",), [(5,), (6,), (5,)])
        result = division(dividend, divisor, eliminate_duplicates=True)
        assert set(result.rows) == {(1,)}

    @pytest.mark.parametrize("division", STRATEGIES)
    def test_duplicates_break_counting_without_elimination(self, division):
        """Footnote 1: counting without explicit duplicate elimination
        is wrong on inputs with duplicates."""
        dividend = Relation.of_ints(("q", "d"), [(2, 5), (2, 5)])
        divisor = Relation.of_ints(("d",), [(5,), (6,)])
        wrong = division(dividend, divisor, eliminate_duplicates=False)
        assert set(wrong.rows) == {(2,)}  # counted 2 "courses"

    @pytest.mark.parametrize("division", STRATEGIES)
    def test_divisor_duplicates_inflate_target_without_elimination(self, division):
        dividend = Relation.of_ints(("q", "d"), [(1, 5), (1, 6)])
        divisor = Relation.of_ints(("d",), [(5,), (6,), (6,)])
        wrong = division(dividend, divisor, eliminate_duplicates=False)
        assert wrong.rows == []  # target count 3, actual 2
        right = division(dividend, divisor, eliminate_duplicates=True)
        assert right.rows == [(1,)]


class TestEdgeCases:
    @pytest.mark.parametrize("division", STRATEGIES)
    def test_empty_divisor_rejected(self, division):
        dividend = Relation.of_ints(("q", "d"), [(1, 5)])
        divisor = Relation.of_ints(("d",), [])
        with pytest.raises(DivisionError):
            division(dividend, divisor)

    @pytest.mark.parametrize("division", STRATEGIES)
    def test_empty_dividend(self, division):
        dividend = Relation.of_ints(("q", "d"), [])
        divisor = Relation.of_ints(("d",), [(5,)])
        assert division(dividend, divisor).rows == []

    @pytest.mark.parametrize("division", STRATEGIES)
    def test_multi_attribute_keys(self, division):
        dividend = Relation.of_ints(
            ("q1", "q2", "d1", "d2"),
            [(1, 1, 5, 50), (1, 1, 6, 60), (2, 2, 5, 50)],
        )
        divisor = Relation.of_ints(("d1", "d2"), [(5, 50), (6, 60)])
        assert division(dividend, divisor).rows == [(1, 1)]

    def test_memory_released(self):
        ctx = ExecContext()
        dividend = Relation.of_ints(
            ("q", "d"), [(q, d) for q in range(50) for d in range(5)]
        )
        divisor = Relation.of_ints(("d",), [(d,) for d in range(5)])
        hash_aggregate_division(dividend, divisor, with_join=True, ctx=ctx)
        assert ctx.memory.bytes_in_use == 0

    def test_sort_path_uses_external_sort_metering(self):
        ctx = ExecContext()
        dividend = Relation.of_ints(
            ("q", "d"), [(q, d) for q in range(30) for d in range(4)]
        )
        divisor = Relation.of_ints(("d",), [(d,) for d in range(4)])
        sort_aggregate_division(dividend, divisor, ctx=ctx)
        assert ctx.cpu.comparisons > 0

    def test_hash_path_uses_hash_metering(self):
        ctx = ExecContext()
        dividend = Relation.of_ints(
            ("q", "d"), [(q, d) for q in range(30) for d in range(4)]
        )
        divisor = Relation.of_ints(("d",), [(d,) for d in range(4)])
        hash_aggregate_division(dividend, divisor, ctx=ctx)
        assert ctx.cpu.hashes > 0
