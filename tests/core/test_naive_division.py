"""Tests for the naive sort-based division algorithm."""

import pytest

from repro.errors import DivisionError
from repro.core.naive_division import NaiveDivision, naive_division
from repro.executor.iterator import run_to_relation
from repro.executor.scan import RelationSource
from repro.relalg.relation import Relation


def sorted_operator(ctx, dividend_rows, divisor_rows):
    """Build the operator over pre-sorted inputs."""
    dividend = Relation.of_ints(("q", "d"), sorted(set(dividend_rows)))
    divisor = Relation.of_ints(("d",), sorted(set(divisor_rows)))
    return NaiveDivision(
        RelationSource(ctx, dividend), RelationSource(ctx, divisor)
    )


class TestMergeScan:
    def test_basic(self, ctx):
        plan = sorted_operator(
            ctx, [(1, 5), (1, 6), (2, 5)], [(5,), (6,)]
        )
        assert run_to_relation(plan).rows == [(1,)]

    def test_group_with_extra_values_still_qualifies(self, ctx):
        # Tuples matching no divisor value (the physics course) are
        # skipped without disqualifying the group.
        plan = sorted_operator(
            ctx, [(1, 5), (1, 6), (1, 99)], [(5,), (6,)]
        )
        assert run_to_relation(plan).rows == [(1,)]

    def test_group_missing_middle_value_fails(self, ctx):
        plan = sorted_operator(
            ctx, [(1, 5), (1, 7)], [(5,), (6,), (7,)]
        )
        assert run_to_relation(plan).rows == []

    def test_group_missing_last_value_fails(self, ctx):
        plan = sorted_operator(ctx, [(1, 5)], [(5,), (6,)])
        assert run_to_relation(plan).rows == []

    def test_multiple_groups_stream_in_order(self, ctx):
        rows = [(q, d) for q in (1, 2, 3) for d in (5, 6)]
        rows.remove((2, 6))
        plan = sorted_operator(ctx, rows, [(5,), (6,)])
        assert run_to_relation(plan).rows == [(1,), (3,)]

    def test_empty_divisor_is_vacuous(self, ctx):
        plan = sorted_operator(ctx, [(1, 9), (2, 8)], [])
        assert run_to_relation(plan).rows == [(1,), (2,)]

    def test_empty_dividend(self, ctx):
        plan = sorted_operator(ctx, [], [(5,)])
        assert run_to_relation(plan).rows == []

    def test_unsorted_divisor_rejected(self, ctx):
        dividend = Relation.of_ints(("q", "d"), [])
        divisor = Relation.of_ints(("d",), [(6,), (5,)])
        plan = NaiveDivision(
            RelationSource(ctx, dividend), RelationSource(ctx, divisor)
        )
        with pytest.raises(DivisionError):
            plan.open()

    def test_duplicate_divisor_rejected(self, ctx):
        dividend = Relation.of_ints(("q", "d"), [])
        divisor = Relation.of_ints(("d",), [(5,), (5,)])
        plan = NaiveDivision(
            RelationSource(ctx, dividend), RelationSource(ctx, divisor)
        )
        with pytest.raises(DivisionError):
            plan.open()


class TestWrapper:
    def test_sorts_and_deduplicates(self, transcript, courses, expected_quotient):
        dividend = Relation.of_ints(
            ("student_id", "course_no"),
            list(transcript.rows) + list(transcript.rows),  # duplicates
        )
        shuffled_divisor = Relation.of_ints(("course_no",), [(11,), (10,), (11,)])
        result = naive_division(dividend, shuffled_divisor)
        assert set(result.rows) == expected_quotient

    def test_multi_attribute_quotient_and_divisor(self):
        dividend = Relation.of_ints(
            ("q1", "q2", "d1", "d2"),
            [
                (1, 1, 5, 50),
                (1, 1, 6, 60),
                (1, 2, 5, 50),
            ],
        )
        divisor = Relation.of_ints(("d1", "d2"), [(5, 50), (6, 60)])
        assert naive_division(dividend, divisor).rows == [(1, 1)]

    def test_metering_charges_sort_and_scan(self):
        from repro.executor.iterator import ExecContext

        ctx = ExecContext()
        dividend = Relation.of_ints(
            ("q", "d"), [(q, d) for q in range(20) for d in range(10)]
        )
        divisor = Relation.of_ints(("d",), [(d,) for d in range(10)])
        naive_division(dividend, divisor, ctx=ctx)
        # Sorting dominates: far more than one comparison per tuple.
        assert ctx.cpu.comparisons > len(dividend)
