"""Tests for the word-at-a-time bit map."""

import pytest

from repro.core.bitmap import WORD_BITS, Bitmap
from repro.metering import CpuCounters


class TestBasics:
    def test_starts_cleared(self):
        bitmap = Bitmap(10)
        assert bitmap.set_count == 0
        assert not any(bitmap.test(i) for i in range(10))

    def test_set_and_test(self):
        bitmap = Bitmap(10)
        assert bitmap.set(3) is True
        assert bitmap.test(3)
        assert not bitmap.test(4)

    def test_set_returns_false_when_already_set(self):
        bitmap = Bitmap(10)
        bitmap.set(3)
        assert bitmap.set(3) is False
        assert bitmap.set_count == 1

    def test_out_of_range_rejected(self):
        bitmap = Bitmap(10)
        with pytest.raises(IndexError):
            bitmap.set(10)
        with pytest.raises(IndexError):
            bitmap.test(-1)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Bitmap(-1)


class TestAllSet:
    def test_empty_bitmap_is_all_set(self):
        assert Bitmap(0).all_set()

    def test_all_set_detection(self):
        bitmap = Bitmap(5)
        for i in range(5):
            assert not bitmap.all_set()
            bitmap.set(i)
        assert bitmap.all_set()

    def test_word_boundary_sizes(self):
        for size in (1, WORD_BITS - 1, WORD_BITS, WORD_BITS + 1, 3 * WORD_BITS):
            bitmap = Bitmap(size)
            for i in range(size):
                bitmap.set(i)
            assert bitmap.all_set(), size
            # Unsetting is not supported; rebuild with one hole.
            holey = Bitmap(size)
            for i in range(size):
                if i != size // 2:
                    holey.set(i)
            assert not holey.all_set(), size

    def test_zero_positions(self):
        bitmap = Bitmap(130)
        for i in range(130):
            if i not in (0, 64, 129):
                bitmap.set(i)
        assert bitmap.zero_positions() == [0, 64, 129]


class TestSizing:
    def test_size_bytes_word_aligned(self):
        assert Bitmap(1).size_bytes == 8
        assert Bitmap(64).size_bytes == 8
        assert Bitmap(65).size_bytes == 16

    def test_bytes_for_matches_instance(self):
        for nbits in (0, 1, 63, 64, 65, 400):
            assert Bitmap.bytes_for(nbits) == Bitmap(nbits).size_bytes


class TestMetering:
    def test_construction_charges_per_word(self):
        cpu = CpuCounters()
        Bitmap(3 * WORD_BITS, cpu=cpu)
        assert cpu.bit_ops == 3

    def test_set_and_test_charge_one_bit_each(self):
        cpu = CpuCounters()
        bitmap = Bitmap(8, cpu=cpu)
        cpu.reset()
        bitmap.set(1)
        bitmap.test(1)
        assert cpu.bit_ops == 2

    def test_all_set_scans_word_at_a_time(self):
        cpu = CpuCounters()
        bitmap = Bitmap(4 * WORD_BITS, cpu=cpu)
        for i in range(4 * WORD_BITS):
            bitmap.set(i)
        cpu.reset()
        bitmap.all_set()
        assert cpu.bit_ops == 4  # one per word, not one per bit

    def test_all_set_stops_at_first_zero_word(self):
        cpu = CpuCounters()
        bitmap = Bitmap(4 * WORD_BITS, cpu=cpu)
        cpu.reset()
        bitmap.all_set()
        assert cpu.bit_ops == 1  # first word already has a zero

    def test_unmetered_bitmap_charges_nothing(self):
        bitmap = Bitmap(100)
        bitmap.set(0)
        bitmap.all_set()
        assert bitmap.cpu is None
