"""Tests for combined quotient x divisor partitioning (§3.4's answer to
"what if both divisor and quotient are too large?")."""

import pytest

from repro.errors import PartitioningError
from repro.core.partitioned import combined_partitioned_division
from repro.executor.iterator import ExecContext
from repro.executor.scan import RelationSource
from repro.relalg import algebra
from repro.relalg.relation import Relation


@pytest.fixture
def workload():
    dividend_rows = [(q, d) for q in range(25) for d in range(12)]
    dividend_rows = [r for r in dividend_rows if not (r[0] % 4 == 1 and r[1] == 7)]
    dividend_rows += [(q, 777) for q in range(25)]
    dividend = Relation.of_ints(("q", "d"), dividend_rows, name="R")
    divisor = Relation.of_ints(("d",), [(d,) for d in range(12)], name="S")
    expected = algebra.divide_set_semantics(dividend, divisor)
    return dividend, divisor, expected


class TestCorrectness:
    @pytest.mark.parametrize("q_parts,d_parts", [(1, 1), (2, 2), (3, 2), (2, 5), (4, 4)])
    def test_matches_oracle(self, ctx, workload, q_parts, d_parts):
        dividend, divisor, expected = workload
        result = combined_partitioned_division(
            RelationSource(ctx, dividend),
            RelationSource(ctx, divisor),
            quotient_partitions=q_parts,
            divisor_partitions=d_parts,
        )
        assert result.set_equal(expected)

    def test_empty_divisor_vacuous(self, ctx):
        dividend = Relation.of_ints(("q", "d"), [(1, 5), (2, 6)])
        divisor = Relation.of_ints(("d",), [])
        result = combined_partitioned_division(
            RelationSource(ctx, dividend), RelationSource(ctx, divisor), 2, 2
        )
        assert sorted(result.rows) == [(1,), (2,)]

    def test_invalid_partition_counts(self, ctx, workload):
        dividend, divisor, _ = workload
        with pytest.raises(PartitioningError):
            combined_partitioned_division(
                RelationSource(ctx, dividend), RelationSource(ctx, divisor), 0, 2
            )
        with pytest.raises(PartitioningError):
            combined_partitioned_division(
                RelationSource(ctx, dividend), RelationSource(ctx, divisor), 2, 0
            )


class TestMemoryBehaviour:
    def test_fits_when_both_tables_are_large(self):
        """Neither strategy alone fits: 600 candidates keep the
        quotient table big, 600 divisor values keep the divisor table
        big.  The combination shrinks both."""
        divisor = Relation.of_ints(("d",), [(d,) for d in range(600)], name="S")
        dividend = Relation.of_ints(
            ("q", "d"), [(q, d) for q in range(600) for d in range(600) if (q + d) % 3],
            name="R",
        )
        # Survivors: candidates holding EVERY divisor value -> none,
        # since each q misses the d with (q + d) % 3 == 0.
        budget = 48 * 1024
        ctx = ExecContext(memory_budget=budget)
        result = combined_partitioned_division(
            RelationSource(ctx, dividend),
            RelationSource(ctx, divisor),
            quotient_partitions=8,
            divisor_partitions=8,
        )
        assert result.rows == []
        assert ctx.memory.stats.peak_bytes <= budget

    def test_temp_pages_released(self, ctx, workload):
        dividend, divisor, _ = workload
        combined_partitioned_division(
            RelationSource(ctx, dividend), RelationSource(ctx, divisor), 3, 3
        )
        assert ctx.temp_disk.page_count == 0
