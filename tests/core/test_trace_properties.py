"""Property test: the narrated trace agrees with the real operator.

``repro.core.trace.trace_hash_division`` is a deliberately independent
third implementation of hash-division (plain dictionaries, written to
mirror Figure 1 line by line).  On arbitrary workloads -- duplicates,
non-matching noise tuples, empty inputs -- its quotient must equal what
the production :class:`~repro.core.hash_division.HashDivision` operator
produces, and both must equal the set-semantics oracle.  Its event
stream must also stay internally consistent with the quotient it
reports.
"""

from hypothesis import given, settings, strategies as st

from repro.core.hash_division import hash_division
from repro.core.trace import trace_hash_division
from repro.relalg import algebra
from repro.relalg.relation import Relation

quotient_keys = st.integers(min_value=0, max_value=5)
divisor_keys = st.integers(min_value=100, max_value=105)
noise_keys = st.integers(min_value=900, max_value=903)

dividend_rows = st.lists(
    st.tuples(quotient_keys, st.one_of(divisor_keys, noise_keys)), max_size=50
)
divisor_rows = st.lists(st.tuples(divisor_keys), min_size=1, max_size=8)


def as_relations(dividend, divisor):
    return (
        Relation.of_ints(("q", "d"), dividend, name="R"),
        Relation.of_ints(("d",), divisor, name="S"),
    )


@given(dividend_rows, divisor_rows)
@settings(max_examples=150, deadline=None)
def test_trace_quotient_matches_hash_division(dividend, divisor):
    R, S = as_relations(dividend, divisor)
    trace = trace_hash_division(R, S)
    operator_quotient = hash_division(R, S)
    assert sorted(set(trace.quotient)) == sorted(set(operator_quotient.rows))


@given(dividend_rows, divisor_rows)
@settings(max_examples=150, deadline=None)
def test_trace_quotient_matches_oracle(dividend, divisor):
    R, S = as_relations(dividend, divisor)
    trace = trace_hash_division(R, S)
    expected = algebra.divide_set_semantics(R, S)
    assert sorted(set(trace.quotient)) == sorted(set(expected.rows))


@given(dividend_rows, divisor_rows)
@settings(max_examples=100, deadline=None)
def test_trace_events_consistent_with_quotient(dividend, divisor):
    """Every emitted quotient tuple has an ``emit`` event, every
    candidate either emits or is rejected, and divisor numbering is
    dense (0..n-1 over the distinct divisor tuples)."""
    R, S = as_relations(dividend, divisor)
    trace = trace_hash_division(R, S)

    emitted = {event.tuple_ for event in trace.of_kind("emit")}
    assert emitted == set(trace.quotient)

    candidates = {event.tuple_ for event in trace.of_kind("new-candidate")}
    rejected = {event.tuple_ for event in trace.of_kind("reject")}
    assert emitted | rejected == candidates
    assert emitted & rejected == set()

    numbers = [
        event.divisor_number for event in trace.of_kind("assign-divisor-number")
    ]
    assert numbers == list(range(len(set(map(tuple, S.rows)))))
