"""Tests for division via the classical operator identity."""

from repro.core.algebraic_division import algebraic_division
from repro.executor.iterator import ExecContext
from repro.relalg import algebra
from repro.relalg.relation import Relation


class TestCorrectness:
    def test_matches_oracle(self, transcript, expected_quotient):
        dividend = Relation.of_ints(("s", "c"), list(transcript.rows))
        divisor = Relation.of_ints(("c",), [(10,), (11,)])
        expected = algebra.divide_set_semantics(dividend, divisor)
        assert set(expected.rows) == expected_quotient
        result = algebraic_division(dividend, divisor)
        assert set(result.rows) == expected_quotient

    def test_duplicates_tolerated(self):
        dividend = Relation.of_ints(("q", "d"), [(1, 5), (1, 5), (1, 6)])
        divisor = Relation.of_ints(("d",), [(5,), (6,), (6,)])
        assert algebraic_division(dividend, divisor).rows == [(1,)]

    def test_empty_divisor_vacuous(self):
        dividend = Relation.of_ints(("q", "d"), [(1, 5), (2, 6)])
        divisor = Relation.of_ints(("d",), [])
        assert sorted(algebraic_division(dividend, divisor).rows) == [(1,), (2,)]


class TestCostAccounting:
    def test_charges_quadratic_product_cost(self):
        ctx = ExecContext()
        quotient, divisor_size = 30, 20
        dividend = Relation.of_ints(
            ("q", "d"), [(q, d) for q in range(quotient) for d in range(divisor_size)]
        )
        divisor = Relation.of_ints(("d",), [(d,) for d in range(divisor_size)])
        algebraic_division(dividend, divisor, ctx=ctx)
        # The Cartesian product dominates: |Q| * |S| hash insertions.
        assert ctx.cpu.hashes >= quotient * divisor_size

    def test_no_ctx_no_charge(self):
        dividend = Relation.of_ints(("q", "d"), [(1, 5)])
        divisor = Relation.of_ints(("d",), [(5,)])
        assert algebraic_division(dividend, divisor).rows == [(1,)]
