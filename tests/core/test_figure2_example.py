"""The worked example of Figure 2, end to end.

Transcript = {(Ann, Database1), (Barb, Database2), (Ann, Database2),
(Barb, Optics)}, Courses = {Database1, Database2}; the quotient is Ann
-- "the only student who has taken both database courses".
"""

from repro import divide
from repro.relalg import algebra
from repro.workloads.university import figure2_courses, figure2_transcript


class TestFigure2:
    def test_oracle(self):
        quotient = algebra.divide_set_semantics(
            figure2_transcript(), figure2_courses()
        )
        assert quotient.rows == [("Ann",)]

    def test_every_algorithm_agrees(self):
        transcript = figure2_transcript()
        courses = figure2_courses()
        for algorithm in ("hash", "naive", "algebraic", "oracle"):
            quotient = divide(transcript, courses, algorithm=algorithm)
            assert set(quotient.rows) == {("Ann",)}, algorithm
        for algorithm in ("sort-aggregate", "hash-aggregate"):
            # Barb's Optics tuple matches no divisor course, so the
            # counting strategies need the semi-join (with_join=True).
            quotient = divide(
                transcript, courses, algorithm=algorithm, with_join=True
            )
            assert set(quotient.rows) == {("Ann",)}, algorithm

    def test_counting_without_join_fails_here(self):
        """The Optics tuple is exactly why the paper's second example
        needs a join: without it Barb's two tuples count as two
        'courses' and she wrongly qualifies."""
        wrong = divide(
            figure2_transcript(),
            figure2_courses(),
            algorithm="sort-aggregate",
            with_join=False,
        )
        assert set(wrong.rows) == {("Ann",), ("Barb",)}

    def test_walkthrough_divisor_numbers(self):
        """Follow the narrative of Section 3.2: Database1 gets divisor
        number 0, Database2 gets 1, Ann's bit map fills, Barb's never
        does, (Barb, Optics) is discarded."""
        from repro.core.hash_division import HashDivision
        from repro.executor.iterator import ExecContext
        from repro.executor.scan import RelationSource

        ctx = ExecContext()
        plan = HashDivision(
            RelationSource(ctx, figure2_transcript()),
            RelationSource(ctx, figure2_courses()),
        )
        plan.open()
        quotient = list(plan)
        plan.close()
        assert quotient == [("Ann",)]
