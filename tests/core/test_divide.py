"""Tests for the top-level divide() entry point."""

import pytest

from repro import divide
from repro.errors import DivisionError
from repro.core.divide import ALGORITHMS, advisor_dispatch
from repro.executor.iterator import ExecContext
from repro.relalg.relation import Relation


@pytest.fixture
def inputs(transcript, courses):
    dividend = Relation.of_ints(("student_id", "course_no"), list(transcript.rows))
    return dividend, courses


class TestDispatch:
    def test_auto_uses_hash_division(self, inputs, expected_quotient):
        dividend, divisor = inputs
        result = divide(dividend, divisor)
        assert set(result.rows) == expected_quotient
        assert result.name == "quotient"

    def test_every_registered_algorithm_runs(self, inputs, expected_quotient):
        dividend, divisor = inputs
        for name in ALGORITHMS:
            kwargs = (
                {"with_join": True}
                if name in ("sort-aggregate", "hash-aggregate")
                else {}
            )
            result = divide(dividend, divisor, algorithm=name, **kwargs)
            assert set(result.rows) == expected_quotient, name

    def test_unknown_algorithm_rejected(self, inputs):
        dividend, divisor = inputs
        with pytest.raises(DivisionError):
            divide(dividend, divisor, algorithm="quantum")

    def test_invalid_division_rejected_early(self):
        dividend = Relation.of_ints(("a",), [(1,)])
        divisor = Relation.of_ints(("b",), [(1,)])
        with pytest.raises(DivisionError):
            divide(dividend, divisor)

    def test_custom_name(self, inputs):
        dividend, divisor = inputs
        assert divide(dividend, divisor, name="winners").name == "winners"

    def test_ctx_threads_through(self, inputs):
        dividend, divisor = inputs
        ctx = ExecContext()
        divide(dividend, divisor, ctx=ctx)
        assert ctx.cpu.hashes > 0

    def test_algorithm_options_forwarded(self, inputs, expected_quotient):
        dividend, divisor = inputs
        result = divide(dividend, divisor, algorithm="hash", early_output=True)
        assert set(result.rows) == expected_quotient


class TestAdvisorDispatch:
    """The public registry accessor (the old private-dict import path)."""

    def test_lookup_returns_algorithm_and_fresh_options(self):
        algorithm, options = advisor_dispatch("sort-agg with join")
        assert algorithm == "sort-aggregate"
        assert options == {"with_join": True}
        options["with_join"] = False  # mutating the copy is safe
        assert advisor_dispatch("sort-agg with join")[1] == {"with_join": True}

    def test_full_registry_copy(self):
        registry = advisor_dispatch()
        assert "hash-division" in registry
        registry.pop("hash-division")
        assert "hash-division" in advisor_dispatch()  # original intact

    def test_every_entry_names_a_registered_algorithm(self):
        for strategy, (algorithm, _options) in advisor_dispatch().items():
            assert algorithm in ALGORITHMS, strategy

    def test_unknown_strategy_rejected(self):
        with pytest.raises(DivisionError):
            advisor_dispatch("quantum")
