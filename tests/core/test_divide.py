"""Tests for the top-level divide() entry point."""

import pytest

from repro import divide
from repro.errors import DivisionError
from repro.core.divide import ALGORITHMS
from repro.executor.iterator import ExecContext
from repro.relalg.relation import Relation


@pytest.fixture
def inputs(transcript, courses):
    dividend = Relation.of_ints(("student_id", "course_no"), list(transcript.rows))
    return dividend, courses


class TestDispatch:
    def test_auto_uses_hash_division(self, inputs, expected_quotient):
        dividend, divisor = inputs
        result = divide(dividend, divisor)
        assert set(result.rows) == expected_quotient
        assert result.name == "quotient"

    def test_every_registered_algorithm_runs(self, inputs, expected_quotient):
        dividend, divisor = inputs
        for name in ALGORITHMS:
            kwargs = (
                {"with_join": True}
                if name in ("sort-aggregate", "hash-aggregate")
                else {}
            )
            result = divide(dividend, divisor, algorithm=name, **kwargs)
            assert set(result.rows) == expected_quotient, name

    def test_unknown_algorithm_rejected(self, inputs):
        dividend, divisor = inputs
        with pytest.raises(DivisionError):
            divide(dividend, divisor, algorithm="quantum")

    def test_invalid_division_rejected_early(self):
        dividend = Relation.of_ints(("a",), [(1,)])
        divisor = Relation.of_ints(("b",), [(1,)])
        with pytest.raises(DivisionError):
            divide(dividend, divisor)

    def test_custom_name(self, inputs):
        dividend, divisor = inputs
        assert divide(dividend, divisor, name="winners").name == "winners"

    def test_ctx_threads_through(self, inputs):
        dividend, divisor = inputs
        ctx = ExecContext()
        divide(dividend, divisor, ctx=ctx)
        assert ctx.cpu.hashes > 0

    def test_algorithm_options_forwarded(self, inputs, expected_quotient):
        dividend, divisor = inputs
        result = divide(dividend, divisor, algorithm="hash", early_output=True)
        assert set(result.rows) == expected_quotient
