"""The tracing division must retell Section 3.2's story, verbatim.

"First, the Courses relation is read ... Divisor number 0 is assigned
to tuple (Database1), and 1 to (Database2).  Second, the Transcript
relation is read.  For its first tuple, (Ann, Database1), a matching
divisor tuple ... is located ... a new quotient tuple, (Ann), is
created ... The first bit (indexed by 0) ... is then set to one.  For
the second dividend tuple, (Barb, Database2), another quotient tuple
and a bit map are created in the same way.  For the third dividend
tuple, (Ann, Database2), both a matching divisor tuple ... and a
matching quotient tuple ... can be found ... and the second bit
(indexed by 1) in the bit map of (Ann) is set to one.  The last
dividend tuple, (Barb, Optics), does not have a matching divisor tuple
... and this dividend tuple is discarded.  Finally ... the only such
tuple and bit map is (Ann)."
"""

from hypothesis import given, settings, strategies as st

from repro.core.trace import trace_hash_division
from repro.relalg import algebra
from repro.relalg.relation import Relation
from repro.workloads.university import figure2_courses, figure2_transcript


class TestFigure2Narrative:
    def test_the_exact_story(self):
        trace = trace_hash_division(figure2_transcript(), figure2_courses())
        kinds = [(event.kind, event.tuple_, event.divisor_number)
                 for event in trace.events]
        assert kinds == [
            # Step 1: divisor numbers 0 and 1.
            ("assign-divisor-number", ("Database1",), 0),
            ("assign-divisor-number", ("Database2",), 1),
            # (Ann, Database1): new candidate, bit 0 set.
            ("new-candidate", ("Ann",), None),
            ("set-bit", ("Ann",), 0),
            # (Barb, Database2): new candidate, bit 1 set.
            ("new-candidate", ("Barb",), None),
            ("set-bit", ("Barb",), 1),
            # (Ann, Database2): existing candidate, bit 1 set.
            ("set-bit", ("Ann",), 1),
            # (Barb, Optics): discarded.
            ("discard", ("Barb", "Optics"), None),
            # Step 3: Ann emitted, Barb rejected.
            ("emit", ("Ann",), None),
            ("reject", ("Barb",), None),
        ]
        assert trace.quotient == [("Ann",)]

    def test_render_is_readable(self):
        trace = trace_hash_division(figure2_transcript(), figure2_courses())
        text = trace.render()
        assert "assign-divisor-number ('Database1',) divisor#0" in text
        assert "discard ('Barb', 'Optics')" in text

    def test_of_kind(self):
        trace = trace_hash_division(figure2_transcript(), figure2_courses())
        assert len(trace.of_kind("set-bit")) == 3
        assert len(trace.of_kind("emit")) == 1


class TestTraceEdgeCases:
    def test_divisor_duplicates_narrated(self):
        dividend = Relation.of_ints(("q", "d"), [(1, 5)])
        divisor = Relation.of_ints(("d",), [(5,), (5,)])
        trace = trace_hash_division(dividend, divisor)
        assert len(trace.of_kind("duplicate-divisor")) == 1
        assert trace.quotient == [(1,)]

    def test_dividend_duplicates_narrated(self):
        dividend = Relation.of_ints(("q", "d"), [(1, 5), (1, 5)])
        divisor = Relation.of_ints(("d",), [(5,)])
        trace = trace_hash_division(dividend, divisor)
        assert len(trace.of_kind("bit-already-set")) == 1
        assert trace.quotient == [(1,)]

    def test_vacuous_divisor(self):
        dividend = Relation.of_ints(("q", "d"), [(1, 5), (2, 6)])
        divisor = Relation.of_ints(("d",), [])
        trace = trace_hash_division(dividend, divisor)
        assert sorted(trace.quotient) == [(1,), (2,)]
        assert len(trace.of_kind("emit")) == 2


quotient_keys = st.integers(min_value=0, max_value=5)
divisor_keys = st.integers(min_value=50, max_value=55)


@given(
    st.lists(st.tuples(quotient_keys, st.one_of(divisor_keys,
                                                st.integers(900, 903))),
             max_size=40),
    st.lists(st.tuples(divisor_keys), max_size=6),
)
@settings(max_examples=100, deadline=None)
def test_trace_is_a_third_independent_oracle(dividend_rows, divisor_rows):
    """The tracing implementation agrees with the set-semantics oracle
    on arbitrary inputs -- three independent implementations, one
    answer."""
    dividend = Relation.of_ints(("q", "d"), dividend_rows)
    divisor = Relation.of_ints(("d",), divisor_rows)
    expected = algebra.divide_set_semantics(dividend, divisor)
    trace = trace_hash_division(dividend, divisor)
    assert set(trace.quotient) == expected.as_set()
