"""Dataflow behaviour claims from Section 3.3.

Observation 1: hash-division "does not require a stop-and-go operator
on its input ... it can smoothly receive its inputs from a dataflow
query processing system."  Observation 2 (with early output): it can
also *produce* incrementally.  The naive algorithm streams its output
groups; the sort operator is stop-and-go on open but streams from its
final merge (footnote 2).
"""

from repro.core.hash_division import HashDivision
from repro.core.naive_division import NaiveDivision
from repro.executor.iterator import QueryIterator
from repro.executor.scan import RelationSource
from repro.executor.sort import ExternalSort
from repro.relalg.relation import Relation


class CountingSource(QueryIterator):
    """A source that counts how many tuples have been pulled."""

    def __init__(self, ctx, relation):
        super().__init__(ctx, relation.schema)
        self.relation = relation
        self.pulled = 0
        self._iter = None

    def _open(self):
        self._iter = iter(self.relation)

    def _next(self):
        row = next(self._iter, None)
        if row is not None:
            self.pulled += 1
        return row

    def _close(self):
        self._iter = None


def division_inputs(ctx):
    rows = [(q, d) for q in range(100) for d in range(4)]
    dividend = CountingSource(ctx, Relation.of_ints(("q", "d"), rows))
    divisor = RelationSource(ctx, Relation.of_ints(("d",), [(d,) for d in range(4)]))
    return dividend, divisor, len(rows)


class TestConsumerBehaviour:
    def test_hash_division_consumes_streamed_input(self, ctx):
        """No sort, no materialization: the dividend flows straight
        into the operator, one tuple at a time."""
        dividend, divisor, total = division_inputs(ctx)
        plan = HashDivision(dividend, divisor)
        plan.open()
        assert dividend.pulled == total  # consumed exactly once, fully
        assert ctx.io_stats.totals().transfers == 0  # nothing spooled
        plan.close()

    def test_early_output_pulls_lazily(self, ctx):
        dividend, divisor, total = division_inputs(ctx)
        plan = HashDivision(dividend, divisor, early_output=True)
        plan.open()
        assert dividend.pulled == 0  # nothing consumed yet
        first = plan.next()
        assert first is not None
        assert dividend.pulled < total  # produced before input exhausted
        plan.close()


class TestProducerBehaviour:
    def test_naive_division_streams_output_groups(self, ctx):
        """The merge scan emits each qualifying group as soon as it
        completes -- it never buffers the quotient."""
        rows = sorted((q, d) for q in range(100) for d in range(4))
        dividend = CountingSource(ctx, Relation.of_ints(("q", "d"), rows))
        divisor = RelationSource(
            ctx, Relation.of_ints(("d",), [(d,) for d in range(4)])
        )
        plan = NaiveDivision(dividend, divisor)
        plan.open()
        first = plan.next()
        assert first == (0,)
        # Only the first group (plus one lookahead tuple) was pulled.
        assert dividend.pulled <= 4 + 1
        plan.close()

    def test_sort_final_merge_streams(self):
        """Footnote 2: runs are prepared at open; the final merge is
        performed on demand by next()."""
        from repro.executor.iterator import ExecContext
        from repro.storage.config import StorageConfig

        config = StorageConfig(
            page_size=8192,
            sort_run_page_size=1024,
            buffer_size=64 * 1024,
            memory_limit=256 * 1024,
            sort_buffer_size=16 * 16,
        )
        ctx = ExecContext(config=config)
        rows = [(i * 17 % 101, i) for i in range(400)]
        plan = ExternalSort(
            RelationSource(ctx, Relation.of_ints(("k", "v"), rows)), ["k", "v"]
        )
        plan.open()
        reads_after_open = ctx.io_stats.counters("runs").reads
        first = plan.next()
        assert first == min(rows)
        # next() read from the runs (the on-demand final merge) --
        # the open() did not pre-drain them into memory.
        assert ctx.io_stats.counters("runs").reads >= reads_after_open
        plan.close()
