"""Tests for the synthetic workload generators."""

import pytest

from repro import divide
from repro.errors import WorkloadError
from repro.relalg import algebra
from repro.workloads.synthetic import (
    make_exact_division,
    make_with_duplicates,
    make_with_nonmatching,
    make_with_partial_quotients,
)


class TestExactDivision:
    def test_cardinalities_match_assumed_case(self):
        dividend, divisor = make_exact_division(25, 100)
        assert len(divisor) == 25
        assert len(dividend) == 25 * 100  # R = Q x S

    def test_record_shapes_match_paper(self):
        dividend, divisor = make_exact_division(5, 5)
        assert dividend.schema.record_size == 16
        assert divisor.schema.record_size == 8

    def test_quotient_is_every_candidate(self):
        dividend, divisor = make_exact_division(10, 30, seed=3)
        quotient = divide(dividend, divisor)
        assert quotient.as_set() == {(q,) for q in range(30)}

    def test_shuffle_determinism(self):
        a, _ = make_exact_division(5, 5, seed=1)
        b, _ = make_exact_division(5, 5, seed=1)
        assert a.rows == b.rows
        c, _ = make_exact_division(5, 5, seed=2)
        assert a.rows != c.rows

    def test_no_shuffle_is_product_order(self):
        dividend, _ = make_exact_division(2, 2, shuffle=False)
        assert [row[0] for row in dividend.rows] == [0, 0, 1, 1]

    def test_negative_sizes_rejected(self):
        with pytest.raises(WorkloadError):
            make_exact_division(-1, 5)


class TestNonMatching:
    def test_extra_tuples_added(self):
        dividend, divisor = make_with_nonmatching(5, 10, nonmatching_fraction=0.5)
        assert len(dividend) == 50 + 25

    def test_quotient_unchanged(self):
        dividend, divisor = make_with_nonmatching(5, 10, nonmatching_fraction=1.0)
        quotient = divide(dividend, divisor)
        assert quotient.as_set() == {(q,) for q in range(10)}

    def test_nonmatching_values_disjoint_from_divisor(self):
        dividend, divisor = make_with_nonmatching(5, 10, nonmatching_fraction=0.5)
        divisor_values = {d for (d,) in divisor}
        extra = [d for _, d in dividend.rows if d not in divisor_values]
        assert extra and all(d >= 9_000_000 for d in extra)

    def test_negative_fraction_rejected(self):
        with pytest.raises(WorkloadError):
            make_with_nonmatching(5, 5, nonmatching_fraction=-0.1)


class TestPartialQuotients:
    def test_expected_quotient_size(self):
        dividend, divisor, complete = make_with_partial_quotients(
            8, 50, complete_fraction=0.4, seed=5
        )
        assert complete == 20
        quotient = divide(dividend, divisor)
        assert len(quotient) == complete
        assert quotient.as_set() == {(q,) for q in range(complete)}

    def test_matches_oracle(self):
        dividend, divisor, _ = make_with_partial_quotients(6, 30, 0.5, seed=7)
        expected = algebra.divide_set_semantics(dividend, divisor)
        assert divide(dividend, divisor).set_equal(expected)

    def test_all_complete(self):
        dividend, divisor, complete = make_with_partial_quotients(4, 10, 1.0)
        assert complete == 10
        assert len(divide(dividend, divisor)) == 10

    def test_fraction_validated(self):
        with pytest.raises(WorkloadError):
            make_with_partial_quotients(4, 10, 1.5)

    def test_empty_divisor_rejected(self):
        with pytest.raises(WorkloadError):
            make_with_partial_quotients(0, 10, 0.5)


class TestDuplicates:
    def test_duplicates_added_but_quotient_stable(self):
        dividend, divisor = make_with_duplicates(5, 10, duplication_factor=1.0)
        assert len(dividend) == 100  # every tuple duplicated once
        assert dividend.has_duplicates()
        quotient = divide(dividend, divisor)  # hash-division: duplicate-safe
        assert quotient.as_set() == {(q,) for q in range(10)}

    def test_fractional_duplication(self):
        dividend, _ = make_with_duplicates(5, 10, duplication_factor=0.5, seed=9)
        assert 50 < len(dividend) < 100

    def test_zero_duplication_is_exact_case(self):
        dividend, _ = make_with_duplicates(5, 10, duplication_factor=0.0)
        assert len(dividend) == 50
        assert not dividend.has_duplicates()

    def test_negative_factor_rejected(self):
        with pytest.raises(WorkloadError):
            make_with_duplicates(5, 5, duplication_factor=-1)
