"""Tests for the Zipf-skewed workload generator."""

import pytest

from repro import divide
from repro.errors import WorkloadError
from repro.workloads.zipf import make_zipf_enrollment, zipf_weights


class TestWeights:
    def test_normalized(self):
        weights = zipf_weights(10, 1.0)
        assert sum(weights) == pytest.approx(1.0)

    def test_skew_zero_is_uniform(self):
        weights = zipf_weights(5, 0.0)
        assert all(w == pytest.approx(0.2) for w in weights)

    def test_higher_skew_concentrates_mass(self):
        mild = zipf_weights(100, 0.5)
        strong = zipf_weights(100, 2.0)
        assert strong[0] > mild[0]
        assert strong[-1] < mild[-1]

    def test_monotone_decreasing(self):
        weights = zipf_weights(20, 1.0)
        assert all(a >= b for a, b in zip(weights, weights[1:]))

    def test_validation(self):
        with pytest.raises(WorkloadError):
            zipf_weights(0, 1.0)
        with pytest.raises(WorkloadError):
            zipf_weights(5, -1.0)


class TestEnrollment:
    def test_shapes(self):
        dividend, divisor, guaranteed = make_zipf_enrollment(
            divisor_tuples=20,
            quotient_candidates=50,
            enrollments_per_candidate=5,
            completionists=3,
            seed=1,
        )
        assert len(divisor) == 20
        assert guaranteed == 3
        # 3 completionists x 20 + 47 x 5 enrolments.
        assert len(dividend) == 3 * 20 + 47 * 5

    def test_completionists_qualify(self):
        dividend, divisor, guaranteed = make_zipf_enrollment(
            10, 30, 4, completionists=5, seed=2
        )
        quotient = divide(dividend, divisor)
        assert {(q,) for q in range(5)} <= quotient.as_set()

    def test_skew_makes_popular_values_common(self):
        dividend, _, _ = make_zipf_enrollment(
            50, 200, 5, skew=2.0, seed=3
        )
        from collections import Counter

        counts = Counter(d for _, d in dividend.rows)
        most_common = counts.most_common(1)[0][1]
        least_common = min(counts.values()) if counts else 0
        assert most_common > 5 * max(1, least_common)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            make_zipf_enrollment(5, 10, 6)  # more enrolments than values
        with pytest.raises(WorkloadError):
            make_zipf_enrollment(5, 10, 3, completionists=11)
