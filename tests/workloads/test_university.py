"""Tests for the university workload generator."""

import pytest

from repro import divide
from repro.errors import WorkloadError
from repro.relalg import algebra
from repro.workloads.university import (
    figure2_courses,
    figure2_transcript,
    make_university,
)


class TestFigure2:
    def test_exact_instance(self):
        transcript = figure2_transcript()
        assert transcript.rows == [
            ("Ann", "Database1"),
            ("Barb", "Database2"),
            ("Ann", "Database2"),
            ("Barb", "Optics"),
        ]
        assert figure2_courses().rows == [("Database1",), ("Database2",)]


class TestGenerator:
    def test_sizes(self):
        workload = make_university(
            students=20, courses=10, database_courses=3, completionists=2
        )
        assert len(workload.courses) == 10
        assert workload.database_course_count == 3
        assert len(workload.all_courses_divisor()) == 10
        assert len(workload.database_courses_divisor()) == 3

    def test_completionists_take_everything(self):
        workload = make_university(
            students=10, courses=5, database_courses=2, completionists=3,
            enrollment_probability=0.1, seed=4,
        )
        quotient = divide(
            workload.enrollment_dividend(), workload.all_courses_divisor()
        )
        # Every completionist qualifies; others may by chance.
        assert {(s,) for s in range(3)} <= set(quotient.rows)

    def test_first_example_query_consistency(self):
        workload = make_university(
            students=30, courses=8, database_courses=3, completionists=4, seed=1
        )
        expected = algebra.divide_set_semantics(
            workload.enrollment_dividend(), workload.all_courses_divisor()
        )
        for algorithm in ("hash", "naive"):
            got = divide(
                workload.enrollment_dividend(),
                workload.all_courses_divisor(),
                algorithm=algorithm,
            )
            assert got.set_equal(expected)

    def test_second_example_query_needs_join(self):
        """The paper's second example: divisor restricted to database
        courses, so counting strategies require with_join=True."""
        workload = make_university(
            students=30, courses=8, database_courses=3, completionists=4, seed=2
        )
        dividend = workload.enrollment_dividend()
        divisor = workload.database_courses_divisor()
        expected = algebra.divide_set_semantics(dividend, divisor)
        assert divide(dividend, divisor).set_equal(expected)
        assert divide(
            dividend, divisor, algorithm="hash-aggregate", with_join=True
        ).set_equal(expected)

    def test_determinism_per_seed(self):
        a = make_university(10, 5, 2, 1, seed=42)
        b = make_university(10, 5, 2, 1, seed=42)
        assert a.transcript.bag_equal(b.transcript)
        c = make_university(10, 5, 2, 1, seed=43)
        assert not a.transcript.bag_equal(c.transcript)

    def test_database_titles_match_predicate(self):
        workload = make_university(5, 6, 4, 0)
        titles = workload.courses.column("title")
        assert sum("database" in t for t in titles) == 4


class TestValidation:
    def test_too_many_database_courses(self):
        with pytest.raises(WorkloadError):
            make_university(5, 3, 4, 0)

    def test_too_many_completionists(self):
        with pytest.raises(WorkloadError):
            make_university(3, 3, 1, 4)

    def test_probability_range(self):
        with pytest.raises(WorkloadError):
            make_university(3, 3, 1, 1, enrollment_probability=1.5)
