"""Tests for the per-algorithm analytical cost formulas."""

import pytest

from repro.errors import ExperimentError
from repro.costmodel.formulas import (
    DivisionScenario,
    hash_aggregation_cost,
    hash_division_cost,
    naive_division_cost,
    sort_aggregation_cost,
)


@pytest.fixture
def smallest():
    """|S| = |Q| = 25, the top-left Table 2 cell."""
    return DivisionScenario(25, 25)


class TestScenario:
    def test_derived_cardinalities(self, smallest):
        assert smallest.dividend_tuples == 625
        assert smallest.dividend_pages == pytest.approx(125.0)
        assert smallest.divisor_pages == pytest.approx(2.5)
        assert smallest.quotient_pages == pytest.approx(2.5)

    def test_sizes_validated(self):
        with pytest.raises(ExperimentError):
            DivisionScenario(0, 25)


class TestBreakdowns:
    def test_components_sum_to_total(self, smallest):
        breakdown = hash_division_cost(smallest)
        assert breakdown.total_ms == pytest.approx(sum(breakdown.components.values()))

    def test_naive_division_components(self, smallest):
        breakdown = naive_division_cost(smallest)
        assert set(breakdown.components) == {
            "sort dividend", "sort divisor", "division scan",
        }
        # Sorting the dividend dominates the naive algorithm.
        assert breakdown.components["sort dividend"] > breakdown.components["division scan"]

    def test_hash_division_cell(self, smallest):
        # (r+s) SIO + |S| Hash + |R| (2(Hash + 2 Comp) + Bit)
        expected = 127.5 * 15 + 25 * 0.03 + 625 * (2 * (0.03 + 2 * 0.03) + 0.003)
        assert hash_division_cost(smallest).total_ms == pytest.approx(expected)

    def test_hash_aggregation_no_join_cell(self, smallest):
        expected = 125 * 15 + 625 * (0.03 + 2 * 0.03) + 2.5 * 15
        assert hash_aggregation_cost(smallest).total_ms == pytest.approx(expected)

    def test_with_join_strictly_more_expensive(self, smallest):
        for costing in (sort_aggregation_cost, hash_aggregation_cost):
            assert (
                costing(smallest, True).total_ms
                > costing(smallest, False).total_ms
            )

    def test_sort_agg_with_join_doubles_no_join_plus_merge(self, smallest):
        no_join = sort_aggregation_cost(smallest, False).total_ms
        with_join = sort_aggregation_cost(smallest, True).total_ms
        merge_join = 127.5 * 15 + 625 * 25 * 0.03
        assert with_join == pytest.approx(2 * no_join + merge_join)


class TestRanking:
    @pytest.mark.parametrize("s,q", [(25, 25), (100, 100), (400, 400)])
    def test_paper_ranking_holds_at_every_size(self, s, q):
        scenario = DivisionScenario(s, q)
        naive = naive_division_cost(scenario).total_ms
        sort_nj = sort_aggregation_cost(scenario, False).total_ms
        sort_wj = sort_aggregation_cost(scenario, True).total_ms
        hash_nj = hash_aggregation_cost(scenario, False).total_ms
        hash_wj = hash_aggregation_cost(scenario, True).total_ms
        hash_div = hash_division_cost(scenario).total_ms
        # Section 4.6's observations:
        assert sort_nj < naive < sort_wj          # sort-agg ~ naive; join kills it
        assert hash_nj < hash_div < hash_wj       # hash-division between the two
        assert hash_wj < sort_nj                  # hashing beats sorting
        # Hash-division within a few percent of the fastest.
        assert hash_div / hash_nj < 1.05

    def test_hash_division_beats_aggregation_when_join_needed(self):
        scenario = DivisionScenario(100, 100)
        assert (
            hash_division_cost(scenario).total_ms
            < hash_aggregation_cost(scenario, True).total_ms
        )
