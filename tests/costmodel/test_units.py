"""Tests for the Table 1 cost units."""

import pytest

from repro.costmodel.units import PAPER_UNITS, CostUnits
from repro.metering import CpuCounters


class TestTable1Values:
    def test_paper_values(self):
        units = PAPER_UNITS
        assert units.rio == 30.0
        assert units.sio == 15.0
        assert units.comp == 0.03
        assert units.hash_ == 0.03
        assert units.move == 0.4
        assert units.bit == 0.003

    def test_as_table_has_six_units(self):
        table = PAPER_UNITS.as_table()
        assert [row[0] for row in table] == [
            "RIO", "SIO", "Comp", "Hash", "Move", "Bit",
        ]
        assert all(len(row) == 3 for row in table)


class TestCpuWeighting:
    def test_weights_each_counter(self):
        counters = CpuCounters(comparisons=100, hashes=50, moves=2.0, bit_ops=1000)
        expected = 100 * 0.03 + 50 * 0.03 + 2.0 * 0.4 + 1000 * 0.003
        assert PAPER_UNITS.cpu_cost_ms(counters) == pytest.approx(expected)

    def test_zero_counters_cost_nothing(self):
        assert PAPER_UNITS.cpu_cost_ms(CpuCounters()) == 0.0

    def test_custom_units(self):
        units = CostUnits(comp=1.0, hash_=0, move=0, bit=0)
        counters = CpuCounters(comparisons=7)
        assert units.cpu_cost_ms(counters) == 7.0


class TestCounters:
    def test_merge_and_delta(self):
        a = CpuCounters(comparisons=1, hashes=2)
        b = CpuCounters(comparisons=10, hashes=20, bit_ops=5)
        delta = b.delta_since(a)
        assert delta.comparisons == 9 and delta.hashes == 18 and delta.bit_ops == 5
        a.merge(delta)
        assert a.comparisons == 10 and a.hashes == 20

    def test_snapshot_is_independent(self):
        counters = CpuCounters(comparisons=1)
        snap = counters.snapshot()
        counters.comparisons += 5
        assert snap.comparisons == 1

    def test_tuple_moves_convert_to_pages(self):
        counters = CpuCounters()
        counters.add_tuple_moves(tuple_count=512, tuple_bytes=16, page_bytes=8192)
        assert counters.moves == pytest.approx(1.0)

    def test_tuple_moves_reject_bad_page_size(self):
        with pytest.raises(ValueError):
            CpuCounters().add_tuple_moves(1, 1, 0)
