"""Tests for the cost-based algorithm advisor."""

import pytest

from repro.errors import ExperimentError
from repro.costmodel.advisor import (
    DivisionEstimates,
    choose_strategy,
    rank_strategies,
)
from repro.core.divide import divide_with_advisor
from repro.relalg import algebra
from repro.relalg.relation import Relation


def paper_point(s, q, **flags):
    return DivisionEstimates(
        dividend_tuples=s * q, divisor_tuples=s, quotient_tuples=q, **flags
    )


class TestRanking:
    @pytest.mark.parametrize("s,q", [(25, 25), (100, 100), (400, 400)])
    def test_clean_inputs_pick_hash_aggregation(self, s, q):
        """Section 7: hash-agg without semi-join is the fastest when it
        applies; the advisor agrees at every Table 2 size point."""
        assert choose_strategy(paper_point(s, q)).strategy == "hash-agg no join"

    @pytest.mark.parametrize("s,q", [(25, 25), (400, 400)])
    def test_restricted_divisor_picks_hash_division(self, s, q):
        """Once a semi-join would be required, hash-division wins --
        the paper's central claim."""
        picked = choose_strategy(paper_point(s, q, divisor_restricted=True))
        assert picked.strategy == "hash-division"

    def test_restricted_divisor_excludes_no_join_strategies(self):
        ranked = rank_strategies(paper_point(100, 100, divisor_restricted=True))
        names = [entry.strategy for entry in ranked]
        assert "sort-agg no join" not in names
        assert "hash-agg no join" not in names
        assert "sort-agg with join" in names

    def test_duplicates_pick_hash_division(self):
        picked = choose_strategy(paper_point(100, 100, may_contain_duplicates=True))
        assert picked.strategy == "hash-division"
        ranked = rank_strategies(paper_point(100, 100, may_contain_duplicates=True))
        counting = [e for e in ranked if "agg" in e.strategy]
        assert all("duplicate" in entry.note for entry in counting)

    def test_empty_divisor_only_direct_algorithms(self):
        ranked = rank_strategies(
            DivisionEstimates(dividend_tuples=1000, divisor_tuples=0)
        )
        assert [entry.strategy for entry in ranked] == ["hash-division", "naive"]

    def test_ranking_is_sorted(self):
        ranked = rank_strategies(paper_point(100, 100))
        costs = [entry.estimated_ms for entry in ranked]
        assert costs == sorted(costs)
        assert len(ranked) == 6

    def test_estimates_validated(self):
        with pytest.raises(ExperimentError):
            DivisionEstimates(dividend_tuples=-1, divisor_tuples=5)

    def test_quotient_defaults_to_assumed_case(self):
        estimates = DivisionEstimates(dividend_tuples=1000, divisor_tuples=10)
        assert estimates.estimated_quotient == 100


class TestDivideWithAdvisor:
    @pytest.fixture
    def inputs(self):
        dividend = Relation.of_ints(
            ("q", "d"), [(q, d) for q in range(15) for d in range(4)]
        )
        divisor = Relation.of_ints(("d",), [(d,) for d in range(4)])
        return dividend, divisor

    def test_returns_correct_quotient_and_strategy(self, inputs):
        dividend, divisor = inputs
        expected = algebra.divide_set_semantics(dividend, divisor)
        quotient, strategy = divide_with_advisor(dividend, divisor)
        assert quotient.set_equal(expected)
        assert strategy == "hash-agg no join"

    def test_restricted_divisor_switches_to_hash_division(self, inputs):
        dividend, divisor = inputs
        quotient, strategy = divide_with_advisor(
            dividend, divisor, divisor_restricted=True
        )
        assert strategy == "hash-division"
        assert len(quotient) == 15

    def test_duplicates_detected_automatically(self, inputs):
        dividend, divisor = inputs
        doubled = Relation.of_ints(("q", "d"), dividend.rows + dividend.rows)
        quotient, strategy = divide_with_advisor(doubled, divisor)
        assert strategy == "hash-division"
        assert len(quotient) == 15

    def test_correct_even_with_nonmatching_tuples_when_flagged(self):
        dividend = Relation.of_ints(
            ("q", "d"), [(1, 5), (1, 6), (2, 5), (2, 99)]
        )
        divisor = Relation.of_ints(("d",), [(5,), (6,)])
        quotient, strategy = divide_with_advisor(
            dividend, divisor, divisor_restricted=True
        )
        assert quotient.rows == [(1,)]
        # The advisor never picks a no-join counting strategy here.
        assert "no join" not in strategy

    def test_empty_divisor(self, inputs):
        dividend, _ = inputs
        empty = Relation.of_ints(("d",), [])
        quotient, strategy = divide_with_advisor(dividend, empty)
        assert strategy == "hash-division"
        assert len(quotient) == 15


class TestAdvisorProperty:
    def test_advisor_pick_is_always_correct(self):
        """Whatever the advisor picks, running it yields the oracle
        quotient -- across a grid of input shapes."""
        import random

        from repro.relalg import algebra

        rng = random.Random(31)
        for restricted in (False, True):
            for _ in range(10):
                ns, nq = rng.randint(1, 10), rng.randint(1, 12)
                dv = rng.sample(range(1000), ns)
                rows = []
                for q in range(nq):
                    rows += [(q, d) for d in rng.sample(dv, rng.randint(0, ns))]
                    if restricted:
                        rows += [(q, 5000 + q)]
                dividend = Relation.of_ints(("q", "d"), rows)
                divisor = Relation.of_ints(("d",), [(d,) for d in dv])
                expected = algebra.divide_set_semantics(dividend, divisor)
                quotient, _strategy = divide_with_advisor(
                    dividend, divisor, divisor_restricted=restricted
                )
                assert quotient.set_equal(expected)
