"""Tests for the Section 4.1 sorting cost formulas."""

import math

import pytest

from repro.errors import ExperimentError
from repro.costmodel.sorting import (
    external_merge_sort_cost,
    merge_passes,
    quicksort_cost,
)
from repro.costmodel.units import PAPER_UNITS


class TestQuicksort:
    def test_formula(self):
        # 2 n log2 n Comp for n = 25: the divisor sort in Table 2.
        assert quicksort_cost(25) == pytest.approx(2 * 25 * math.log2(25) * 0.03)

    def test_trivial_inputs_free(self):
        assert quicksort_cost(0) == 0.0
        assert quicksort_cost(1) == 0.0


class TestMergePasses:
    def test_fits_in_memory_means_zero_passes(self):
        assert merge_passes(50, 100) == 0.0
        assert merge_passes(100, 100) == 0.0

    def test_paper_mode_uses_one_pass_for_moderate_spill(self):
        # r = 125, m = 100: log_100(1.25) ~ 0.05, the paper uses 1 pass.
        assert merge_passes(125, 100, mode="paper") == 1.0

    def test_paper_mode_matches_table2_largest_point(self):
        # r = 32000, m = 100: log_100(320) ~ 1.25; the printed Table 2
        # figure for |S| = |Q| = 400 implies exactly one pass.
        assert merge_passes(32000, 100, mode="paper") == 1.0

    def test_strict_mode_takes_the_ceiling(self):
        assert merge_passes(125, 100, mode="strict") == 1.0
        assert merge_passes(32000, 100, mode="strict") == 2.0

    def test_unknown_mode_rejected(self):
        with pytest.raises(ExperimentError):
            merge_passes(200, 100, mode="fantasy")

    def test_tiny_memory_rejected(self):
        with pytest.raises(ExperimentError):
            merge_passes(10, 1)


class TestExternalMergeSort:
    def test_in_memory_falls_back_to_quicksort(self):
        assert external_merge_sort_cost(100, 10, 100) == quicksort_cost(100)

    def test_table2_dividend_sort_cost(self):
        # |R| = 625, r = 125, m = 100: the smallest Table 2 point.
        cost = external_merge_sort_cost(625, 125, 100)
        per_pass = 125 * (2 * 30 + 0.4) + 625 * math.log2(100) * 0.03
        initial = 2 * 625 * math.log2(625 * 100 / 125) * 0.03
        assert cost == pytest.approx(per_pass + initial)

    def test_cost_grows_with_relation_size(self):
        small = external_merge_sort_cost(625, 125, 100)
        large = external_merge_sort_cost(2500, 500, 100)
        assert large > small

    def test_custom_units_scale_io(self):
        from repro.costmodel.units import CostUnits

        doubled_io = CostUnits(rio=60.0)
        base = external_merge_sort_cost(625, 125, 100, PAPER_UNITS)
        more = external_merge_sort_cost(625, 125, 100, doubled_io)
        assert more > base
