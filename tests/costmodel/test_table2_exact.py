"""Table 2 reproduction: every printed cell, to rounding.

This is the strongest claim the cost-model package makes: the Section 4
formulas, as implemented, regenerate the paper's Table 2 with a worst
relative deviation below 0.02% (pure rounding of the printed integers).
"""

import pytest

from repro.costmodel.scenarios import (
    PAPER_TABLE2,
    TABLE2_COLUMNS,
    TABLE2_SIZES,
    scenario_costs,
    table2_grid,
)
from repro.costmodel.formulas import DivisionScenario


class TestGridShape:
    def test_nine_size_points(self):
        assert len(TABLE2_SIZES) == 9
        assert len(PAPER_TABLE2) == 9

    def test_six_columns(self):
        assert len(TABLE2_COLUMNS) == 6

    def test_grid_rows_carry_paper_figures(self):
        grid = table2_grid()
        assert len(grid) == 9
        for row in grid:
            assert set(row["costs"]) == set(TABLE2_COLUMNS)
            assert set(row["paper"]) == set(TABLE2_COLUMNS)


@pytest.mark.parametrize("size", TABLE2_SIZES, ids=lambda s: f"S{s[0]}-Q{s[1]}")
@pytest.mark.parametrize("column", TABLE2_COLUMNS)
def test_every_cell_matches_paper(size, column):
    scenario = DivisionScenario(*size)
    computed = scenario_costs(scenario)[column].total_ms
    printed = PAPER_TABLE2[size][TABLE2_COLUMNS.index(column)]
    assert computed == pytest.approx(printed, rel=2e-4), (
        f"{column} at |S|={size[0]}, |Q|={size[1]}: "
        f"computed {computed:.1f}, paper {printed}"
    )


def test_worst_case_deviation_bound():
    from repro.experiments import table2

    assert table2.max_deviation() < 2e-4
