"""Disk defenses under injected faults: checksums, retry, backoff.

Parametrized over both device implementations -- the fault machinery
lives in :class:`~repro.storage.diskbase.PagedDiskBase`, so the two
simulations must misbehave (and defend) identically.
"""

import pytest

from repro.errors import ChecksumError, DiskFaultError
from repro.faults import BackoffClock, FaultInjector, FaultRule, RetryPolicy
from repro.storage.disk import SimulatedDisk
from repro.storage.filedisk import FileBackedDisk

PAGE = 64


@pytest.fixture(params=["memory", "file"])
def make_disk(request, tmp_path):
    disks = []

    def factory(**kwargs):
        if request.param == "memory":
            disk = SimulatedDisk("data", PAGE, **kwargs)
        else:
            disk = FileBackedDisk(
                "data", PAGE, tmp_path / f"disk{len(disks)}.bin", **kwargs
            )
        disks.append(disk)
        return disk

    yield factory
    for disk in disks:
        disk.close()


def _page(disk, fill=0xAB):
    page_no = disk.allocate_page()
    disk.write_page(page_no, bytes([fill]) * PAGE)
    return page_no


class TestTransientFaults:
    def test_transient_read_fault_is_retried_to_success(self, make_disk):
        disk = make_disk()
        page_no = _page(disk)
        clock = BackoffClock()
        disk.attach_faults(
            FaultInjector([FaultRule("transient", op="read", max_fires=2)], seed=0),
            backoff_clock=clock,
        )
        data = disk.read_page(page_no)
        assert bytes(data) == b"\xab" * PAGE
        assert disk.fault_stats.transient_faults == 2
        assert disk.fault_stats.retries == 2
        # Capped exponential backoff: 1 ms then 2 ms.
        assert clock.waits == 2
        assert clock.waited_ms == pytest.approx(1.0 + 2.0)
        assert disk.fault_stats.backoff_ms == pytest.approx(clock.waited_ms)

    def test_retried_transfers_are_fully_metered(self, make_disk):
        """A retry is a real transfer: the Table 3 meters must count the
        attempt that succeeded AND every accounted attempt before it --
        but never the attempts that failed before reaching the device."""
        disk = make_disk()
        page_no = _page(disk)
        before = disk.stats.devices["data"].reads
        disk.attach_faults(
            FaultInjector([FaultRule("transient", op="read", max_fires=2)], seed=0)
        )
        disk.read_page(page_no)
        # The two failed attempts raised *before* accounting; only the
        # successful third attempt reached the device.
        assert disk.stats.devices["data"].reads == before + 1

    def test_retry_budget_exhaustion_raises_typed_error(self, make_disk):
        disk = make_disk()
        page_no = _page(disk)
        disk.attach_faults(
            FaultInjector([FaultRule("transient", op="read")], seed=0),
            retry_policy=RetryPolicy(max_attempts=3),
        )
        with pytest.raises(DiskFaultError) as excinfo:
            disk.read_page(page_no)
        assert excinfo.value.transient
        assert disk.fault_stats.retries == 2  # attempts - 1

    def test_permanent_fault_propagates_without_retry(self, make_disk):
        disk = make_disk()
        page_no = _page(disk)
        clock = BackoffClock()
        disk.attach_faults(
            FaultInjector([FaultRule("permanent", op="read")], seed=0),
            backoff_clock=clock,
        )
        with pytest.raises(DiskFaultError) as excinfo:
            disk.read_page(page_no)
        assert not excinfo.value.transient
        assert disk.fault_stats.retries == 0
        assert clock.waits == 0


class TestChecksums:
    def test_transient_corruption_is_healed_by_retry(self, make_disk):
        disk = make_disk()
        page_no = _page(disk)
        disk.attach_faults(
            FaultInjector(
                [FaultRule("corrupt", op="read", max_fires=1, persistent=False)],
                seed=0,
            )
        )
        # First attempt reads a flipped copy -> ChecksumError -> retry
        # re-reads the intact stored image.
        assert bytes(disk.read_page(page_no)) == b"\xab" * PAGE
        assert disk.fault_stats.corruptions == 1
        assert disk.fault_stats.checksum_failures == 1
        assert disk.fault_stats.retries == 1

    def test_persistent_corruption_is_a_typed_error(self, make_disk):
        """A flipped *stored* image cannot be healed by re-reading: after
        the retry budget, the ChecksumError reaches the caller -- never
        silently corrupted data."""
        disk = make_disk()
        page_no = _page(disk)
        disk.attach_faults(
            FaultInjector(
                [FaultRule("corrupt", op="read", max_fires=1, persistent=True)],
                seed=0,
            )
        )
        with pytest.raises(ChecksumError, match="checksum mismatch"):
            disk.read_page(page_no)

    def test_torn_write_detected_on_next_read(self, make_disk):
        disk = make_disk()
        page_no = disk.allocate_page()
        disk.attach_faults(
            FaultInjector([FaultRule("torn", op="write", max_fires=1)], seed=0)
        )
        disk.write_page(page_no, b"\xcd" * PAGE)
        assert disk.fault_stats.torn_writes == 1
        disk.attach_faults(None)  # the fault is durable; detection is not injected
        with pytest.raises(ChecksumError):
            disk.read_page(page_no)

    def test_silent_write_corruption_detected_on_read(self, make_disk):
        disk = make_disk()
        page_no = disk.allocate_page()
        disk.attach_faults(
            FaultInjector(
                [FaultRule("corrupt", op="write", max_fires=1, bit=13)], seed=0
            )
        )
        disk.write_page(page_no, b"\xee" * PAGE)
        disk.attach_faults(None)
        with pytest.raises(ChecksumError):
            disk.read_page(page_no)

    def test_rewrite_replaces_the_checksum(self, make_disk):
        disk = make_disk()
        page_no = _page(disk, fill=0x11)
        disk.write_page(page_no, b"\x22" * PAGE)
        assert bytes(disk.read_page(page_no)) == b"\x22" * PAGE

    def test_free_page_drops_the_checksum(self, make_disk):
        """free_page zeroes the image without accounting; a recycled page
        must not be checked against the dead file's CRC."""
        disk = make_disk()
        page_no = _page(disk)
        disk.free_page(page_no)
        recycled = disk.allocate_page()
        assert recycled == page_no
        assert bytes(disk.read_page(recycled)) == bytes(PAGE)


class TestLatencyAndCleanup:
    def test_latency_accumulates_off_the_cost_meters(self, make_disk):
        disk = make_disk()
        page_no = _page(disk)
        cost_before = disk.stats.cost_ms("data")
        reads_before = disk.stats.devices["data"].reads
        disk.attach_faults(
            FaultInjector([FaultRule("latency", latency_ms=7.5)], seed=0)
        )
        disk.read_page(page_no)
        assert disk.fault_stats.latency_ms == pytest.approx(7.5)
        # The transfer itself is metered normally; the injected latency
        # is *not* smuggled into the Table 3 account.
        assert disk.stats.devices["data"].reads == reads_before + 1
        expected_delta = disk.stats.cost_ms("data") - cost_before
        assert expected_delta > 0

    def test_free_page_bypasses_fault_injection(self, make_disk):
        disk = make_disk()
        page_no = _page(disk)
        injector = FaultInjector([FaultRule("permanent", op="write")], seed=0)
        disk.attach_faults(injector)
        disk.free_page(page_no)  # must not raise
        assert injector.operations_seen == 0


class TestDisabledHooksAreFree:
    def test_no_injector_means_injector_never_consulted(self, make_disk):
        """The pay-for-use contract: without an injector the fast path
        runs; nothing on the defense path fires or allocates."""
        disk = make_disk()
        page_no = _page(disk)
        for _ in range(5):
            disk.read_page(page_no)
        stats = disk.fault_stats
        assert stats.to_dict() == {
            "faults_injected": 0,
            "transient_faults": 0,
            "permanent_faults": 0,
            "corruptions": 0,
            "torn_writes": 0,
            "checksum_failures": 0,
            "retries": 0,
            "backoff_ms": 0.0,
            "latency_ms": 0.0,
        }
        assert disk.backoff_clock.waits == 0

    def test_attach_then_detach_restores_the_fast_path(self, make_disk):
        disk = make_disk()
        page_no = _page(disk)
        injector = FaultInjector([FaultRule("transient", op="read")], seed=0)
        disk.attach_faults(injector, retry_policy=RetryPolicy(max_attempts=2))
        with pytest.raises(DiskFaultError):
            disk.read_page(page_no)
        disk.attach_faults(None)
        ops_after_detach = injector.operations_seen
        assert bytes(disk.read_page(page_no)) == b"\xab" * PAGE
        assert injector.operations_seen == ops_after_detach


class TestBothDevicesAgree:
    def test_same_schedule_on_both_backends(self, tmp_path):
        """The fault machinery lives in the base class: the same seed
        against the same access sequence fires the same faults on both
        device implementations."""

        def drive(disk):
            disk.attach_faults(
                FaultInjector(
                    [FaultRule("transient", op="read", probability=0.4)], seed=11
                ),
                retry_policy=RetryPolicy(max_attempts=2),
            )
            outcomes = []
            pages = [disk.allocate_page() for _ in range(4)]
            for page_no in pages:
                disk.write_page(page_no, bytes([page_no & 0xFF]) * PAGE)
            for n in range(24):
                try:
                    disk.read_page(pages[n % 4])
                    outcomes.append("ok")
                except DiskFaultError:
                    outcomes.append("fault")
            schedule = [event.to_dict() for event in disk.injector.schedule]
            return outcomes, schedule

        mem = SimulatedDisk("data", PAGE)
        fil = FileBackedDisk("data", PAGE, tmp_path / "parity.bin")
        try:
            assert drive(mem) == drive(fil)
        finally:
            mem.close()
            fil.close()
