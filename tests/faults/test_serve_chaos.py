"""The chaos ``serve`` scenario: faulted concurrent serving stays sane.

Invariant per round: every request either answers with the serial-order
oracle's rows or fails with a typed :class:`~repro.errors.ReproError`
(timeout / shed / storage fault), and after the drain no grants, locks,
frames, or pool bytes are leaked.
"""

from repro.faults.chaos import (
    CHAOS_SCENARIOS,
    run_serve_campaign,
)


def test_serve_is_a_registered_scenario():
    assert "serve" in CHAOS_SCENARIOS


def test_campaign_upholds_the_invariant():
    report = run_serve_campaign(seed=2026, rounds=4)
    assert report.ok, report.violations()
    assert sum(r.requests for r in report.records) > 0
    # At least one round actually injected something (default rules
    # draw 1-3 programmes per round; across 4 rounds one fires).
    assert any(r.rules for r in report.records)


def test_campaign_is_deterministic_modulo_wall_clock():
    a = run_serve_campaign(seed=99, rounds=3)
    b = run_serve_campaign(seed=99, rounds=3)
    da, db = a.to_dict(), b.to_dict()
    da.pop("elapsed_s")
    db.pop("elapsed_s")
    assert da == db
    assert [r.trace_digest for r in a.records] == [
        r.trace_digest for r in b.records
    ]


def test_max_seconds_only_truncates():
    full = run_serve_campaign(seed=7, rounds=3)
    capped = run_serve_campaign(seed=7, rounds=3, max_seconds=0.0)
    assert len(capped.records) == 1  # always runs at least one round
    assert capped.records[0].to_dict() == full.records[0].to_dict()


def test_tight_budget_rounds_shed_or_degrade_typed():
    report = run_serve_campaign(seed=5, rounds=3, memory_budget=4096)
    assert report.ok, report.violations()


def test_summary_line_mentions_the_verdict():
    report = run_serve_campaign(seed=3, rounds=2)
    line = report.summary_line()
    assert "serve chaos seed 3" in line
    assert ("OK" in line) or ("VIOLATED" in line)
