"""Property-based chaos campaigns (hypothesis).

The one property that matters, quantified over fault schedules:
**correct answer or typed error, never silent corruption** -- and a
clean stack either way.  Each example derives a fault programme, a
memory budget, and a workload from one drawn seed, runs the full
planner -> executor path over cold stored relations on fault-injected
devices, and asserts the whole invariant bundle checked by
:func:`repro.faults.chaos.run_chaos_query`.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.faults import FaultInjector, FaultRule, schedule_to_jsonl
from repro.faults.chaos import (
    default_chaos_rules,
    run_campaign,
    run_chaos_query,
)
from repro.workloads.synthetic import make_exact_division

SEEDS = st.integers(min_value=0, max_value=2**32 - 1)


def _example(run_seed: int):
    """One derived chaos example: (dividend, divisor, rules, budget)."""
    rng = random.Random(run_seed ^ 0x5DEECE66D)
    rules = default_chaos_rules(rng)
    budget = rng.choice([None, None, 2048, 8192])
    dividend, divisor = make_exact_division(4, 12, seed=run_seed & 0xFFFF)
    return dividend, divisor, rules, budget


@settings(max_examples=220, deadline=None)
@given(run_seed=SEEDS)
def test_correct_answer_or_typed_error_never_silent_corruption(run_seed):
    dividend, divisor, rules, budget = _example(run_seed)
    outcome = run_chaos_query(
        dividend, divisor, rules, seed=run_seed, memory_budget=budget
    )
    assert outcome.ok, (
        f"chaos invariant violated (seed {run_seed}, rules "
        f"{[r.to_dict() for r in rules]}): {outcome.violations}"
    )
    assert outcome.outcome in ("answer", "typed-error")
    if outcome.outcome == "answer":
        assert outcome.result_tuples == outcome.oracle_tuples
    else:
        assert outcome.error_type  # a *named* ReproError subtype


@settings(max_examples=30, deadline=None)
@given(run_seed=SEEDS)
def test_same_seed_replays_a_byte_identical_schedule(run_seed):
    dividend, divisor, rules, budget = _example(run_seed)

    def schedule():
        outcome = run_chaos_query(
            dividend, divisor, rules, seed=run_seed, memory_budget=budget
        )
        return schedule_to_jsonl(outcome.schedule), outcome.outcome

    assert schedule() == schedule()


@settings(max_examples=25, deadline=None)
@given(run_seed=SEEDS, data=st.data())
def test_fault_free_runs_always_answer(run_seed, data):
    """With no rules armed, every query must return the oracle answer --
    the chaos harness itself must not perturb execution."""
    dividend, divisor = make_exact_division(3, 9, seed=run_seed & 0xFFFF)
    outcome = run_chaos_query(dividend, divisor, rules=[], seed=run_seed)
    assert outcome.ok
    assert outcome.outcome == "answer"
    assert outcome.result_tuples == outcome.oracle_tuples
    assert outcome.schedule == []
    assert outcome.backoff_waits == 0


def test_campaign_is_deterministic_and_clean():
    a = run_campaign(seed=1234, queries=12)
    b = run_campaign(seed=1234, queries=12)
    assert a.ok, a.violations()
    assert a.schedule_jsonl() == b.schedule_jsonl()
    assert a.answers + a.typed_errors == 12
    assert [r.seed for r in a.records] == [r.seed for r in b.records]


def test_campaign_max_seconds_only_truncates():
    full = run_campaign(seed=77, queries=8)
    capped = run_campaign(seed=77, queries=8, max_seconds=0.0)
    assert len(capped.records) == 1  # checked after the first run
    # The one run that did happen is identical to the full campaign's.
    assert (
        capped.records[0].outcome.to_dict() == full.records[0].outcome.to_dict()
    )


def test_rules_can_be_pinned_across_a_campaign():
    rules = [FaultRule("transient", op="read", probability=0.1)]
    report = run_campaign(seed=5, queries=6, rules=rules)
    assert report.ok, report.violations()
    assert all(record.rules == rules for record in report.records)


def test_untyped_errors_propagate_out_of_the_harness():
    """A non-ReproError is a bug, not an outcome: the harness must not
    swallow it into 'typed-error'."""
    dividend, divisor = make_exact_division(2, 4, seed=0)

    class Sabotaged(FaultInjector):
        def on_disk_op(self, *args, **kwargs):
            raise RuntimeError("untyped bug")

    import pytest

    from repro.faults import chaos as chaos_mod

    original = chaos_mod.FaultInjector
    chaos_mod.FaultInjector = Sabotaged
    try:
        with pytest.raises(RuntimeError, match="untyped bug"):
            run_chaos_query(dividend, divisor, rules=[], seed=0)
    finally:
        chaos_mod.FaultInjector = original
