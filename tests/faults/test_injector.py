"""Unit tests for the fault injector: rules, triggers, schedules."""

import json

import pytest

from repro.errors import FaultConfigError, MemoryPoolError
from repro.faults import (
    FaultInjector,
    FaultRule,
    schedule_to_jsonl,
    write_schedule_jsonl,
)


class TestRuleValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultConfigError, match="unknown fault kind"):
            FaultRule("gremlin")

    def test_bad_op_rejected(self):
        with pytest.raises(FaultConfigError, match="op must be"):
            FaultRule("transient", op="append")

    def test_probability_out_of_range(self):
        with pytest.raises(FaultConfigError, match="probability"):
            FaultRule("transient", probability=1.5)

    def test_every_nth_must_be_positive(self):
        with pytest.raises(FaultConfigError, match="every_nth"):
            FaultRule("transient", every_nth=0)

    def test_max_fires_must_be_positive(self):
        with pytest.raises(FaultConfigError, match="max_fires"):
            FaultRule("transient", max_fires=0)

    def test_torn_read_is_contradictory(self):
        with pytest.raises(FaultConfigError, match="torn"):
            FaultRule("torn", op="read")

    def test_pressure_factor_bounds(self):
        with pytest.raises(FaultConfigError, match="pressure_factor"):
            FaultRule("pressure", pressure_factor=0.0)
        with pytest.raises(FaultConfigError, match="pressure_factor"):
            FaultRule("pressure", pressure_factor=1.5)

    def test_negative_latency_rejected(self):
        with pytest.raises(FaultConfigError, match="latency_ms"):
            FaultRule("latency", latency_ms=-1.0)

    def test_non_rule_rejected_by_injector(self):
        with pytest.raises(FaultConfigError, match="not a FaultRule"):
            FaultInjector([{"kind": "transient"}])


class TestScopeMatching:
    def test_device_and_page_range_scoping(self):
        rule = FaultRule("transient", device="temp", page_min=4, page_max=8)
        assert rule.matches_disk("temp", 4, "read")
        assert rule.matches_disk("temp", 8, "write")
        assert not rule.matches_disk("temp", 3, "read")
        assert not rule.matches_disk("temp", 9, "read")
        assert not rule.matches_disk("data", 5, "read")

    def test_op_scoping(self):
        rule = FaultRule("transient", op="write")
        assert rule.matches_disk("data", 0, "write")
        assert not rule.matches_disk("data", 0, "read")
        assert FaultRule("transient", op="any").matches_disk("data", 0, "read")

    def test_disk_rule_never_matches_other_scopes(self):
        rule = FaultRule("transient")
        assert not rule.matches_network(0, 1)
        assert not rule.matches_memory("divisor-table")

    def test_network_link_scoping(self):
        rule = FaultRule("drop", sender=1, receiver=2)
        assert rule.matches_network(1, 2)
        assert not rule.matches_network(2, 1)
        assert FaultRule("drop").matches_network(7, 3)

    def test_memory_tag_prefix_scoping(self):
        rule = FaultRule("exhaust", tag="divisor")
        assert rule.matches_memory("divisor-table#3")
        assert not rule.matches_memory("quotient-table")
        assert FaultRule("exhaust").matches_memory("anything")


class TestTriggers:
    def test_max_fires_caps_the_rule(self):
        injector = FaultInjector([FaultRule("transient", max_fires=2)], seed=0)
        fired = sum(
            injector.on_disk_op("data", n, "read", 64) is not None for n in range(10)
        )
        assert fired == 2
        assert injector.fires_of(0) == 2

    def test_every_nth_fires_periodically(self):
        injector = FaultInjector([FaultRule("transient", every_nth=3)], seed=0)
        verdicts = [
            injector.on_disk_op("data", n, "read", 64) is not None for n in range(9)
        ]
        assert verdicts == [False, False, True] * 3

    def test_probability_is_seed_deterministic(self):
        def fire_pattern(seed):
            injector = FaultInjector(
                [FaultRule("transient", probability=0.5)], seed=seed
            )
            return [
                injector.on_disk_op("data", n, "read", 64) is not None
                for n in range(64)
            ]

        assert fire_pattern(7) == fire_pattern(7)
        assert fire_pattern(7) != fire_pattern(8)  # astronomically unlikely to tie

    def test_first_matching_rule_wins(self):
        injector = FaultInjector(
            [FaultRule("latency", latency_ms=5.0), FaultRule("transient")], seed=0
        )
        fault = injector.on_disk_op("data", 0, "read", 64)
        assert fault.kind == "latency"
        assert injector.counters.by_kind == {"latency": 1}

    def test_corrupt_bit_choice_is_recorded(self):
        injector = FaultInjector([FaultRule("corrupt", op="read")], seed=3)
        fault = injector.on_disk_op("data", 0, "read", 64)
        assert 0 <= fault.bit < 64 * 8
        event = injector.schedule[0].to_dict()
        assert event["bit"] == fault.bit
        assert event["persistent"] is False

    def test_memory_exhaust_raises(self):
        injector = FaultInjector([FaultRule("exhaust")], seed=0)
        with pytest.raises(MemoryPoolError, match="injected"):
            injector.on_memory_allocate(None, 128, "divisor-table#1")

    def test_network_verdicts(self):
        injector = FaultInjector([FaultRule("duplicate", max_fires=1)], seed=0)
        assert injector.on_network_send(0, 1) == "duplicate"
        assert injector.on_network_send(0, 1) is None


class TestSchedule:
    def _schedule(self, seed):
        injector = FaultInjector(
            [
                FaultRule("transient", probability=0.3),
                FaultRule("corrupt", op="read", probability=0.2),
            ],
            seed=seed,
        )
        for n in range(40):
            try:
                injector.on_disk_op("data", n % 7, "read", 64)
            except Exception:  # pragma: no cover - no raising kinds here
                raise
        return injector

    def test_same_seed_same_jsonl_bytes(self):
        a = schedule_to_jsonl(self._schedule(5).schedule)
        b = schedule_to_jsonl(self._schedule(5).schedule)
        assert a == b
        assert a  # non-empty: the rules do fire at these probabilities

    def test_jsonl_lines_are_sorted_key_json(self):
        text = schedule_to_jsonl(self._schedule(5).schedule)
        for line in text.splitlines():
            parsed = json.loads(line)
            assert line == json.dumps(parsed, sort_keys=True)
            assert parsed["scope"] == "disk"

    def test_write_schedule_jsonl_roundtrip(self, tmp_path):
        injector = self._schedule(5)
        path = tmp_path / "schedule.jsonl"
        count = write_schedule_jsonl(path, injector.schedule)
        assert count == len(injector.schedule)
        assert path.read_text() == schedule_to_jsonl(injector.schedule)

    def test_memory_event_records_base_tag_only(self):
        """Process-global allocation-tag suffixes must not reach the
        schedule, or byte-identical cross-process replay breaks."""
        injector = FaultInjector([FaultRule("exhaust")], seed=0)
        with pytest.raises(MemoryPoolError):
            injector.on_memory_allocate(None, 64, "divisor-table#123")
        assert injector.schedule[0].to_dict()["tag"] == "divisor-table"

    def test_summary_shape(self):
        injector = self._schedule(5)
        summary = injector.summary()
        assert summary["enabled"] is True
        assert summary["seed"] == 5
        assert summary["operations_seen"] == 40
        assert sum(summary["faults_fired"].values()) == len(injector.schedule)
        assert all("kind" in rule for rule in summary["rules"])
