"""Memory faults: injected exhaustion and pressure degrade, not abort.

The contract: an injected :class:`~repro.errors.MemoryPoolError` inside
a hash-division build surfaces as
:class:`~repro.errors.HashTableOverflowError`, which the plan layer
degrades into partitioned processing (Section 3.4) -- the query still
returns the correct answer.
"""

import pytest

from repro.errors import HashTableOverflowError, MemoryPoolError
from repro.executor.iterator import ExecContext, run_to_relation
from repro.executor.scan import RelationSource
from repro.core.hash_division import HashDivision
from repro.faults import FaultInjector, FaultRule
from repro.relalg.algebra import divide_set_semantics
from repro.storage.memory import MemoryPool
from repro.workloads.synthetic import make_exact_division


class TestPoolHooks:
    def test_exhaust_rule_raises_memory_pool_error(self):
        pool = MemoryPool(budget=1 << 20)
        pool.injector = FaultInjector([FaultRule("exhaust", max_fires=1)], seed=0)
        with pytest.raises(MemoryPoolError, match="injected"):
            pool.allocate(64, "divisor-table")
        # One-shot: the next allocation succeeds.
        handle = pool.allocate(64, "divisor-table")
        pool.free(handle)

    def test_tag_scoped_exhaust_spares_other_tags(self):
        pool = MemoryPool(budget=1 << 20)
        pool.injector = FaultInjector(
            [FaultRule("exhaust", tag="quotient")], seed=0
        )
        handle = pool.allocate(64, "divisor-table")  # not matched
        with pytest.raises(MemoryPoolError):
            pool.allocate(64, "quotient-table")
        pool.free(handle)

    def test_pressure_shrinks_the_budget(self):
        pool = MemoryPool(budget=1000)
        pool.injector = FaultInjector(
            [FaultRule("pressure", max_fires=1, pressure_factor=0.5)], seed=0
        )
        handle = pool.allocate(100, "build")
        assert pool.budget == 500
        assert pool.pressure_events == 1
        # Later allocations overflow the shrunken budget.
        with pytest.raises(MemoryPoolError, match="exhausted"):
            pool.allocate(600, "build")
        pool.free(handle)

    def test_pressure_on_unbounded_pool_installs_a_budget(self):
        pool = MemoryPool(budget=None)
        pool.allocate(1000, "build")
        new_budget = pool.apply_pressure(0.5)
        assert new_budget == 500
        assert pool.budget == 500

    def test_apply_pressure_validates_factor(self):
        pool = MemoryPool(budget=1000)
        with pytest.raises(MemoryPoolError):
            pool.apply_pressure(0.0)
        with pytest.raises(MemoryPoolError):
            pool.apply_pressure(1.5)

    def test_no_injector_allocations_unaffected(self):
        pool = MemoryPool(budget=1000)
        assert pool.injector is None
        handle = pool.allocate(500, "build")
        pool.free(handle)
        assert pool.bytes_in_use == 0


class TestDegradation:
    def test_injected_exhaust_surfaces_as_overflow(self):
        """Mid-build exhaustion becomes the typed overflow error, with
        partial tables released."""
        dividend, divisor = make_exact_division(4, 8, seed=1)
        ctx = ExecContext()
        ctx.attach_fault_injector(
            FaultInjector([FaultRule("exhaust", tag="divisor-table")], seed=0)
        )
        op = HashDivision(
            RelationSource(ctx, dividend), RelationSource(ctx, divisor)
        )
        with pytest.raises(HashTableOverflowError, match="injected|memory pool"):
            run_to_relation(op)
        ctx.attach_fault_injector(None)
        assert ctx.memory.bytes_in_use == 0
        ctx.close()

    def test_plan_degrades_to_partitioned_and_answers(self):
        """The full chaos path in miniature: exhaustion fires once, the
        plan's overflow fallback partitions, and the answer is exact."""
        from repro.plan.logical import DivideNode, SourceNode
        from repro.plan.planner import compile_plan

        dividend, divisor = make_exact_division(4, 8, seed=2)
        oracle = set(divide_set_semantics(dividend, divisor))
        ctx = ExecContext()
        ctx.attach_fault_injector(
            FaultInjector([FaultRule("exhaust", max_fires=1)], seed=0)
        )
        plan = compile_plan(DivideNode(SourceNode(dividend), SourceNode(divisor)), ctx)
        try:
            result = plan.execute(name="quotient")
        finally:
            plan.close()
        assert set(result.rows) == oracle
        ctx.attach_fault_injector(None)
        assert ctx.memory.bytes_in_use == 0
        ctx.close()
