"""Property-based conservation tests for the I/O event log.

For random storage workloads -- heap-file append/scan/delete mixes,
multi-file interleavings, and externally sorted inputs that spill runs
-- replaying the event log through the Table 3 weights must reproduce
``IoStatistics.cost_ms`` *exactly*, per device.  The replay rebuilds
integer counters and prices them with the aggregate formula, so the
assertion is ``==``, never ``approx``.
"""

from hypothesis import given, settings, strategies as st

from repro.executor.iterator import ExecContext
from repro.executor.scan import RelationSource
from repro.executor.sort import ExternalSort
from repro.obs.iotrace import IoEventLog, replay_cost_ms, verify_conservation
from repro.relalg.relation import Relation
from repro.storage.config import KIB, StorageConfig
from repro.storage.heapfile import HeapFile


def assert_conserves(ctx: ExecContext, log: IoEventLog) -> None:
    report = verify_conservation(log, ctx.io_stats)
    assert report.ok, str(report)
    replayed = replay_cost_ms(log.events(), ctx.io_stats.weights)
    for device, ms in replayed.items():
        assert ms == ctx.io_stats.cost_ms(device)


# One operation = (op_code, size) applied to a rotating set of files.
ops = st.lists(
    st.tuples(st.integers(min_value=0, max_value=3), st.integers(1, 30)),
    min_size=1,
    max_size=40,
)


@given(ops)
@settings(max_examples=40, deadline=None)
def test_heapfile_workloads_conserve(operations):
    log = IoEventLog()
    ctx = ExecContext(io_trace=log)
    files: list[HeapFile] = []
    for code, size in operations:
        if code == 0 or not files:  # append to a (possibly new) file
            heap = HeapFile(ctx.pool, ctx.data_disk, name=f"h{len(files)}")
            heap.append_many(b"x" * 200 for _ in range(size))
            files.append(heap)
        elif code == 1:  # flush + cold scan
            heap = files[size % len(files)]
            heap.flush()
            ctx.pool.drop_device_pages(ctx.data_disk.name)
            for _ in heap.scan():
                pass
        elif code == 2:  # grow an existing file
            files[size % len(files)].append_many(b"y" * 150 for _ in range(size))
        else:  # destroy one (dirty pages dropped, not written)
            heap = files.pop(size % len(files))
            heap.destroy()
    ctx.pool.flush_device(ctx.data_disk.name)
    assert_conserves(ctx, log)


@given(
    rows=st.integers(min_value=100, max_value=400),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=15, deadline=None)
def test_spilling_sort_conserves(rows, seed):
    """External sorts that spill runs to the 1 KB-page device conserve."""
    import random

    rng = random.Random(seed)
    log = IoEventLog()
    # A 1 KiB sort buffer forces run files for any non-trivial input.
    config = StorageConfig(sort_buffer_size=1 * KIB)
    ctx = ExecContext(config=config, io_trace=log)
    relation = Relation.of_ints(
        ("a", "b"),
        [(rng.randrange(1000), rng.randrange(1000)) for _ in range(rows)],
    )
    sort = ExternalSort(RelationSource(ctx, relation), key_names=("a", "b"))
    sort.open()
    drained = list(sort)
    sort.close()
    assert len(drained) == rows
    assert sort.runs_spilled > 0  # the workload actually exercised runs
    assert_conserves(ctx, log)


@given(
    divisor=st.sampled_from([5, 10, 25]),
    quotient=st.sampled_from([5, 25, 50]),
    strategy=st.sampled_from(["naive", "hash-division", "hash-agg no join"]),
)
@settings(max_examples=10, deadline=None)
def test_division_strategies_conserve(divisor, quotient, strategy):
    from repro.experiments.runner import run_strategy
    from repro.storage.catalog import Catalog
    from repro.workloads.synthetic import make_exact_division

    log = IoEventLog()
    ctx = ExecContext(io_trace=log)
    dividend, divisor_rel = make_exact_division(divisor, quotient, seed=1)
    catalog = Catalog(ctx.pool, ctx.data_disk)
    catalog.store(dividend, name="dividend", cold=True)
    catalog.store(divisor_rel, name="divisor", cold=True)
    ctx.reset_meters()
    run = run_strategy(
        strategy, ctx, catalog, "dividend", "divisor", expected_quotient=quotient
    )
    assert run.quotient_tuples == quotient
    assert_conserves(ctx, log)
