"""Metrics registry: instruments, families, and meter absorption."""

import pytest

from repro.executor.iterator import ExecContext
from repro.metering import CpuCounters
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    absorb_buffer_stats,
    absorb_context,
    absorb_cpu_counters,
    absorb_io_statistics,
)


class TestInstruments:
    def test_counter_accumulates(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(MetricsError):
            Counter().inc(-1)

    def test_gauge_goes_both_ways(self):
        gauge = Gauge()
        gauge.set(5)
        gauge.inc(2)
        gauge.dec(3)
        assert gauge.value == 4.0

    def test_histogram_buckets_are_cumulative(self):
        hist = Histogram(boundaries=(1.0, 10.0))
        for value in (0.5, 5.0, 500.0):
            hist.observe(value)
        assert list(hist.buckets()) == [
            (1.0, 1),
            (10.0, 2),
            (float("inf"), 3),
        ]
        assert hist.count == 3
        assert hist.sum == 505.5

    def test_histogram_boundary_validation(self):
        with pytest.raises(MetricsError):
            Histogram(boundaries=())
        with pytest.raises(MetricsError):
            Histogram(boundaries=(2.0, 1.0))


class TestRegistry:
    def test_same_name_and_labels_is_the_same_metric(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", strategy="naive").inc()
        registry.counter("repro_x_total", strategy="naive").inc()
        registry.counter("repro_x_total", strategy="hash").inc()
        assert registry.value("repro_x_total", strategy="naive") == 2
        assert registry.value("repro_x_total", strategy="hash") == 1
        assert len(registry) == 2

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total")
        with pytest.raises(MetricsError):
            registry.gauge("repro_x_total")

    def test_value_of_histogram_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("repro_h_ms").observe(1.0)
        with pytest.raises(MetricsError):
            registry.value("repro_h_ms")

    def test_collect_is_sorted_and_stable(self):
        registry = MetricsRegistry()
        registry.gauge("repro_b")
        registry.counter("repro_a_total", z="2")
        registry.counter("repro_a_total", a="1")
        names = [(s.name, s.labels) for s in registry.collect()]
        assert names == sorted(names)

    def test_to_dict_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", kind="k").inc(4)
        registry.histogram("repro_h_ms", boundaries=(1.0,)).observe(0.5)
        snap = registry.to_dict()
        assert snap["repro_x_total"]["kind"] == "counter"
        assert snap["repro_x_total"]["samples"][0] == {
            "labels": {"kind": "k"},
            "value": 4.0,
        }
        hist = snap["repro_h_ms"]["samples"][0]["value"]
        assert hist["count"] == 1 and hist["buckets"][0] == [1.0, 1]


class TestAbsorption:
    def test_absorb_cpu_counters(self):
        registry = MetricsRegistry()
        counters = CpuCounters(comparisons=3, hashes=2, moves=1.5, bit_ops=7)
        absorb_cpu_counters(registry, counters, strategy="hash-division")
        assert registry.value(
            "repro_cpu_comparisons_total", strategy="hash-division"
        ) == 3
        assert registry.value("repro_cpu_hashes_total", strategy="hash-division") == 2
        assert registry.value("repro_cpu_moves_total", strategy="hash-division") == 1.5
        assert registry.value("repro_cpu_bit_ops_total", strategy="hash-division") == 7

    def test_absorb_context_covers_all_meters(self):
        ctx = ExecContext()
        ctx.cpu.comparisons += 5
        registry = MetricsRegistry()
        absorb_context(registry, ctx)
        assert registry.value("repro_cpu_comparisons_total") == 5
        # Buffer and I/O families exist even when idle.
        assert "repro_buffer_hit_ratio" in registry.names()

    def test_absorb_buffer_and_io_after_real_work(self):
        from repro.storage.catalog import Catalog
        from repro.workloads.university import figure2_transcript

        ctx = ExecContext()
        catalog = Catalog(ctx.pool, ctx.data_disk)
        catalog.store(figure2_transcript(), name="t", cold=True)
        registry = MetricsRegistry()
        absorb_buffer_stats(registry, ctx.pool.stats)
        absorb_io_statistics(registry, ctx.io_stats)
        assert registry.value("repro_buffer_fixes_total") > 0
        assert registry.value("repro_io_writes_total", device="data") > 0
        assert registry.value("repro_io_cost_ms", device="data") > 0
