"""Span tracer: clocks, span trees, the null tracer's guarantees."""

import pytest

from repro.obs.span import (
    Clock,
    FakeClock,
    MonotonicClock,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
)


class TestClocks:
    def test_monotonic_clock_advances(self):
        clock = MonotonicClock()
        first = clock.now()
        second = clock.now()
        assert second >= first

    def test_fake_clock_is_deterministic(self):
        clock = FakeClock(start=10.0)
        assert clock.now() == 10.0
        clock.advance(2.5)
        assert clock.now() == 12.5

    def test_fake_clock_auto_tick(self):
        clock = FakeClock(auto_tick=0.001)
        assert clock.now() == pytest.approx(0.001)
        assert clock.now() == pytest.approx(0.002)

    def test_fake_clock_rejects_going_backwards(self):
        with pytest.raises(ValueError):
            FakeClock().advance(-1.0)

    def test_both_satisfy_the_protocol(self):
        assert isinstance(MonotonicClock(), Clock)
        assert isinstance(FakeClock(), Clock)


class TestSpanTree:
    def test_nesting_and_durations(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("outer") as outer:
            clock.advance(1.0)
            with tracer.span("inner", detail=42) as inner:
                clock.advance(0.5)
            clock.advance(0.25)
        assert tracer.roots == [outer]
        assert outer.children == [inner]
        assert outer.duration_s == pytest.approx(1.75)
        assert inner.duration_s == pytest.approx(0.5)
        assert inner.attributes == {"detail": 42}

    def test_duration_none_while_open(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("open") as span:
            assert span.duration_s is None
        assert span.duration_s is not None

    def test_annotate_chains(self):
        span = Span(name="s", start_s=0.0)
        assert span.annotate(rows=3) is span
        assert span.attributes == {"rows": 3}

    def test_events_attach_to_current_span(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("phase") as span:
            clock.advance(1.0)
            tracer.event("milestone", tuples=7)
        (at, name, attrs) = span.events[0]
        assert (at, name, attrs) == (1.0, "milestone", {"tuples": 7})

    def test_event_outside_any_span_becomes_a_root_mark(self):
        tracer = Tracer(clock=FakeClock())
        tracer.event("lonely")
        assert tracer.roots[0].name == "lonely"
        assert tracer.roots[0].duration_s == 0.0

    def test_find_span_preorder(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        assert tracer.find_span("b").name == "b"
        assert tracer.find_span("missing") is None

    def test_walk_and_to_dict(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("c"):
                pass
        root = tracer.roots[0]
        assert [s.name for s in root.walk()] == ["a", "b", "c"]
        as_dict = root.to_dict()
        assert as_dict["name"] == "a"
        assert [child["name"] for child in as_dict["children"]] == ["b", "c"]

    def test_exception_still_closes_the_span(self):
        tracer = Tracer(clock=FakeClock(auto_tick=0.1))
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        assert tracer.roots[0].end_s is not None
        assert tracer.current_span() is None


class TestMetricsWriteThrough:
    def test_count_gauge_observe(self):
        tracer = Tracer(clock=FakeClock())
        tracer.count("repro_things_total", 2, kind="a")
        tracer.count("repro_things_total", kind="a")
        tracer.gauge("repro_level", 0.5)
        tracer.observe("repro_latency_ms", 3.0)
        assert tracer.metrics.value("repro_things_total", kind="a") == 3
        assert tracer.metrics.value("repro_level") == 0.5
        assert tracer.metrics.histogram("repro_latency_ms").count == 1


class TestNullTracer:
    def test_disabled_and_metricless(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.metrics is None

    def test_span_is_a_reusable_noop_context_manager(self):
        first = NULL_TRACER.span("anything", detail=1)
        second = NULL_TRACER.span("other")
        assert first is second  # shared instance: zero allocation
        with first as span:
            assert span.annotate(rows=3) is span

    def test_all_operations_are_noops(self):
        tracer = NullTracer()
        tracer.event("x")
        tracer.count("repro_x_total")
        tracer.gauge("repro_x", 1.0)
        tracer.observe("repro_x_ms", 1.0)
        tracer.operator_enter(object(), "open")
        tracer.operator_exit(object(), "open")
        assert tracer.metrics is None
