"""Tests for repro.obs.iotrace: the page-level I/O event log.

Covers the ring buffer itself, the file/operator attribution, the
conservation and attribution validators, the exporters (JSONL round
trip, Chrome trace_event structure), the seek-offender summary, the
metrics absorber, and -- critically -- the zero-cost claim of the
disabled path.
"""

import json

import pytest

from repro.executor.iterator import ExecContext
from repro.obs.iotrace import (
    IoEvent,
    IoEventLog,
    absorb_io_event_log,
    attribution_by_operator,
    events_from_jsonl,
    events_to_chrome_trace,
    events_to_jsonl,
    read_jsonl,
    render_summary,
    replay_cost_ms,
    replay_counters,
    top_seek_offenders,
    verify_attribution,
    verify_conservation,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.span import Tracer
from repro.storage.catalog import Catalog
from repro.storage.heapfile import HeapFile
from repro.storage.stats import IoStatistics, IoWeights, _NullIoTraceSink
from repro.workloads.synthetic import make_exact_division


def traced_ctx(**kwargs) -> tuple[ExecContext, IoEventLog]:
    log = IoEventLog(**kwargs)
    return ExecContext(io_trace=log), log


def drive_heapfile(ctx: ExecContext, records: int = 40) -> HeapFile:
    """Append records spanning several pages, then scan cold."""
    heap = HeapFile(ctx.pool, ctx.data_disk, name="drive")
    heap.append_many(bytes([i % 251]) * 600 for i in range(records))
    ctx.pool.flush_device(ctx.data_disk.name)
    ctx.pool.drop_device_pages(ctx.data_disk.name)
    for _rid, _record in heap.scan():
        pass
    return heap


class TestIoEventLog:
    def test_event_per_physical_transfer(self):
        ctx, log = traced_ctx()
        drive_heapfile(ctx)
        stats = ctx.io_stats.counters("data")
        assert len(log) == stats.transfers
        kinds = {e.kind for e in log}
        assert kinds == {"read", "write"}
        for event in log:
            assert event.device == "data"
            assert event.nbytes == ctx.config.page_size
            assert event.cost_ms > 0

    def test_sequence_numbers_are_monotonic(self):
        ctx, log = traced_ctx()
        drive_heapfile(ctx)
        seqs = [e.seq for e in log]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_first_transfer_is_a_seek_with_parked_arm(self):
        ctx, log = traced_ctx()
        heap = HeapFile(ctx.pool, ctx.data_disk)
        heap.append(b"x" * 100)
        heap.flush()
        first = log.events()[0]
        assert not first.sequential
        # The arm is modelled as parked at page 0: distance == page_no.
        assert first.seek_distance == first.page_no

    def test_sequential_scan_classified_sequential(self):
        ctx, log = traced_ctx()
        drive_heapfile(ctx)
        reads = [e for e in log if e.kind == "read"]
        # After the first read positions the head, the rest of the cold
        # scan over a contiguous extent is sequential.
        assert all(e.sequential for e in reads[1:])
        assert all(e.seek_distance == 0 for e in reads if e.sequential)

    def test_file_attribution_from_extent_registration(self):
        ctx, log = traced_ctx()
        drive_heapfile(ctx)
        files = {e.file for e in log}
        assert files == {"drive"}

    def test_capacity_bounds_and_counts_drops(self):
        log = IoEventLog(capacity=4)
        stats = IoStatistics(trace=log)
        for page in range(10):
            stats.record_transfer("data", page * 7, 1024, False)
        assert len(log) == 4
        assert log.dropped == 6
        # The newest events are kept, the oldest dropped.
        assert [e.seq for e in log] == [6, 7, 8, 9]

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            IoEventLog(capacity=0)

    def test_clear_forgets_events_keeps_ownership(self):
        ctx, log = traced_ctx()
        heap = drive_heapfile(ctx)
        log.clear()
        assert len(log) == 0 and log.dropped == 0
        ctx.pool.drop_device_pages(ctx.data_disk.name)
        for _ in heap.scan():
            pass
        assert len(log) > 0
        assert {e.file for e in log} == {"drive"}

    def test_destroy_forgets_ownership(self):
        ctx, log = traced_ctx()
        heap = drive_heapfile(ctx)
        pages = heap.page_numbers
        heap.destroy()
        assert all(("data", p) not in log._owners for p in pages)

    def test_reset_meters_clears_log_with_stats(self):
        ctx, log = traced_ctx()
        drive_heapfile(ctx)
        assert len(log) > 0
        ctx.reset_meters()
        assert len(log) == 0
        assert ctx.io_stats.cost_ms() == 0.0

    def test_from_events_roundtrip(self):
        ctx, log = traced_ctx()
        drive_heapfile(ctx)
        rebuilt = IoEventLog.from_events(log.events())
        assert rebuilt.events() == log.events()
        assert rebuilt.dropped == 0


class TestConservation:
    def test_heapfile_workload_conserves_exactly(self):
        ctx, log = traced_ctx()
        drive_heapfile(ctx)
        report = verify_conservation(log, ctx.io_stats)
        assert report.ok, str(report)
        for device, (replayed, reported) in report.per_device.items():
            assert replayed == reported  # exact, not approx

    def test_temp_and_run_devices_conserve(self):
        ctx, log = traced_ctx()
        for kind in ("temp", "runs"):
            f = ctx.temp_file(kind)
            f.append_many(b"r" * 64 for _ in range(50))
            f.flush()
        report = verify_conservation(log, ctx.io_stats)
        assert report.ok, str(report)
        assert set(report.per_device) >= {"temp", "runs"}

    def test_replay_cost_matches_cost_ms_per_device(self):
        ctx, log = traced_ctx()
        drive_heapfile(ctx)
        replayed = replay_cost_ms(log.events(), ctx.io_stats.weights)
        for device, ms in replayed.items():
            assert ms == ctx.io_stats.cost_ms(device)

    def test_dropped_events_fail_conservation(self):
        log = IoEventLog(capacity=2)
        stats = IoStatistics(trace=log)
        for page in range(5):
            stats.record_transfer("data", page, 512, False)
        report = verify_conservation(log, stats)
        assert not report.ok
        assert report.dropped == 3
        assert "dropped" in str(report)

    def test_tampered_log_fails_conservation(self):
        ctx, log = traced_ctx()
        drive_heapfile(ctx)
        log._events.append(
            IoEvent(
                seq=10_000,
                device="data",
                page_no=999,
                kind="read",
                nbytes=8192,
                sequential=False,
                seek_distance=3,
                cost_ms=34.0,
            )
        )
        report = verify_conservation(log, ctx.io_stats)
        assert not report.ok
        assert report.mismatches

    def test_missing_device_in_log_fails(self):
        ctx, log = traced_ctx()
        drive_heapfile(ctx)
        # The stats saw transfers the (cleared) log did not.
        log.clear()
        report = verify_conservation(log, ctx.io_stats)
        assert not report.ok

    def test_empty_log_empty_stats_is_ok(self):
        log = IoEventLog()
        report = verify_conservation(log, IoStatistics(trace=log))
        assert report.ok
        assert "no I/O" in str(report)

    def test_replay_counters_rebuild_integers(self):
        ctx, log = traced_ctx()
        drive_heapfile(ctx)
        replayed = replay_counters(log.events())["data"]
        want = ctx.io_stats.counters("data")
        assert replayed.reads == want.reads
        assert replayed.writes == want.writes
        assert replayed.seeks == want.seeks
        assert replayed.bytes_read == want.bytes_read
        assert replayed.bytes_written == want.bytes_written


class TestStrategyRunConservation:
    @pytest.mark.parametrize("strategy", ["naive", "hash-division"])
    def test_cold_strategy_run_conserves(self, strategy):
        from repro.experiments.runner import run_strategy

        tracer = Tracer()
        log = IoEventLog()
        ctx = ExecContext(tracer=tracer, io_trace=log)
        dividend, divisor = make_exact_division(25, 100, seed=0)
        catalog = Catalog(ctx.pool, ctx.data_disk)
        catalog.store(dividend, name="dividend", cold=True)
        catalog.store(divisor, name="divisor", cold=True)
        ctx.reset_meters()
        run = run_strategy(
            strategy, ctx, catalog, "dividend", "divisor", expected_quotient=100
        )
        assert run.quotient_tuples == 100
        report = verify_conservation(log, ctx.io_stats)
        assert report.ok, str(report)
        # And the run's reported io_ms is the same replayed total.
        assert sum(replay_cost_ms(log.events(), ctx.io_stats.weights).values()) == (
            run.io_ms
        )

    def test_operator_attribution_matches_profile(self):
        from repro.experiments.runner import run_strategy_on_relations

        tracer = Tracer()
        log = IoEventLog()
        dividend, divisor = make_exact_division(25, 100, seed=0)
        run = run_strategy_on_relations(
            "naive",
            dividend,
            divisor,
            expected_quotient=100,
            tracer=tracer,
            io_trace=log,
        )
        assert run.profile is not None
        report = verify_attribution(log, run.profile)
        assert report.ok, str(report)
        # Every event was stamped with an operator during the run.
        assert all(e.operator is not None for e in log)

    def test_attribution_detects_mislabeled_events(self):
        from repro.experiments.runner import run_strategy_on_relations

        tracer = Tracer()
        log = IoEventLog()
        dividend, divisor = make_exact_division(25, 25, seed=0)
        run = run_strategy_on_relations(
            "hash-division",
            dividend,
            divisor,
            expected_quotient=25,
            tracer=tracer,
            io_trace=log,
        )
        original = log.events()[0]
        log._events[0] = IoEvent(
            seq=original.seq,
            device=original.device,
            page_no=original.page_no,
            kind=original.kind,
            nbytes=original.nbytes,
            sequential=original.sequential,
            seek_distance=original.seek_distance,
            cost_ms=original.cost_ms,
            file=original.file,
            operator="NoSuchOperator",
        )
        report = verify_attribution(log, run.profile)
        assert not report.ok

    def test_attribution_by_operator_groups(self):
        events = [
            IoEvent(0, "data", 0, "read", 8192, False, 0, 34.0, operator="A"),
            IoEvent(1, "data", 1, "read", 8192, True, 0, 14.0, operator="A"),
            IoEvent(2, "temp", 5, "write", 8192, False, 5, 34.0, operator="B"),
            IoEvent(3, "temp", 9, "write", 8192, False, 3, 34.0),
        ]
        groups = attribution_by_operator(events)
        assert groups["A"].reads == 2 and groups["A"].seeks == 1
        assert groups["B"].writes == 1
        assert groups[None].writes == 1


class TestDisabledPathIsFree:
    def test_null_sink_record_never_called(self, monkeypatch):
        def boom(self, *args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("null I/O trace sink was entered")

        for method in ("record", "register_pages", "forget_pages"):
            monkeypatch.setattr(_NullIoTraceSink, method, boom)
        ctx = ExecContext()  # default: NULL_IO_TRACE
        drive_heapfile(ctx)
        assert ctx.io_stats.cost_ms() > 0

    def test_no_event_allocation_when_disabled(self, monkeypatch):
        import repro.obs.iotrace as iotrace

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("IoEvent allocated while tracing disabled")

        monkeypatch.setattr(iotrace, "IoEvent", boom)
        ctx = ExecContext()
        drive_heapfile(ctx)
        assert ctx.io_stats.counters("data").transfers > 0

    def test_disabled_tracing_does_not_change_meters(self):
        ctx_plain = ExecContext()
        drive_heapfile(ctx_plain)
        ctx_traced, log = traced_ctx()
        drive_heapfile(ctx_traced)
        plain = ctx_plain.io_stats.counters("data")
        traced = ctx_traced.io_stats.counters("data")
        assert (plain.reads, plain.writes, plain.seeks) == (
            traced.reads,
            traced.writes,
            traced.seeks,
        )
        assert ctx_plain.io_stats.cost_ms() == ctx_traced.io_stats.cost_ms()


class TestExporters:
    def _sample_log(self) -> IoEventLog:
        ctx, log = traced_ctx()
        drive_heapfile(ctx, records=20)
        return log

    def test_jsonl_roundtrip(self):
        log = self._sample_log()
        text = events_to_jsonl(log.events())
        assert text.endswith("\n")
        assert events_from_jsonl(text) == log.events()

    def test_jsonl_file_roundtrip(self, tmp_path):
        log = self._sample_log()
        path = tmp_path / "events.jsonl"
        write_jsonl(path, log.events())
        assert read_jsonl(path) == log.events()

    def test_jsonl_empty(self):
        assert events_to_jsonl(()) == ""
        assert events_from_jsonl("") == ()

    def test_jsonl_rejects_garbage(self):
        with pytest.raises(ValueError, match="line 1"):
            events_from_jsonl("not json\n")
        with pytest.raises(ValueError):
            events_from_jsonl('{"seq": 1}\n')

    def test_chrome_trace_structure(self):
        log = self._sample_log()
        doc = events_to_chrome_trace(log.events())
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        slices = [e for e in events if e["ph"] == "X"]
        assert any(e["name"] == "process_name" for e in meta)
        assert any(e["name"] == "thread_name" for e in meta)
        assert len(slices) == len(log)
        # Timestamps are cumulative model ms per device lane: each
        # slice starts where the previous one on its lane ended.
        by_tid: dict = {}
        for s in slices:
            expected = by_tid.get(s["tid"], 0.0)
            assert s["ts"] == pytest.approx(expected)
            by_tid[s["tid"]] = s["ts"] + s["dur"]
        # Lane width equals the device's total model cost.
        total_us = sum(s["dur"] for s in slices)
        assert total_us == pytest.approx(
            sum(e.cost_ms for e in log) * 1000.0
        )
        assert {s["cat"] for s in slices} <= {"seek", "sequential"}

    def test_chrome_trace_file_is_valid_json(self, tmp_path):
        log = self._sample_log()
        path = tmp_path / "trace.json"
        write_chrome_trace(path, log.events())
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert len(doc["traceEvents"]) >= len(log)


class TestSummaries:
    def test_top_seek_offenders_ordering(self):
        events = [
            IoEvent(0, "data", 0, "read", 8192, False, 0, 34.0, operator="A"),
            IoEvent(1, "data", 50, "read", 8192, False, 49, 34.0, operator="A"),
            IoEvent(2, "data", 7, "read", 8192, False, 44, 34.0, operator="B"),
            IoEvent(3, "temp", 1, "write", 8192, True, 0, 14.0, operator="B"),
        ]
        offenders = top_seek_offenders(events, n=5)
        assert offenders[0].operator == "A" and offenders[0].seeks == 2
        assert offenders[0].seek_ms == 2 * IoWeights().seek_ms
        assert offenders[1].operator == "B" and offenders[1].seeks == 1
        # Sequential-only groups never appear.
        assert all(off.seeks for off in offenders)

    def test_top_seek_offenders_truncates(self):
        events = [
            IoEvent(i, "data", i * 5, "read", 8192, False, 4, 34.0, operator=f"Op{i}")
            for i in range(10)
        ]
        assert len(top_seek_offenders(events, n=3)) == 3

    def test_render_summary_mentions_devices_and_verdict(self):
        ctx, log = traced_ctx()
        drive_heapfile(ctx)
        text = render_summary(log, ctx.io_stats)
        assert "data" in text
        assert "conservation OK" in text

    def test_render_summary_without_stats_omits_verdict(self):
        ctx, log = traced_ctx()
        drive_heapfile(ctx)
        text = render_summary(log)
        assert "conservation" not in text


class TestAbsorbIoEventLog:
    def test_families_and_values(self):
        ctx, log = traced_ctx()
        drive_heapfile(ctx)
        registry = MetricsRegistry()
        absorb_io_event_log(registry, log)
        names = registry.names()
        assert "repro_io_events_total" in names
        assert "repro_io_event_bytes_total" in names
        assert "repro_io_event_cost_ms_total" in names
        assert "repro_io_events_dropped_total" in names
        assert "repro_io_seek_distance_pages" in names
        total_events = sum(
            sample.metric.value
            for sample in registry.collect()
            if sample.name == "repro_io_events_total"
        )
        assert total_events == len(log)
        assert registry.value(
            "repro_io_event_bytes_total", device="data"
        ) == ctx.io_stats.counters("data").bytes_total
        cost = registry.value("repro_io_event_cost_ms_total", device="data")
        assert cost == pytest.approx(ctx.io_stats.cost_ms("data"))

    def test_seek_histogram_counts_only_seeks(self):
        ctx, log = traced_ctx()
        drive_heapfile(ctx)
        registry = MetricsRegistry()
        absorb_io_event_log(registry, log)
        seeks = ctx.io_stats.counters("data").seeks
        hist = registry.histogram(
            "repro_io_seek_distance_pages",
            boundaries=(1, 2, 4, 8, 16, 32, 64, 128, 256, 1024),
            device="data",
        )
        assert hist.count == seeks

    def test_dropped_counter(self):
        log = IoEventLog(capacity=2)
        stats = IoStatistics(trace=log)
        for page in range(5):
            stats.record_transfer("data", page * 3, 256, True)
        registry = MetricsRegistry()
        absorb_io_event_log(registry, log)
        assert registry.value("repro_io_events_dropped_total") == 3
