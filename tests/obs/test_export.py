"""Exporters: Prometheus text, JSON, and the BENCH_*.json trajectory."""

import json

import pytest

# Note: ``bench_*`` names are aliased on import -- this repository's
# pytest config collects ``bench_*`` functions as benchmarks.
from repro.obs.export import (
    BENCH_SCHEMA_VERSION,
    bench_path as make_bench_path,
    bench_payload as make_bench_payload,
    load_bench_json,
    profile_to_json,
    registry_to_json,
    render_prometheus,
    validate_bench_payload,
    write_bench_json,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.span import Tracer


class TestPrometheus:
    def test_counter_gauge_rendering(self):
        registry = MetricsRegistry()
        registry.counter("repro_things_total", strategy="naive").inc(3)
        registry.gauge("repro_level").set(0.5)
        text = render_prometheus(registry)
        assert "# TYPE repro_things_total counter" in text
        assert 'repro_things_total{strategy="naive"} 3' in text
        assert "# TYPE repro_level gauge" in text
        assert "repro_level 0.5" in text
        assert text.endswith("\n")

    def test_histogram_rendering(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_latency_ms", boundaries=(1.0, 10.0))
        hist.observe(0.5)
        hist.observe(5.0)
        text = render_prometheus(registry)
        assert 'repro_latency_ms_bucket{le="1"} 1' in text
        assert 'repro_latency_ms_bucket{le="10"} 2' in text
        assert 'repro_latency_ms_bucket{le="+Inf"} 2' in text
        assert "repro_latency_ms_sum 5.5" in text
        assert "repro_latency_ms_count 2" in text

    def test_label_escaping(self):
        registry = MetricsRegistry()
        registry.counter("repro_odd_total", note='say "hi"\nok').inc()
        text = render_prometheus(registry)
        assert r'note="say \"hi\"\nok"' in text

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_type_line_emitted_once_per_family(self):
        registry = MetricsRegistry()
        registry.counter("repro_things_total", a="1").inc()
        registry.counter("repro_things_total", a="2").inc()
        text = render_prometheus(registry)
        assert text.count("# TYPE repro_things_total counter") == 1


class TestJson:
    def test_registry_to_json_is_valid_json(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total").inc(2)
        payload = json.loads(registry_to_json(registry))
        assert payload["repro_x_total"]["samples"][0]["value"] == 2

    def test_profile_to_json_is_valid_json(self):
        from repro.experiments.runner import run_strategy_on_relations
        from repro.workloads.university import figure2_courses, figure2_transcript

        run = run_strategy_on_relations(
            "hash-division",
            figure2_transcript(),
            figure2_courses(),
            expected_quotient=1,
            tracer=Tracer(),
        )
        payload = json.loads(profile_to_json(run.profile))
        assert payload["operators"][0]["operator"] == "HashDivision"
        assert payload["totals"]["cpu"]["hashes"] > 0


class TestBenchExport:
    def test_write_then_load_round_trip(self, tmp_path):
        path = write_bench_json(
            tmp_path,
            "table4_point",
            {"total_model_ms": 68.591},
            extra={"size_point": "25x25"},
            created_unix=1_700_000_000.0,
        )
        assert path == make_bench_path(tmp_path, "table4_point")
        assert path.name == "BENCH_table4_point.json"
        payload = load_bench_json(path)
        assert payload["schema_version"] == BENCH_SCHEMA_VERSION
        assert payload["metrics"] == {"total_model_ms": 68.591}
        assert payload["extra"] == {"size_point": "25x25"}
        assert payload["created_unix"] == 1_700_000_000.0
        assert "python" in payload["environment"]

    def test_payload_can_embed_a_profile(self, tmp_path):
        from repro.experiments.runner import run_strategy_on_relations
        from repro.workloads.university import figure2_courses, figure2_transcript

        run = run_strategy_on_relations(
            "hash-division",
            figure2_transcript(),
            figure2_courses(),
            expected_quotient=1,
            tracer=Tracer(),
        )
        path = write_bench_json(
            tmp_path, "fig2", {"total_model_ms": run.total_ms}, profile=run.profile
        )
        payload = load_bench_json(path)
        assert payload["profile"]["operators"][0]["operator"] == "HashDivision"

    @pytest.mark.parametrize(
        "mutate, message",
        [
            (lambda p: p.__setitem__("schema_version", 99), "schema_version"),
            (lambda p: p.__setitem__("name", "bad name!"), "name"),
            (lambda p: p.__setitem__("created_unix", "yesterday"), "created_unix"),
            (lambda p: p.__setitem__("metrics", {}), "metrics"),
            (lambda p: p.__setitem__("metrics", {"x": "fast"}), "x"),
            (lambda p: p.__setitem__("metrics", {"x": True}), "x"),
            (lambda p: p.__setitem__("profile", []), "profile"),
        ],
    )
    def test_validation_rejects_bad_payloads(self, mutate, message):
        payload = make_bench_payload("ok", {"ms": 1.0}, created_unix=0.0)
        mutate(payload)
        with pytest.raises(ValueError, match=message):
            validate_bench_payload(payload)

    def test_load_rejects_non_json(self, tmp_path):
        path = tmp_path / "BENCH_broken.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_bench_json(path)

    def test_bad_name_rejected_at_build_time(self):
        with pytest.raises(ValueError):
            make_bench_payload("no spaces allowed", {"ms": 1.0})

    def test_export_bench_fixture_writes_under_results(self):
        """The benchmark suite's conftest fixture targets
        ``benchmarks/results`` and produces a loadable artifact."""
        import importlib.util
        from pathlib import Path

        conftest = Path(__file__).resolve().parents[2] / "benchmarks" / "conftest.py"
        spec = importlib.util.spec_from_file_location("bench_conftest", conftest)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert module.RESULTS_DIR.name == "results"


class TestServeBlock:
    """Schema v4: the optional top-level ``serve`` block."""

    @staticmethod
    def serve_block(**overrides):
        block = {
            "clients": 2,
            "requests": 4,
            "latency_ms": {"p50": 1.0, "p95": 2.0, "p99": 2.0},
            "trace_digest": "ab" * 32,
        }
        block.update(overrides)
        return block

    def test_serve_block_round_trips(self, tmp_path):
        path = write_bench_json(
            tmp_path, "with_serve", {"ms": 1.0}, serve=self.serve_block()
        )
        payload = load_bench_json(path)
        assert payload["schema_version"] == 4
        assert payload["serve"]["clients"] == 2

    def test_payload_without_serve_block_is_still_valid(self):
        payload = make_bench_payload("plain", {"ms": 1.0}, created_unix=0.0)
        assert "serve" not in payload
        validate_bench_payload(payload)

    @pytest.mark.parametrize(
        "bad, message",
        [
            ("not a dict", "serve"),
            ({"clients": 2}, "serve"),  # missing required keys
            ({"clients": 2, "requests": 4, "latency_ms": "fast",
              "trace_digest": "x" * 64}, "latency_ms"),
            ({"clients": 2, "requests": 4, "latency_ms": {},
              "trace_digest": ""}, "trace_digest"),
        ],
    )
    def test_malformed_serve_block_rejected(self, bad, message):
        payload = make_bench_payload("badserve", {"ms": 1.0}, created_unix=0.0)
        payload["serve"] = bad
        with pytest.raises(ValueError, match=message):
            validate_bench_payload(payload)

    def test_v3_payload_without_serve_still_loads(self, tmp_path):
        """Trajectory back-compat: v3 artifacts predate serving."""
        legacy = make_bench_payload("v3legacy", {"ms": 2.0}, created_unix=0.0)
        legacy["schema_version"] = 3
        path = tmp_path / "BENCH_v3legacy.json"
        path.write_text(json.dumps(legacy))
        payload = load_bench_json(path)
        assert payload["schema_version"] == 3
        assert "serve" not in payload


class TestProvenance:
    def test_payloads_carry_a_provenance_block(self):
        payload = make_bench_payload("prov", {"ms": 1.0}, created_unix=0.0)
        provenance = payload["provenance"]
        assert payload["schema_version"] == 4
        assert provenance["page_size"] == 8 * 1024
        assert provenance["sort_run_page_size"] == 1 * 1024
        assert provenance["buffer_size"] == 256 * 1024
        assert provenance["sort_buffer_size"] == 100 * 1024
        # The Table 3 weights travel with every measurement.
        weights = provenance["io_weights"]
        assert weights["seek_ms"] == 20.0
        assert weights["latency_ms_per_transfer"] == 8.0
        assert "git_commit" in provenance  # str or None, never absent

    def test_provenance_reflects_a_custom_config(self):
        from repro.obs.export import provenance_info
        from repro.storage.config import KIB, StorageConfig

        info = provenance_info(StorageConfig(page_size=2 * KIB))
        assert info["page_size"] == 2 * KIB

    def test_provenance_override_is_deterministic(self):
        stamp = {"git_commit": "cafebabe", "note": "pinned"}
        payload = make_bench_payload(
            "prov", {"ms": 1.0}, created_unix=0.0, provenance=stamp
        )
        assert payload["provenance"] == stamp
        assert payload["provenance"] is not stamp  # defensive copy

    def test_fault_injection_defaults_to_disabled(self):
        """v3: every ordinary benchmark states faults were OFF."""
        payload = make_bench_payload("prov", {"ms": 1.0}, created_unix=0.0)
        assert payload["provenance"]["fault_injection"] == {"enabled": False}

    def test_fault_injection_summary_travels_in_provenance(self):
        from repro.faults import FaultInjector, FaultRule
        from repro.obs.export import provenance_info

        injector = FaultInjector(
            [FaultRule("transient", op="read", probability=1.0)], seed=9
        )
        info = provenance_info(fault_injection=injector.summary())
        block = info["fault_injection"]
        assert block["enabled"] is True
        assert block["seed"] == 9
        assert block["rules"][0]["kind"] == "transient"
        payload = make_bench_payload(
            "chaos", {"ms": 1.0}, created_unix=0.0, provenance=info
        )
        assert payload["provenance"]["fault_injection"]["seed"] == 9

    def test_v2_payload_without_fault_injection_still_loads(self, tmp_path):
        """Trajectory back-compat: v2 artifacts predate fault_injection."""
        import json as json_mod

        legacy = make_bench_payload("v2legacy", {"ms": 2.0}, created_unix=0.0)
        legacy["schema_version"] = 2
        del legacy["provenance"]["fault_injection"]
        path = tmp_path / "BENCH_v2legacy.json"
        path.write_text(json_mod.dumps(legacy))
        payload = load_bench_json(path)
        assert payload["schema_version"] == 2
        assert "fault_injection" not in payload["provenance"]

    def test_malformed_fault_injection_rejected(self):
        payload = make_bench_payload("badfi", {"ms": 1.0}, created_unix=0.0)
        payload["provenance"]["fault_injection"] = "yes"
        with pytest.raises(ValueError, match="fault_injection"):
            validate_bench_payload(payload)

    def test_v1_payload_without_provenance_still_loads(self, tmp_path):
        """Trajectory back-compat: v1 artifacts predate provenance."""
        import json as json_mod

        legacy = make_bench_payload("legacy", {"ms": 2.0}, created_unix=0.0)
        legacy["schema_version"] = 1
        del legacy["provenance"]
        path = tmp_path / "BENCH_legacy.json"
        path.write_text(json_mod.dumps(legacy))
        payload = load_bench_json(path)
        assert payload["schema_version"] == 1
        assert "provenance" not in payload

    def test_v2_payload_requires_provenance(self):
        payload = make_bench_payload("strict", {"ms": 1.0}, created_unix=0.0)
        del payload["provenance"]
        with pytest.raises(ValueError, match="provenance"):
            validate_bench_payload(payload)

    def test_v1_with_malformed_provenance_rejected(self):
        payload = make_bench_payload("mixed", {"ms": 1.0}, created_unix=0.0)
        payload["schema_version"] = 1
        payload["provenance"] = "8KiB pages"
        with pytest.raises(ValueError, match="provenance"):
            validate_bench_payload(payload)

    def test_git_commit_is_resolved_in_this_checkout(self):
        """The repo under test *is* a git checkout, so the best-effort
        lookup should succeed here and give a 40-hex commit."""
        from repro.obs.export import _git_commit

        commit = _git_commit()
        assert commit is None or (
            len(commit) == 40 and all(c in "0123456789abcdef" for c in commit)
        )
