"""EXPLAIN ANALYZE profiles: exact attribution and null-tracer parity.

The two acceptance properties of the observability subsystem:

1. per-operator (exclusive) Comp/Hash/Move/Bit deltas sum *exactly* to
   the run's global ``CpuCounters`` -- nothing double-counted, nothing
   escaping -- and likewise the per-operator I/O model milliseconds,
2. the default null tracer changes no query results and adds no
   metrics entries.
"""

import pytest

from repro.executor.iterator import ExecContext
from repro.experiments.runner import STRATEGIES, run_strategy_on_relations
from repro.metering import CpuCounters
from repro.obs.profile import OperatorStats, QueryProfile, build_profile
from repro.obs.span import FakeClock, Tracer
from repro.query import ProfiledResult, Query
from repro.workloads.synthetic import make_exact_division
from repro.workloads.university import figure2_courses, figure2_transcript


def assert_cpu_equal(left: CpuCounters, right: CpuCounters) -> None:
    assert left.comparisons == right.comparisons
    assert left.hashes == right.hashes
    assert left.moves == pytest.approx(right.moves)
    assert left.bit_ops == right.bit_ops


class TestExactAttribution:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_operator_cpu_sums_to_global_on_figure2(self, strategy):
        tracer = Tracer()
        run = run_strategy_on_relations(
            strategy,
            figure2_transcript(),
            figure2_courses(),
            expected_quotient=1,
            duplicate_free_inputs=False,
            tracer=tracer,
        )
        profile = run.profile
        assert profile is not None
        assert_cpu_equal(profile.operator_cpu_total(), profile.cpu)
        assert profile.operator_io_ms_total() == pytest.approx(profile.io_ms)

    def test_operator_cpu_sums_to_global_on_a_spilling_workload(self):
        dividend, divisor = make_exact_division(25, 25, seed=0)
        tracer = Tracer()
        run = run_strategy_on_relations(
            "sort-agg with join",
            dividend,
            divisor,
            expected_quotient=25,
            tracer=tracer,
        )
        profile = run.profile
        assert profile is not None
        assert_cpu_equal(profile.operator_cpu_total(), profile.cpu)
        assert profile.operator_io_ms_total() == pytest.approx(profile.io_ms)
        # A deep plan: division on top, scans at the leaves.
        labels = [stats.op_class for stats in profile.all_operators()]
        assert "StoredRelationScan" in labels
        assert len(labels) > 3

    def test_contains_query_explain_analyze_sums_exactly(self):
        query = Query(figure2_transcript()).contains(Query(figure2_courses()))
        profile = query.explain_analyze()
        assert isinstance(profile, QueryProfile)
        assert_cpu_equal(profile.operator_cpu_total(), profile.cpu)
        assert profile.roots, "expected at least one operator root"

    def test_exclusive_wall_sums_to_total_wall(self):
        clock = FakeClock(auto_tick=0.001)
        tracer = Tracer(clock=clock)
        run = run_strategy_on_relations(
            "hash-division",
            figure2_transcript(),
            figure2_courses(),
            expected_quotient=1,
            clock=clock,
            tracer=tracer,
        )
        profile = run.profile
        exclusive = sum(s.wall_s for s in profile.all_operators())
        # Operator wall is a subset of the measured window (plan build,
        # profile assembly etc. happen outside any operator).
        assert 0 < exclusive <= run.wall_seconds


class TestNullTracerParity:
    def test_results_and_meters_identical_with_and_without_tracing(self):
        dividend, divisor = figure2_transcript(), figure2_courses()
        plain = run_strategy_on_relations(
            "hash-division", dividend, divisor, expected_quotient=1
        )
        traced = run_strategy_on_relations(
            "hash-division", dividend, divisor, expected_quotient=1, tracer=Tracer()
        )
        assert plain.quotient_tuples == traced.quotient_tuples
        assert plain.cpu_ms == pytest.approx(traced.cpu_ms)
        assert plain.io_ms == pytest.approx(traced.io_ms)
        assert plain.profile is None
        assert traced.profile is not None

    def test_null_traced_context_has_no_metrics(self):
        ctx = ExecContext()
        assert ctx.tracer.enabled is False
        assert ctx.tracer.metrics is None

    def test_divide_through_null_tracer_records_nothing(self):
        from repro import divide

        ctx = ExecContext()
        quotient = divide(figure2_transcript(), figure2_courses(), ctx=ctx)
        assert quotient.rows == [("Ann",)]
        assert ctx.tracer.metrics is None  # still the shared null tracer


class TestAlgorithmSpansAndMetrics:
    def test_hash_division_emits_phase_spans(self):
        tracer = Tracer()
        run_strategy_on_relations(
            "hash-division",
            figure2_transcript(),
            figure2_courses(),
            expected_quotient=1,
            tracer=tracer,
        )
        build = tracer.find_span("hash_division.build_divisor_table")
        consume = tracer.find_span("hash_division.consume_dividend")
        assert build is not None and consume is not None
        assert consume.attributes["dividend_tuples"] == 4
        assert consume.attributes["quotient_candidates"] == 2

    def test_division_metrics_recorded(self):
        tracer = Tracer()
        run_strategy_on_relations(
            "hash-division",
            figure2_transcript(),
            figure2_courses(),
            expected_quotient=1,
            tracer=tracer,
        )
        metrics = tracer.metrics
        assert metrics.value(
            "repro_division_divisor_tuples_total", algorithm="hash-division"
        ) == 2
        assert metrics.value(
            "repro_division_quotient_tuples_total", algorithm="hash-division"
        ) == 1
        # The runner absorbed the run's CPU meters, labelled by strategy.
        assert metrics.value(
            "repro_cpu_hashes_total", strategy="hash-division"
        ) > 0


class TestRendering:
    def test_render_shows_tree_and_totals(self):
        tracer = Tracer()
        run = run_strategy_on_relations(
            "hash-division",
            figure2_transcript(),
            figure2_courses(),
            expected_quotient=1,
            tracer=tracer,
        )
        text = run.profile.render()
        assert "EXPLAIN ANALYZE" in text
        assert "HashDivision" in text
        assert "StoredRelationScan" in text
        assert "└─" in text
        assert str(run.profile) == text

    def test_to_dict_round_trips_the_totals(self):
        tracer = Tracer()
        run = run_strategy_on_relations(
            "hash-division",
            figure2_transcript(),
            figure2_courses(),
            expected_quotient=1,
            tracer=tracer,
        )
        as_dict = run.profile.to_dict()
        assert as_dict["totals"]["total_model_ms"] == pytest.approx(
            run.profile.total_model_ms
        )
        assert as_dict["operators"][0]["operator"] == "HashDivision"
        children = as_dict["operators"][0]["children"]
        assert {child["operator"] for child in children} == {"StoredRelationScan"}


class TestQueryPipelineProfiling:
    def test_query_run_profile_returns_profiled_result(self):
        transcript = figure2_transcript()
        clock = FakeClock(auto_tick=0.001)
        result = Query(transcript).project("student").distinct().run(
            profile=True, clock=clock
        )
        assert isinstance(result, ProfiledResult)
        assert sorted(result.relation.rows) == [("Ann",), ("Barb",)]
        # The compiled pipeline profiles the physical streaming
        # operators, not the logical steps.
        labels = [stats.op_class for stats in result.profile.all_operators()]
        assert labels[0] == "HashDistinct" and "RelationSource" in labels
        assert result.profile.wall_s > 0

    def test_query_run_without_profile_returns_relation(self):
        relation = Query(figure2_transcript()).run()
        assert not isinstance(relation, ProfiledResult)

    def test_contains_query_keeps_last_profile(self):
        query = Query(figure2_transcript()).contains(Query(figure2_courses()))
        assert query.last_profile is None
        result = query.run(profile=True)
        assert isinstance(result, ProfiledResult)
        # Figure 2 violates referential integrity (Optics); the
        # planner's coverage check keeps no-join counting off the
        # table, so only Ann qualifies -- here we pin profiling.
        assert ("Ann",) in result.relation.rows
        assert query.last_profile is result.profile


class TestBuildProfileEdges:
    def test_build_profile_without_context(self):
        tracer = Tracer(clock=FakeClock())
        profile = build_profile(tracer)
        assert profile.roots == []
        assert profile.io_ms == 0.0
        assert profile.total_model_ms == 0.0

    def test_operator_stats_defaults(self):
        stats = OperatorStats(label="X()", op_class="X")
        assert stats.next_calls == 0
        assert stats.total_model_ms() == 0.0
