"""Tests for schemas, attributes, and the record codec."""

import pytest

from repro.errors import SchemaError
from repro.relalg.schema import Attribute, DataType, Schema


class TestAttribute:
    def test_int_attribute_is_eight_bytes(self):
        attribute = Attribute("x")
        assert attribute.dtype is DataType.INT64
        assert attribute.size == 8
        assert attribute.struct_format == "q"

    def test_float_attribute_format(self):
        assert Attribute("x", DataType.FLOAT64).struct_format == "d"

    def test_string_attribute_carries_width(self):
        attribute = Attribute("title", DataType.STRING, 24)
        assert attribute.size == 24
        assert attribute.struct_format == "24s"

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("")

    def test_int_with_wrong_size_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("x", DataType.INT64, 4)

    def test_string_needs_positive_size(self):
        with pytest.raises(SchemaError):
            Attribute("t", DataType.STRING, 0)


class TestSchema:
    def test_of_ints_builds_int_columns(self):
        schema = Schema.of_ints("a", "b", "c")
        assert schema.names == ("a", "b", "c")
        assert all(attribute.dtype is DataType.INT64 for attribute in schema)

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of_ints("a", "a")

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema(())

    def test_position_lookup(self):
        schema = Schema.of_ints("a", "b")
        assert schema.position_of("b") == 1
        assert schema.positions_of(["b", "a"]) == (1, 0)

    def test_unknown_name_raises(self):
        with pytest.raises(SchemaError):
            Schema.of_ints("a").position_of("missing")

    def test_contains_and_getitem(self):
        schema = Schema.of_ints("a", "b")
        assert "a" in schema and "z" not in schema
        assert schema["b"].name == "b"
        assert schema[0].name == "a"

    def test_project_preserves_requested_order(self):
        schema = Schema.of_ints("a", "b", "c")
        assert schema.project(["c", "a"]).names == ("c", "a")

    def test_complement_keeps_schema_order(self):
        schema = Schema.of_ints("a", "b", "c")
        assert schema.complement(["b"]).names == ("a", "c")

    def test_complement_of_everything_rejected(self):
        schema = Schema.of_ints("a")
        with pytest.raises(SchemaError):
            schema.complement(["a"])

    def test_complement_of_unknown_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of_ints("a").complement(["zz"])

    def test_concat(self):
        left = Schema.of_ints("a")
        right = Schema.of_ints("b")
        assert left.concat(right).names == ("a", "b")

    def test_equality_and_hash(self):
        assert Schema.of_ints("a", "b") == Schema.of_ints("a", "b")
        assert Schema.of_ints("a") != Schema.of_ints("b")
        assert hash(Schema.of_ints("a")) == hash(Schema.of_ints("a"))

    def test_record_size_matches_paper_shapes(self):
        # Section 5.1: 8-byte divisor/quotient records, 16-byte dividend.
        assert Schema.of_ints("course_no").record_size == 8
        assert Schema.of_ints("student_id", "course_no").record_size == 16


class TestRecordCodec:
    def test_int_roundtrip(self):
        codec = Schema.of_ints("a", "b").codec()
        assert codec.record_size == 16
        row = (42, -7)
        assert codec.decode(codec.encode(row)) == row

    def test_string_roundtrip_strips_padding(self):
        schema = Schema((Attribute("name", DataType.STRING, 12), Attribute("n")))
        codec = schema.codec()
        encoded = codec.encode(("Ann", 3))
        assert len(encoded) == 20
        assert codec.decode(encoded) == ("Ann", 3)

    def test_float_roundtrip(self):
        schema = Schema((Attribute("x", DataType.FLOAT64),))
        codec = schema.codec()
        assert codec.decode(codec.encode((2.5,))) == (2.5,)

    def test_arity_mismatch_rejected(self):
        codec = Schema.of_ints("a").codec()
        with pytest.raises(SchemaError):
            codec.encode((1, 2))

    def test_bytes_accepted_for_string_attribute(self):
        schema = Schema((Attribute("name", DataType.STRING, 8),))
        codec = schema.codec()
        assert codec.decode(codec.encode((b"Barb",))) == ("Barb",)

    def test_negative_and_large_ints(self):
        codec = Schema.of_ints("a").codec()
        for value in (0, -1, 2**62, -(2**62)):
            assert codec.decode(codec.encode((value,))) == (value,)
