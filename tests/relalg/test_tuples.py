"""Tests for the positional tuple helpers."""

from repro.relalg.schema import Schema
from repro.relalg.tuples import (
    composite_key,
    concat_rows,
    key_extractor,
    projector,
    rows_equal_on,
)


class TestProjector:
    def test_single_attribute(self):
        schema = Schema.of_ints("a", "b")
        project = projector(schema, ["b"])
        assert project((1, 2)) == (2,)

    def test_multiple_attributes_in_requested_order(self):
        schema = Schema.of_ints("a", "b", "c")
        project = projector(schema, ["c", "a"])
        assert project((1, 2, 3)) == (3, 1)

    def test_identity_projection_returns_same_tuple(self):
        schema = Schema.of_ints("a", "b")
        project = projector(schema, ["a", "b"])
        row = (1, 2)
        assert project(row) is row

    def test_key_extractor_is_projector(self):
        schema = Schema.of_ints("a", "b")
        assert key_extractor(schema, ["a"])((5, 6)) == (5,)


class TestCompositeKey:
    def test_major_minor_order(self):
        schema = Schema.of_ints("q", "d")
        major = projector(schema, ["q"])
        minor = projector(schema, ["d"])
        key = composite_key(major, minor)
        assert key((1, 2)) == (1, 2)
        # Sorting by the composite key orders by q first, then d.
        rows = [(2, 1), (1, 9), (1, 2)]
        assert sorted(rows, key=key) == [(1, 2), (1, 9), (2, 1)]


class TestRowHelpers:
    def test_concat_rows(self):
        assert concat_rows((1,), (2, 3)) == (1, 2, 3)

    def test_rows_equal_on_differing_positions(self):
        left = Schema.of_ints("x", "k")
        right = Schema.of_ints("k", "y")
        equal = rows_equal_on(left, right, ["k"])
        assert equal((0, 7), (7, 9))
        assert not equal((0, 7), (8, 9))
