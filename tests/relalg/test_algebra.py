"""Tests for the in-memory relational algebra (the oracle layer)."""

import pytest

from repro.errors import DivisionError, SchemaError
from repro.relalg import algebra
from repro.relalg.predicates import AttributeEquals
from repro.relalg.relation import Relation


class TestSelectProject:
    def test_select(self):
        relation = Relation.of_ints(("a", "b"), [(1, 1), (2, 2)])
        result = algebra.select(relation, AttributeEquals("a", 2))
        assert result.rows == [(2, 2)]

    def test_project_distinct(self):
        relation = Relation.of_ints(("a", "b"), [(1, 1), (1, 2)])
        result = algebra.project(relation, ["a"])
        assert result.rows == [(1,)]

    def test_project_bag(self):
        relation = Relation.of_ints(("a", "b"), [(1, 1), (1, 2)])
        result = algebra.project(relation, ["a"], distinct=False)
        assert result.rows == [(1,), (1,)]

    def test_project_reorders(self):
        relation = Relation.of_ints(("a", "b"), [(1, 2)])
        assert algebra.project(relation, ["b", "a"]).rows == [(2, 1)]


class TestSetOperations:
    def test_union_deduplicates(self):
        left = Relation.of_ints(("a",), [(1,), (2,)])
        right = Relation.of_ints(("a",), [(2,), (3,)])
        assert sorted(algebra.union(left, right).rows) == [(1,), (2,), (3,)]

    def test_union_all_concatenates(self):
        left = Relation.of_ints(("a",), [(1,)])
        right = Relation.of_ints(("a",), [(1,)])
        assert algebra.union_all(left, right).rows == [(1,), (1,)]

    def test_difference(self):
        left = Relation.of_ints(("a",), [(1,), (2,), (2,)])
        right = Relation.of_ints(("a",), [(2,)])
        assert algebra.difference(left, right).rows == [(1,)]

    def test_schema_mismatch_rejected(self):
        left = Relation.of_ints(("a",), [])
        right = Relation.of_ints(("b",), [])
        with pytest.raises(SchemaError):
            algebra.union(left, right)


class TestJoins:
    def test_cartesian_product(self):
        left = Relation.of_ints(("a",), [(1,), (2,)])
        right = Relation.of_ints(("b",), [(10,), (20,)])
        product = algebra.cartesian_product(left, right)
        assert len(product) == 4
        assert product.schema.names == ("a", "b")

    def test_natural_join(self):
        left = Relation.of_ints(("a", "k"), [(1, 7), (2, 8)])
        right = Relation.of_ints(("k", "b"), [(7, 70), (7, 71)])
        joined = algebra.natural_join(left, right)
        assert sorted(joined.rows) == [(1, 7, 70), (1, 7, 71)]
        assert joined.schema.names == ("a", "k", "b")

    def test_natural_join_without_common_attributes_is_product(self):
        left = Relation.of_ints(("a",), [(1,)])
        right = Relation.of_ints(("b",), [(2,)])
        assert algebra.natural_join(left, right).rows == [(1, 2)]

    def test_semi_join(self):
        left = Relation.of_ints(("a", "k"), [(1, 7), (2, 9)])
        right = Relation.of_ints(("k",), [(7,)])
        assert algebra.semi_join(left, right).rows == [(1, 7)]

    def test_semi_join_preserves_duplicates(self):
        left = Relation.of_ints(("a", "k"), [(1, 7), (1, 7)])
        right = Relation.of_ints(("k",), [(7,)])
        assert algebra.semi_join(left, right).rows == [(1, 7), (1, 7)]

    def test_semi_join_needs_common_attribute(self):
        left = Relation.of_ints(("a",), [])
        right = Relation.of_ints(("b",), [])
        with pytest.raises(SchemaError):
            algebra.semi_join(left, right)


class TestDivision:
    def test_paper_first_example(self, transcript, courses, expected_quotient):
        result = algebra.divide_set_semantics(transcript, courses)
        assert set(result.rows) == expected_quotient

    def test_identity_matches_definition(self, transcript, courses):
        direct = algebra.divide_set_semantics(transcript, courses)
        identity = algebra.divide_by_identity(transcript, courses)
        assert direct.set_equal(identity)

    def test_empty_divisor_is_vacuous(self):
        dividend = Relation.of_ints(("q", "d"), [(1, 5), (2, 6), (1, 5)])
        divisor = Relation.of_ints(("d",), [])
        result = algebra.divide_set_semantics(dividend, divisor)
        assert sorted(result.rows) == [(1,), (2,)]
        identity = algebra.divide_by_identity(dividend, divisor)
        assert identity.set_equal(result)

    def test_empty_dividend_yields_empty_quotient(self):
        dividend = Relation.of_ints(("q", "d"), [])
        divisor = Relation.of_ints(("d",), [(1,)])
        assert algebra.divide_set_semantics(dividend, divisor).rows == []

    def test_duplicates_in_either_input_ignored(self):
        dividend = Relation.of_ints(("q", "d"), [(1, 5), (1, 5), (1, 6)])
        divisor = Relation.of_ints(("d",), [(5,), (6,), (5,)])
        assert algebra.divide_set_semantics(dividend, divisor).rows == [(1,)]

    def test_multi_attribute_divisor(self):
        dividend = Relation.of_ints(
            ("q", "d1", "d2"), [(1, 5, 50), (1, 6, 60), (2, 5, 50)]
        )
        divisor = Relation.of_ints(("d1", "d2"), [(5, 50), (6, 60)])
        assert algebra.divide_set_semantics(dividend, divisor).rows == [(1,)]

    def test_multi_attribute_quotient(self):
        dividend = Relation.of_ints(
            ("q1", "q2", "d"), [(1, 1, 5), (1, 1, 6), (1, 2, 5)]
        )
        divisor = Relation.of_ints(("d",), [(5,), (6,)])
        assert algebra.divide_set_semantics(dividend, divisor).rows == [(1, 1)]

    def test_divisor_attribute_missing_from_dividend(self):
        dividend = Relation.of_ints(("q", "d"), [])
        divisor = Relation.of_ints(("x",), [])
        with pytest.raises(DivisionError):
            algebra.division_attribute_split(dividend, divisor)

    def test_divisor_covering_all_attributes_rejected(self):
        dividend = Relation.of_ints(("q", "d"), [])
        divisor = Relation.of_ints(("q", "d"), [])
        with pytest.raises(DivisionError):
            algebra.division_attribute_split(dividend, divisor)

    def test_attribute_split_orders_by_dividend_schema(self):
        dividend = Relation.of_ints(("a", "d", "b"), [])
        divisor = Relation.of_ints(("d",), [])
        quotient_names, divisor_names = algebra.division_attribute_split(
            dividend, divisor
        )
        assert quotient_names == ("a", "b")
        assert divisor_names == ("d",)
