"""Tests for the Relation container."""

import pytest

from repro.errors import SchemaError
from repro.relalg.relation import Relation


class TestConstruction:
    def test_of_ints(self):
        relation = Relation.of_ints(("a", "b"), [(1, 2)], name="r")
        assert len(relation) == 1
        assert relation.schema.names == ("a", "b")
        assert relation.name == "r"

    def test_rows_are_normalized_to_tuples(self):
        relation = Relation.of_ints(("a",), [[1], (2,)])
        assert relation.rows == [(1,), (2,)]

    def test_arity_checked_on_construction(self):
        with pytest.raises(SchemaError):
            Relation.of_ints(("a",), [(1, 2)])

    def test_arity_checked_on_append(self):
        relation = Relation.of_ints(("a",), [])
        with pytest.raises(SchemaError):
            relation.append((1, 2))

    def test_extend(self):
        relation = Relation.of_ints(("a",), [])
        relation.extend([(1,), (2,)])
        assert len(relation) == 2


class TestAccess:
    def test_iteration_preserves_order(self):
        rows = [(3,), (1,), (2,)]
        assert list(Relation.of_ints(("a",), rows)) == rows

    def test_column(self):
        relation = Relation.of_ints(("a", "b"), [(1, 10), (2, 20)])
        assert relation.column("b") == [10, 20]

    def test_bool(self):
        assert not Relation.of_ints(("a",), [])
        assert Relation.of_ints(("a",), [(1,)])


class TestComparisons:
    def test_bag_equal_is_order_insensitive(self):
        left = Relation.of_ints(("a",), [(1,), (2,), (2,)])
        right = Relation.of_ints(("a",), [(2,), (1,), (2,)])
        assert left.bag_equal(right)

    def test_bag_equal_respects_multiplicity(self):
        left = Relation.of_ints(("a",), [(1,), (1,)])
        right = Relation.of_ints(("a",), [(1,)])
        assert not left.bag_equal(right)
        assert left.set_equal(right)

    def test_different_schemas_never_equal(self):
        left = Relation.of_ints(("a",), [(1,)])
        right = Relation.of_ints(("b",), [(1,)])
        assert not left.bag_equal(right)
        assert not left.set_equal(right)

    def test_has_duplicates(self):
        assert Relation.of_ints(("a",), [(1,), (1,)]).has_duplicates()
        assert not Relation.of_ints(("a",), [(1,), (2,)]).has_duplicates()


class TestTransformations:
    def test_distinct_preserves_first_occurrence_order(self):
        relation = Relation.of_ints(("a",), [(2,), (1,), (2,), (1,)])
        assert relation.distinct().rows == [(2,), (1,)]

    def test_sorted_by(self):
        relation = Relation.of_ints(("a", "b"), [(2, 1), (1, 2), (1, 1)])
        assert relation.sorted_by(("a", "b")).rows == [(1, 1), (1, 2), (2, 1)]

    def test_sorted_by_minor_key_only(self):
        relation = Relation.of_ints(("a", "b"), [(2, 1), (1, 3), (3, 2)])
        assert relation.sorted_by(("b",)).rows == [(2, 1), (3, 2), (1, 3)]

    def test_filter(self):
        relation = Relation.of_ints(("a",), [(1,), (2,), (3,)])
        assert relation.filter(lambda row: row[0] > 1).rows == [(2,), (3,)]

    def test_rename_shares_rows(self):
        relation = Relation.of_ints(("a",), [(1,)], name="old")
        renamed = relation.rename("new")
        assert renamed.name == "new"
        relation.append((2,))
        assert len(renamed) == 2
