"""Property-based tests for the algebra layer (hypothesis).

These pin down the algebraic laws the rest of the library leans on --
most importantly that the two independent division oracles (direct
definition and operator identity) always agree, and that division is
the right adjoint of the Cartesian product.
"""

from hypothesis import given, settings, strategies as st

from repro.relalg import algebra
from repro.relalg.relation import Relation

quotient_keys = st.integers(min_value=0, max_value=6)
divisor_keys = st.integers(min_value=100, max_value=106)

dividends = st.lists(
    st.tuples(quotient_keys, divisor_keys), max_size=60
).map(lambda rows: Relation.of_ints(("q", "d"), rows, name="R"))

divisors = st.lists(
    st.tuples(divisor_keys), max_size=8
).map(lambda rows: Relation.of_ints(("d",), rows, name="S"))


@given(dividends, divisors)
@settings(max_examples=200)
def test_oracles_agree(dividend, divisor):
    """The direct definition and the operator identity always agree."""
    direct = algebra.divide_set_semantics(dividend, divisor)
    identity = algebra.divide_by_identity(dividend, divisor)
    assert direct.set_equal(identity)


@given(dividends, divisors)
@settings(max_examples=200)
def test_quotient_tuples_have_all_divisor_values(dividend, divisor):
    """Soundness: every quotient member pairs with every divisor value
    in the dividend."""
    quotient = algebra.divide_set_semantics(dividend, divisor)
    dividend_set = dividend.as_set()
    divisor_values = {row[0] for row in divisor}
    for (q,) in quotient:
        for d in divisor_values:
            assert (q, d) in dividend_set


@given(dividends, divisors)
@settings(max_examples=200)
def test_non_quotient_tuples_miss_some_divisor_value(dividend, divisor):
    """Completeness: every excluded candidate misses a divisor value."""
    quotient_set = algebra.divide_set_semantics(dividend, divisor).as_set()
    dividend_set = dividend.as_set()
    divisor_values = {row[0] for row in divisor}
    candidates = {(row[0],) for row in dividend}
    for candidate in candidates - quotient_set:
        assert any(
            (candidate[0], d) not in dividend_set for d in divisor_values
        )


@given(st.sets(quotient_keys, max_size=6), st.sets(divisor_keys, max_size=6))
@settings(max_examples=150)
def test_division_inverts_cartesian_product(quotient_values, divisor_values):
    """(Q x S) / S == Q whenever S is non-empty."""
    quotient = Relation.of_ints(("q",), [(v,) for v in quotient_values])
    divisor = Relation.of_ints(("d",), [(v,) for v in divisor_values])
    product = algebra.cartesian_product(quotient, divisor)
    if not len(divisor):
        return
    result = algebra.divide_set_semantics(product, divisor)
    assert result.as_set() == quotient.as_set()


@given(dividends, divisors)
@settings(max_examples=150)
def test_division_insensitive_to_duplicates_and_order(dividend, divisor):
    """Adding duplicates or shuffling never changes the quotient."""
    baseline = algebra.divide_set_semantics(dividend, divisor)
    doubled = Relation.of_ints(
        ("q", "d"), list(dividend.rows) + list(reversed(dividend.rows))
    )
    doubled_divisor = Relation.of_ints(
        ("d",), list(divisor.rows) + list(divisor.rows)
    )
    assert algebra.divide_set_semantics(doubled, doubled_divisor).set_equal(baseline)


@given(dividends, divisors)
@settings(max_examples=150)
def test_quotient_is_subset_of_candidates(dividend, divisor):
    quotient = algebra.divide_set_semantics(dividend, divisor)
    candidates = algebra.project(dividend, ["q"])
    assert quotient.as_set() <= candidates.as_set()


@given(dividends, divisors, divisors)
@settings(max_examples=150)
def test_division_antitone_in_divisor(dividend, small, extra):
    """Growing the divisor can only shrink the quotient."""
    union = algebra.union(small, extra)
    bigger = algebra.divide_set_semantics(dividend, union)
    smaller = algebra.divide_set_semantics(dividend, small)
    assert bigger.as_set() <= smaller.as_set()
