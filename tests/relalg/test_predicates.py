"""Tests for selection predicates."""

import pytest

from repro.errors import SchemaError
from repro.relalg.predicates import (
    AttributeContains,
    AttributeEquals,
    AttributeIn,
    ComparisonPredicate,
    NotPredicate,
    TruePredicate,
)
from repro.relalg.schema import Attribute, DataType, Schema

INT_SCHEMA = Schema.of_ints("a", "b")
TEXT_SCHEMA = Schema((Attribute("title", DataType.STRING, 24), Attribute("n")))


class TestBasicPredicates:
    def test_true_predicate_accepts_everything(self):
        test = TruePredicate().compile(INT_SCHEMA)
        assert test((0, 0)) and test((-5, 99))

    def test_attribute_equals(self):
        test = AttributeEquals("b", 7).compile(INT_SCHEMA)
        assert test((0, 7))
        assert not test((7, 0))

    def test_comparison_operators(self):
        rows = [(i, 0) for i in range(5)]
        less = ComparisonPredicate("a", "<", 2).compile(INT_SCHEMA)
        assert [r for r in rows if less(r)] == [(0, 0), (1, 0)]
        at_least = ComparisonPredicate("a", ">=", 3).compile(INT_SCHEMA)
        assert [r for r in rows if at_least(r)] == [(3, 0), (4, 0)]
        unequal = ComparisonPredicate("a", "!=", 0).compile(INT_SCHEMA)
        assert not unequal((0, 0))

    def test_unknown_operator_rejected(self):
        with pytest.raises(SchemaError):
            ComparisonPredicate("a", "<>", 1)

    def test_attribute_in(self):
        test = AttributeIn("a", [1, 3]).compile(INT_SCHEMA)
        assert test((1, 0)) and test((3, 0)) and not test((2, 0))

    def test_contains_matches_paper_example(self):
        # The paper's second example restricts the divisor to titles
        # containing "database".
        test = AttributeContains("title", "database").compile(TEXT_SCHEMA)
        assert test(("intro to database systems", 1))
        assert not test(("optics", 2))

    def test_unknown_attribute_raises_at_compile_time(self):
        with pytest.raises(SchemaError):
            AttributeEquals("missing", 1).compile(INT_SCHEMA)


class TestCombinators:
    def test_and(self):
        predicate = AttributeEquals("a", 1) & AttributeEquals("b", 2)
        test = predicate.compile(INT_SCHEMA)
        assert test((1, 2))
        assert not test((1, 3))
        assert not test((0, 2))

    def test_or(self):
        predicate = AttributeEquals("a", 1) | AttributeEquals("b", 2)
        test = predicate.compile(INT_SCHEMA)
        assert test((1, 99)) and test((99, 2))
        assert not test((0, 0))

    def test_not(self):
        predicate = ~AttributeEquals("a", 1)
        test = predicate.compile(INT_SCHEMA)
        assert test((0, 0)) and not test((1, 0))
        assert isinstance(predicate, NotPredicate)

    def test_nested_combination(self):
        predicate = (AttributeEquals("a", 1) | AttributeEquals("a", 2)) & ~AttributeEquals("b", 0)
        test = predicate.compile(INT_SCHEMA)
        assert test((1, 5)) and test((2, 5))
        assert not test((1, 0))
        assert not test((3, 5))
