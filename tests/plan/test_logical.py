"""Tests for the logical plan nodes and the reference evaluator."""

import pytest

from repro.plan.logical import (
    DistinctNode,
    DivideNode,
    FilterNode,
    ProjectNode,
    SourceNode,
    evaluate,
    render_logical,
)
from repro.relalg.predicates import ComparisonPredicate
from repro.relalg.relation import Relation


def R(rows):
    return Relation.of_ints(("q", "d"), rows, name="R")


def S(rows):
    return Relation.of_ints(("d",), rows, name="S")


class TestNodes:
    def test_source_schema_and_describe(self):
        node = SourceNode(R([(1, 2)]))
        assert node.schema.names == ("q", "d")
        assert "R" in node.describe()
        assert node.children() == ()

    def test_project_schema(self):
        node = ProjectNode(SourceNode(R([(1, 2)])), ("q",))
        assert node.schema.names == ("q",)

    def test_divide_schema_is_quotient_attributes(self):
        node = DivideNode(SourceNode(R([])), SourceNode(S([])))
        assert node.schema.names == ("q",)
        assert node.quotient_names == ("q",)
        assert node.divisor_names == ("d",)

    def test_render_logical_indents_children(self):
        node = DistinctNode(ProjectNode(SourceNode(R([(1, 2)])), ("q",)))
        text = render_logical(node)
        lines = text.splitlines()
        assert lines[0] == "Distinct"
        assert lines[1].startswith("  Project")
        assert lines[2].startswith("    Source")


class TestEvaluate:
    def test_filter_project_distinct_pipeline(self):
        node = DistinctNode(
            ProjectNode(
                FilterNode(
                    SourceNode(R([(1, 2), (1, 3), (2, 9), (1, 2)])),
                    ComparisonPredicate("d", "<", 9),
                ),
                ("q",),
            )
        )
        assert list(evaluate(node)) == [(1,)]

    def test_distinct_keeps_first_occurrence_order(self):
        node = DistinctNode(SourceNode(R([(2, 1), (1, 1), (2, 1)])))
        assert list(evaluate(node)) == [(2, 1), (1, 1)]

    def test_divide_matches_set_semantics(self):
        from repro.relalg import algebra

        dividend = R([(1, 10), (1, 11), (2, 10)])
        divisor = S([(10,), (11,)])
        node = DivideNode(SourceNode(dividend), SourceNode(divisor))
        expected = algebra.divide_set_semantics(dividend, divisor)
        assert list(evaluate(node)) == list(expected.rows)

    def test_unknown_node_rejected(self):
        class Bogus:
            pass

        with pytest.raises(TypeError):
            list(evaluate(Bogus()))
