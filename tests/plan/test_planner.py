"""Tests for the planner: statistics, decisions, and compiled trees."""

import pytest

from repro.costmodel.advisor import DivisionEstimates, choose_strategy
from repro.errors import ExecutionError
from repro.plan.logical import (
    DistinctNode,
    DivideNode,
    FilterNode,
    LogicalNode,
    ProjectNode,
    SourceNode,
)
from repro.plan.planner import Planner, collect_division_estimates, compile_plan
from repro.relalg.predicates import ComparisonPredicate
from repro.relalg.relation import Relation


def R(rows):
    return Relation.of_ints(("q", "d"), rows, name="R")


def S(rows):
    return Relation.of_ints(("d",), rows, name="S")


class TestCollectEstimates:
    def test_exact_statistics(self):
        dividend = SourceNode(R([(1, 0), (1, 1), (2, 0), (1, 0)]))
        divisor = SourceNode(S([(0,), (1,), (1,)]))
        estimates, quotient_names = collect_division_estimates(dividend, divisor)
        assert quotient_names == ("q",)
        assert estimates.dividend_tuples == 4
        assert estimates.divisor_tuples == 2  # distinct
        assert estimates.quotient_tuples == 2
        assert estimates.may_contain_duplicates  # both inputs have dups

    def test_statistics_respect_pipeline_steps(self):
        dividend = ProjectNode(
            FilterNode(
                SourceNode(R([(1, 0), (1, 5), (2, 0)])),
                ComparisonPredicate("d", "<", 5),
            ),
            ("q", "d"),
        )
        divisor = DistinctNode(SourceNode(S([(0,), (0,)])))
        estimates, _ = collect_division_estimates(dividend, divisor)
        assert estimates.dividend_tuples == 2  # (1,5) filtered out
        assert estimates.divisor_tuples == 1
        assert not estimates.may_contain_duplicates

    def test_uncovered_divisor_reported_restricted(self):
        """No referential integrity: a dividend d-value missing from the
        divisor makes no-join counting incorrect, so the statistics pass
        flags the divisor restricted even without a Filter step."""
        dividend = SourceNode(R([(1, 0), (1, 99)]))
        divisor = SourceNode(S([(0,)]))
        estimates, _ = collect_division_estimates(dividend, divisor)
        assert estimates.divisor_restricted

    def test_covered_divisor_not_restricted(self):
        dividend = SourceNode(R([(1, 0), (2, 0)]))
        divisor = SourceNode(S([(0,), (7,)]))  # superset is fine
        estimates, _ = collect_division_estimates(dividend, divisor)
        assert not estimates.divisor_restricted

    def test_syntactic_restriction_is_kept(self):
        dividend = SourceNode(R([(1, 0)]))
        divisor = SourceNode(S([(0,)]))
        estimates, _ = collect_division_estimates(
            dividend, divisor, divisor_restricted=True
        )
        assert estimates.divisor_restricted


class TestPlanner:
    def test_records_one_decision_per_divide(self, ctx):
        node = DivideNode(SourceNode(R([(1, 0)])), SourceNode(S([(0,)])))
        planner = Planner(ctx)
        planner.compile(node)
        assert len(planner.decisions) == 1
        decision = planner.decisions[0]
        assert decision.strategy == choose_strategy(decision.estimates).strategy
        assert "Division strategy:" in decision.render()

    def test_restricted_divisor_never_gets_no_join_counting(self, ctx):
        node = DivideNode(
            SourceNode(R([(q, d) for q in range(50) for d in range(5)])),
            FilterNode(
                SourceNode(S([(d,) for d in range(5)])),
                ComparisonPredicate("d", "<", 5),
            ),
            divisor_restricted=True,
        )
        planner = Planner(ctx)
        planner.compile(node)
        assert "no join" not in planner.decisions[0].strategy

    def test_unknown_node_rejected(self, ctx):
        class Bogus(LogicalNode):
            pass

        with pytest.raises(ExecutionError):
            Planner(ctx).compile(Bogus())

    def test_table4_grid_choices_match_direct_advisor_call(self):
        """For every Table 2/Table 4 (|S|, |Q|) point, compiling the
        R = Q x S workload through the planner picks exactly the
        strategy a direct advisor call on the same statistics picks --
        the refactor moved the advisor to plan time without changing a
        single choice."""
        from repro.costmodel.scenarios import TABLE2_SIZES

        for divisor_tuples, quotient_tuples in TABLE2_SIZES:
            estimates = DivisionEstimates(
                dividend_tuples=divisor_tuples * quotient_tuples,
                divisor_tuples=divisor_tuples,
                quotient_tuples=quotient_tuples,
            )
            expected = choose_strategy(estimates).strategy
            dividend = Relation.of_ints(
                ("q", "d"),
                [
                    (q, d)
                    for q in range(quotient_tuples)
                    for d in range(divisor_tuples)
                ],
                name="R",
            )
            divisor = Relation.of_ints(
                ("d",), [(d,) for d in range(divisor_tuples)], name="S"
            )
            plan = compile_plan(
                DivideNode(SourceNode(dividend), SourceNode(divisor))
            )
            assert plan.decisions[0].strategy == expected, (
                divisor_tuples,
                quotient_tuples,
            )


class TestCompilePlan:
    def test_division_free_plan_has_no_decisions(self, ctx):
        node = ProjectNode(SourceNode(R([(1, 2)])), ("q",))
        plan = compile_plan(node, ctx)
        assert plan.decisions == []
        assert plan.dividend_input is None
        result = plan.execute()
        assert result.rows == [(1,)]

    def test_divide_root_exposes_overflow_inputs(self, ctx):
        node = DivideNode(SourceNode(R([(1, 0)])), SourceNode(S([(0,)])))
        plan = compile_plan(node, ctx)
        assert plan.dividend_input is not None
        assert plan.divisor_input is not None
