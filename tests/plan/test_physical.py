"""Tests for the strategy factory and the physical plan wrapper."""

import pytest

from repro.errors import ExperimentError
from repro.executor.iterator import ExecContext, run_to_relation
from repro.executor.scan import RelationSource
from repro.plan.physical import (
    DIVISION_OPERATOR_STRATEGIES,
    build_division_operator,
)
from repro.plan.logical import DivideNode, SourceNode
from repro.plan.planner import compile_plan
from repro.relalg import algebra
from repro.relalg.relation import Relation


def inputs(ctx, dividend_rows, divisor_rows):
    dividend = Relation.of_ints(("q", "d"), dividend_rows, name="R")
    divisor = Relation.of_ints(("d",), divisor_rows, name="S")
    return (
        RelationSource(ctx, dividend),
        RelationSource(ctx, divisor),
        dividend,
        divisor,
    )


class TestBuildDivisionOperator:
    @pytest.mark.parametrize("strategy", DIVISION_OPERATOR_STRATEGIES)
    def test_every_strategy_computes_the_division(self, ctx, strategy):
        rows = [(q, d) for q in range(6) for d in range(4)]
        rows += [(9, 0), (9, 1)]  # an incomplete candidate
        dividend_scan, divisor_scan, dividend, divisor = inputs(
            ctx, rows, [(d,) for d in range(4)]
        )
        operator = build_division_operator(strategy, dividend_scan, divisor_scan)
        result = run_to_relation(operator, name="out")
        expected = algebra.divide_set_semantics(dividend, divisor)
        assert result.set_equal(expected.rename("out"))
        assert ctx.memory.bytes_in_use == 0

    def test_duplicate_inputs_with_eliminate_duplicates(self, ctx):
        rows = [(1, 0), (1, 1), (1, 1), (2, 0)]
        dividend_scan, divisor_scan, *_ = inputs(ctx, rows, [(0,), (1,)])
        operator = build_division_operator(
            "hash-agg no join",
            dividend_scan,
            divisor_scan,
            eliminate_duplicates=True,
        )
        result = run_to_relation(operator)
        assert sorted(result.rows) == [(1,)]

    def test_unknown_strategy_rejected(self, ctx):
        dividend_scan, divisor_scan, *_ = inputs(ctx, [], [(1,)])
        with pytest.raises(ExperimentError):
            build_division_operator("quantum", dividend_scan, divisor_scan)


class TestPhysicalPlan:
    def _plan(self, ctx, dividend_rows, divisor_rows):
        dividend = Relation.of_ints(("q", "d"), dividend_rows, name="R")
        divisor = Relation.of_ints(("d",), divisor_rows, name="S")
        node = DivideNode(SourceNode(dividend), SourceNode(divisor))
        return compile_plan(node, ctx), dividend, divisor

    def test_execute_names_the_result(self, ctx):
        plan, dividend, divisor = self._plan(
            ctx, [(1, 0), (1, 1), (2, 0)], [(0,), (1,)]
        )
        result = plan.execute(name="quotient")
        assert result.name == "quotient"
        assert sorted(result.rows) == [(1,)]

    def test_explain_contains_decision_and_tree(self, ctx):
        plan, *_ = self._plan(ctx, [(1, 0)], [(0,)])
        text = plan.explain()
        assert "Division strategy:" in text
        assert "Source" in text or "RelationSource" in text

    def test_overflow_falls_back_to_partitioned_division(self):
        """A tight budget overflows the single-phase hash table; the
        plan transparently re-runs through Section 3.4 partitioning and
        still produces the exact quotient."""
        dividend_rows = [(q, d) for q in range(300) for d in range(40)]
        divisor_rows = [(d,) for d in range(40)]
        ctx = ExecContext(memory_budget=4 * 1024)
        plan, dividend, divisor = self._plan(ctx, dividend_rows, divisor_rows)
        result = plan.execute(name="quotient")
        expected = algebra.divide_set_semantics(dividend, divisor)
        assert result.set_equal(expected)
        assert len(result) == 300
        assert ctx.memory.bytes_in_use == 0
        # Partitioning spooled to the temp device -- proof the fallback
        # (not a lucky single-phase pass) produced the answer.
        assert ctx.io_stats.counters("temp").transfers > 0

    def test_empty_divisor_is_vacuously_true(self, ctx):
        plan, *_ = self._plan(ctx, [(1, 0), (2, 1), (1, 0)], [])
        result = plan.execute()
        assert sorted(result.rows) == [(1,), (2,)]
