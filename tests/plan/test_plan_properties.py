"""Property tests for the plan compiler.

The refactor's core promise: a ``Query ... contains`` pipeline compiled
to one streaming iterator tree is *extensionally equal* to the eager
reference semantics -- each step evaluated with the
:mod:`repro.relalg.algebra` operations on materialized relations, and
the division resolved by the set-semantics oracle.  Hypothesis drives
random relations, random step orders, restricted and duplicated
divisors, and tight memory budgets (which exercise the partitioned
overflow fallback) through both paths.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.costmodel.advisor import DivisionEstimates, choose_strategy
from repro.executor.iterator import ExecContext
from repro.query import Query
from repro.relalg import algebra
from repro.relalg.predicates import ComparisonPredicate
from repro.relalg.relation import Relation
from repro.relalg.tuples import projector

q_keys = st.integers(min_value=0, max_value=7)
d_keys = st.integers(min_value=100, max_value=105)
noise = st.integers(min_value=0, max_value=2)

dividend_rows = st.lists(st.tuples(q_keys, d_keys, noise), max_size=50)
divisor_rows = st.lists(st.tuples(d_keys, noise), max_size=8)

#: Random pipeline shapes: optional restriction, duplicate elimination
#: before/after the projection (different but both valid step orders).
pipeline_flags = st.fixed_dictionaries(
    {
        "restrict_dividend": st.booleans(),
        "dividend_distinct": st.sampled_from(("none", "before", "after")),
        "restrict_divisor": st.booleans(),
        "divisor_distinct": st.booleans(),
        "cut": d_keys,
    }
)

budgets = st.sampled_from((None, 64 * 1024, 12 * 1024))


def _distinct(relation: Relation) -> Relation:
    return Relation(
        relation.schema, list(dict.fromkeys(relation.rows)), name=relation.name
    )


def _build_queries(R: Relation, S: Relation, flags: dict):
    """The streaming pipelines and their eager reference, side by side."""
    dividend_query = Query(R)
    eager_dividend = R
    if flags["restrict_dividend"]:
        predicate = ComparisonPredicate("d", "<=", flags["cut"])
        dividend_query = dividend_query.where(predicate)
        eager_dividend = algebra.select(eager_dividend, predicate)
    if flags["dividend_distinct"] == "before":
        dividend_query = dividend_query.distinct()
        eager_dividend = _distinct(eager_dividend)
    dividend_query = dividend_query.project("q", "d")
    eager_dividend = algebra.project(eager_dividend, ("q", "d"), distinct=False)
    if flags["dividend_distinct"] == "after":
        dividend_query = dividend_query.distinct()
        eager_dividend = _distinct(eager_dividend)

    divisor_query = Query(S)
    eager_divisor = S
    if flags["restrict_divisor"]:
        predicate = ComparisonPredicate("d", ">=", flags["cut"])
        divisor_query = divisor_query.where(predicate)
        eager_divisor = algebra.select(eager_divisor, predicate)
    divisor_query = divisor_query.project("d")
    eager_divisor = algebra.project(eager_divisor, ("d",), distinct=False)
    if flags["divisor_distinct"]:
        divisor_query = divisor_query.distinct()
        eager_divisor = _distinct(eager_divisor)
    return dividend_query, divisor_query, eager_dividend, eager_divisor


@given(dividend_rows, divisor_rows, pipeline_flags, budgets)
@settings(max_examples=60, deadline=None)
def test_compiled_contains_matches_oracle_and_eager_reference(
    dividend, divisor, flags, budget
):
    R = Relation.of_ints(("q", "d", "x"), dividend, name="R")
    S = Relation.of_ints(("d", "y"), divisor, name="S")
    dividend_query, divisor_query, eager_dividend, eager_divisor = _build_queries(
        R, S, flags
    )
    expected = algebra.divide_set_semantics(eager_dividend, eager_divisor)

    ctx = ExecContext(memory_budget=budget)
    quotient = dividend_query.contains(divisor_query).run(ctx=ctx)

    assert set(quotient.rows) == set(expected.rows), (dividend, divisor, flags)
    assert not quotient.has_duplicates()
    assert quotient.schema.names == expected.schema.names
    # Nothing leaked: every hash table and bit map was released.
    assert ctx.memory.bytes_in_use == 0


@given(dividend_rows, divisor_rows, pipeline_flags)
@settings(max_examples=40, deadline=None)
def test_plan_time_advisor_choice_matches_eager_statistics(
    dividend, divisor, flags
):
    """The planner's statistics pass feeds the advisor the *same*
    numbers the pre-refactor eager path computed from materialized
    relations, so the chosen strategy is identical."""
    R = Relation.of_ints(("q", "d", "x"), dividend, name="R")
    S = Relation.of_ints(("d", "y"), divisor, name="S")
    dividend_query, divisor_query, eager_dividend, eager_divisor = _build_queries(
        R, S, flags
    )
    quotient_of = projector(eager_dividend.schema, ("q",))
    divisor_of = projector(eager_dividend.schema, ("d",))
    divisor_values = set(eager_divisor.rows)
    covered = {divisor_of(row) for row in eager_dividend} <= divisor_values
    estimates = DivisionEstimates(
        dividend_tuples=len(eager_dividend),
        divisor_tuples=len(divisor_values),
        quotient_tuples=len({quotient_of(row) for row in eager_dividend}),
        divisor_restricted=divisor_query.is_restricted or not covered,
        may_contain_duplicates=(
            eager_dividend.has_duplicates() or eager_divisor.has_duplicates()
        ),
    )
    expected_strategy = choose_strategy(estimates).strategy

    plan = dividend_query.contains(divisor_query).compile()
    assert len(plan.decisions) == 1
    decision = plan.decisions[0]
    assert decision.strategy == expected_strategy
    assert decision.estimates == estimates


@given(dividend_rows, pipeline_flags)
@settings(max_examples=40, deadline=None)
def test_plain_query_pipeline_matches_eager_reference(dividend, flags):
    """A division-free pipeline streams to the same bag the eager
    step-by-step evaluation produced (order ignored, duplicates not)."""
    R = Relation.of_ints(("q", "d", "x"), dividend, name="R")
    dividend_query, _, eager_dividend, _ = _build_queries(
        R, Relation.of_ints(("d", "y"), [], name="S"), flags
    )
    result = dividend_query.run()
    assert sorted(result.rows) == sorted(eager_dividend.rows), (dividend, flags)
    assert result.schema.names == eager_dividend.schema.names
