"""Admission control: grants, FIFO fairness, shedding, clamping."""

import pytest

from repro.costmodel.advisor import DivisionEstimates
from repro.errors import ServeError, ServiceOverloadError
from repro.serve.admission import (
    AdmissionController,
    estimate_grant_bytes,
)
from repro.serve.scheduler import VirtualClock
from repro.storage.memory import MemoryPool


def make_controller(budget=None, max_waiters=16, clock=None, metrics=None):
    return AdmissionController(
        MemoryPool(budget=budget),
        clock or VirtualClock(),
        max_waiters=max_waiters,
        metrics=metrics,
    )


def estimates(divisor=10, quotient=20):
    return DivisionEstimates(
        dividend_tuples=divisor * quotient,
        divisor_tuples=divisor,
        quotient_tuples=quotient,
    )


class TestEstimate:
    def test_positive_and_monotonic(self):
        small = estimate_grant_bytes(estimates(4, 8))
        large = estimate_grant_bytes(estimates(40, 80))
        assert 0 < small < large

    def test_prices_the_bitmap_per_candidate(self):
        narrow = estimate_grant_bytes(estimates(8, 10))
        wide = estimate_grant_bytes(estimates(800, 10))
        # 100x more divisor tuples => much bigger bit maps.
        assert wide > narrow * 5


class TestGrants:
    def test_immediate_grant_when_it_fits(self):
        ctrl = make_controller(budget=1000)
        ticket = ctrl.enqueue(400)
        grant = ctrl.poll(ticket)
        assert grant is not None
        assert ctrl.outstanding_bytes == 400

    def test_release_is_idempotent(self):
        ctrl = make_controller(budget=1000)
        grant = ctrl.poll(ctrl.enqueue(400))
        ctrl.release(grant)
        ctrl.release(grant)
        assert ctrl.outstanding_bytes == 0

    def test_unbounded_pool_admits_everything(self):
        ctrl = make_controller(budget=None)
        for _ in range(5):
            assert ctrl.poll(ctrl.enqueue(10**9)) is not None

    def test_fifo_no_overtaking(self):
        """A small later request cannot jump a large earlier one."""
        ctrl = make_controller(budget=1000)
        first = ctrl.poll(ctrl.enqueue(800))
        big = ctrl.enqueue(600)  # cannot fit yet
        small = ctrl.enqueue(100)  # would fit, but queued behind big
        assert ctrl.poll(big) is None
        assert ctrl.poll(small) is None  # no overtaking
        ctrl.release(first)
        assert ctrl.poll(small) is None  # still behind big
        granted_big = ctrl.poll(big)
        assert granted_big is not None
        ctrl.release(granted_big)
        assert ctrl.poll(small) is not None

    def test_oversized_request_is_clamped_to_capacity(self):
        """A query bigger than the whole budget admits (alone) instead
        of waiting forever; execution degrades via the partitioned
        fallback."""
        ctrl = make_controller(budget=1000)
        ticket = ctrl.enqueue(5000)
        grant = ctrl.poll(ticket)
        assert grant is not None
        assert grant.nbytes == 1000

    def test_abandon_unblocks_the_queue(self):
        ctrl = make_controller(budget=1000)
        head = ctrl.poll(ctrl.enqueue(900))
        blocked = ctrl.enqueue(900)
        behind = ctrl.enqueue(50)
        ctrl.abandon(blocked)
        assert ctrl.poll(behind) is not None
        ctrl.release(head)


class TestShedding:
    def test_full_queue_sheds_with_typed_error(self):
        ctrl = make_controller(budget=100, max_waiters=1)
        ctrl.poll(ctrl.enqueue(100))  # consumes the budget
        ctrl.enqueue(100)  # the one allowed waiter
        with pytest.raises(ServiceOverloadError):
            ctrl.enqueue(100)
        assert ctrl.shed_total == 1

    def test_zero_waiters_means_admit_or_shed(self):
        ctrl = make_controller(budget=100, max_waiters=0)
        grant = ctrl.poll(ctrl.enqueue(60))  # fits: admitted, not shed
        assert grant is not None
        with pytest.raises(ServiceOverloadError):
            ctrl.enqueue(60)  # would have to wait: shed

    def test_negative_bytes_rejected(self):
        with pytest.raises(ServeError):
            make_controller().enqueue(-1)

    def test_negative_max_waiters_rejected(self):
        with pytest.raises(ServeError):
            make_controller(max_waiters=-1)


class TestWaitForGrantProtocol:
    def test_parks_then_grants_when_capacity_frees(self):
        clock = VirtualClock()
        ctrl = make_controller(budget=1000, clock=clock)
        held = ctrl.poll(ctrl.enqueue(900))
        gen = ctrl.wait_for_grant(500)
        wait = next(gen)  # parks: 500 does not fit beside 900
        assert wait.reason == "grant"
        assert not wait.ready()
        clock.advance(3.0)
        ctrl.release(held)
        assert wait.ready()
        with pytest.raises(StopIteration) as stop:
            gen.send(None)
        grant = stop.value.value
        assert grant.nbytes == 500
        assert ctrl.waited_total == 1

    def test_thrown_error_abandons_the_ticket(self):
        ctrl = make_controller(budget=100)
        held = ctrl.poll(ctrl.enqueue(100))
        gen = ctrl.wait_for_grant(100)
        next(gen)  # parked
        assert ctrl.queue_depth == 1
        with pytest.raises(RuntimeError):
            gen.throw(RuntimeError("cancelled from outside"))
        assert ctrl.queue_depth == 0  # the queue cannot jam on the dead waiter
        ctrl.release(held)
