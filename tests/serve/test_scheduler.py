"""The cooperative scheduler: virtual time, determinism, deadlines."""

import pytest

from repro.errors import (
    QueryCancelledError,
    QueryTimeoutError,
    SchedulerError,
)
from repro.serve.scheduler import (
    CooperativeScheduler,
    TaskState,
    VirtualClock,
    Wait,
)


def costed(costs, result=None):
    def gen():
        for cost in costs:
            yield cost
        return result

    return gen()


class TestVirtualClock:
    def test_starts_at_zero_and_advances(self):
        clock = VirtualClock()
        assert clock.now_ms == 0.0
        assert clock.advance(2.5) == 2.5
        assert clock.now_ms == 2.5

    def test_time_cannot_go_backwards(self):
        with pytest.raises(SchedulerError):
            VirtualClock().advance(-1.0)


class TestScheduling:
    def test_task_result_is_the_return_value(self):
        sched = CooperativeScheduler()
        task = sched.spawn(gen=costed([1.0, 2.0], result="done"))
        sched.run_until_complete()
        assert task.state is TaskState.DONE
        assert task.result == "done"

    def test_clock_advances_by_costs_plus_quanta(self):
        sched = CooperativeScheduler(quantum_ms=0.01)
        sched.spawn(gen=costed([1.0, 2.0]))
        sched.run_until_complete()
        # two costed steps + the StopIteration step, one quantum each.
        assert sched.clock.now_ms == pytest.approx(3.0 + 3 * 0.01)

    def test_negative_cost_fails_the_task(self):
        sched = CooperativeScheduler()
        task = sched.spawn(gen=costed([-1.0]))
        sched.run_until_complete()
        assert task.state is TaskState.FAILED
        assert isinstance(task.error, SchedulerError)

    def test_same_seed_same_interleaving(self):
        def run(seed):
            sched = CooperativeScheduler(seed=seed)
            for i in range(4):
                sched.spawn(gen=costed([0.5, 0.5, 0.5]), name=f"t{i}")
            sched.run_until_complete()
            return sched.trace_digest()

        assert run(7) == run(7)
        # A scheduler with >1 ready task must consult the seed; two
        # digests for one seed must agree even across many tasks.
        assert run(0) == run(0)

    def test_trace_records_every_step(self):
        sched = CooperativeScheduler()
        sched.spawn(gen=costed([1.0]))
        sched.run_until_complete()
        events = [event for _, _, event in sched.trace]
        assert events.count("step") == 2  # the cost step + StopIteration
        assert events[-1] == "done"


class TestWaiting:
    def test_wait_parks_until_condition_holds(self):
        box = {"ready": False}

        def waiter():
            yield Wait("box", lambda: box["ready"])
            return "woke"

        def opener():
            yield 1.0
            box["ready"] = True
            yield 0.1

        sched = CooperativeScheduler()
        parked = sched.spawn(gen=waiter(), name="waiter")
        sched.spawn(gen=opener(), name="opener")
        sched.run_until_complete()
        assert parked.result == "woke"

    def test_all_parked_and_unwakeable_is_deadlock(self):
        def stuck():
            yield Wait("never", lambda: False)

        sched = CooperativeScheduler()
        sched.spawn(gen=stuck(), name="stuck")
        with pytest.raises(SchedulerError, match="deadlock"):
            sched.run_until_complete()


class TestDeadlinesAndCancellation:
    def test_deadline_throws_timeout_into_the_task(self):
        cleaned = []

        def slow():
            try:
                while True:
                    yield 10.0
            finally:
                cleaned.append(True)

        sched = CooperativeScheduler()
        task = sched.spawn(gen=slow(), deadline_ms=25.0)
        sched.run_until_complete()
        assert task.state is TaskState.FAILED
        assert isinstance(task.error, QueryTimeoutError)
        assert cleaned == [True]  # finally ran before the error surfaced

    def test_parked_task_past_deadline_wakes_to_its_timeout(self):
        def parked():
            yield Wait("never", lambda: False)

        def clock_mover():
            yield 100.0

        sched = CooperativeScheduler()
        task = sched.spawn(gen=parked(), deadline_ms=50.0)
        sched.spawn(gen=clock_mover())
        sched.run_until_complete()
        assert isinstance(task.error, QueryTimeoutError)

    def test_cancel_delivers_typed_error(self):
        def worker():
            while True:
                yield 1.0

        sched = CooperativeScheduler()
        task = sched.spawn(gen=worker())
        sched.cancel(task)
        sched.run_until_complete()
        assert task.state is TaskState.FAILED
        assert isinstance(task.error, QueryCancelledError)

    def test_cancel_wakes_a_parked_task(self):
        def parked():
            yield Wait("never", lambda: False)

        sched = CooperativeScheduler()
        task = sched.spawn(gen=parked())
        sched.cancel(task)
        sched.run_until_complete()
        assert isinstance(task.error, QueryCancelledError)

    def test_factory_spawn_gets_its_own_task_handle(self):
        def factory(task):
            def gen():
                task.deadline_ms = sched.clock.now_ms + 1000.0
                yield 0.0
                return task.deadline_ms

            return gen()

        sched = CooperativeScheduler()
        task = sched.spawn(factory=factory)
        sched.run_until_complete()
        assert task.result == 1000.0

    def test_spawn_requires_exactly_one_form(self):
        sched = CooperativeScheduler()
        with pytest.raises(SchedulerError):
            sched.spawn()
        with pytest.raises(SchedulerError):
            sched.spawn(gen=costed([1.0]), factory=lambda t: costed([1.0]))
