"""QueryService: correctness, caching, locking, deadlines, leak audit."""

import pytest

from repro.errors import QueryCancelledError, ServeError
from repro.executor.iterator import ExecContext
from repro.relalg.algebra import divide_set_semantics
from repro.serve.service import (
    DeleteRequest,
    InsertRequest,
    QueryRequest,
    QueryService,
    ServiceConfig,
    TableLockManager,
)
from repro.storage.catalog import Catalog
from repro.workloads.synthetic import make_exact_division


def make_service(seed=0, memory_budget=1 << 20, divisor=4, quotient=16,
                 **config_kwargs):
    ctx = ExecContext(memory_budget=memory_budget)
    catalog = Catalog(ctx.pool, ctx.data_disk)
    dividend, divisor_rel = make_exact_division(divisor, quotient, seed=seed)
    catalog.store(dividend, "enrollment")
    catalog.store(divisor_rel, "courses")
    service = QueryService(
        ctx, catalog, ServiceConfig(seed=seed, **config_kwargs)
    )
    if config_kwargs.get("track_oracle"):
        service.seed_shadow("enrollment", dividend.rows)
        service.seed_shadow("courses", divisor_rel.rows)
    oracle = frozenset(divide_set_semantics(dividend, divisor_rel))
    return service, oracle


class TestLockManager:
    def test_shared_locks_coexist(self):
        locks = TableLockManager()
        a = locks.request(("t",), "shared")
        b = locks.request(("t",), "shared")
        assert locks.try_acquire(a) and locks.try_acquire(b)
        assert locks.held_tables == 1
        locks.release(a)
        locks.release(b)
        assert locks.held_tables == 0

    def test_exclusive_excludes_and_is_fifo(self):
        locks = TableLockManager()
        reader = locks.request(("t",), "shared")
        assert locks.try_acquire(reader)
        writer = locks.request(("t",), "exclusive")
        late_reader = locks.request(("t",), "shared")
        assert not locks.try_acquire(writer)
        # The late reader cannot overtake the waiting writer.
        assert not locks.try_acquire(late_reader)
        locks.release(reader)
        assert locks.try_acquire(writer)
        assert not locks.try_acquire(late_reader)
        locks.release(writer)
        assert locks.try_acquire(late_reader)
        locks.release(late_reader)

    def test_release_is_idempotent_and_withdraws_waiters(self):
        locks = TableLockManager()
        held = locks.request(("t",), "exclusive")
        assert locks.try_acquire(held)
        waiter = locks.request(("t",), "exclusive")
        locks.release(waiter)  # withdraw before grant
        locks.release(held)
        locks.release(held)  # second release is a no-op
        assert locks.held_tables == 0

    def test_unknown_mode_rejected(self):
        with pytest.raises(ServeError):
            TableLockManager().request(("t",), "intent")


class TestSingleQuery:
    def test_answer_matches_the_algebraic_oracle(self):
        service, oracle = make_service()
        task = service.submit_query("enrollment", "courses")
        service.run()
        assert frozenset(task.result.rows) == oracle
        assert task.result.cached is False

    def test_caches_off_still_answers(self):
        service, oracle = make_service(plan_cache=False, result_cache=False)
        task = service.submit_query("enrollment", "courses")
        service.run()
        assert frozenset(task.result.rows) == oracle
        assert service.plan_cache is None and service.result_cache is None

    def test_repeat_query_hits_the_result_cache(self):
        # One session issues the same query twice *sequentially*, so the
        # second lookup deterministically follows the first put.  (Two
        # concurrent submissions may legitimately both miss: the second
        # get can precede the first put under interleaving.)
        service, oracle = make_service()
        service.submit_script(
            "c",
            [
                QueryRequest("enrollment", "courses"),
                QueryRequest("enrollment", "courses"),
            ],
        )
        outcomes = service.run()
        assert [o.cached for o in outcomes] == [False, True]
        assert outcomes[1].result_tuples == len(oracle)
        assert service.result_cache.stats.hits == 1

    def test_unknown_table_is_a_typed_error(self):
        service, _ = make_service()
        service.submit_query("nope", "courses")
        outcomes = service.run()
        assert outcomes[0].outcome == "error"
        assert outcomes[0].error_type == "StorageError"
        assert service.leak_report() == []


class TestWritesAndInvalidation:
    def test_insert_invalidates_cached_results(self):
        service, _ = make_service(track_oracle=True)
        divisor_value = service.catalog.get("courses").to_relation().rows[0][0]
        service.submit_script(
            "w",
            [
                QueryRequest("enrollment", "courses"),
                QueryRequest("enrollment", "courses"),  # hit
                InsertRequest("enrollment", ((999_999, divisor_value),)),
                QueryRequest("enrollment", "courses"),  # invalidated: miss
            ],
        )
        outcomes = service.run()
        kinds = [(o.kind, o.outcome, o.cached) for o in outcomes]
        assert kinds == [
            ("query", "ok", False),
            ("query", "ok", True),
            ("insert", "ok", False),
            ("query", "ok", False),
        ]
        assert service.result_cache.stats.invalidations == 1
        assert all(o.oracle_ok is not False for o in outcomes)

    def test_delete_bumps_versions_and_reconverges(self):
        service, oracle = make_service(track_oracle=True)
        divisor_value = service.catalog.get("courses").to_relation().rows[0][0]
        service.submit_script(
            "w",
            [
                InsertRequest("enrollment", ((999_999, divisor_value),)),
                DeleteRequest("enrollment", lambda r: r[0] != 999_999),
                QueryRequest("enrollment", "courses"),
            ],
        )
        outcomes = service.run()
        assert [o.outcome for o in outcomes] == ["ok", "ok", "ok"]
        assert outcomes[-1].oracle_ok is True
        assert service.catalog.version("enrollment") == 3  # load + 2 writes


class TestConcurrency:
    def test_interleaved_clients_all_serializable(self):
        service, oracle = make_service(seed=13, track_oracle=True)
        divisor_value = service.catalog.get("courses").to_relation().rows[0][0]
        for c in range(3):
            script = [QueryRequest("enrollment", "courses") for _ in range(3)]
            if c == 1:
                script.insert(
                    1, InsertRequest("enrollment", ((999_000 + c, divisor_value),))
                )
            service.submit_script(f"c{c}", script)
        outcomes = service.run()
        queries = [o for o in outcomes if o.kind == "query"]
        assert all(o.outcome == "ok" for o in outcomes)
        assert all(o.oracle_ok is True for o in queries)
        assert service.leak_report() == []

    def test_same_seed_replays_the_same_interleaving(self):
        def digest(seed):
            service, _ = make_service(seed=seed)
            for c in range(3):
                service.submit_script(
                    f"c{c}", [QueryRequest("enrollment", "courses")] * 2
                )
            service.run()
            return service.scheduler.trace_digest()

        assert digest(21) == digest(21)

    def test_deadline_times_out_without_leaks(self):
        service, _ = make_service()
        task = service.submit_query(
            "enrollment", "courses", deadline_ms=0.02
        )
        outcomes = service.run()
        assert outcomes[0].outcome == "timeout"
        assert task.error is not None
        assert service.leak_report() == []
        assert service.admission.outstanding_bytes == 0

    def test_cancellation_is_typed_and_clean(self):
        service, _ = make_service()
        task = service.submit_query("enrollment", "courses")
        service.scheduler.cancel(task)
        outcomes = service.run()
        assert outcomes[0].outcome == "cancelled"
        assert isinstance(task.error, QueryCancelledError)
        assert service.leak_report() == []

    def test_session_survives_per_request_timeouts(self):
        service, oracle = make_service()
        task = service.submit_script(
            "c",
            [QueryRequest("enrollment", "courses")] * 3,
            deadline_ms=0.02,  # every request times out...
        )
        outcomes = service.run()
        assert task.state.value == "done"  # ...but the session completes
        assert all(o.outcome == "timeout" for o in outcomes)


class TestAdmissionIntegration:
    def test_overload_sheds_with_zero_waiters(self):
        # Budget fits roughly one grant; no waiting allowed: with three
        # concurrent queries at least one is shed, at least one answers.
        service, oracle = make_service(
            memory_budget=4096, max_waiters=0, divisor=8, quotient=64,
            result_cache=False, plan_cache=False,
        )
        for c in range(3):
            service.submit_query("enrollment", "courses", client=f"c{c}")
        outcomes = service.run()
        results = sorted(o.outcome for o in outcomes)
        assert "shed" in results
        assert "ok" in results
        assert service.admission.shed_total >= 1
        assert service.leak_report() == []

    def test_grants_drain_to_zero_after_mixed_run(self):
        service, _ = make_service(memory_budget=1 << 14, max_waiters=4)
        for c in range(4):
            service.submit_script(
                f"c{c}", [QueryRequest("enrollment", "courses")] * 2
            )
        service.run()
        assert service.admission.outstanding_bytes == 0
        assert service.locks.held_tables == 0

    def test_tiny_budget_degrades_via_partitioned_fallback(self):
        service, oracle = make_service(
            memory_budget=2048, divisor=8, quotient=64, result_cache=False,
        )
        task = service.submit_query("enrollment", "courses")
        outcomes = service.run()
        assert outcomes[0].outcome == "ok"
        assert frozenset(task.result.rows) == oracle
        # With 2 KiB the hash tables cannot fit: the overflow path ran.
        assert outcomes[0].fell_back is True
