"""Plan keys and version-keyed cache behaviour."""

import pytest

from repro.errors import ServeError
from repro.serve.cache import (
    VersionedCache,
    plan_key,
    stored_table_names,
)


@pytest.fixture
def stored_pair(ctx, catalog, transcript, courses):
    return (
        catalog.store(transcript, "transcript"),
        catalog.store(courses, "courses"),
    )


class TestPlanKey:
    def test_stored_sources_key_by_catalog_name(self, stored_pair):
        from repro.plan.logical import DivideNode, StoredSourceNode

        dividend, divisor = stored_pair
        a = DivideNode(StoredSourceNode(dividend), StoredSourceNode(divisor))
        b = DivideNode(StoredSourceNode(dividend), StoredSourceNode(divisor))
        assert plan_key(a) == plan_key(b)  # distinct objects, same key
        assert "transcript" in plan_key(a) and "courses" in plan_key(a)

    def test_restriction_flag_distinguishes_keys(self, stored_pair):
        from repro.plan.logical import DivideNode, StoredSourceNode

        dividend, divisor = stored_pair
        plain = DivideNode(StoredSourceNode(dividend), StoredSourceNode(divisor))
        restricted = DivideNode(
            StoredSourceNode(dividend),
            StoredSourceNode(divisor),
            divisor_restricted=True,
        )
        assert plan_key(plain) != plan_key(restricted)

    def test_stored_table_names_sorted_and_deduplicated(self, stored_pair):
        from repro.plan.logical import DivideNode, StoredSourceNode

        dividend, divisor = stored_pair
        node = DivideNode(StoredSourceNode(dividend), StoredSourceNode(divisor))
        assert stored_table_names(node) == ("courses", "transcript")

    def test_in_memory_sources_key_by_identity(self, transcript, courses):
        from repro.plan.logical import SourceNode

        a = SourceNode(transcript)
        b = SourceNode(transcript)
        assert plan_key(a) == plan_key(a)
        # Identity-derived keys are never falsely shared across
        # distinct ad-hoc relations.
        assert plan_key(a) != plan_key(SourceNode(courses))
        assert stored_table_names(b) == ()


class TestVersionedCache:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ServeError):
            VersionedCache("plan", capacity=0)

    def test_hit_requires_exact_versions(self):
        cache = VersionedCache("result")
        versions = (("r", 1), ("s", 1))
        cache.put("k", versions, "payload")
        assert cache.get("k", versions) == "payload"
        assert cache.stats.hits == 1

    def test_version_mismatch_invalidates_and_misses(self):
        cache = VersionedCache("result")
        cache.put("k", (("r", 1),), "old")
        assert cache.get("k", (("r", 2),)) is None
        assert cache.stats.invalidations == 1
        assert cache.stats.misses == 1
        assert len(cache) == 0  # monotonic versions: entry is dead forever

    def test_lru_eviction_order(self):
        cache = VersionedCache("result", capacity=2)
        v = (("r", 1),)
        cache.put("a", v, 1)
        cache.put("b", v, 2)
        assert cache.get("a", v) == 1  # refresh a
        cache.put("c", v, 3)  # evicts b (least recently used)
        assert cache.get("b", v) is None
        assert cache.get("a", v) == 1
        assert cache.get("c", v) == 3
        assert cache.stats.evictions == 1

    def test_clear_drops_entries_but_keeps_stats(self):
        cache = VersionedCache("plan")
        cache.put("k", (("r", 1),), "x")
        cache.get("k", (("r", 1),))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1

    def test_hit_ratio(self):
        cache = VersionedCache("plan")
        assert cache.stats.hit_ratio == 0.0
        cache.put("k", (("r", 1),), "x")
        cache.get("k", (("r", 1),))
        cache.get("other", (("r", 1),))
        assert cache.stats.hit_ratio == 0.5
