"""Satellite: the ``repro_serve_*`` metric families and their export.

Asserts that one mixed service run populates every serve counter the
dashboards scrape, and that :func:`repro.obs.export.render_prometheus`
emits the grant-wait and latency histograms with bucket lines.
"""

from repro.obs.export import render_prometheus
from repro.serve.service import InsertRequest, QueryRequest

from tests.serve.test_service import make_service


def run_mixed_service():
    service, _ = make_service(track_oracle=True)
    divisor_value = service.catalog.get("courses").to_relation().rows[0][0]
    service.submit_script(
        "w",
        [
            QueryRequest("enrollment", "courses"),
            QueryRequest("enrollment", "courses"),  # result-cache hit
            InsertRequest("enrollment", ((777_777, divisor_value),)),
            QueryRequest("enrollment", "courses"),  # invalidated: miss
        ],
    )
    service.run()
    return service


class TestCounters:
    def test_requests_counted_by_kind(self):
        service = run_mixed_service()
        reg = service.metrics
        assert reg.counter("repro_serve_requests_total", kind="query").value == 3
        assert reg.counter("repro_serve_requests_total", kind="insert").value == 1

    def test_outcomes_counted_by_kind_and_outcome(self):
        service = run_mixed_service()
        ok_queries = service.metrics.counter(
            "repro_serve_request_outcomes_total", kind="query", outcome="ok"
        )
        assert ok_queries.value == 3

    def test_cache_families_follow_the_script(self):
        service = run_mixed_service()
        reg = service.metrics
        assert reg.counter("repro_serve_result_cache_hits_total").value == 1
        assert reg.counter("repro_serve_result_cache_misses_total").value == 2
        assert (
            reg.counter("repro_serve_result_cache_invalidations_total").value == 1
        )
        # Plan decisions embed cardinality estimates, so they are
        # version-guarded too: the cached-result hit never consults the
        # plan cache, and the post-insert query invalidates the entry.
        assert reg.counter("repro_serve_plan_cache_hits_total").value == 0
        assert reg.counter("repro_serve_plan_cache_misses_total").value == 2
        assert (
            reg.counter("repro_serve_plan_cache_invalidations_total").value == 1
        )

    def test_plan_cache_hits_when_results_are_uncached(self):
        service, _ = make_service(result_cache=False)
        service.submit_script(
            "c",
            [
                QueryRequest("enrollment", "courses"),
                QueryRequest("enrollment", "courses"),
            ],
        )
        service.run()
        reg = service.metrics
        assert reg.counter("repro_serve_plan_cache_hits_total").value == 1
        assert reg.counter("repro_serve_plan_cache_misses_total").value == 1

    def test_admission_admits_and_tracks_grants(self):
        service = run_mixed_service()
        reg = service.metrics
        # Cached results skip the grant; the two executions admit.
        assert reg.counter("repro_serve_admission_admitted_total").value == 2
        assert reg.gauge("repro_serve_granted_bytes").value == 0  # drained

    def test_oracle_mismatches_stay_zero(self):
        service = run_mixed_service()
        assert (
            service.metrics.counter("repro_serve_oracle_mismatches_total").value
            == 0
        )


class TestPrometheusExport:
    def test_serve_families_render_with_histogram_buckets(self):
        service = run_mixed_service()
        text = render_prometheus(service.metrics)
        assert 'repro_serve_requests_total{kind="query"} 3' in text
        assert "repro_serve_grant_wait_ms_bucket" in text
        assert "repro_serve_grant_wait_ms_count" in text
        assert 'repro_serve_latency_ms_bucket{kind="query"' in text
        assert "repro_serve_result_cache_hits_total 1" in text

    def test_shed_counter_appears_under_overload(self):
        service, _ = make_service(
            memory_budget=4096, max_waiters=0, divisor=8, quotient=64,
            result_cache=False, plan_cache=False,
        )
        for c in range(3):
            service.submit_query("enrollment", "courses", client=f"c{c}")
        service.run()
        text = render_prometheus(service.metrics)
        assert "repro_serve_admission_shed_total" in text
        assert service.metrics.counter(
            "repro_serve_admission_shed_total"
        ).value >= 1
