"""Hypothesis properties: caching is invisible, scheduling is replayable.

The serving layer's core obligations, stated as properties over random
workload shapes:

* **Transparency**: for any drawn workload, running with caches on and
  with caches off both answer every query with the serial-order
  algebraic oracle's rows (``track_oracle`` recomputes the shadow
  oracle at each lock grant, so this holds across interleaved writes).
  Caches may change *when* work happens, never *what* is answered.
* **Typedness**: no drawn workload ever surfaces a
  non-:class:`~repro.errors.ReproError` failure from a session.
* **Determinism**: one seed, one interleaving -- the trace digest and
  the whole report are replay-stable.
"""

from dataclasses import replace

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.serve.bench import LoadConfig, run_load

PROPERTY_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

workloads = st.builds(
    LoadConfig,
    clients=st.integers(min_value=1, max_value=3),
    requests_per_client=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=2**16 - 1),
    skew=st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
    table_pairs=st.integers(min_value=1, max_value=3),
    divisor_tuples=st.integers(min_value=1, max_value=4),
    quotient_tuples=st.integers(min_value=2, max_value=10),
    update_fraction=st.sampled_from([0.0, 0.25, 0.5]),
    memory_budget=st.sampled_from([None, 1 << 20, 8192]),
    track_oracle=st.just(True),
)


def assert_clean(report, label):
    assert report.untyped_failures == [], (
        f"{label}: untyped failures {report.untyped_failures}"
    )
    assert report.oracle_mismatches == 0, (
        f"{label}: {report.oracle_mismatches} oracle mismatches"
    )
    assert report.oracle_checked == report.queries_ok


class TestCacheTransparency:
    @PROPERTY_SETTINGS
    @given(config=workloads)
    def test_cache_on_and_off_both_match_the_oracle(self, config):
        on = run_load(replace(config, result_cache=True, plan_cache=True))
        off = run_load(replace(config, result_cache=False, plan_cache=False))
        assert_clean(on, "caches on")
        assert_clean(off, "caches off")
        # Identical workload shape: the *set* of requests answered OK
        # can differ only through admission shedding, which the
        # unbounded-by-default waiter queue rules out here.
        assert on.requests == off.requests

    @PROPERTY_SETTINGS
    @given(config=workloads)
    def test_one_seed_one_interleaving(self, config):
        a = run_load(config)
        b = run_load(config)
        assert a.trace_digest == b.trace_digest
        assert a.to_dict() == b.to_dict()
