"""Load harness: determinism, the cache-speedup bar, BENCH v4 export."""

from dataclasses import replace

import pytest

from repro.errors import ServeError
from repro.faults.injector import FaultRule
from repro.obs.export import load_bench_json, validate_bench_payload
from repro.serve.bench import (
    SMOKE_CONFIG,
    LoadConfig,
    cache_comparison,
    export_serve_bench,
    percentile,
    run_load,
)


def small_config(**kwargs):
    base = dict(
        clients=2,
        requests_per_client=3,
        seed=5,
        table_pairs=2,
        divisor_tuples=3,
        quotient_tuples=8,
    )
    base.update(kwargs)
    return LoadConfig(**base)


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 99) == 0.0

    def test_nearest_rank(self):
        values = [10.0, 20.0, 30.0, 40.0]
        assert percentile(values, 50) == 20.0
        assert percentile(values, 100) == 40.0
        assert percentile(values, 0) == 10.0  # rank clamps to 1

    def test_out_of_range_rejected(self):
        with pytest.raises(ServeError):
            percentile([1.0], 101)


class TestLoadConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"clients": 0},
            {"requests_per_client": 0},
            {"table_pairs": 0},
            {"update_fraction": 1.5},
        ],
    )
    def test_invalid_shapes_rejected(self, kwargs):
        with pytest.raises(ServeError):
            run_load(small_config(**kwargs))


class TestRunLoad:
    def test_all_requests_answer_and_match_the_oracle(self):
        report = run_load(small_config())
        assert report.requests == 6
        assert report.ok == 6
        assert report.oracle_checked == report.queries_ok
        assert report.oracle_mismatches == 0
        assert report.untyped_failures == []
        assert report.elapsed_ms > 0
        assert report.throughput_rps > 0

    def test_same_seed_is_byte_identical(self):
        config = small_config(seed=21, update_fraction=0.25)
        a = run_load(config)
        b = run_load(config)
        assert a.trace_digest == b.trace_digest
        assert a.to_dict() == b.to_dict()

    def test_different_seeds_diverge(self):
        a = run_load(small_config(seed=1))
        b = run_load(small_config(seed=2))
        assert a.trace_digest != b.trace_digest

    def test_updates_invalidate_and_still_converge(self):
        report = run_load(
            small_config(
                clients=3, requests_per_client=6, update_fraction=0.4, seed=9
            )
        )
        assert report.updates_ok > 0
        assert report.oracle_mismatches == 0
        assert report.untyped_failures == []

    def test_faulted_run_fails_only_with_typed_errors(self):
        rules = (
            FaultRule("transient", op="read", probability=0.05, max_fires=4),
        )
        report = run_load(
            small_config(
                seed=3,
                storage_config=SMOKE_CONFIG,
                fault_rules=rules,
                fault_seed=77,
            )
        )
        assert report.untyped_failures == []
        assert report.oracle_mismatches == 0
        assert report.fault_summary  # injector attached and reported

    def test_deadline_pressure_times_out_typed(self):
        report = run_load(
            small_config(deadline_ms=0.05, result_cache=False, plan_cache=False)
        )
        assert report.timeouts > 0
        assert report.untyped_failures == []


class TestCacheComparison:
    def test_result_cache_meets_the_2x_bar_on_zipf_mix(self):
        # The headline acceptance experiment, at CI-friendly scale:
        # read-mostly, Zipf-skewed repeats => the cache elides most
        # executions and virtual throughput at least doubles.
        config = LoadConfig(
            clients=4,
            requests_per_client=8,
            seed=11,
            skew=1.2,
            table_pairs=3,
            divisor_tuples=4,
            quotient_tuples=16,
        )
        on, off, speedup = cache_comparison(config)
        assert on.ok == on.requests and off.ok == off.requests
        assert on.cached_results > 0
        assert off.cached_results == 0
        assert speedup >= 2.0

    def test_comparison_does_not_mutate_the_config(self):
        config = small_config()
        cache_comparison(config)
        assert config.result_cache is True  # replace(), not mutation


class TestExport:
    def test_v4_artifact_round_trips_with_serve_block(self, tmp_path):
        config = small_config(seed=13)
        report = run_load(config)
        baseline = run_load(
            replace(config, result_cache=False, plan_cache=False)
        )
        path = export_serve_bench(tmp_path, "serve_smoke", report, baseline)
        payload = load_bench_json(path)  # validates on load
        assert payload["schema_version"] == 4
        serve = payload["serve"]
        assert serve["trace_digest"] == report.trace_digest
        assert serve["requests"] == report.requests
        assert serve["baseline"]["trace_digest"] == baseline.trace_digest
        assert payload["metrics"]["cache_speedup"] > 0
        assert len(serve["request_log"]) == report.requests

    def test_exported_payload_passes_validation(self, tmp_path):
        report = run_load(small_config())
        path = export_serve_bench(tmp_path, "solo", report)
        validate_bench_payload(load_bench_json(path))
