"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nonsense"])


class TestCommands:
    def test_figure2(self, capsys):
        assert main(["figure2"]) == 0
        out = capsys.readouterr().out
        assert "Ann" in out and "Quotient" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "RIO" in out and "Bit" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "paper" in out and "worst deviation" in out

    def test_table3(self, capsys):
        assert main(["table3"]) == 0
        assert "Physical seek" in capsys.readouterr().out

    def test_table4_single_point(self, capsys):
        assert main(["table4", "--sizes", "25x25"]) == 0
        out = capsys.readouterr().out
        assert "hash-division" in out and "measured" in out

    def test_advisor(self, capsys):
        assert main([
            "advisor", "--dividend", "10000", "--divisor", "100",
            "--restricted",
        ]) == 0
        out = capsys.readouterr().out
        assert "hash-division" in out
        assert "no join" not in out  # excluded by --restricted

    def test_advisor_with_duplicates(self, capsys):
        assert main([
            "advisor", "--dividend", "10000", "--divisor", "100",
            "--duplicates",
        ]) == 0
        assert "duplicate" in capsys.readouterr().out

    def test_parallel(self, capsys):
        assert main([
            "parallel", "--processors", "4", "--divisor", "20",
            "--quotient", "50",
        ]) == 0
        out = capsys.readouterr().out
        assert "elapsed" in out and "network" in out

    def test_parallel_with_bitvector(self, capsys):
        assert main([
            "parallel", "--processors", "4", "--divisor", "20",
            "--quotient", "50", "--bitvector", "1024",
        ]) == 0
        assert "filtered" in capsys.readouterr().out


class TestTraceCommand:
    def test_trace_narrates_figure2(self, capsys):
        assert main(["trace"]) == 0
        out = capsys.readouterr().out
        assert "assign-divisor-number" in out
        assert "('Ann',)" in out

    def test_bad_sizes_rejected(self):
        with pytest.raises(SystemExit):
            main(["table4", "--sizes", "25by25"])
