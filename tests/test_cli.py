"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nonsense"])


class TestCommands:
    def test_figure2(self, capsys):
        assert main(["figure2"]) == 0
        out = capsys.readouterr().out
        assert "Ann" in out and "Quotient" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "RIO" in out and "Bit" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "paper" in out and "worst deviation" in out

    def test_table3(self, capsys):
        assert main(["table3"]) == 0
        assert "Physical seek" in capsys.readouterr().out

    def test_table4_single_point(self, capsys):
        assert main(["table4", "--sizes", "25x25"]) == 0
        out = capsys.readouterr().out
        assert "hash-division" in out and "measured" in out

    def test_advisor(self, capsys):
        assert main([
            "advisor", "--dividend", "10000", "--divisor", "100",
            "--restricted",
        ]) == 0
        out = capsys.readouterr().out
        assert "hash-division" in out
        assert "no join" not in out  # excluded by --restricted

    def test_advisor_with_duplicates(self, capsys):
        assert main([
            "advisor", "--dividend", "10000", "--divisor", "100",
            "--duplicates",
        ]) == 0
        assert "duplicate" in capsys.readouterr().out

    def test_parallel(self, capsys):
        assert main([
            "parallel", "--processors", "4", "--divisor", "20",
            "--quotient", "50",
        ]) == 0
        out = capsys.readouterr().out
        assert "elapsed" in out and "network" in out

    def test_parallel_with_bitvector(self, capsys):
        assert main([
            "parallel", "--processors", "4", "--divisor", "20",
            "--quotient", "50", "--bitvector", "1024",
        ]) == 0
        assert "filtered" in capsys.readouterr().out


class TestTraceCommand:
    def test_trace_narrates_figure2(self, capsys):
        assert main(["trace"]) == 0
        out = capsys.readouterr().out
        assert "assign-divisor-number" in out
        assert "('Ann',)" in out

    def test_bad_sizes_rejected(self):
        with pytest.raises(SystemExit):
            main(["table4", "--sizes", "25by25"])


class TestVersionAndHelp:
    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert f"repro {__version__}" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "command",
        [
            "figure2", "trace", "table1", "table2", "table3", "table4",
            "profile", "advisor", "parallel", "explain", "chaos", "serve",
        ],
    )
    def test_every_subcommand_has_help(self, command, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([command, "--help"])
        assert excinfo.value.code == 0
        assert "usage:" in capsys.readouterr().out

    def test_module_entry_point_smoke(self):
        """``python -m repro`` is runnable end to end in a subprocess."""
        import os
        import subprocess
        import sys
        from pathlib import Path

        repo_root = Path(__file__).resolve().parents[1]
        env = dict(os.environ)
        env["PYTHONPATH"] = str(repo_root / "src")
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "--version"],
            capture_output=True,
            text=True,
            env=env,
            cwd=repo_root,
        )
        assert completed.returncode == 0
        assert completed.stdout.startswith("repro ")


class TestExplainCommand:
    """`repro explain` renders the compiled plan without executing."""

    def test_default_scenario_is_second_example(self, capsys):
        assert main(["explain"]) == 0
        out = capsys.readouterr().out
        assert "relational division via" in out
        assert "(restricted)" in out  # the 'database' title filter
        assert "physical plan:" in out

    def test_figure2_scenario(self, capsys):
        assert main(["explain", "--scenario", "figure2"]) == 0
        out = capsys.readouterr().out
        assert "relational division via" in out
        assert "RelationSource" in out

    def test_synthetic_scenario_sizes(self, capsys):
        assert main([
            "explain", "--scenario", "synthetic",
            "--divisor", "25", "--quotient", "100",
        ]) == 0
        out = capsys.readouterr().out
        assert "relational division via" in out
        assert "~2500 tuples" in out  # dividend = |S| x |Q|

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            main(["explain", "--scenario", "nonsense"])


class TestProfileCommand:
    def test_profile_figure2_tree(self, capsys):
        assert main(["profile"]) == 0
        out = capsys.readouterr().out
        assert "EXPLAIN ANALYZE" in out
        assert "HashDivision" in out
        assert "StoredRelationScan" in out

    def test_profile_synthetic_strategy(self, capsys):
        assert main([
            "profile", "--workload", "synthetic", "--divisor", "5",
            "--quotient", "5", "--strategy", "sort-agg no join",
        ]) == 0
        out = capsys.readouterr().out
        assert "sort-agg no join" in out and "ExternalSort" in out

    def test_profile_json_format(self, capsys):
        import json

        assert main(["profile", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["operators"][0]["operator"] == "HashDivision"

    def test_profile_prom_format(self, capsys):
        assert main(["profile", "--format", "prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_cpu_hashes_total counter" in out
        assert "repro_run_io_model_ms" in out

    def test_table4_profile_flag(self, capsys):
        assert main(["table4", "--sizes", "10x10", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "-- profile:" in out
        assert "EXPLAIN ANALYZE" in out


class TestBrokenPipe:
    def test_broken_pipe_returns_sigpipe_code(self, monkeypatch):
        import repro.cli as cli

        # Stub the os module used by the handler so the test never
        # redirects a real file descriptor (pytest's capture owns it).
        class FakeOs:
            devnull = "/dev/null"
            O_WRONLY = 1
            dup2_calls: list = []

            @staticmethod
            def open(path, flags):
                return 99

            @classmethod
            def dup2(cls, src, dst):
                cls.dup2_calls.append((src, dst))

        monkeypatch.setattr(cli, "os", FakeOs)

        def explode(_args):
            raise BrokenPipeError

        args = type("Args", (), {"handler": staticmethod(explode)})()
        parser = type(
            "Parser", (), {"parse_args": staticmethod(lambda argv=None: args)}
        )()
        monkeypatch.setattr(cli, "build_parser", lambda: parser)
        assert cli.main(["figure2"]) == 128 + 13
        assert FakeOs.dup2_calls  # stdout was redirected to devnull


class TestTraceSubcommands:
    def test_record_prints_summary_and_verdicts(self, capsys):
        assert (
            main(
                [
                    "trace",
                    "record",
                    "--strategy",
                    "hash-division",
                    "--divisor",
                    "10",
                    "--quotient",
                    "10",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "division: hash-division" in out
        assert "conservation OK" in out
        assert "attribution OK" in out
        assert "I/O trace:" in out

    def test_record_figure2_workload(self, capsys):
        assert main(["trace", "record", "--workload", "figure2"]) == 0
        out = capsys.readouterr().out
        assert "conservation OK" in out

    def test_record_writes_jsonl_and_chrome(self, tmp_path, capsys):
        import json

        jsonl = tmp_path / "events.jsonl"
        chrome = tmp_path / "trace.json"
        assert (
            main(
                [
                    "trace",
                    "record",
                    "--divisor",
                    "5",
                    "--quotient",
                    "5",
                    "--jsonl",
                    str(jsonl),
                    "--chrome",
                    str(chrome),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert f"wrote Chrome trace to {chrome}" in out
        lines = jsonl.read_text().splitlines()
        assert lines and all(json.loads(line)["device"] for line in lines)
        payload = json.loads(chrome.read_text())
        assert any(event["ph"] == "X" for event in payload["traceEvents"])

    def test_summarize_round_trips_jsonl(self, tmp_path, capsys):
        jsonl = tmp_path / "events.jsonl"
        assert (
            main(
                [
                    "trace",
                    "record",
                    "--divisor",
                    "5",
                    "--quotient",
                    "5",
                    "--jsonl",
                    str(jsonl),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["trace", "summarize", str(jsonl)]) == 0
        out = capsys.readouterr().out
        assert "I/O trace:" in out
        assert "data" in out  # per-device table names the data device

    def test_export_writes_chrome_trace(self, tmp_path, capsys):
        import json

        out_file = tmp_path / "division.trace.json"
        assert (
            main(
                [
                    "trace",
                    "export",
                    "--strategy",
                    "naive",
                    "--divisor",
                    "5",
                    "--quotient",
                    "5",
                    "--out",
                    str(out_file),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "naive" in out and str(out_file) in out
        payload = json.loads(out_file.read_text())
        assert payload["displayTimeUnit"] == "ms"

    def test_export_jsonl_format(self, tmp_path, capsys):
        out_file = tmp_path / "events.jsonl"
        assert (
            main(
                [
                    "trace",
                    "export",
                    "--format",
                    "jsonl",
                    "--divisor",
                    "5",
                    "--quotient",
                    "5",
                    "--out",
                    str(out_file),
                ]
            )
            == 0
        )
        capsys.readouterr()
        from repro.obs import read_jsonl

        events = read_jsonl(str(out_file))
        assert events and events[0].device


class TestServeCommand:
    """`repro serve`: the load harness behind one flag surface."""

    SMALL = [
        "serve", "--clients", "2", "--requests", "2",
        "--tables", "2", "--divisor", "3", "--quotient", "6",
    ]

    def test_summary_output(self, capsys):
        assert main(self.SMALL) == 0
        out = capsys.readouterr().out
        assert "serve seed 0" in out
        assert "digest" in out

    def test_json_output_carries_the_replay_witness(self, capsys):
        import json as json_mod

        assert main(self.SMALL + ["--json"]) == 0
        payload = json_mod.loads(capsys.readouterr().out)
        assert payload["requests"] == 4
        assert len(payload["trace_digest"]) == 64
        assert payload["untyped_failures"] == []

    def test_replay_check_passes(self, capsys):
        assert main(self.SMALL + ["--replay-check"]) == 0
        assert "replay check ok" in capsys.readouterr().err

    def test_compare_reports_the_speedup(self, capsys):
        assert (
            main(
                [
                    "serve", "--clients", "3", "--requests", "6",
                    "--tables", "2", "--divisor", "3", "--quotient", "8",
                    "--skew", "1.2", "--compare",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "result-cache speedup" in out

    def test_faulted_smoke_run_exits_clean(self, capsys, tmp_path):
        assert (
            main(
                self.SMALL
                + [
                    "--tiny-pages", "--faults", "--fault-seed", "3",
                    "--bench-out", str(tmp_path), "--bench-name", "smoke",
                ]
            )
            == 0
        )
        capsys.readouterr()
        from repro.obs.export import load_bench_json

        payload = load_bench_json(tmp_path / "BENCH_smoke.json")
        assert payload["schema_version"] == 4
        assert payload["serve"]["untyped_failures"] == []

    def test_global_seed_overrides_subcommand_default(self, capsys):
        import json as json_mod

        assert main(["--seed", "9"] + self.SMALL + ["--json"]) == 0
        payload = json_mod.loads(capsys.readouterr().out)
        assert payload["seed"] == 9


class TestChaosServeScenario:
    def test_serve_scenario_runs_clean(self, capsys):
        assert main(["chaos", "--scenario", "serve", "--rounds", "2"]) == 0
        out = capsys.readouterr().out
        assert "serve chaos" in out
        assert "OK" in out

    def test_serve_scenario_json(self, capsys):
        import json as json_mod

        assert (
            main(["chaos", "--scenario", "serve", "--rounds", "2", "--json"])
            == 0
        )
        payload = json_mod.loads(capsys.readouterr().out)
        assert payload["scenario"] == "serve"
        assert payload["ok"] is True
