"""Setuptools shim.

All project metadata lives in ``pyproject.toml``; this file exists so
``pip install -e .`` works in offline environments whose setuptools
lacks the ``wheel`` package required by the PEP 660 editable path.
"""

from setuptools import setup

setup()
