"""Ablation: early-output (incremental) hash-division (§3.3, second
observation).

The early-output variant pays a counter test per fresh bit but starts
producing quotient tuples before the dividend is exhausted -- the
property that makes hash-division usable as a producer in a dataflow
system.  This bench measures the overhead and the production latency
(how many dividend tuples are consumed before the first quotient tuple
appears).
"""

from conftest import once

from repro.costmodel.units import PAPER_UNITS
from repro.core.hash_division import HashDivision
from repro.executor.iterator import ExecContext
from repro.executor.scan import RelationSource
from repro.experiments.report import render_table
from repro.workloads.synthetic import make_exact_division


def _consumed_before_first_output(dividend, divisor):
    """Dividend tuples consumed before the first quotient tuple."""
    ctx = ExecContext()
    source = RelationSource(ctx, dividend)
    consumed = [0]
    original_next = source.next

    def counting_next():
        row = original_next()
        if row is not None:
            consumed[0] += 1
        return row

    source.next = counting_next  # type: ignore[method-assign]
    plan = HashDivision(source, RelationSource(ctx, divisor), early_output=True)
    plan.open()
    first = plan.next()
    plan.close()
    assert first is not None
    return consumed[0]


def _model_ms(dividend, divisor, early_output):
    ctx = ExecContext()
    from repro.executor.iterator import run_to_relation

    plan = HashDivision(
        RelationSource(ctx, dividend),
        RelationSource(ctx, divisor),
        early_output=early_output,
    )
    quotient = run_to_relation(plan)
    return len(quotient), PAPER_UNITS.cpu_cost_ms(ctx.cpu)


def bench_early_output(benchmark, write_result):
    dividend, divisor = make_exact_division(100, 200, seed=3)

    def run_both():
        return _model_ms(dividend, divisor, False), _model_ms(dividend, divisor, True)

    (stop_go_n, stop_go_ms), (early_n, early_ms) = once(benchmark, run_both)

    assert stop_go_n == early_n == 200
    # Early output costs at most a few percent extra.
    assert early_ms < 1.10 * stop_go_ms

    latency = _consumed_before_first_output(dividend, divisor)
    # Streaming: the first quotient tuple appears well before the end.
    assert latency < len(dividend)

    write_result(
        "ablation_early_output",
        render_table(
            ("variant", "model ms", "tuples before first output"),
            [
                ("stop-and-go", stop_go_ms, len(dividend)),
                ("early output", early_ms, latency),
            ],
            title="Hash-division: stop-and-go vs early output "
            "(|S|=100, |Q|=200, R = Q x S, shuffled).",
        ),
    )
