"""Table 4: the experimental comparison on the simulated storage stack.

Runs the six strategies over the paper's nine (|S|, |Q|) size points
(R = Q x S, cold files, Table 1 + Table 3 metering) and asserts the
paper's qualitative findings:

* the strategy ranking holds at every size point,
* the fastest/slowest spread is large even at the smallest point and
  grows with size,
* hash-division sits close to hash-aggregation-without-join and beats
  everything that sorts, and beats aggregation whenever a semi-join
  would be required.
"""

from conftest import once

from repro.experiments import table4
from repro.experiments.runner import STRATEGIES


def bench_table4_smallest_point(benchmark, write_result, export_bench):
    """The (25, 25) point -- the paper's "even for small relation
    sizes" observation (a ~3x spread on the MicroVAX)."""
    row = once(benchmark, lambda: table4.run_point(25, 25))

    totals = {s: row.total_ms(s) for s in STRATEGIES}
    assert max(totals.values()) / min(totals.values()) > 2.0
    assert min(totals, key=totals.get) == "hash-agg no join"
    assert max(totals, key=totals.get) == "sort-agg with join"
    write_result("table4_smallest_point", table4.render([row]))
    export_bench(
        "table4_smallest_point",
        {f"total_model_ms[{s}]": totals[s] for s in STRATEGIES},
        size_point="|S|=25, |Q|=25",
    )


def bench_table4_full_grid(benchmark, write_result):
    """All nine size points, six strategies each (the full Table 4)."""
    rows = once(benchmark, table4.rows)

    assert len(rows) == 9
    spreads = []
    for row in rows:
        totals = {s: row.total_ms(s) for s in STRATEGIES}
        # Ranking invariants from Sections 4.6 / 5.2 at every point:
        assert totals["hash-agg no join"] < totals["hash-division"]
        assert totals["hash-division"] < totals["sort-agg no join"]
        assert totals["hash-division"] < totals["naive"]
        assert totals["sort-agg no join"] < totals["sort-agg with join"]
        assert totals["hash-agg with join"] < totals["sort-agg no join"]
        spreads.append(max(totals.values()) / min(totals.values()))
    # "The factor of difference grows as the relations grow."
    assert spreads[-1] > spreads[0]
    write_result("table4_full_grid", table4.render(rows))
    write_result("table4_breakdown", table4.render_breakdown(rows))
