"""Ablation: dividend tuples that match no divisor tuple (§4.6's
speculation).

"If we drop the assumption that R = Q x S ... we expect that
hash-division always outperforms all other algorithms because tuples
that do not match with any divisor tuple are eliminated early."

This bench sweeps the fraction of non-matching tuples.  Two findings:

* Hash-division's advantage over the *sort-based* strategies grows
  steeply with the non-matching fraction: the sorts must carry every
  useless tuple through run generation and merging, while
  hash-division kills it after one probe.
* Against hash-aggregation-with-join our pipelined executor shows
  near-parity (within ~1%): the streaming semi-join discards
  non-matching tuples after one probe too.  The paper's larger gap
  comes from its cost model charging the with-join variant a second
  full read of the dividend -- a materialization our demand-driven
  dataflow does not incur.  EXPERIMENTS.md discusses the discrepancy.
"""

from conftest import once

from repro.experiments.report import render_table
from repro.experiments.runner import run_strategy_on_relations
from repro.workloads.synthetic import make_with_nonmatching

FRACTIONS = (0.0, 0.5, 1.0, 2.0, 4.0)
STRATEGIES = ("hash-division", "hash-agg with join", "sort-agg with join", "naive")


def bench_nonmatching_sweep(benchmark, write_result):
    def run_sweep():
        outcomes = []
        for fraction in FRACTIONS:
            dividend, divisor = make_with_nonmatching(
                50, 100, nonmatching_fraction=fraction, seed=6
            )
            totals = {}
            for strategy in STRATEGIES:
                run = run_strategy_on_relations(
                    strategy, dividend, divisor, expected_quotient=100
                )
                assert run.quotient_tuples == 100, (strategy, fraction)
                totals[strategy] = run.total_ms
            outcomes.append((fraction, totals))
        return outcomes

    outcomes = once(benchmark, run_sweep)

    for fraction, totals in outcomes:
        division_ms = totals["hash-division"]
        # Near-parity with the pipelined hash semi-join + aggregation.
        assert division_ms < 1.02 * totals["hash-agg with join"], fraction
        # Clear wins over anything sort-based.
        assert totals["naive"] > 3 * division_ms, fraction
        assert totals["sort-agg with join"] > 3 * division_ms, fraction

    # The sort-based penalty grows with the non-matching fraction.
    def naive_ratio(entry):
        return entry[1]["naive"] / entry[1]["hash-division"]

    assert naive_ratio(outcomes[-1]) > 2 * naive_ratio(outcomes[0])

    write_result(
        "ablation_selectivity",
        render_table(
            ("non-matching fraction", *STRATEGIES),
            [
                (fraction, *[totals[s] for s in STRATEGIES])
                for fraction, totals in outcomes
            ],
            title="Model ms by non-matching dividend fraction "
            "(|S|=50, |Q|=100; fraction relative to matching tuples).",
        ),
    )
