"""Table 3: the experimental I/O cost weights.

Verifies the weights and benchmarks the statistics hot path (the
per-transfer accounting every experimental run flows through).
"""

from repro.experiments import table3
from repro.storage.stats import IoStatistics, IoWeights


def bench_table3_io_accounting(benchmark, write_result):
    weights = IoWeights()
    assert (weights.seek_ms, weights.latency_ms_per_transfer,
            weights.transfer_ms_per_kib, weights.cpu_ms_per_transfer) == (20, 8, 0.5, 2)

    def record_and_cost():
        stats = IoStatistics(weights)
        for page in range(1_000):
            stats.record_transfer("data", page, 8192, is_write=False)
        return stats.cost_ms()

    cost = benchmark(record_and_cost)

    # 1 seek + 1000 * (8 + 2 + 4) ms.
    assert cost == 20 + 1_000 * 14
    write_result("table3_weights", table3.render())
