"""Bit-vector filtering of dividend network traffic (§6, after Babb).

Sweeps the filter width on a workload where half the dividend matches
no divisor tuple, measuring shipped tuples and bytes.  Wider filters
approach the ideal (ship only matching tuples); the filter itself must
be broadcast, which is the trade-off the sweep exposes.
"""

from conftest import once

from repro.experiments.report import render_table
from repro.parallel import parallel_hash_division
from repro.workloads.synthetic import make_with_nonmatching

WIDTHS = (None, 64, 512, 4096, 65536)


def bench_bitvector_sweep(benchmark, write_result):
    dividend, divisor = make_with_nonmatching(
        100, 200, nonmatching_fraction=1.0, seed=8
    )
    matching = 100 * 200

    def run_sweep():
        outcomes = []
        for width in WIDTHS:
            result = parallel_hash_division(
                dividend, divisor, 8, strategy="quotient", bit_vector_bits=width
            )
            assert len(result.quotient) == 200
            outcomes.append((width, result))
        return outcomes

    outcomes = once(benchmark, run_sweep)

    unfiltered = outcomes[0][1]
    widest = outcomes[-1][1]
    assert widest.dividend_tuples_shipped < unfiltered.dividend_tuples_shipped
    # The wide filter removes nearly all non-matching traffic: what
    # remains shipped is close to the matching tuples that left their
    # origin node (~7/8 of them on 8 nodes).
    assert widest.dividend_tuples_filtered > 0.9 * matching * 0.9

    write_result(
        "parallel_bitvector",
        render_table(
            ("filter bits", "tuples shipped", "tuples filtered",
             "network bytes", "filter fill"),
            [
                (
                    width if width is not None else "off",
                    result.dividend_tuples_shipped,
                    result.dividend_tuples_filtered,
                    result.network.total_bytes,
                    "-" if width is None else f"{min(1.0, 100 / width):.2f}",
                )
                for width, result in outcomes
            ],
            title="Bit-vector filtering, 8 processors "
            "(|S|=100, |Q|=200, 50% non-matching dividend tuples).",
        ),
    )
