"""Ablation: hash-table sizing under selectivity-estimate error (§5.2).

"If the dividend or the divisor are results of other database
operations ... the possible error in the selectivity estimate makes it
imperative to choose the division algorithm very carefully."  Estimate
error hurts hash algorithms through table sizing: a quotient table
sized for far fewer candidates than arrive degenerates into long
chains.  This bench runs hash-division with the quotient estimate off
by factors of 1/64x..4x and reports probe comparisons and the realized
average chain length.
"""

from conftest import once

from repro.costmodel.units import PAPER_UNITS
from repro.core.hash_division import HashDivision
from repro.executor.iterator import ExecContext
from repro.executor.scan import RelationSource
from repro.experiments.report import render_table
from repro.workloads.synthetic import make_exact_division

ERROR_FACTORS = (1 / 64, 1 / 16, 1 / 4, 1, 4)
ACTUAL_QUOTIENT = 2000


def bench_estimation_error(benchmark, write_result):
    dividend, divisor = make_exact_division(20, ACTUAL_QUOTIENT, seed=16)

    def run_sweep():
        outcomes = []
        for factor in ERROR_FACTORS:
            estimate = max(1, int(ACTUAL_QUOTIENT * factor))
            ctx = ExecContext()
            plan = HashDivision(
                RelationSource(ctx, dividend),
                RelationSource(ctx, divisor),
                expected_divisor=20,
                expected_quotient=estimate,
            )
            plan.open()
            table = plan._quotient_table
            assert table is not None
            chain = table.average_chain_length
            quotient = list(plan)
            plan.close()
            assert len(quotient) == ACTUAL_QUOTIENT
            outcomes.append(
                (factor, estimate, chain, PAPER_UNITS.cpu_cost_ms(ctx.cpu))
            )
        return outcomes

    outcomes = once(benchmark, run_sweep)

    accurate = next(o for o in outcomes if o[0] == 1)
    worst = outcomes[0]
    # A 64x underestimate inflates chains and probe cost measurably.
    assert worst[2] > 8 * accurate[2]
    assert worst[3] > 1.5 * accurate[3]
    # Overestimating is near-free (just a larger bucket array).
    over = outcomes[-1]
    assert over[3] < 1.05 * accurate[3]

    write_result(
        "ablation_estimation_error",
        render_table(
            ("estimate / actual", "estimated |Q|", "avg chain length",
             "cpu model ms"),
            outcomes,
            title="Hash-division under quotient-cardinality estimate error "
            f"(actual |Q| = {ACTUAL_QUOTIENT}, |S| = 20).",
        ),
    )
