"""Ablation: the price of duplicates (§2.2.2, footnote 1).

"All algorithms except hash-division require uniqueness in their
inputs, which may require further expensive preprocessing."  This
bench divides a duplicated dividend with every strategy in its
duplicate-safe configuration and measures what that safety costs:

* hash-division: nothing -- duplicates map to the same bit,
* naive division: duplicate elimination fused into its sorts,
* sort-based counting: duplicate elimination during sorting,
* hash-based counting: a HashDistinct stage that holds the entire
  distinct dividend in memory (the paper's Gerber-style scheme).
"""

from conftest import once

from repro.experiments.report import render_table
from repro.experiments.runner import STRATEGIES, run_strategy_on_relations
from repro.workloads.synthetic import make_with_duplicates


def bench_duplicate_preprocessing(benchmark, write_result):
    dividend, divisor = make_with_duplicates(50, 100, duplication_factor=1.0, seed=11)
    assert dividend.has_duplicates()

    def run_all():
        outcomes = {}
        for strategy in STRATEGIES:
            run = run_strategy_on_relations(
                strategy,
                dividend,
                divisor,
                expected_quotient=100,
                duplicate_free_inputs=False,  # request duplicate safety
            )
            assert run.quotient_tuples == 100, strategy
            outcomes[strategy] = run
        return outcomes

    outcomes = once(benchmark, run_all)

    division_ms = outcomes["hash-division"].total_ms
    # Hash-division beats every duplicate-safe counting strategy: their
    # preprocessing is exactly the "expensive" step the paper predicts.
    for strategy in STRATEGIES:
        if strategy != "hash-division":
            assert outcomes[strategy].total_ms > division_ms, strategy

    write_result(
        "ablation_duplicates",
        render_table(
            ("strategy", "total ms", "vs hash-division"),
            [
                (
                    strategy,
                    outcomes[strategy].total_ms,
                    outcomes[strategy].total_ms / division_ms,
                )
                for strategy in STRATEGIES
            ],
            title="Duplicate-safe division of a 2x-duplicated dividend "
            "(|S|=50, |Q|=100).",
        ),
    )
