"""Table 1: the analytical cost units.

A constants table -- the benchmark verifies the units and exercises the
CPU-weighting hot path that every other experiment depends on.
"""

from repro.costmodel.units import PAPER_UNITS
from repro.experiments import table1
from repro.metering import CpuCounters


def bench_table1_cost_units(benchmark, write_result, export_bench):
    counters = CpuCounters(comparisons=10_000, hashes=5_000, moves=12.5, bit_ops=100_000)

    result = benchmark(PAPER_UNITS.cpu_cost_ms, counters)

    assert result == 10_000 * 0.03 + 5_000 * 0.03 + 12.5 * 0.4 + 100_000 * 0.003
    write_result("table1_units", table1.render())
    export_bench(
        "table1_units",
        {
            "cpu_model_ms": result,
            "comparisons": counters.comparisons,
            "hashes": counters.hashes,
            "moves": counters.moves,
            "bit_ops": counters.bit_ops,
        },
        workload="fixed CpuCounters weighting hot path",
    )
