"""Ablation: central vs decentralized collection phase (§6).

"In the unlikely case that the central collection site becomes a
bottleneck, it is possible to decentralize the collection step using
quotient partitioning."  This bench constructs exactly that case -- a
large quotient surviving every phase, so the collection input is big --
and measures both modes.
"""

from conftest import once

from repro.experiments.report import render_table
from repro.parallel import parallel_hash_division
from repro.workloads.synthetic import make_exact_division

PROCESSORS = (2, 4, 8, 16)


def bench_collection_modes(benchmark, write_result):
    dividend, divisor = make_exact_division(16, 1200, seed=15)

    def run_matrix():
        outcomes = {}
        for processors in PROCESSORS:
            for mode in ("central", "decentralized"):
                result = parallel_hash_division(
                    dividend, divisor, processors,
                    strategy="divisor", collection=mode,
                )
                assert len(result.quotient) == 1200
                outcomes[(processors, mode)] = result
        return outcomes

    outcomes = once(benchmark, run_matrix)

    # Decentralization removes the coordinator and wins at scale.
    for processors in PROCESSORS:
        central = outcomes[(processors, "central")]
        decentralized = outcomes[(processors, "decentralized")]
        assert central.coordinator_ms > 0
        assert decentralized.coordinator_ms == 0.0
        if processors >= 8:
            assert decentralized.elapsed_ms < central.elapsed_ms

    write_result(
        "parallel_collection",
        render_table(
            ("processors", "mode", "elapsed ms", "collection-site ms",
             "busiest inbound ms"),
            [
                (
                    processors,
                    mode,
                    outcomes[(processors, mode)].elapsed_ms,
                    outcomes[(processors, mode)].coordinator_ms,
                    outcomes[(processors, mode)].network.busiest_receiver_ms(),
                )
                for processors in PROCESSORS
                for mode in ("central", "decentralized")
            ],
            title="Collection phase: central site vs decentralized "
            "(|S|=16, |Q|=1200 -- every candidate survives every phase).",
        ),
    )
