"""Ablation: combined quotient x divisor partitioning (§3.4).

The paper's "fourth question": when both the divisor and the quotient
are too large for memory, neither single strategy fits and the
techniques must be combined.  This bench shows the memory cliff for
each single strategy and the combined strategy fitting under the same
budget, with its extra spool cost on display.
"""

from conftest import once

from repro.errors import HashTableOverflowError
from repro.costmodel.units import PAPER_UNITS
from repro.core.partitioned import (
    combined_partitioned_division,
    divisor_partitioned_division,
    quotient_partitioned_division,
)
from repro.executor.iterator import ExecContext
from repro.executor.scan import RelationSource
from repro.experiments.report import render_table
from repro.relalg.relation import Relation

BUDGET = 24 * 1024


def _attempt(label, runner):
    ctx = ExecContext(memory_budget=BUDGET)
    try:
        quotient = runner(ctx)
    except HashTableOverflowError:
        return (label, "overflow", "-", "-")
    return (
        label,
        len(quotient),
        PAPER_UNITS.cpu_cost_ms(ctx.cpu) + ctx.io_stats.cost_ms(),
        ctx.memory.stats.peak_bytes,
    )


def bench_combined_partitioning(benchmark, write_result):
    # Both tables large: 500 candidates x 500 divisor values.
    divisor = Relation.of_ints(("d",), [(d,) for d in range(500)], name="S")
    dividend = Relation.of_ints(
        ("q", "d"), [(q, d) for q in range(500) for d in range(500)], name="R"
    )

    def run_matrix():
        return [
            _attempt(
                "quotient only (8)",
                lambda ctx: quotient_partitioned_division(
                    RelationSource(ctx, dividend), RelationSource(ctx, divisor), 8
                ),
            ),
            _attempt(
                "divisor only (8)",
                lambda ctx: divisor_partitioned_division(
                    RelationSource(ctx, dividend), RelationSource(ctx, divisor), 8
                ),
            ),
            _attempt(
                "combined (8 x 8)",
                lambda ctx: combined_partitioned_division(
                    RelationSource(ctx, dividend),
                    RelationSource(ctx, divisor),
                    quotient_partitions=8,
                    divisor_partitions=8,
                ),
            ),
        ]

    rows = once(benchmark, run_matrix)

    by_label = {row[0]: row for row in rows}
    # Divisor-only cannot shrink the 500-candidate quotient table;
    # quotient-only cannot shrink the 500-value divisor table.
    assert by_label["divisor only (8)"][1] == "overflow"
    assert by_label["quotient only (8)"][1] == "overflow"
    # The combination fits and is correct (everyone qualifies).
    assert by_label["combined (8 x 8)"][1] == 500

    write_result(
        "combined_partitioning",
        render_table(
            ("strategy", "quotient", "total model ms", "peak bytes"),
            rows,
            title=f"Both tables large (|Q|=|S|=500) under a "
            f"{BUDGET // 1024} KiB budget.",
        ),
    )
