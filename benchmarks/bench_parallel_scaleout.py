"""Multiprocessor scale-out (§6): both strategies, 1..16 processors.

Quantifies the paper's qualitative claims: quotient partitioning scales
nearly linearly once the divisor is replicated; divisor partitioning
also scales but funnels its quotient clusters through a collection
site, whose inbound traffic grows with the processor count.
"""

from conftest import once

from repro.experiments.report import render_table
from repro.parallel import parallel_hash_division
from repro.workloads.synthetic import make_exact_division

PROCESSORS = (1, 2, 4, 8, 16)


def bench_parallel_scaleout(benchmark, write_result):
    dividend, divisor = make_exact_division(60, 300, seed=7)

    def run_sweep():
        outcomes = {}
        for strategy in ("quotient", "divisor"):
            for processors in PROCESSORS:
                result = parallel_hash_division(
                    dividend, divisor, processors, strategy=strategy
                )
                assert len(result.quotient) == 300
                outcomes[(strategy, processors)] = result
        return outcomes

    outcomes = once(benchmark, run_sweep)

    for strategy in ("quotient", "divisor"):
        base = outcomes[(strategy, 1)].elapsed_ms
        top = outcomes[(strategy, 16)].elapsed_ms
        assert top < base, strategy                 # parallelism helps
        assert base / top > 2.0, strategy           # and meaningfully so
    # Quotient partitioning scales better at high processor counts:
    # the divisor strategy funnels everything through its collection
    # site (Section 6's "central collection site becomes a bottleneck").
    quotient_speedup = (
        outcomes[("quotient", 1)].elapsed_ms / outcomes[("quotient", 16)].elapsed_ms
    )
    divisor_speedup = (
        outcomes[("divisor", 1)].elapsed_ms / outcomes[("divisor", 16)].elapsed_ms
    )
    assert quotient_speedup > 3.0
    assert quotient_speedup > divisor_speedup

    rows = []
    for (strategy, processors), result in outcomes.items():
        base = outcomes[(strategy, 1)].elapsed_ms
        rows.append(
            (
                strategy,
                processors,
                result.elapsed_ms,
                base / result.elapsed_ms,
                result.network.total_bytes,
                result.coordinator_ms,
            )
        )
    write_result(
        "parallel_scaleout",
        render_table(
            ("strategy", "processors", "elapsed ms", "speedup",
             "network bytes", "collection ms"),
            rows,
            title="Parallel hash-division scale-out "
            "(|S|=60, |Q|=300, R = Q x S, round-robin declustered).",
        ),
    )
