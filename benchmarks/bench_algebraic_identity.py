"""Why the algebraic identity is "of merely theoretical validity" (§1).

Compares hash-division against the textbook reduction
π_q(R) − π_q((π_q(R) × S) − R) on a *sparse* dividend: a few
completionists hold every divisor value, everyone else holds three.
The identity's Cartesian product has |candidates| x |S| tuples no
matter how small the dividend is, so its cost (CPU + spooling the
product) races away quadratically while hash-division's stays linear
in the dividend.
"""

from conftest import once

from repro.costmodel.units import PAPER_UNITS
from repro.core.algebraic_division import algebraic_division
from repro.core.hash_division import hash_division
from repro.executor.iterator import ExecContext
from repro.experiments.report import render_table
from repro.workloads.zipf import make_zipf_enrollment

SIZES = ((50, 200), (100, 400), (200, 800))


def _total_ms(ctx):
    return PAPER_UNITS.cpu_cost_ms(ctx.cpu) + ctx.io_stats.cost_ms()


def bench_identity_vs_hash_division(benchmark, write_result):
    def run_sweep():
        outcomes = []
        for divisor_size, candidates in SIZES:
            dividend, divisor, complete = make_zipf_enrollment(
                divisor_tuples=divisor_size,
                quotient_candidates=candidates,
                enrollments_per_candidate=3,
                skew=0.0,
                completionists=candidates // 20,
                seed=9,
            )
            hash_ctx = ExecContext()
            hash_quotient = hash_division(dividend, divisor, ctx=hash_ctx)
            identity_ctx = ExecContext()
            identity_quotient = algebraic_division(dividend, divisor, ctx=identity_ctx)
            assert hash_quotient.set_equal(identity_quotient)
            assert len(hash_quotient) >= complete
            outcomes.append(
                (
                    divisor_size,
                    candidates,
                    len(dividend),
                    _total_ms(hash_ctx),
                    _total_ms(identity_ctx),
                )
            )
        return outcomes

    outcomes = once(benchmark, run_sweep)

    ratios = [identity_ms / hash_ms for *_rest, hash_ms, identity_ms in outcomes]
    assert all(ratio > 1.5 for ratio in ratios)
    assert ratios[-1] > ratios[0]  # and the gap keeps widening

    write_result(
        "algebraic_identity",
        render_table(
            ("|S|", "candidates", "|R|", "hash-division ms",
             "algebraic identity ms"),
            outcomes,
            title="The Cartesian-product identity vs hash-division "
            "(sparse dividend: 5% completionists, 3 tuples each otherwise).",
        ),
    )
