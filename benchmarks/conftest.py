"""Shared helpers for the benchmark suite.

Each benchmark regenerates one of the paper's tables (or an ablation)
and writes its rendered output to ``benchmarks/results/<name>.txt`` so
EXPERIMENTS.md can reference concrete, reproducible artifacts.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def write_result():
    """Persist a rendered table under ``benchmarks/results`` and echo it."""

    def write(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print()
        print(text)

    return write


def once(benchmark, function):
    """Run an expensive experiment exactly once under the benchmark
    timer (the experiment's own model meters are the real measurement;
    wall-clock is reported for reference)."""
    return benchmark.pedantic(function, rounds=1, iterations=1)
