"""Shared helpers for the benchmark suite.

Each benchmark regenerates one of the paper's tables (or an ablation)
and writes its rendered output to ``benchmarks/results/<name>.txt`` so
EXPERIMENTS.md can reference concrete, reproducible artifacts.

Numeric results additionally go to ``benchmarks/results/BENCH_<name>.json``
via the :func:`export_bench` fixture (schema: ``repro.obs.export``), so
the performance trajectory can be tracked run over run by tooling that
never parses the rendered text tables.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.obs.export import write_bench_json

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def write_result():
    """Persist a rendered table under ``benchmarks/results`` and echo it."""

    def write(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print()
        print(text)

    return write


@pytest.fixture
def export_bench():
    """Write a schema-valid ``BENCH_<name>.json`` under the results dir.

    Usage::

        export_bench("table1_units", {"cpu_model_ms": result})

    The payload is validated by :func:`repro.obs.export.write_bench_json`
    (all metric values must be finite numbers) and the written path is
    returned so tests can read it back.
    """

    def export(name: str, metrics: dict, profile=None, **extra) -> Path:
        RESULTS_DIR.mkdir(exist_ok=True)
        return write_bench_json(
            RESULTS_DIR, name, metrics, profile=profile, extra=extra or None
        )

    return export


def once(benchmark, function):
    """Run an expensive experiment exactly once under the benchmark
    timer (the experiment's own model meters are the real measurement;
    wall-clock is reported for reference)."""
    return benchmark.pedantic(function, rounds=1, iterations=1)
