"""Ablation: overflow strategy -- quotient vs divisor partitioning (§3.4).

Under one memory budget, measures both partitioned drivers on a
workload each strategy is suited to, plus the cross case, exposing the
complementary strengths the paper describes (quotient partitioning
shrinks the quotient table per phase but keeps the whole divisor table
resident; divisor partitioning shrinks the divisor table and bit maps
but keeps every quotient candidate per phase).
"""

from conftest import once

from repro.errors import HashTableOverflowError
from repro.costmodel.units import PAPER_UNITS
from repro.core.partitioned import (
    divisor_partitioned_division,
    quotient_partitioned_division,
)
from repro.executor.iterator import ExecContext
from repro.executor.scan import RelationSource
from repro.experiments.report import render_table
from repro.workloads.synthetic import make_exact_division


def _attempt(partitioner, dividend, divisor, partitions, budget):
    ctx = ExecContext(memory_budget=budget)
    try:
        quotient = partitioner(
            RelationSource(ctx, dividend), RelationSource(ctx, divisor), partitions
        )
    except HashTableOverflowError:
        return None
    temp_ms = ctx.io_stats.cost_ms("temp")
    return {
        "quotient": len(quotient),
        "cpu_ms": PAPER_UNITS.cpu_cost_ms(ctx.cpu),
        "spool_ms": temp_ms,
        "peak_bytes": ctx.memory.stats.peak_bytes,
    }


def bench_overflow_strategies(benchmark, write_result):
    # Many candidates, small divisor: quotient partitioning's territory.
    wide, wide_divisor = make_exact_division(20, 2000, seed=4)
    # Few candidates, large divisor: divisor partitioning's territory.
    deep_divisor_size = 2000
    deep, deep_divisor = make_exact_division(deep_divisor_size, 8, seed=5)
    budget = 48 * 1024

    def run_matrix():
        return {
            ("wide", "quotient"): _attempt(
                quotient_partitioned_division, wide, wide_divisor, 8, budget
            ),
            ("wide", "divisor"): _attempt(
                divisor_partitioned_division, wide, wide_divisor, 8, budget
            ),
            ("deep", "quotient"): _attempt(
                quotient_partitioned_division, deep, deep_divisor, 8, budget
            ),
            ("deep", "divisor"): _attempt(
                divisor_partitioned_division, deep, deep_divisor, 8, budget
            ),
        }

    outcomes = once(benchmark, run_matrix)

    # Each strategy succeeds on its own territory under the budget.
    assert outcomes[("wide", "quotient")] is not None
    assert outcomes[("wide", "quotient")]["quotient"] == 2000
    assert outcomes[("deep", "divisor")] is not None
    assert outcomes[("deep", "divisor")]["quotient"] == 8
    # And divisor partitioning cannot shrink a huge quotient table.
    assert outcomes[("wide", "divisor")] is None

    rows = []
    for (workload, strategy), outcome in outcomes.items():
        if outcome is None:
            rows.append((workload, strategy, "overflow", "-", "-"))
        else:
            rows.append(
                (
                    workload,
                    strategy,
                    outcome["cpu_ms"],
                    outcome["spool_ms"],
                    outcome["peak_bytes"],
                )
            )
    write_result(
        "ablation_overflow",
        render_table(
            ("workload", "strategy", "cpu ms", "spool io ms", "peak bytes"),
            rows,
            title="Overflow handling under a 48 KiB budget, 8 partitions "
            "(wide: |Q|=2000, |S|=20; deep: |Q|=8, |S|=2000).",
        ),
    )
