"""Ablation: index semi-join vs hash semi-join for the with-join path.

Section 2.2.1 allows "merge join, index join, or their semi-join
versions" before the aggregation.  For division the probing side is
the *dividend* -- the big input -- so a per-tuple B+-tree descent
(log |S| comparisons) loses to a bucket-chained probe (hbs ~= 2
comparisons) as the divisor grows.  This bench quantifies that and is
the reason the Table 4 pipelines use the hash semi-join.
"""

from conftest import once

from repro.costmodel.units import PAPER_UNITS
from repro.executor.hash_join import HashSemiJoin
from repro.executor.index_join import IndexSemiJoin
from repro.executor.iterator import ExecContext, run_to_relation
from repro.executor.scan import RelationSource
from repro.experiments.report import render_table
from repro.storage.catalog import Catalog
from repro.storage.index import SecondaryIndex
from repro.workloads.synthetic import make_with_nonmatching

DIVISOR_SIZES = (16, 128, 1024)


def _run_pair(divisor_size):
    dividend, divisor = make_with_nonmatching(
        divisor_size, 2048 // divisor_size * 4, nonmatching_fraction=0.5, seed=14
    )
    # Hash semi-join.
    hash_ctx = ExecContext()
    hash_result = run_to_relation(
        HashSemiJoin(
            RelationSource(hash_ctx, dividend),
            RelationSource(hash_ctx, divisor),
            ["divisor_key"],
            expected_build_size=divisor_size,
        )
    )
    # Index semi-join over a stored, indexed divisor.
    index_ctx = ExecContext()
    catalog = Catalog(index_ctx.pool, index_ctx.data_disk)
    stored = catalog.store(divisor, name="divisor")
    index = SecondaryIndex.build(stored, ["divisor_key"], cpu=index_ctx.cpu)
    index_ctx.cpu.reset()  # build cost excluded; probing is the subject
    index_result = run_to_relation(
        IndexSemiJoin(RelationSource(index_ctx, dividend), index)
    )
    assert hash_result.bag_equal(index_result)
    return (
        divisor_size,
        len(dividend),
        PAPER_UNITS.cpu_cost_ms(hash_ctx.cpu),
        PAPER_UNITS.cpu_cost_ms(index_ctx.cpu),
    )


def bench_index_vs_hash_semijoin(benchmark, write_result):
    outcomes = once(benchmark, lambda: [_run_pair(size) for size in DIVISOR_SIZES])

    # The hash probe's flat cost beats the log-height tree descent,
    # and the gap widens with the divisor size.
    gaps = [index_ms / hash_ms for _s, _n, hash_ms, index_ms in outcomes]
    assert all(gap > 1.0 for gap in gaps)
    assert gaps[-1] > gaps[0]

    write_result(
        "index_vs_hash_semijoin",
        render_table(
            ("|S|", "probe tuples", "hash semi-join cpu ms",
             "index semi-join cpu ms"),
            outcomes,
            title="Semi-join of the dividend with the divisor: hash table "
            "vs B+-tree probes (50% non-matching probes).",
        ),
    )
