"""Ablation: early aggregation during run generation (§2.2.1, §5.1).

"An obvious optimization ... is to perform aggregation during sorting,
i.e., whenever two tuples with equal sort keys are found, they are
aggregated into one tuple, thus reducing the number of tuples written
to temporary files."  This bench sorts the same grouped input with and
without the fused count reducer under a sort buffer small enough to
spill, and measures run-file I/O.
"""

from conftest import once

from repro.executor.aggregate import SortedGroupCount
from repro.executor.iterator import ExecContext, run_to_relation
from repro.executor.scan import RelationSource
from repro.executor.sort import ExternalSort, count_reducer
from repro.experiments.report import render_table
from repro.relalg.relation import Relation
from repro.storage.config import StorageConfig


def _spilling_ctx():
    return ExecContext(
        config=StorageConfig(
            page_size=8192,
            sort_run_page_size=1024,
            buffer_size=16 * 1024,
            memory_limit=64 * 1024,
            sort_buffer_size=4 * 1024,
        )
    )


def bench_sort_early_aggregation(benchmark, write_result):
    rows = [(i % 50, i) for i in range(20_000)]
    relation = Relation.of_ints(("g", "x"), rows)

    def run_both():
        fused_ctx = _spilling_ctx()
        reducer = count_reducer(relation.schema, ["g"])
        fused = run_to_relation(
            ExternalSort(RelationSource(fused_ctx, relation), ["g"], reducer=reducer)
        )
        late_ctx = _spilling_ctx()
        late = run_to_relation(
            SortedGroupCount(
                ExternalSort(RelationSource(late_ctx, relation), ["g"]), ["g"]
            )
        )
        return (fused, fused_ctx), (late, late_ctx)

    (fused, fused_ctx), (late, late_ctx) = once(benchmark, run_both)

    assert fused.set_equal(late)
    fused_bytes = fused_ctx.io_stats.counters("runs").bytes_written
    late_bytes = late_ctx.io_stats.counters("runs").bytes_written
    # Early aggregation collapses each run to <= 50 groups: dramatically
    # less temp I/O than spilling all 20,000 tuples.
    assert fused_bytes < late_bytes / 10

    write_result(
        "ablation_sort_early_agg",
        render_table(
            ("variant", "run bytes written", "run io ms", "groups"),
            [
                ("aggregate during sort", fused_bytes,
                 fused_ctx.io_stats.cost_ms("runs"), len(fused)),
                ("aggregate after sort", late_bytes,
                 late_ctx.io_stats.cost_ms("runs"), len(late)),
            ],
            title="Early aggregation during run generation "
            "(20,000 tuples, 50 groups, 4 KiB sort buffer).",
        ),
    )
