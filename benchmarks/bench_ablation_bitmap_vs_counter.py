"""Ablation: bit maps vs. counters in the quotient table (§3.3, sixth
observation).

Counters are cheaper per tuple (no bit map to allocate, no bit to set)
but are only safe on duplicate-free dividends.  This bench quantifies
the price of the bit maps and demonstrates the correctness cliff.
"""

from conftest import once

from repro.costmodel.units import PAPER_UNITS
from repro.core.hash_division import hash_division
from repro.executor.iterator import ExecContext
from repro.experiments.report import render_table
from repro.relalg import algebra
from repro.workloads.synthetic import make_exact_division, make_with_duplicates


def _run(dividend, divisor, mode):
    ctx = ExecContext()
    quotient = hash_division(dividend, divisor, ctx=ctx, mode=mode)
    return quotient, PAPER_UNITS.cpu_cost_ms(ctx.cpu), ctx.memory.stats.peak_bytes


def bench_bitmap_vs_counter(benchmark, write_result):
    dividend, divisor = make_exact_division(100, 400, seed=1)

    def run_both():
        return _run(dividend, divisor, "bitmap"), _run(dividend, divisor, "counter")

    (bitmap_q, bitmap_ms, bitmap_mem), (counter_q, counter_ms, counter_mem) = once(
        benchmark, run_both
    )

    assert bitmap_q.set_equal(counter_q)  # same answer without duplicates
    assert counter_ms <= bitmap_ms        # counters never cost more
    assert counter_mem <= bitmap_mem      # and never use more memory

    # The correctness cliff: duplicates fool counters, not bit maps.
    dup_dividend, dup_divisor = make_with_duplicates(20, 50, 1.0, seed=2)
    expected = algebra.divide_set_semantics(dup_dividend, dup_divisor)
    bitmap_result = hash_division(dup_dividend, dup_divisor, mode="bitmap")
    counter_result = hash_division(dup_dividend, dup_divisor, mode="counter")
    assert bitmap_result.set_equal(expected)
    counter_correct = counter_result.set_equal(expected)

    write_result(
        "ablation_bitmap_vs_counter",
        render_table(
            ("mode", "model ms", "peak bytes", "duplicate-safe"),
            [
                ("bitmap", bitmap_ms, bitmap_mem, True),
                ("counter", counter_ms, counter_mem, counter_correct),
            ],
            title="Hash-division quotient-table payload: bitmap vs counter "
            "(|S|=100, |Q|=400, R = Q x S).",
        ),
    )
