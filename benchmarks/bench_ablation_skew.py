"""Ablation: value skew and hash partitioning (§3.4, §6).

The paper's R = Q x S workload is perfectly uniform; real enrolments
are not.  This bench runs hash-division and the partitioned drivers on
Zipf-skewed dividends and reports what skew does and does not hurt:

* single-phase hash-division is *insensitive* to divisor-value skew --
  the quotient table is keyed on quotient attributes, and popular
  divisor values just set the same bit more often;
* divisor partitioning inherits the skew: the cluster holding the hot
  values does most of the work, visible in per-cluster tuple counts.
"""

from conftest import once

from repro.costmodel.units import PAPER_UNITS
from repro.core.hash_division import hash_division
from repro.executor.iterator import ExecContext
from repro.experiments.report import render_table
from repro.relalg.tuples import projector
from repro.workloads.zipf import make_zipf_enrollment

SKEWS = (0.0, 1.0, 2.0)


def _cluster_imbalance(dividend, partitions):
    """max/mean dividend-cluster size under divisor-attr hashing."""
    key_of = projector(dividend.schema, ("divisor_key",))
    sizes = [0] * partitions
    for row in dividend.rows:
        sizes[hash(key_of(row)) % partitions] += 1
    mean = sum(sizes) / partitions
    return max(sizes) / mean if mean else 1.0


def bench_skewed_enrollment(benchmark, write_result):
    def run_sweep():
        outcomes = []
        for skew in SKEWS:
            dividend, divisor, guaranteed = make_zipf_enrollment(
                divisor_tuples=64,
                quotient_candidates=400,
                enrollments_per_candidate=16,
                skew=skew,
                completionists=20,
                seed=12,
            )
            ctx = ExecContext()
            quotient = hash_division(dividend, divisor, ctx=ctx)
            assert len(quotient) >= guaranteed
            outcomes.append(
                (
                    skew,
                    len(dividend),
                    PAPER_UNITS.cpu_cost_ms(ctx.cpu),
                    _cluster_imbalance(dividend, 8),
                )
            )
        return outcomes

    outcomes = once(benchmark, run_sweep)

    costs = [cost for _skew, _n, cost, _imbalance in outcomes]
    # Single-phase hash-division cost is flat across skew levels
    # (same tuple count, same probe pattern on the quotient side).
    assert max(costs) < 1.15 * min(costs)
    # Divisor-hash cluster imbalance grows with skew.
    imbalances = [imbalance for *_rest, imbalance in outcomes]
    assert imbalances[-1] > imbalances[0]

    write_result(
        "ablation_skew",
        render_table(
            ("zipf skew", "|R|", "hash-division cpu ms",
             "divisor-cluster imbalance (max/mean, 8 clusters)"),
            outcomes,
            title="Zipf-skewed enrolment (|S|=64, 400 candidates, "
            "16 enrolments each, 20 completionists).",
        ),
    )
