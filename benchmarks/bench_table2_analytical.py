"""Table 2: the analytical cost of division.

Recomputes all nine size points with the Section 4 formulas and checks
they reproduce the printed table to rounding.
"""

from repro.experiments import table2


def bench_table2_analytical_grid(benchmark, write_result):
    rows = benchmark(table2.rows)

    assert len(rows) == 9
    worst = max(v for entry in rows for v in entry["deviation"].values())
    assert worst < 2e-4, f"worst deviation vs paper: {worst:.2%}"
    write_result("table2_analytical", table2.render())
