"""Logical plan nodes: *what* to compute, not *how*.

A logical plan is a small immutable tree built from five node kinds --
``Source``, ``Filter``, ``Project``, ``Distinct``, and ``Divide``.  The
query layer (:mod:`repro.query`) lowers its combinator pipelines into
this representation; the planner (:mod:`repro.plan.planner`) compiles
it into a physical :class:`~repro.executor.iterator.QueryIterator`
tree, consulting the cost advisor for every ``Divide`` node.

The module also ships :func:`evaluate`, a deliberately naive
pure-Python reference evaluator.  It exists for two jobs:

* **plan-time statistics** -- the planner streams the division inputs
  through it once to gather the exact cardinalities and duplicate
  flags the advisor prices (the same numbers the pre-planner query
  layer fed it, so algorithm choices are unchanged), and
* **testing** -- it is an executable specification the compiled
  streaming pipeline is checked against.

It never touches an :class:`~repro.executor.iterator.ExecContext`:
no meters tick, no I/O is charged, nothing is traced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from typing import TYPE_CHECKING

from repro.relalg.algebra import divide_set_semantics, division_attribute_split
from repro.relalg.predicates import Predicate
from repro.relalg.relation import Relation
from repro.relalg.schema import Schema
from repro.relalg.tuples import Row, projector

if TYPE_CHECKING:  # pragma: no cover - typing only (keeps logical storage-free)
    from repro.storage.catalog import StoredRelation


class LogicalNode:
    """Base class: every node knows its output schema and children."""

    @property
    def schema(self) -> Schema:  # pragma: no cover - abstract
        raise NotImplementedError

    def children(self) -> tuple["LogicalNode", ...]:
        return ()

    def describe(self) -> str:  # pragma: no cover - abstract
        raise NotImplementedError


@dataclass(frozen=True)
class SourceNode(LogicalNode):
    """A base input: an in-memory relation feeding the plan."""

    relation: Relation

    @property
    def schema(self) -> Schema:
        return self.relation.schema

    def describe(self) -> str:
        label = self.relation.name or "relation"
        return f"Source({label}, {len(self.relation)} tuples)"


@dataclass(frozen=True, eq=False)
class StoredSourceNode(LogicalNode):
    """A base input residing in a heap file (catalog-stored relation).

    Unlike :class:`SourceNode`, evaluating this node is *not* free: the
    rows live on a device, so both the planner's statistics pass and
    the compiled :class:`~repro.executor.scan.StoredRelationScan` read
    pages through the buffer pool, paying real (metered) I/O -- and,
    on a fault-injected device, facing real faults.  This is the node
    the chaos suite plans over, so the full planner -> executor path
    crosses the storage stack.
    """

    stored: "StoredRelation"

    @property
    def schema(self) -> Schema:
        return self.stored.schema

    def describe(self) -> str:
        return (
            f"StoredSource({self.stored.name}, {self.stored.record_count} tuples, "
            f"{self.stored.page_count} pages)"
        )


@dataclass(frozen=True)
class FilterNode(LogicalNode):
    """sigma: restrict the child by a predicate."""

    child: LogicalNode
    predicate: Predicate

    @property
    def schema(self) -> Schema:
        return self.child.schema

    def children(self) -> tuple[LogicalNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"Filter({self.predicate!r})"


@dataclass(frozen=True)
class ProjectNode(LogicalNode):
    """pi (bag semantics): keep the named attributes, keep every row."""

    child: LogicalNode
    names: tuple[str, ...]

    @property
    def schema(self) -> Schema:
        return self.child.schema.project(self.names)

    def children(self) -> tuple[LogicalNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"Project({', '.join(self.names)})"


@dataclass(frozen=True)
class DistinctNode(LogicalNode):
    """Duplicate elimination (first-occurrence order)."""

    child: LogicalNode

    @property
    def schema(self) -> Schema:
        return self.child.schema

    def children(self) -> tuple[LogicalNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        return "Distinct"


@dataclass(frozen=True)
class DivideNode(LogicalNode):
    """For-all: dividend ``contains`` divisor, i.e. relational division.

    ``divisor_restricted`` records whether a ``Filter`` produced the
    divisor -- the semantic flag that disqualifies the no-join counting
    strategies (Section 2.2's correctness requirement).  It is carried
    on the node (not rediscovered from the tree) so rewrites that
    absorb the filter cannot lose it.
    """

    dividend: LogicalNode
    divisor: LogicalNode
    divisor_restricted: bool = False

    @property
    def quotient_names(self) -> tuple[str, ...]:
        names, _ = division_attribute_split(
            Relation(self.dividend.schema), Relation(self.divisor.schema)
        )
        return names

    @property
    def divisor_names(self) -> tuple[str, ...]:
        _, names = division_attribute_split(
            Relation(self.dividend.schema), Relation(self.divisor.schema)
        )
        return names

    @property
    def schema(self) -> Schema:
        return self.dividend.schema.project(self.quotient_names)

    def children(self) -> tuple[LogicalNode, ...]:
        return (self.dividend, self.divisor)

    def describe(self) -> str:
        restricted = ", restricted divisor" if self.divisor_restricted else ""
        return f"Divide(÷{','.join(self.divisor_names)}{restricted})"


def evaluate(node: LogicalNode) -> Iterator[Row]:
    """Reference evaluation: stream the node's rows, charging nothing.

    Used by the planner for exact plan-time statistics and by the test
    suite as the semantics oracle for the compiled pipeline.  Rows come
    out in the same order the streaming operators produce them (input
    order for Filter/Project, first-occurrence order for Distinct).
    """
    if isinstance(node, SourceNode):
        yield from node.relation
        return
    if isinstance(node, StoredSourceNode):
        # The one node whose evaluation is *not* free: rows come off
        # the device through the buffer pool (metered, fault-exposed).
        for _rid, row in node.stored.scan_rows():
            yield row
        return
    if isinstance(node, FilterNode):
        test = node.predicate.compile(node.schema)
        for row in evaluate(node.child):
            if test(row):
                yield row
        return
    if isinstance(node, ProjectNode):
        extract = projector(node.child.schema, node.names)
        for row in evaluate(node.child):
            yield extract(row)
        return
    if isinstance(node, DistinctNode):
        seen: set = set()
        for row in evaluate(node.child):
            if row not in seen:
                seen.add(row)
                yield row
        return
    if isinstance(node, DivideNode):
        dividend = Relation(node.dividend.schema, list(evaluate(node.dividend)))
        divisor = Relation(node.divisor.schema, list(evaluate(node.divisor)))
        yield from divide_set_semantics(dividend, divisor)
        return
    raise TypeError(f"unknown logical node {type(node).__name__}")


def render_logical(node: LogicalNode, indent: int = 0) -> str:
    """Indented textual rendering of a logical plan tree."""
    lines = ["  " * indent + node.describe()]
    lines.extend(render_logical(child, indent + 1) for child in node.children())
    return "\n".join(lines)
