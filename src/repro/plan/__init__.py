"""repro.plan -- the logical-plan -> physical-plan compiler.

This package is the planner layer the paper's Section 5.2 argues for:
the ``contains`` language construct tells the planner it is looking at
a relational *division*, and the planner -- not the execution layer --
chooses the physical algorithm.  The layering is::

    repro.query   (language: Query / ContainsQuery combinators)
        |  logical_plan()
        v
    repro.plan.logical    (Source / Filter / Project / Distinct / Divide)
        |  Planner.compile()  -- cost advisor consulted at plan time
        v
    repro.plan.physical   (QueryIterator trees over repro.executor /
        |                  repro.core operators; one streaming pipeline)
        v
    repro.executor / repro.storage   (open-next-close, buffer pool, disks)

Everything downstream of the compiler is the *same* open-next-close
iterator machinery the experiments use, so ``Query.run()`` streams one
pipeline end-to-end, ``explain()`` renders one uniform plan tree, and
``explain_analyze()`` keeps the repro.obs invariant that per-operator
profile deltas sum exactly to the global meters.
"""

from repro.plan.logical import (
    DistinctNode,
    DivideNode,
    FilterNode,
    LogicalNode,
    ProjectNode,
    SourceNode,
    evaluate,
    render_logical,
)
from repro.plan.operators import MaterializedDivision
from repro.plan.physical import (
    DIVISION_OPERATOR_STRATEGIES,
    PhysicalPlan,
    build_division_operator,
)
from repro.plan.planner import (
    DivisionDecision,
    Planner,
    collect_division_estimates,
    compile_plan,
)

__all__ = [
    # logical
    "LogicalNode",
    "SourceNode",
    "FilterNode",
    "ProjectNode",
    "DistinctNode",
    "DivideNode",
    "evaluate",
    "render_logical",
    # physical
    "PhysicalPlan",
    "MaterializedDivision",
    "build_division_operator",
    "DIVISION_OPERATOR_STRATEGIES",
    # planner
    "Planner",
    "DivisionDecision",
    "collect_division_estimates",
    "compile_plan",
]
