"""Physical plan assembly: strategy names -> operator trees.

:func:`build_division_operator` is the single place in the codebase
that knows how to turn a named division strategy into an operator tree
over arbitrary dividend/divisor inputs.  Both consumers route through
it: the planner (:mod:`repro.plan.planner`) when compiling a
``contains`` query, and the experiment harness
(:func:`repro.experiments.runner.build_strategy_plan`) when measuring
the Table 4 grid -- one factory, no duplicated plan-building paths.

:class:`PhysicalPlan` wraps a compiled operator tree with the planner's
decisions, uniform EXPLAIN rendering, and a memory-overflow fallback:
when a single-phase hash table exceeds the context's memory budget, the
plan re-runs through the Section 3.4 partitioned hash-division
machinery instead of failing, re-opening the same (re-openable) input
subtrees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import ExecutionError, ExperimentError, HashTableOverflowError
from repro.core.aggregate_division import (
    HashAggregateDivision,
    SortAggregateDivision,
)
from repro.core.hash_division import HashDivision
from repro.core.naive_division import NaiveDivision
from repro.core.partitioned import hash_division_with_overflow
from repro.executor.iterator import ExecContext, QueryIterator, run_to_relation
from repro.executor.sort import ExternalSort
from repro.plan.operators import MaterializedDivision
from repro.relalg.algebra import division_attribute_split
from repro.relalg.relation import Relation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.plan.logical import LogicalNode
    from repro.plan.planner import DivisionDecision

#: Every strategy name the factory accepts: the six advisor/Table 2
#: strategies plus the two relation-level methods.
DIVISION_OPERATOR_STRATEGIES: tuple[str, ...] = (
    "naive",
    "sort-agg no join",
    "sort-agg with join",
    "hash-agg no join",
    "hash-agg with join",
    "hash-division",
    "algebraic",
    "oracle",
)


def build_division_operator(
    strategy: str,
    dividend: QueryIterator,
    divisor: QueryIterator,
    expected_divisor: int = 0,
    expected_quotient: int = 0,
    eliminate_duplicates: bool = False,
    distinct_sorts: bool = True,
) -> QueryIterator:
    """Build the physical operator tree for one named division strategy.

    Args:
        strategy: One of :data:`DIVISION_OPERATOR_STRATEGIES` (advisor
            strategy names, as printed in Table 2's column order, plus
            ``"algebraic"`` / ``"oracle"``).
        dividend: Input operator producing dividend tuples.
        divisor: Input operator producing divisor tuples.
        expected_divisor: Sizing hint for hash-division's divisor table.
        expected_quotient: Sizing hint for quotient-keyed hash tables.
        eliminate_duplicates: Insert the (priced) duplicate-elimination
            preprocessing the counting strategies require when the
            inputs may contain duplicates (the paper's footnote 1).
        distinct_sorts: Whether the naive algorithm's input sorts
            deduplicate.  The paper's analyzed configuration assumes
            duplicate-free inputs (pass ``False`` to reproduce it); the
            planner always passes ``True`` because query pipelines may
            produce duplicates and naive division *requires*
            duplicate-free sorted inputs.
    """
    quotient_names, divisor_names = division_attribute_split(
        Relation(dividend.schema), Relation(divisor.schema)
    )
    if strategy == "naive":
        sorted_dividend = ExternalSort(
            dividend,
            key_names=quotient_names + divisor_names,
            distinct=distinct_sorts,
        )
        sorted_divisor = ExternalSort(
            divisor,
            key_names=divisor.schema.names,
            distinct=distinct_sorts,
        )
        return NaiveDivision(sorted_dividend, sorted_divisor)
    if strategy == "sort-agg no join":
        return SortAggregateDivision(
            dividend, divisor, with_join=False,
            eliminate_duplicates=eliminate_duplicates,
        )
    if strategy == "sort-agg with join":
        return SortAggregateDivision(
            dividend, divisor, with_join=True,
            eliminate_duplicates=eliminate_duplicates,
        )
    if strategy == "hash-agg no join":
        return HashAggregateDivision(
            dividend, divisor, with_join=False,
            eliminate_duplicates=eliminate_duplicates,
            expected_quotient=expected_quotient,
        )
    if strategy == "hash-agg with join":
        return HashAggregateDivision(
            dividend, divisor, with_join=True,
            eliminate_duplicates=eliminate_duplicates,
            expected_quotient=expected_quotient,
        )
    if strategy == "hash-division":
        return HashDivision(
            dividend,
            divisor,
            expected_divisor=expected_divisor,
            expected_quotient=expected_quotient,
        )
    if strategy in ("algebraic", "oracle"):
        return MaterializedDivision(dividend, divisor, method=strategy)
    raise ExperimentError(
        f"unknown strategy {strategy!r}; "
        f"expected one of {DIVISION_OPERATOR_STRATEGIES}"
    )


@dataclass
class PhysicalPlan:
    """A compiled, executable physical plan.

    Attributes:
        root: The root of the operator tree; draining it yields the
            query result.
        ctx: The execution context the tree was compiled against.
        logical: The logical plan the tree was compiled from.
        decisions: One :class:`~repro.plan.planner.DivisionDecision`
            per ``Divide`` node, in compile order.
        dividend_input: For single-division plans, the dividend input
            subtree (below any strategy-specific sorts/joins) -- the
            hook the overflow fallback re-opens.
        divisor_input: Likewise for the divisor input subtree.
    """

    root: QueryIterator
    ctx: ExecContext
    logical: "LogicalNode"
    decisions: list["DivisionDecision"] = field(default_factory=list)
    dividend_input: QueryIterator | None = None
    divisor_input: QueryIterator | None = None

    @property
    def schema(self):
        return self.root.schema

    def execute(self, name: str = "") -> Relation:
        """Open-drain-close the pipeline; returns the result relation.

        A :class:`~repro.errors.HashTableOverflowError` under a tight
        memory budget does not fail the query: the plan falls back to
        adaptive partitioned hash-division (Section 3.4) over the same
        input subtrees, which spools partitions to temporary files
        instead of holding everything in memory.  Hash-division is
        duplicate-immune and handles the empty divisor, so the fallback
        is correct whichever strategy overflowed.
        """
        try:
            return run_to_relation(self.root, name=name)
        except HashTableOverflowError:
            if self.dividend_input is None or self.divisor_input is None:
                raise
            return self._overflow_fallback(name)

    def _overflow_fallback(self, name: str) -> Relation:
        tracer = self.ctx.tracer
        if tracer.enabled:
            tracer.count("repro_plan_overflow_fallback_total")
        # Partition the dimension the planner expects to be the memory
        # hog: quotient partitioning shrinks the quotient table per
        # phase (and is required for the vacuous empty-divisor case,
        # where dropping empty divisor clusters would drop every
        # candidate); divisor partitioning shrinks the divisor table
        # and the bit maps when the divisor dominates.
        strategy = "quotient"
        for decision in self.decisions:
            estimates = decision.estimates
            if (
                estimates.divisor_tuples > 0
                and estimates.divisor_tuples > estimates.estimated_quotient
            ):
                strategy = "divisor"
        return hash_division_with_overflow(
            lambda: self.dividend_input,
            lambda: self.divisor_input,
            strategy=strategy,
            name=name,
        )

    def explain(self, analyze: bool = False) -> str:
        """Uniform plan-tree rendering (optionally with row counts)."""
        lines = []
        for decision in self.decisions:
            lines.append(decision.render())
        lines.append(self.root.explain(analyze=analyze))
        return "\n".join(lines)

    def open(self) -> None:
        self.root.open()

    def close(self) -> None:
        if self.root is not None:
            try:
                self.root.close()
            except ExecutionError:
                pass  # already closed
