"""Physical operators owned by the planner layer.

The four paper algorithms already *are* iterators
(:class:`~repro.core.hash_division.HashDivision`,
:class:`~repro.core.naive_division.NaiveDivision`,
:class:`~repro.core.aggregate_division.SortAggregateDivision`,
:class:`~repro.core.aggregate_division.HashAggregateDivision`).  This
module adds the two relation-level methods as first-class physical
operators so the planner can put *any* division strategy -- including
the algebraic identity and the set-semantics oracle -- behind the same
open-next-close interface:

:class:`MaterializedDivision` is a stop-and-go operator like sort: its
``open()`` drains both inputs, runs the relation-level division, and
``next()`` streams the quotient.  The Cartesian product inside the
algebraic identity is inherently materializing, so wrapping it this way
loses nothing -- and gains uniform EXPLAIN / EXPLAIN ANALYZE plumbing.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.errors import DivisionError, ExecutionError
from repro.core.algebraic_division import algebraic_division
from repro.executor.iterator import QueryIterator, open_all
from repro.relalg.algebra import divide_set_semantics, division_attribute_split
from repro.relalg.relation import Relation
from repro.relalg.tuples import Row

#: The relation-level division methods this operator can host.
_METHODS = ("algebraic", "oracle")


class MaterializedDivision(QueryIterator):
    """Relation-level division behind the iterator protocol.

    Args:
        dividend: Input producing dividend tuples.
        divisor: Input producing divisor tuples.
        method: ``"algebraic"`` for the classical identity
            pi_q(R) - pi_q((pi_q(R) x S) - R) with its cost accounting,
            or ``"oracle"`` for the uncharged set-semantics definition.

    Both children are opened through
    :func:`~repro.executor.iterator.open_all`, so a failure while
    opening the second input closes the first before propagating --
    the error-path guarantee of the plan layer's state machine.
    """

    def __init__(
        self, dividend: QueryIterator, divisor: QueryIterator, method: str = "oracle"
    ) -> None:
        if dividend.ctx is not divisor.ctx:
            raise ExecutionError("division inputs must share one execution context")
        if method not in _METHODS:
            raise DivisionError(
                f"unknown materialized division method {method!r}; "
                f"expected one of {_METHODS}"
            )
        quotient_names, divisor_names = division_attribute_split(
            Relation(dividend.schema), Relation(divisor.schema)
        )
        super().__init__(dividend.ctx, dividend.schema.project(quotient_names))
        self.dividend = dividend
        self.divisor = divisor
        self.method = method
        self.quotient_names = quotient_names
        self.divisor_names = divisor_names
        self._output: Iterator[Row] | None = None

    def _open(self) -> None:
        open_all((self.dividend, self.divisor))
        try:
            dividend = Relation(
                self.dividend.schema, list(self.dividend), name="dividend"
            )
            divisor = Relation(self.divisor.schema, list(self.divisor), name="divisor")
        finally:
            self.divisor.close()
            self.dividend.close()
        if self.method == "algebraic":
            quotient = algebraic_division(dividend, divisor, ctx=self.ctx)
        else:
            quotient = divide_set_semantics(dividend, divisor)
        self._output = iter(quotient.rows)

    def _next(self) -> Optional[Row]:
        assert self._output is not None
        return next(self._output, None)

    def _close(self) -> None:
        self._output = None

    def children(self) -> tuple[QueryIterator, ...]:
        return (self.dividend, self.divisor)

    def describe(self) -> str:
        return f"MaterializedDivision(÷{','.join(self.divisor_names)}; {self.method})"
