"""The planner: compile logical plans, choosing division algorithms.

Section 5.2's argument, operationalized: because the ``contains``
construct reaches the planner as an explicit ``Divide`` node, the
planner can gather the *actual* input statistics (a zero-cost streaming
pass over the reference evaluator -- exactly the numbers the eager
query layer used to compute, so algorithm choices are unchanged), price
every semantically applicable strategy with the Section 4 cost
formulas, and compile the winner into the physical operator tree.  The
decision is recorded on the plan, so ``explain()`` shows not just the
tree but *why* it is that tree.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ExecutionError
from repro.costmodel.advisor import AdvisorChoice, DivisionEstimates, advise
from repro.costmodel.units import CostUnits, PAPER_UNITS
from repro.executor.distinct import HashDistinct
from repro.executor.filter import Select
from repro.executor.iterator import ExecContext, QueryIterator
from repro.executor.project import Project
from repro.executor.scan import RelationSource, StoredRelationScan
from repro.plan.logical import (
    DistinctNode,
    DivideNode,
    FilterNode,
    LogicalNode,
    ProjectNode,
    SourceNode,
    StoredSourceNode,
    evaluate,
)
from repro.plan.physical import PhysicalPlan, build_division_operator
from repro.relalg.tuples import projector


@dataclass(frozen=True)
class DivisionDecision:
    """The planner's record of one division-algorithm choice.

    Attributes:
        strategy: The advisor strategy name that won.
        estimates: The statistics the advisor priced.
        quotient_names: The result attributes of the division.
        choice: The full advisor verdict, including the ranking of
            every applicable strategy -- kept so ``explain()`` can show
            the alternatives, not just the winner.
        eliminate_duplicates: Whether the compiled counting strategy
            carries explicit duplicate-elimination preprocessing.
    """

    strategy: str
    estimates: DivisionEstimates
    quotient_names: tuple[str, ...]
    choice: AdvisorChoice
    eliminate_duplicates: bool = False

    def render(self) -> str:
        """Multi-line decision summary for plan display."""
        lines = [
            f"Division strategy: {self.strategy!r}"
            f"  (est. {self.choice.estimated_ms:,.0f} model ms)",
            f"  dividend: ~{self.estimates.dividend_tuples} tuples",
            f"  divisor:  ~{self.estimates.divisor_tuples} tuples"
            + (" (restricted)" if self.estimates.divisor_restricted else ""),
            f"  quotient: {', '.join(self.quotient_names)}"
            f" (~{self.estimates.estimated_quotient} tuples)",
        ]
        if self.estimates.may_contain_duplicates:
            lines.append("  duplicates possible: counting needs preprocessing")
        runners_up = [
            ranked for ranked in self.choice.ranking if ranked.strategy != self.strategy
        ]
        if runners_up:
            alternatives = ", ".join(
                f"{ranked.strategy} ({ranked.estimated_ms:,.0f} ms)"
                for ranked in runners_up[:3]
            )
            lines.append(f"  rejected: {alternatives}")
        return "\n".join(lines)


def collect_division_estimates(
    dividend: LogicalNode,
    divisor: LogicalNode,
    divisor_restricted: bool = False,
) -> tuple[DivisionEstimates, tuple[str, ...]]:
    """Exact plan-time statistics for one division, plus quotient names.

    Streams both inputs through the uncharged reference evaluator once:
    |R|, the distinct |S|, the exact candidate count |Q|, and the
    duplicate flags -- the same statistics the advisor has always been
    fed, gathered without materializing either input as a
    :class:`~repro.relalg.relation.Relation`.

    Because the pass sees the exact values, it also *checks* the
    Section 2.2 correctness precondition of the no-join counting
    strategies instead of trusting the syntactic signal alone: when any
    divisor-attribute value occurring in the dividend is missing from
    the divisor (no referential integrity), the divisor is reported
    restricted even without a ``where`` step, so the advisor refuses
    the strategies that would count non-divisor tuples.
    """
    shell = DivideNode(dividend, divisor, divisor_restricted)
    quotient_names = shell.quotient_names
    quotient_of = projector(dividend.schema, quotient_names)
    divisor_of = projector(dividend.schema, shell.divisor_names)
    dividend_tuples = 0
    dividend_seen: set = set()
    dividend_duplicates = False
    quotient_keys: set = set()
    dividend_divisor_values: set = set()
    for row in evaluate(dividend):
        dividend_tuples += 1
        if row in dividend_seen:
            dividend_duplicates = True
        else:
            dividend_seen.add(row)
        quotient_keys.add(quotient_of(row))
        dividend_divisor_values.add(divisor_of(row))
    divisor_tuples = 0
    divisor_seen: set = set()
    divisor_duplicates = False
    for row in evaluate(divisor):
        divisor_tuples += 1
        if row in divisor_seen:
            divisor_duplicates = True
        else:
            divisor_seen.add(row)
    covered = dividend_divisor_values <= divisor_seen
    estimates = DivisionEstimates(
        dividend_tuples=dividend_tuples,
        divisor_tuples=len(divisor_seen),
        quotient_tuples=len(quotient_keys),
        divisor_restricted=divisor_restricted or not covered,
        may_contain_duplicates=dividend_duplicates or divisor_duplicates,
    )
    return estimates, quotient_names


class Planner:
    """Compiles logical plans into physical iterator trees.

    One planner instance compiles one plan; its :attr:`decisions` list
    records every division-algorithm choice made along the way.
    """

    def __init__(self, ctx: ExecContext, units: CostUnits = PAPER_UNITS) -> None:
        self.ctx = ctx
        self.units = units
        self.decisions: list[DivisionDecision] = []
        self._division_inputs: tuple[QueryIterator, QueryIterator] | None = None

    def compile(self, node: LogicalNode) -> QueryIterator:
        """Lower one logical node (and its subtree) to physical form."""
        if isinstance(node, SourceNode):
            return RelationSource(self.ctx, node.relation)
        if isinstance(node, StoredSourceNode):
            return StoredRelationScan(self.ctx, node.stored)
        if isinstance(node, FilterNode):
            return Select(self.compile(node.child), node.predicate)
        if isinstance(node, ProjectNode):
            return Project(self.compile(node.child), node.names)
        if isinstance(node, DistinctNode):
            return HashDistinct(self.compile(node.child))
        if isinstance(node, DivideNode):
            return self._compile_division(node)
        raise ExecutionError(f"unplannable logical node {type(node).__name__}")

    def _compile_division(self, node: DivideNode) -> QueryIterator:
        estimates, quotient_names = collect_division_estimates(
            node.dividend, node.divisor, node.divisor_restricted
        )
        choice = advise(estimates, self.units)
        eliminate = (
            estimates.may_contain_duplicates
            if choice.strategy.startswith(("sort-agg", "hash-agg"))
            else False
        )
        decision = DivisionDecision(
            strategy=choice.strategy,
            estimates=estimates,
            quotient_names=quotient_names,
            choice=choice,
            eliminate_duplicates=eliminate,
        )
        self.decisions.append(decision)
        dividend_input = self.compile(node.dividend)
        divisor_input = self.compile(node.divisor)
        self._division_inputs = (dividend_input, divisor_input)
        return build_division_operator(
            choice.strategy,
            dividend_input,
            divisor_input,
            expected_divisor=estimates.divisor_tuples,
            expected_quotient=estimates.estimated_quotient,
            eliminate_duplicates=eliminate,
            distinct_sorts=True,
        )

    @property
    def division_inputs(self) -> tuple[QueryIterator, QueryIterator] | None:
        """The (dividend, divisor) input subtrees of the last division."""
        return self._division_inputs


def compile_plan(
    node: LogicalNode,
    ctx: ExecContext | None = None,
    units: CostUnits = PAPER_UNITS,
) -> PhysicalPlan:
    """Compile a logical plan into an executable :class:`PhysicalPlan`.

    Args:
        node: Root of the logical plan.
        ctx: Execution context to compile against; a fresh unbudgeted
            context is created when omitted.
        units: Table 1 cost units the advisor prices strategies with.
    """
    ctx = ctx or ExecContext()
    planner = Planner(ctx, units=units)
    root = planner.compile(node)
    dividend_input, divisor_input = (None, None)
    if isinstance(node, DivideNode) and planner.division_inputs is not None:
        # The overflow fallback substitutes partitioned hash-division
        # for the whole plan, which is only sound when the division
        # *is* the plan (always true for compiled ``contains`` queries).
        dividend_input, divisor_input = planner.division_inputs
    return PhysicalPlan(
        root=root,
        ctx=ctx,
        logical=node,
        decisions=planner.decisions,
        dividend_input=dividend_input,
        divisor_input=divisor_input,
    )
