"""Cost-based algorithm selection for division.

Section 5.2: "If the dividend or the divisor are results of other
database operations, e.g., selection or projection, the possible error
in the selectivity estimate makes it imperative to choose the division
algorithm very carefully."  This module is the optimizer-side answer:
given cardinality estimates and two semantic flags, it prices every
*applicable* strategy with the Section 4 formulas and returns them
ranked.

Semantics drive applicability before cost does:

* ``divisor_restricted`` -- the divisor was produced by a selection
  (the paper's second example), so dividend tuples may reference
  values outside it: the counting strategies are only correct *with*
  the semi-join.
* ``may_contain_duplicates`` -- projections without duplicate
  elimination feed the division: the counting strategies need explicit
  (priced) preprocessing, the naive algorithm eliminates duplicates in
  its sorts anyway, and hash-division is immune for free.

The advisor deliberately reuses the Table 2 scenario machinery, so its
preferences are exactly the analytical comparison's -- including its
headline conclusion that hash-division is the safe default whenever
semantics disqualify the leaner strategies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ExperimentError
from repro.costmodel.formulas import (
    DivisionScenario,
    hash_aggregation_cost,
    hash_division_cost,
    naive_division_cost,
    sort_aggregation_cost,
)
from repro.costmodel.sorting import external_merge_sort_cost
from repro.costmodel.units import CostUnits, PAPER_UNITS


@dataclass(frozen=True)
class DivisionEstimates:
    """Optimizer-side knowledge about a division's inputs.

    Attributes:
        dividend_tuples: Estimated |R|.
        divisor_tuples: Estimated |S|.
        quotient_tuples: Estimated |Q| (candidates); defaults to
            ``dividend_tuples / max(1, divisor_tuples)`` -- the
            R = Q x S assumption -- when 0.
        dividend_tuples_per_page: Physical packing of the dividend.
        divisor_tuples_per_page: Physical packing of the divisor.
        memory_pages: Pages available for sorting / hash tables.
        divisor_restricted: The divisor is a selection result, so
            no-join counting is semantically unsafe.
        may_contain_duplicates: The inputs may contain duplicates, so
            counting needs priced duplicate elimination.
    """

    dividend_tuples: int
    divisor_tuples: int
    quotient_tuples: int = 0
    dividend_tuples_per_page: int = 5
    divisor_tuples_per_page: int = 10
    memory_pages: int = 100
    divisor_restricted: bool = False
    may_contain_duplicates: bool = False

    def __post_init__(self) -> None:
        if self.dividend_tuples < 0 or self.divisor_tuples < 0:
            raise ExperimentError("cardinality estimates must be >= 0")

    @property
    def estimated_quotient(self) -> int:
        """|Q| estimate, defaulted via the R = Q x S assumption."""
        if self.quotient_tuples:
            return self.quotient_tuples
        return max(1, self.dividend_tuples // max(1, self.divisor_tuples))


@dataclass(frozen=True)
class RankedStrategy:
    """One applicable strategy with its estimated cost."""

    strategy: str
    estimated_ms: float
    note: str = ""


def rank_strategies(
    estimates: DivisionEstimates,
    units: CostUnits = PAPER_UNITS,
) -> list[RankedStrategy]:
    """Price every semantically applicable strategy, cheapest first.

    Strategies ruled out by semantics (no-join counting under a
    restricted divisor; any counting against an empty divisor) are
    simply absent from the result, so the head of the list is always a
    *correct* choice.
    """
    if estimates.divisor_tuples == 0:
        # Vacuous division: only the direct algorithms apply, and
        # hash-division does it in one dividend pass.
        scenario = _scenario(estimates, divisor_tuples=1)
        return [
            RankedStrategy(
                "hash-division",
                hash_division_cost(scenario, units).total_ms,
                note="empty divisor: counting strategies are inapplicable",
            ),
            RankedStrategy(
                "naive",
                naive_division_cost(scenario, units).total_ms,
                note="empty divisor: counting strategies are inapplicable",
            ),
        ]

    scenario = _scenario(estimates)
    preprocessing = 0.0
    preprocessing_note = ""
    if estimates.may_contain_duplicates:
        # Counting needs duplicate-free inputs (footnote 1); price a
        # sort-based duplicate elimination of the dividend for the
        # counting strategies.  Naive division already sorts (its
        # sorts deduplicate for free) and hash-division is immune.
        preprocessing = external_merge_sort_cost(
            scenario.dividend_tuples,
            scenario.dividend_pages,
            scenario.memory_pages,
            units,
        )
        preprocessing_note = "includes duplicate-elimination sort of the dividend"

    ranked = [
        RankedStrategy(
            "hash-division", hash_division_cost(scenario, units).total_ms
        ),
        RankedStrategy(
            "naive", naive_division_cost(scenario, units).total_ms
        ),
    ]
    # The Table 2 composition never charges the sort-aggregation column
    # for *reading* its inputs (every other column does); for a fair
    # ranking the advisor adds the sequential input read to it.
    input_read = (scenario.dividend_pages + scenario.divisor_pages) * units.sio
    join_needed = estimates.divisor_restricted
    for name, costing, read_adjustment in (
        ("sort-agg", sort_aggregation_cost, input_read),
        ("hash-agg", hash_aggregation_cost, 0.0),
    ):
        if not join_needed:
            ranked.append(
                RankedStrategy(
                    f"{name} no join",
                    costing(scenario, False, units).total_ms
                    + read_adjustment
                    + preprocessing,
                    note=preprocessing_note,
                )
            )
        ranked.append(
            RankedStrategy(
                f"{name} with join",
                costing(scenario, True, units).total_ms
                + read_adjustment
                + preprocessing,
                note=preprocessing_note
                or ("required: the divisor is restricted" if join_needed else ""),
            )
        )
    ranked.sort(key=lambda entry: entry.estimated_ms)
    return ranked


def choose_strategy(
    estimates: DivisionEstimates,
    units: CostUnits = PAPER_UNITS,
) -> RankedStrategy:
    """The cheapest semantically correct strategy."""
    return rank_strategies(estimates, units)[0]


@dataclass(frozen=True)
class AdvisorChoice:
    """The advisor's plan-time verdict: winner plus full ranking.

    This is the interface the planner (:mod:`repro.plan.planner`)
    consumes: :attr:`strategy` names the physical operator tree to
    compile, and :attr:`ranking` keeps every applicable alternative
    with its price so ``explain()`` can show what was rejected and why.
    """

    strategy: str
    estimated_ms: float
    note: str
    ranking: tuple[RankedStrategy, ...]

    @property
    def winner(self) -> RankedStrategy:
        """The ranked entry the choice was taken from."""
        return self.ranking[0]


def advise(
    estimates: DivisionEstimates,
    units: CostUnits = PAPER_UNITS,
) -> AdvisorChoice:
    """Plan-time entry point: rank everything, return the full verdict.

    Equivalent to :func:`choose_strategy` but returns the whole ranked
    field alongside the winner, so a planner consults the advisor once
    per division and still has everything needed for plan display.
    """
    ranking = tuple(rank_strategies(estimates, units))
    winner = ranking[0]
    return AdvisorChoice(
        strategy=winner.strategy,
        estimated_ms=winner.estimated_ms,
        note=winner.note,
        ranking=ranking,
    )


def _scenario(
    estimates: DivisionEstimates, divisor_tuples: int | None = None
) -> DivisionScenario:
    """Adapt estimates to the Table 2 scenario shape.

    The scenario's ``R = Q x S`` assumption only fixes |R| given |Q|
    and |S|; here |R| is known, so the scenario is built with the
    estimated |Q| and the divisor size, and its derived dividend
    cardinality is overridden via page math on the *actual* |R|.
    """
    divisor = divisor_tuples if divisor_tuples is not None else estimates.divisor_tuples
    return DivisionScenario(
        divisor_tuples=max(1, divisor),
        quotient_tuples=estimates.estimated_quotient,
        memory_pages=estimates.memory_pages,
        dividend_tuples_per_page=estimates.dividend_tuples_per_page,
        divisor_tuples_per_page=estimates.divisor_tuples_per_page,
        quotient_tuples_per_page=estimates.divisor_tuples_per_page,
        dividend_tuples_override=max(1, estimates.dividend_tuples),
    )
