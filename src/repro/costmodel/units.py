"""Table 1: the analytical cost units.

=====  =====  ==========================================================
Unit    ms    Description
=====  =====  ==========================================================
RIO    30     random I/O, one page from or to disk
SIO    15     sequential I/O, one page from or to disk
Comp   0.03   comparison of two tuples
Hash   0.03   calculation of a hash value from a tuple
Move   0.4    memory-to-memory copy of one page
Bit    0.003  setting a bit in a bit map, and clearing and scanning a
              bit in a bit map
=====  =====  ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.metering import CpuCounters


@dataclass(frozen=True)
class CostUnits:
    """The Table 1 unit costs, in milliseconds."""

    rio: float = 30.0
    sio: float = 15.0
    comp: float = 0.03
    hash_: float = 0.03
    move: float = 0.4
    bit: float = 0.003

    def cpu_cost_ms(self, counters: CpuCounters) -> float:
        """Weight measured CPU counters into model milliseconds.

        This is how the experimental comparison prices the abstract
        operations counted during real (simulated) execution.
        """
        return (
            counters.comparisons * self.comp
            + counters.hashes * self.hash_
            + counters.moves * self.move
            + counters.bit_ops * self.bit
        )

    def as_table(self) -> list[tuple[str, float, str]]:
        """Rows of Table 1: (unit, ms, description)."""
        return [
            ("RIO", self.rio, "random I/O, one page from or to disk"),
            ("SIO", self.sio, "sequential I/O, one page from or to disk"),
            ("Comp", self.comp, "comparison of two tuples"),
            ("Hash", self.hash_, "calculation of a hash value from a tuple"),
            ("Move", self.move, "memory to memory copy of one page"),
            (
                "Bit",
                self.bit,
                "setting a bit in a bit map, and clearing and scanning "
                "a bit in a bit map",
            ),
        ]


#: The paper's Table 1 values.
PAPER_UNITS = CostUnits()
