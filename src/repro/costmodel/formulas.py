"""Per-algorithm analytical cost formulas (Sections 4.2-4.5).

All formulas price the paper's assumed case ``R = Q × S`` (every
dividend tuple participates in the quotient) with duplicate-free
inputs, and omit the common cost of projecting and writing the
quotient.  Each function returns an itemized
:class:`CostBreakdown` whose components sum to the figure printed in
Table 2.

The exact composition of each Table 2 column, reverse-engineered
against all nine printed size points (documented in EXPERIMENTS.md):

* **Naive division** (§4.2): sort R (disk merge sort) + sort S
  (quicksort) + the division step ``(r + s) SIO + |R| Comp``.
* **Sort-based aggregation, no join** (§4.3): sort R + sort S +
  aggregation ``|R| Comp`` + scalar aggregate ``s SIO``.
* **Sort-based aggregation, with join**: *twice* the no-join column
  (the relation is sorted once for the join and once for the
  aggregation, and the paper doubles the aggregation-side bookkeeping
  with it) + the merge-join step ``(r + s) SIO + |R| |S| Comp``.
* **Hash-based aggregation, no join** (§4.4):
  ``r SIO + |R| (Hash + hbs Comp) + s SIO``.
* **Hash-based aggregation, with join**: no-join cost + the semi-join
  ``(s + r) SIO + |S| Hash + |R| (Hash + hbs Comp)``.
* **Hash-division** (§4.5):
  ``(r + s) SIO + |S| Hash + |R| (2 (Hash + hbs Comp) + Bit)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ExperimentError
from repro.costmodel.sorting import external_merge_sort_cost, quicksort_cost
from repro.costmodel.units import CostUnits, PAPER_UNITS


@dataclass(frozen=True)
class DivisionScenario:
    """The Section 4.6 scenario parameters.

    ``R = Q × S``: the dividend has ``|Q| · |S|`` tuples.  Ten divisor
    or quotient tuples fit on a page, which "implies that 5 tuples of R
    fit on one page" (dividend tuples carry both attribute groups).
    """

    divisor_tuples: int
    quotient_tuples: int
    memory_pages: int = 100
    divisor_tuples_per_page: int = 10
    quotient_tuples_per_page: int = 10
    dividend_tuples_per_page: int = 5
    hash_bucket_size: float = 2.0
    merge_pass_mode: str = "paper"
    dividend_tuples_override: int = 0

    def __post_init__(self) -> None:
        if self.divisor_tuples <= 0 or self.quotient_tuples <= 0:
            raise ExperimentError("scenario sizes must be positive")

    @property
    def dividend_tuples(self) -> int:
        """|R|: the override when given, else |Q| · |S| (the assumed
        case R = Q x S).  The override exists for the cost advisor,
        which knows the actual dividend cardinality."""
        if self.dividend_tuples_override:
            return self.dividend_tuples_override
        return self.divisor_tuples * self.quotient_tuples

    @property
    def dividend_pages(self) -> float:
        """r (fractional pages, as the paper computes them)."""
        return self.dividend_tuples / self.dividend_tuples_per_page

    @property
    def divisor_pages(self) -> float:
        """s (fractional pages)."""
        return self.divisor_tuples / self.divisor_tuples_per_page

    @property
    def quotient_pages(self) -> float:
        """q (fractional pages)."""
        return self.quotient_tuples / self.quotient_tuples_per_page


@dataclass
class CostBreakdown:
    """An itemized model cost: component name -> milliseconds."""

    algorithm: str
    components: dict = field(default_factory=dict)

    def add(self, name: str, ms: float) -> "CostBreakdown":
        """Add (or accumulate) one component."""
        self.components[name] = self.components.get(name, 0.0) + ms
        return self

    @property
    def total_ms(self) -> float:
        """Sum of all components -- the Table 2 cell value."""
        return sum(self.components.values())

    def __repr__(self) -> str:
        return f"<CostBreakdown {self.algorithm}: {self.total_ms:.1f} ms>"


def _sort_dividend(s: DivisionScenario, units: CostUnits) -> float:
    return external_merge_sort_cost(
        s.dividend_tuples,
        s.dividend_pages,
        s.memory_pages,
        units,
        mode=s.merge_pass_mode,
    )


def naive_division_cost(
    scenario: DivisionScenario, units: CostUnits = PAPER_UNITS
) -> CostBreakdown:
    """§4.2: sort both inputs, then one merging scan.

    The division step is ``(r + s) SIO + |R| Comp``: "the outer
    relation is scanned once and the inner is assumed to be kept in
    buffer memory".
    """
    out = CostBreakdown("naive")
    out.add("sort dividend", _sort_dividend(scenario, units))
    out.add("sort divisor", quicksort_cost(scenario.divisor_tuples, units))
    out.add(
        "division scan",
        (scenario.dividend_pages + scenario.divisor_pages) * units.sio
        + scenario.dividend_tuples * units.comp,
    )
    return out


def sort_aggregation_cost(
    scenario: DivisionScenario,
    with_join: bool = False,
    units: CostUnits = PAPER_UNITS,
) -> CostBreakdown:
    """§4.3: division by counting with sort-based aggregation.

    Without a join: sort the dividend (aggregating in the final merge,
    ``|R| Comp``), count the divisor (``s SIO``), and sort the divisor
    for the requested duplicate elimination.  With a join, the dividend
    is sorted twice (once per ordering) and the merge join adds
    ``(r + s) SIO + |R| |S| Comp``; Table 2's with-join column is
    exactly twice the no-join column plus the join step.
    """
    out = CostBreakdown("sort-aggregation" + (" with join" if with_join else ""))
    multiplier = 2 if with_join else 1
    out.add("sort dividend", multiplier * _sort_dividend(scenario, units))
    out.add(
        "aggregation", multiplier * scenario.dividend_tuples * units.comp
    )
    out.add(
        "scalar aggregate", multiplier * scenario.divisor_pages * units.sio
    )
    out.add(
        "sort divisor",
        multiplier * quicksort_cost(scenario.divisor_tuples, units),
    )
    if with_join:
        out.add(
            "merge join",
            (scenario.dividend_pages + scenario.divisor_pages) * units.sio
            + scenario.dividend_tuples * scenario.divisor_tuples * units.comp,
        )
    return out


def hash_aggregation_cost(
    scenario: DivisionScenario,
    with_join: bool = False,
    units: CostUnits = PAPER_UNITS,
) -> CostBreakdown:
    """§4.4: division by counting with hash-based aggregation.

    No join: ``r SIO + |R| (Hash + hbs Comp) + s SIO``.  The semi-join,
    when needed, costs ``(s + r) SIO + |S| Hash + |R| (Hash + hbs
    Comp)`` on top.
    """
    out = CostBreakdown("hash-aggregation" + (" with join" if with_join else ""))
    per_tuple = units.hash_ + scenario.hash_bucket_size * units.comp
    out.add("read dividend", scenario.dividend_pages * units.sio)
    out.add("hash aggregation", scenario.dividend_tuples * per_tuple)
    out.add("scalar aggregate", scenario.divisor_pages * units.sio)
    if with_join:
        out.add(
            "semi-join I/O",
            (scenario.divisor_pages + scenario.dividend_pages) * units.sio,
        )
        out.add("semi-join build", scenario.divisor_tuples * units.hash_)
        out.add("semi-join probe", scenario.dividend_tuples * per_tuple)
    return out


def hash_division_cost(
    scenario: DivisionScenario, units: CostUnits = PAPER_UNITS
) -> CostBreakdown:
    """§4.5: hash-division.

    ``(r + s) SIO + |S| Hash + |R| (2 (Hash + hbs Comp) + Bit)`` --
    both inputs read sequentially; each dividend tuple probes two hash
    tables (divisor and quotient) and sets one bit.
    """
    out = CostBreakdown("hash-division")
    per_tuple = units.hash_ + scenario.hash_bucket_size * units.comp
    out.add(
        "read inputs",
        (scenario.dividend_pages + scenario.divisor_pages) * units.sio,
    )
    out.add("build divisor table", scenario.divisor_tuples * units.hash_)
    out.add("probe both tables", scenario.dividend_tuples * 2 * per_tuple)
    out.add("set bits", scenario.dividend_tuples * units.bit)
    return out
