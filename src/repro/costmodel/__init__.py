"""The paper's analytical cost model (Section 4).

* :mod:`repro.costmodel.units` -- Table 1 cost units,
* :mod:`repro.costmodel.sorting` -- the quicksort and external
  merge-sort cost formulas of Section 4.1,
* :mod:`repro.costmodel.formulas` -- the per-algorithm cost formulas of
  Sections 4.2-4.5, each returning an itemized
  :class:`~repro.costmodel.formulas.CostBreakdown`,
* :mod:`repro.costmodel.scenarios` -- the Section 4.6 scenario grid
  that regenerates Table 2.
"""

from repro.costmodel.advisor import (
    DivisionEstimates,
    RankedStrategy,
    choose_strategy,
    rank_strategies,
)
from repro.costmodel.units import CostUnits
from repro.costmodel.formulas import (
    CostBreakdown,
    DivisionScenario,
    hash_aggregation_cost,
    hash_division_cost,
    naive_division_cost,
    sort_aggregation_cost,
)
from repro.costmodel.sorting import external_merge_sort_cost, quicksort_cost
from repro.costmodel.scenarios import TABLE2_COLUMNS, TABLE2_SIZES, table2_grid

__all__ = [
    "CostUnits",
    "DivisionEstimates",
    "RankedStrategy",
    "choose_strategy",
    "rank_strategies",
    "CostBreakdown",
    "DivisionScenario",
    "naive_division_cost",
    "sort_aggregation_cost",
    "hash_aggregation_cost",
    "hash_division_cost",
    "quicksort_cost",
    "external_merge_sort_cost",
    "TABLE2_SIZES",
    "TABLE2_COLUMNS",
    "table2_grid",
]
