"""The Section 4.6 scenario grid regenerating Table 2.

"We consider three sizes for S and Q, 25, 100, or 400 tuples.  We
assume that 10 tuples of either S or Q fit on one page, which implies
that 5 tuples of R fit on one page.  The memory used for sorting or
hash tables is 100 pages, the average hash bucket size hbs is 2."
"""

from __future__ import annotations

from repro.costmodel.formulas import (
    CostBreakdown,
    DivisionScenario,
    hash_aggregation_cost,
    hash_division_cost,
    naive_division_cost,
    sort_aggregation_cost,
)
from repro.costmodel.units import CostUnits, PAPER_UNITS

TABLE2_SIZES: tuple[tuple[int, int], ...] = (
    (25, 25),
    (25, 100),
    (25, 400),
    (100, 25),
    (100, 100),
    (100, 400),
    (400, 25),
    (400, 100),
    (400, 400),
)
"""The nine (|S|, |Q|) points of Table 2, in the paper's row order."""

TABLE2_COLUMNS: tuple[str, ...] = (
    "naive",
    "sort-agg no join",
    "sort-agg with join",
    "hash-agg no join",
    "hash-agg with join",
    "hash-division",
)
"""The six strategy columns of Table 2, in the paper's column order."""

#: The figures printed in the paper's Table 2 (milliseconds), keyed by
#: (|S|, |Q|); used by tests and EXPERIMENTS.md to report deviation.
PAPER_TABLE2: dict[tuple[int, int], tuple[int, ...]] = {
    (25, 25): (9949, 8074, 18529, 1969, 3938, 2028),
    (25, 100): (39663, 32163, 73738, 7763, 15526, 7996),
    (25, 400): (158517, 128517, 294572, 30938, 61876, 31868),
    (100, 25): (39808, 32308, 79766, 7875, 15753, 8111),
    (100, 100): (158662, 128662, 317475, 31050, 62103, 31983),
    (100, 400): (634080, 514080, 1268311, 123750, 247503, 127473),
    (400, 25): (159280, 129280, 409160, 31500, 63012, 32442),
    (400, 100): (634698, 514698, 1629996, 124200, 248412, 127932),
    (400, 400): (2536369, 2056369, 6513339, 495000, 990012, 509892),
}


def scenario_costs(
    scenario: DivisionScenario, units: CostUnits = PAPER_UNITS
) -> dict[str, CostBreakdown]:
    """All six strategy costs for one scenario, keyed by column name."""
    return {
        "naive": naive_division_cost(scenario, units),
        "sort-agg no join": sort_aggregation_cost(scenario, False, units),
        "sort-agg with join": sort_aggregation_cost(scenario, True, units),
        "hash-agg no join": hash_aggregation_cost(scenario, False, units),
        "hash-agg with join": hash_aggregation_cost(scenario, True, units),
        "hash-division": hash_division_cost(scenario, units),
    }


def table2_grid(units: CostUnits = PAPER_UNITS) -> list[dict]:
    """Recompute Table 2.

    Returns one dict per row: ``{"S": ..., "Q": ..., "costs": {column:
    CostBreakdown}, "paper": {column: printed ms}}``.
    """
    rows = []
    for divisor_tuples, quotient_tuples in TABLE2_SIZES:
        scenario = DivisionScenario(divisor_tuples, quotient_tuples)
        costs = scenario_costs(scenario, units)
        paper = dict(zip(TABLE2_COLUMNS, PAPER_TABLE2[(divisor_tuples, quotient_tuples)]))
        rows.append(
            {
                "S": divisor_tuples,
                "Q": quotient_tuples,
                "costs": costs,
                "paper": paper,
            }
        )
    return rows
