"""Sorting cost formulas (Section 4.1).

For a relation that fits in main memory, quicksort::

    2 |S| log2(|S|) Comp

For a relation of ``r`` pages (|R| tuples) larger than the ``m``-page
memory, a disk-based merge sort::

    passes * ( r (2 RIO + Move) + |R| log2(m) Comp )
    + 2 |R| log2(|R| m / r) Comp

where the first part is "the product of the number of merge passes and
the cost of each merge" and the second "the cost of sorting the initial
runs using quicksort" (initial runs hold ``|R|·m/r`` tuples, i.e. a
memory-load each).

**Merge-pass count.**  Read literally, the number of merge passes is
``log_m(r/m)``.  The paper's Table 2 is reproduced exactly by
``passes = max(1, floor(log_m(r/m)))`` for ``r > m`` -- every one of
the nine printed size points uses exactly one merge pass, including
|S| = |Q| = 400 where ``ceil`` would give two (the final merge is
performed on demand and its I/O is charged to the consumer, footnote
2).  ``merge_passes`` exposes both readings; the Table 2 scenario grid
uses ``mode="paper"`` and EXPERIMENTS.md documents the discrepancy.
"""

from __future__ import annotations

import math

from repro.errors import ExperimentError
from repro.costmodel.units import CostUnits, PAPER_UNITS


def quicksort_cost(tuples: int, units: CostUnits = PAPER_UNITS) -> float:
    """In-memory quicksort: ``2 n log2(n) Comp`` (0 for n <= 1)."""
    if tuples <= 1:
        return 0.0
    return 2 * tuples * math.log2(tuples) * units.comp


def merge_passes(pages: int | float, memory_pages: int, mode: str = "paper") -> float:
    """Number of merge passes for an ``pages``-page relation.

    Args:
        pages: Page cardinality of the relation (may be fractional, as
            in the paper's scenarios where 25 divisor tuples occupy 2.5
            pages).
        memory_pages: Pages of sort memory (``m``).
        mode: ``"paper"`` reproduces Table 2 (at least one pass for any
            relation larger than memory, fractions floored);
            ``"strict"`` is the textbook ``ceil(log_m(r/m))``.
    """
    if memory_pages < 2:
        raise ExperimentError("merge sort needs at least 2 memory pages")
    if pages <= memory_pages:
        return 0.0
    raw = math.log(pages / memory_pages, memory_pages)
    if mode == "paper":
        return max(1.0, float(math.floor(raw)))
    if mode == "strict":
        return float(math.ceil(raw))
    raise ExperimentError(f"unknown merge-pass mode {mode!r}")


def external_merge_sort_cost(
    tuples: int,
    pages: float,
    memory_pages: int,
    units: CostUnits = PAPER_UNITS,
    mode: str = "paper",
) -> float:
    """Disk-based merge sort cost for a relation larger than memory.

    Falls back to :func:`quicksort_cost` when the relation fits in
    memory.
    """
    if pages <= memory_pages:
        return quicksort_cost(tuples, units)
    passes = merge_passes(pages, memory_pages, mode=mode)
    per_pass = pages * (2 * units.rio + units.move) + (
        tuples * math.log2(memory_pages) * units.comp
    )
    run_tuples = tuples * memory_pages / pages
    initial_runs = 2 * tuples * math.log2(run_tuples) * units.comp
    return passes * per_pass + initial_runs
