"""Per-processor execution state for the shared-nothing simulation.

Each :class:`ProcessorNode` owns an independent
:class:`~repro.executor.iterator.ExecContext` -- its own CPU counters
and memory pool -- so local work is priced per machine and the
simulation's elapsed time is the *maximum* over processors (all local
operators run concurrently in a real machine).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.costmodel.units import CostUnits, PAPER_UNITS
from repro.executor.iterator import ExecContext
from repro.storage.config import StorageConfig


@dataclass
class ProcessorNode:
    """One shared-nothing processor: id + private execution context."""

    node_id: int
    ctx: ExecContext

    def cpu_ms(self, units: CostUnits = PAPER_UNITS) -> float:
        """Local CPU model time accumulated so far."""
        return units.cpu_cost_ms(self.ctx.cpu)

    def io_ms(self) -> float:
        """Local I/O model time accumulated so far."""
        return self.ctx.io_cost_ms()

    def busy_ms(self, units: CostUnits = PAPER_UNITS) -> float:
        """Total local model time (CPU + I/O)."""
        return self.cpu_ms(units) + self.io_ms()


@dataclass
class Cluster:
    """A set of processors plus sizing defaults."""

    processors: list[ProcessorNode] = field(default_factory=list)

    @classmethod
    def build(
        cls,
        count: int,
        config: StorageConfig | None = None,
        memory_budget_per_node: int | None = None,
    ) -> "Cluster":
        """Create ``count`` processors with fresh contexts."""
        if count <= 0:
            raise ValueError(f"processor count must be positive, got {count}")
        return cls(
            processors=[
                ProcessorNode(i, ExecContext(config, memory_budget_per_node))
                for i in range(count)
            ]
        )

    def __len__(self) -> int:
        return len(self.processors)

    def __iter__(self):
        return iter(self.processors)

    def elapsed_ms(self, units: CostUnits = PAPER_UNITS) -> float:
        """Max local time over all processors -- the parallel phase's
        wall-clock contribution."""
        return max((node.busy_ms(units) for node in self.processors), default=0.0)

    def total_cpu_ms(self, units: CostUnits = PAPER_UNITS) -> float:
        """Sum of local CPU time (the work, not the wall clock)."""
        return sum(node.cpu_ms(units) for node in self.processors)
