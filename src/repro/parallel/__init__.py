"""Shared-nothing multiprocessor hash-division (Section 6).

The paper argues -- qualitatively -- that hash-division parallelizes
well under both partitioning strategies and that bit-vector filtering
can cut network traffic for the dividend.  This package makes those
claims quantitative with a deterministic simulation:

* :mod:`repro.parallel.network` -- an interconnect cost model counting
  tuples/bytes/messages shipped,
* :mod:`repro.parallel.processor` -- per-processor execution contexts
  whose CPU meters price local work,
* :mod:`repro.parallel.partitioning` -- hash and range declustering,
* :mod:`repro.parallel.bitvector` -- Babb-style bit-vector filters,
* :mod:`repro.parallel.division` -- the parallel hash-division driver
  for both strategies (divisor replication with quotient partitioning,
  and divisor partitioning with a collection phase).

Substitution note (DESIGN.md): the paper had GAMMA in mind but ran no
multiprocessor experiment; here "elapsed time" is the maximum
per-processor model time plus interconnect model time, which exposes
exactly the effects Section 6 discusses (speedup, the collection-site
bottleneck, bit-vector savings).
"""

from repro.parallel.bitvector import BitVectorFilter
from repro.parallel.network import Interconnect, NetworkWeights
from repro.parallel.partitioning import hash_partition, range_partition
from repro.parallel.division import ParallelDivisionResult, parallel_hash_division

__all__ = [
    "BitVectorFilter",
    "Interconnect",
    "NetworkWeights",
    "hash_partition",
    "range_partition",
    "ParallelDivisionResult",
    "parallel_hash_division",
]
