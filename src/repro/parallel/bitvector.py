"""Bit-vector filters (Babb 1979), used to cut dividend network traffic.

Section 6: "The bit vector can be used to avoid shipping tuples for
which no divisor record exists ... the selection of tuples is only a
heuristic" -- a non-divisor tuple can erroneously pass when it hashes
to the same bit as a divisor value ("an agriculture course ... if it
maps to the same bit as one of the database courses"), but no matching
tuple is ever dropped.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.bitmap import Bitmap
from repro.metering import CpuCounters


class BitVectorFilter:
    """A one-hash Bloom-style filter over tuple keys.

    Args:
        bits: Filter width; more bits, fewer false positives.  The
            filter itself is what gets broadcast, so its size is the
            traffic trade-off the benchmarks sweep.
        cpu: Optional counters; insert/test charge one ``Hash`` and one
            ``Bit`` each.
    """

    def __init__(self, bits: int, cpu: CpuCounters | None = None) -> None:
        if bits <= 0:
            raise ValueError(f"bit-vector width must be positive, got {bits}")
        self.bits = bits
        self.cpu = cpu
        self._bitmap = Bitmap(bits, cpu=cpu)
        self._inserted = 0

    @classmethod
    def built_from(
        cls, keys: Iterable[tuple], bits: int, cpu: CpuCounters | None = None
    ) -> "BitVectorFilter":
        """Build a filter containing every key in ``keys``."""
        bit_vector = cls(bits, cpu=cpu)
        for key in keys:
            bit_vector.insert(key)
        return bit_vector

    @property
    def size_bytes(self) -> int:
        """Bytes shipped when the filter is broadcast."""
        return self._bitmap.size_bytes

    @property
    def fill_ratio(self) -> float:
        """Fraction of bits set -- the false-positive probability of a
        one-hash filter."""
        return self._bitmap.set_count / self.bits

    def _position(self, key: tuple) -> int:
        if self.cpu is not None:
            self.cpu.hashes += 1
        return hash(key) % self.bits

    def insert(self, key: tuple) -> None:
        """Add one key."""
        self._bitmap.set(self._position(key))
        self._inserted += 1

    def may_contain(self, key: tuple) -> bool:
        """True when ``key`` *might* have been inserted (no false
        negatives; false positives at roughly :attr:`fill_ratio`)."""
        return self._bitmap.test(self._position(key))

    def __repr__(self) -> str:
        return (
            f"<BitVectorFilter {self.bits} bits, fill {self.fill_ratio:.2%}, "
            f"{self._inserted} keys>"
        )
