"""Declustering helpers: hash and range partitioning.

Section 3.4 names "a partitioning strategy such as range-partitioning
or hash-partitioning"; both are provided.  Hash partitioning is the
workhorse (it needs no knowledge of the value distribution); range
partitioning is useful when the output must stay globally sorted.
"""

from __future__ import annotations

import bisect
from typing import Sequence

from repro.errors import PartitioningError
from repro.relalg.relation import Relation
from repro.relalg.schema import Schema
from repro.relalg.tuples import Row, projector


def hash_partition(
    rows: Sequence[Row],
    schema: Schema,
    key_names: Sequence[str],
    partitions: int,
) -> list[list[Row]]:
    """Split rows into ``partitions`` clusters by key hash.

    Deterministic for a given interpreter run; equal keys always land
    in the same cluster, which is the property both partitioning
    strategies of Section 3.4 rely on.
    """
    if partitions <= 0:
        raise PartitioningError(f"partitions must be positive, got {partitions}")
    key_of = projector(schema, key_names)
    clusters: list[list[Row]] = [[] for _ in range(partitions)]
    for row in rows:
        clusters[hash(key_of(row)) % partitions].append(row)
    return clusters


def range_partition(
    rows: Sequence[Row],
    schema: Schema,
    key_names: Sequence[str],
    boundaries: Sequence[tuple],
) -> list[list[Row]]:
    """Split rows into ``len(boundaries) + 1`` ordered clusters.

    Cluster ``i`` receives keys in ``(boundaries[i-1], boundaries[i]]``
    (first cluster: up to the first boundary; last: above the last).
    Boundaries must be strictly increasing key tuples.
    """
    bounds = list(boundaries)
    if any(bounds[i] >= bounds[i + 1] for i in range(len(bounds) - 1)):
        raise PartitioningError("range boundaries must be strictly increasing")
    key_of = projector(schema, key_names)
    clusters: list[list[Row]] = [[] for _ in range(len(bounds) + 1)]
    for row in rows:
        clusters[bisect.bisect_left(bounds, key_of(row))].append(row)
    return clusters


def round_robin(rows: Sequence[Row], partitions: int) -> list[list[Row]]:
    """Decluster rows round-robin -- the initial placement of base
    relations in the shared-nothing simulation."""
    if partitions <= 0:
        raise PartitioningError(f"partitions must be positive, got {partitions}")
    clusters: list[list[Row]] = [[] for _ in range(partitions)]
    for index, row in enumerate(rows):
        clusters[index % partitions].append(row)
    return clusters


def partition_relation(
    relation: Relation, key_names: Sequence[str], partitions: int
) -> list[Relation]:
    """Hash-partition a relation into sub-relations (shares the schema)."""
    clusters = hash_partition(relation.rows, relation.schema, key_names, partitions)
    return [
        Relation(relation.schema, cluster, name=f"{relation.name}[{i}]")
        for i, cluster in enumerate(clusters)
    ]
