"""Parallel hash-division on a simulated shared-nothing machine (Section 6).

Both adaptations from the paper are implemented:

* ``strategy="quotient"`` -- quotient partitioning: "the divisor table
  must be replicated in the main memory of all participating
  processors.  After replication, all local hash-division operators
  work completely independently of each other."  The dividend is
  repartitioned on the quotient attributes and each node's quotient is
  final -- no collection phase.

* ``strategy="divisor"`` -- divisor partitioning: both inputs are
  repartitioned on the divisor attributes; each node divides its
  cluster, tags its quotient tuples with its phase number, and ships
  them to a collection site that "divides the set of all incoming
  tuples over the set of processor network addresses" -- implemented,
  as the paper notes, with hash-division itself.

* ``bit_vector_bits=n`` -- Babb-style filtering: before shipping a
  dividend tuple, the sender probes a bit vector built from the
  divisor; tuples that cannot match any divisor tuple are never
  shipped.  False positives travel anyway (harmless); true matches are
  never dropped.

Base relations start round-robin-declustered across the processors (the
GAMMA default).  Execution is simulated: local phases run one node at a
time in this process, but each node meters into its own context, so
elapsed time is ``max`` over nodes plus interconnect time at the
busiest receiver.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PartitioningError
from repro.core.hash_division import HashDivision
from repro.costmodel.units import CostUnits, PAPER_UNITS
from repro.executor.iterator import ExecContext, run_to_relation
from repro.executor.scan import RelationSource
from repro.parallel.bitvector import BitVectorFilter
from repro.parallel.network import Interconnect, NetworkWeights
from repro.parallel.partitioning import round_robin
from repro.parallel.processor import Cluster
from repro.relalg.algebra import division_attribute_split
from repro.relalg.relation import Relation
from repro.relalg.schema import Attribute, Schema
from repro.relalg.tuples import projector

PHASE_COLUMN = "__phase__"


@dataclass
class ParallelDivisionResult:
    """Outcome and accounting of one parallel division run."""

    quotient: Relation
    strategy: str
    processors: int
    local_ms: list[float]
    coordinator_ms: float
    network: Interconnect
    dividend_tuples_shipped: int
    dividend_tuples_filtered: int
    detail: dict = field(default_factory=dict)

    @property
    def elapsed_ms(self) -> float:
        """Simulated wall clock: slowest node + busiest inbound link +
        coordinator work."""
        slowest = max(self.local_ms, default=0.0)
        return slowest + self.network.busiest_receiver_ms() + self.coordinator_ms

    @property
    def total_work_ms(self) -> float:
        """Sum of all node work (the resource cost, not the latency)."""
        return sum(self.local_ms) + self.coordinator_ms

    def __repr__(self) -> str:
        return (
            f"<ParallelDivisionResult {self.strategy} x{self.processors}: "
            f"{len(self.quotient)} tuples, {self.elapsed_ms:.1f} ms elapsed>"
        )


def parallel_hash_division(
    dividend: Relation,
    divisor: Relation,
    processors: int,
    strategy: str = "quotient",
    bit_vector_bits: int | None = None,
    memory_budget_per_node: int | None = None,
    network_weights: NetworkWeights | None = None,
    units: CostUnits = PAPER_UNITS,
    name: str = "quotient",
    collection: str = "central",
    injector=None,
) -> ParallelDivisionResult:
    """Divide on a simulated shared-nothing machine.

    Args:
        dividend, divisor: The inputs (declustered round-robin first).
        processors: Number of shared-nothing nodes.
        strategy: ``"quotient"`` or ``"divisor"`` (see module docs).
        bit_vector_bits: Enable sender-side bit-vector filtering of the
            dividend with a filter of this many bits.
        memory_budget_per_node: Per-node memory pool budget; lets tests
            demonstrate that partitioning fits divisions whose tables
            overflow a single node.
        network_weights: Interconnect pricing.
        units: CPU unit costs for pricing local work.
        collection: For ``strategy="divisor"``: ``"central"`` ships all
            tagged quotient clusters to one collection site;
            ``"decentralized"`` repartitions them on the quotient
            attributes so every node runs a share of the collection
            division -- the paper's answer "in the unlikely case that
            the central collection site becomes a bottleneck" (§6).
        injector: Optional :class:`repro.faults.injector.FaultInjector`
            attached to the interconnect: batches may be dropped
            (retransmitted by the sender) or duplicated (delivered
            twice; the receivers are idempotent, so the quotient is
            unchanged).
    """
    if strategy not in ("quotient", "divisor"):
        raise PartitioningError(f"unknown parallel strategy {strategy!r}")
    if collection not in ("central", "decentralized"):
        raise PartitioningError(f"unknown collection mode {collection!r}")
    if processors <= 0:
        raise PartitioningError(f"processors must be positive, got {processors}")
    quotient_names, divisor_names = division_attribute_split(dividend, divisor)
    cluster = Cluster.build(processors, memory_budget_per_node=memory_budget_per_node)
    network = Interconnect(network_weights, injector=injector)
    dividend_fragments = round_robin(dividend.rows, processors)
    divisor_fragments = round_robin(divisor.rows, processors)
    runner = _QuotientStrategy if strategy == "quotient" else _DivisorStrategy
    return runner(
        dividend,
        divisor,
        quotient_names,
        divisor_names,
        cluster,
        network,
        dividend_fragments,
        divisor_fragments,
        bit_vector_bits,
        units,
        name,
        collection,
    ).run()


class _StrategyBase:
    """Shared plumbing for the two parallel strategies."""

    def __init__(
        self,
        dividend: Relation,
        divisor: Relation,
        quotient_names: tuple[str, ...],
        divisor_names: tuple[str, ...],
        cluster: Cluster,
        network: Interconnect,
        dividend_fragments: list[list[tuple]],
        divisor_fragments: list[list[tuple]],
        bit_vector_bits: int | None,
        units: CostUnits,
        name: str,
        collection: str = "central",
    ) -> None:
        self.dividend = dividend
        self.divisor = divisor
        self.quotient_names = quotient_names
        self.divisor_names = divisor_names
        self.cluster = cluster
        self.network = network
        self.dividend_fragments = dividend_fragments
        self.divisor_fragments = divisor_fragments
        self.bit_vector_bits = bit_vector_bits
        self.units = units
        self.name = name
        self.collection = collection
        self.processors = len(cluster)
        self.divisor_key_of = projector(dividend.schema, divisor_names)
        self.shipped = 0
        self.filtered = 0
        self.detail: dict = {}

    def make_filter(self, keys, node_ctx: ExecContext) -> BitVectorFilter | None:
        if self.bit_vector_bits is None:
            return None
        if not len(self.divisor):
            # A filter over an empty divisor would drop every dividend
            # tuple, but an empty divisor means the division is vacuous
            # and every candidate qualifies -- so do not filter at all.
            return None
        return BitVectorFilter.built_from(
            keys, self.bit_vector_bits, cpu=node_ctx.cpu
        )

    def ship_dividend(
        self,
        destination_of,
        bit_vector: BitVectorFilter | None,
        filter_cpu_nodes: list[ExecContext],
    ) -> list[list[tuple]]:
        """Repartition dividend fragments, applying the filter at the
        sender; returns per-destination clusters.

        Remote rows travel as per-destination batches through
        :meth:`~repro.parallel.network.Interconnect.send`; a duplicated
        batch lands in its destination cluster twice (the local
        hash-division is idempotent under dividend duplicates -- same
        bit, set twice), a dropped batch is retransmitted by the
        interconnect before this method sees it.
        """
        tuple_bytes = self.dividend.schema.record_size
        clusters: list[list[tuple]] = [[] for _ in range(self.processors)]
        for origin, fragment in enumerate(self.dividend_fragments):
            sender_cpu = filter_cpu_nodes[origin]
            batches: dict[int, list[tuple]] = {}
            for row in fragment:
                sender_cpu.cpu.hashes += 1  # partitioning hash
                if bit_vector is not None:
                    sender_cpu.cpu.hashes += 1
                    sender_cpu.cpu.bit_ops += 1
                    if not bit_vector.may_contain(self.divisor_key_of(row)):
                        self.filtered += 1
                        continue
                destination = destination_of(row)
                if destination == origin:
                    clusters[origin].append(row)
                else:
                    batches.setdefault(destination, []).append(row)
            for destination, batch in batches.items():
                copies = self.network.send(origin, destination, len(batch), tuple_bytes)
                self.shipped += len(batch)
                for _ in range(copies):
                    clusters[destination].extend(batch)
        return clusters

    def finish(self, quotient: Relation, coordinator_ms: float) -> ParallelDivisionResult:
        return ParallelDivisionResult(
            quotient=quotient,
            strategy=self.strategy_name,
            processors=self.processors,
            local_ms=[node.busy_ms(self.units) for node in self.cluster],
            coordinator_ms=coordinator_ms,
            network=self.network,
            dividend_tuples_shipped=self.shipped,
            dividend_tuples_filtered=self.filtered,
            detail=self.detail,
        )

    strategy_name = "base"


class _QuotientStrategy(_StrategyBase):
    """Divisor replication + quotient partitioning of the dividend."""

    strategy_name = "quotient"

    def run(self) -> ParallelDivisionResult:
        divisor_bytes = self.divisor.schema.record_size
        # Replicate the divisor: every fragment goes to every other node.
        # A duplicated batch appends its fragment a second time at that
        # node; the divisor table eliminates duplicates while building
        # (Section 3.3), so replication stays exactly-once in effect.
        extra_rows: list[list[tuple]] = [[] for _ in range(self.processors)]
        for origin, fragment in enumerate(self.divisor_fragments):
            for destination in range(self.processors):
                copies = self.network.send(
                    origin, destination, len(fragment), divisor_bytes
                )
                if copies > 1 and fragment:
                    extra_rows[destination].extend(fragment * (copies - 1))
        full_divisor = Relation(self.divisor.schema, self.divisor.rows, name="divisor")
        node_divisors = [
            full_divisor
            if not extra
            else Relation(
                self.divisor.schema,
                list(self.divisor.rows) + extra,
                name="divisor",
            )
            for extra in extra_rows
        ]
        # Senders own a bit vector built from the (replicated) divisor.
        nodes = list(self.cluster)
        bit_vector = self.make_filter(
            (tuple(row) for row in full_divisor), nodes[0].ctx
        )
        if bit_vector is not None:
            # Building is charged to node 0 above; the broadcast of the
            # vector itself crosses the network once per other node.
            for destination in range(1, self.processors):
                self.network.send(0, destination, 1, bit_vector.size_bytes)
        quotient_of = projector(self.dividend.schema, self.quotient_names)
        destination_of = lambda row: hash(quotient_of(row)) % self.processors
        clusters = self.ship_dividend(
            destination_of, bit_vector, [node.ctx for node in nodes]
        )
        quotient = Relation(self.dividend.schema.project(self.quotient_names), name=self.name)
        for node, cluster_rows, node_divisor in zip(nodes, clusters, node_divisors):
            local = HashDivision(
                RelationSource(node.ctx, Relation(self.dividend.schema, cluster_rows)),
                RelationSource(node.ctx, node_divisor),
                expected_divisor=len(full_divisor),
            )
            quotient.extend(run_to_relation(local))
        self.detail["divisor_replicas"] = self.processors
        return self.finish(quotient, coordinator_ms=0.0)


class _DivisorStrategy(_StrategyBase):
    """Divisor partitioning + tagged collection phase."""

    strategy_name = "divisor"

    def run(self) -> ParallelDivisionResult:
        nodes = list(self.cluster)
        divisor_bytes = self.divisor.schema.record_size
        # Repartition the divisor on its own attributes.  Duplicated
        # batches append twice; the divisor table deduplicates.
        divisor_clusters: list[list[tuple]] = [[] for _ in range(self.processors)]
        for origin, fragment in enumerate(self.divisor_fragments):
            batches: dict[int, list[tuple]] = {}
            for row in fragment:
                nodes[origin].ctx.cpu.hashes += 1
                destination = hash(tuple(row)) % self.processors
                if destination == origin:
                    divisor_clusters[origin].append(row)
                else:
                    batches.setdefault(destination, []).append(row)
            for destination, batch in batches.items():
                copies = self.network.send(origin, destination, len(batch), divisor_bytes)
                for _ in range(copies):
                    divisor_clusters[destination].extend(batch)
        if not any(divisor_clusters):
            # Vacuous division: run locally on node 0.
            ctx = nodes[0].ctx
            local = HashDivision(
                RelationSource(ctx, self.dividend),
                RelationSource(ctx, Relation(self.divisor.schema)),
            )
            return self.finish(run_to_relation(local, name=self.name), 0.0)
        bit_vector = self.make_filter(
            (tuple(row) for row in self.divisor.rows), nodes[0].ctx
        )
        if bit_vector is not None:
            for destination in range(1, self.processors):
                self.network.send(0, destination, 1, bit_vector.size_bytes)
        destination_of = lambda row: hash(self.divisor_key_of(row)) % self.processors
        dividend_clusters = self.ship_dividend(
            destination_of, bit_vector, [node.ctx for node in nodes]
        )
        # Local divisions; quotient tuples are tagged with their phase
        # number.  Per-node tagged outputs are kept separate so the
        # collection phase can be central (all to node 0) or
        # decentralized (repartitioned on the quotient attributes).
        quotient_schema = self.dividend.schema.project(self.quotient_names)
        tagged_schema = Schema(tuple(quotient_schema) + (Attribute(PHASE_COLUMN),))
        tagged_per_node: list[list[tuple]] = [[] for _ in range(self.processors)]
        phase = 0
        for node_index, node in enumerate(nodes):
            if not divisor_clusters[node_index]:
                # No divisor values here: any routed dividend tuples
                # match nothing and are discarded without a phase.
                continue
            local = HashDivision(
                RelationSource(
                    node.ctx,
                    Relation(self.dividend.schema, dividend_clusters[node_index]),
                ),
                RelationSource(
                    node.ctx,
                    Relation(self.divisor.schema, divisor_clusters[node_index]),
                ),
                expected_divisor=len(divisor_clusters[node_index]),
            )
            phase_quotient = run_to_relation(local)
            tagged_per_node[node_index] = [
                row + (phase,) for row in phase_quotient
            ]
            phase += 1
        phases = Relation.of_ints((PHASE_COLUMN,), [(i,) for i in range(phase)])
        self.detail["phases"] = phase
        self.detail["collection_input_tuples"] = sum(
            len(tagged) for tagged in tagged_per_node
        )
        if self.collection == "central":
            quotient, coordinator_ms = self._central_collection(
                tagged_per_node, tagged_schema, phases
            )
        else:
            quotient, coordinator_ms = self._decentralized_collection(
                nodes, tagged_per_node, tagged_schema, phases
            )
        return self.finish(quotient, coordinator_ms)

    def _central_collection(self, tagged_per_node, tagged_schema, phases):
        """Ship every tagged cluster to node 0 and divide there."""
        collection_site = 0
        tagged_rows: list[tuple] = []
        for origin, tagged in enumerate(tagged_per_node):
            copies = self.network.send(
                origin, collection_site, len(tagged), tagged_schema.record_size
            )
            for _ in range(copies):
                tagged_rows.extend(tagged)
        coordinator_ctx = ExecContext()
        collection = HashDivision(
            RelationSource(coordinator_ctx, Relation(tagged_schema, tagged_rows)),
            RelationSource(coordinator_ctx, phases),
            expected_divisor=len(phases),
        )
        quotient = run_to_relation(collection, name=self.name)
        return quotient, self.units.cpu_cost_ms(coordinator_ctx.cpu)

    def _decentralized_collection(self, nodes, tagged_per_node, tagged_schema, phases):
        """Repartition tagged clusters on the quotient attributes and
        run the collection division on every node ("it is possible to
        decentralize the collection step using quotient partitioning").
        """
        tagged_quotient_of = projector(tagged_schema, self.quotient_names)
        shares: list[list[tuple]] = [[] for _ in range(self.processors)]
        for origin, tagged in enumerate(tagged_per_node):
            batches: dict[int, list[tuple]] = {}
            for row in tagged:
                nodes[origin].ctx.cpu.hashes += 1
                destination = hash(tagged_quotient_of(row)) % self.processors
                if destination == origin:
                    shares[origin].append(row)
                else:
                    batches.setdefault(destination, []).append(row)
            for destination, batch in batches.items():
                copies = self.network.send(
                    origin, destination, len(batch), tagged_schema.record_size
                )
                for _ in range(copies):
                    shares[destination].extend(batch)
        quotient = Relation(
            self.dividend.schema.project(self.quotient_names), name=self.name
        )
        for node, share in zip(nodes, shares):
            collection = HashDivision(
                RelationSource(node.ctx, Relation(tagged_schema, share)),
                RelationSource(node.ctx, phases),
                expected_divisor=len(phases),
            )
            quotient.extend(run_to_relation(collection))
        return quotient, 0.0
