"""Interconnect cost model for the shared-nothing simulation.

"Network activity can become a bottleneck in a shared-nothing database
machine" (Section 6).  The model here is deliberately simple and
deterministic: tuples travel in page-sized batches, and the network
charges per batch (message overhead) and per kilobyte (bandwidth).
Default weights make shipping a page across the interconnect cost
about half as much as reading it from disk -- the regime GAMMA
operated in, where repartitioning a large relation twice (the
with-join case) visibly "increas[es] the cost significantly".

Faults
------

An optional :class:`repro.faults.injector.FaultInjector` extends the
model with lossy links: a batch send may be **dropped** (the sender
retransmits, paying wire cost for every attempt, up to
:attr:`Interconnect.max_attempts` before a typed
:class:`~repro.errors.NetworkFaultError`) or **duplicated** (delivered
-- and charged -- twice).  :meth:`Interconnect.send` returns the number
of copies delivered so callers can model at-least-once delivery; the
parallel division strategies stay *exactly-once at the result level*
because their receivers are idempotent (bit maps set the same bit
twice, divisor tables discard duplicate rows).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import NetworkFaultError


@dataclass(frozen=True)
class NetworkWeights:
    """Milliseconds charged per interconnect event."""

    ms_per_message: float = 2.0
    ms_per_kib: float = 0.5
    batch_bytes: int = 8192


@dataclass
class LinkCounters:
    """Raw traffic counters for one (sender -> receiver) link."""

    tuples: int = 0
    bytes: int = 0


@dataclass
class NetworkFaultCounters:
    """Injected-fault and defense counters for one interconnect."""

    drops: int = 0
    retransmits: int = 0
    duplicates: int = 0

    def to_dict(self) -> dict:
        return {
            "drops": self.drops,
            "retransmits": self.retransmits,
            "duplicates": self.duplicates,
        }


class Interconnect:
    """Traffic accounting between numbered processors.

    ``-1`` denotes the coordinator / collection site.  The model does
    not simulate contention; :meth:`cost_ms` prices total traffic, and
    :meth:`busiest_receiver_ms` prices the hottest inbound link set,
    which is how the collection-site bottleneck of Section 6 shows up.
    """

    def __init__(
        self,
        weights: NetworkWeights | None = None,
        injector=None,
        max_attempts: int = 4,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.weights = weights or NetworkWeights()
        self.injector = injector
        self.max_attempts = max_attempts
        self.fault_counters = NetworkFaultCounters()
        self._links: dict[tuple[int, int], LinkCounters] = {}

    def send(self, sender: int, receiver: int, tuples: int, tuple_bytes: int) -> int:
        """Record ``tuples`` records of ``tuple_bytes`` each on a link.

        Local delivery (sender == receiver) is free: shared-nothing
        repartitioning only pays for tuples that change machines.

        Returns the number of *copies delivered* to the receiver: ``1``
        normally, ``2`` when the injector duplicates the batch.  A
        dropped batch is retransmitted (each attempt pays full wire
        cost) up to :attr:`max_attempts` times before
        :class:`~repro.errors.NetworkFaultError` is raised.

        Raises:
            ValueError: if ``tuples`` or ``tuple_bytes`` is negative.
            NetworkFaultError: when the retransmission budget is
                exhausted against injected drops.
        """
        if tuples < 0:
            raise ValueError(f"tuples must be >= 0, got {tuples}")
        if tuple_bytes < 0:
            raise ValueError(f"tuple_bytes must be >= 0, got {tuple_bytes}")
        if sender == receiver or tuples == 0:
            return 1
        if self.injector is None:
            self._charge(sender, receiver, tuples, tuple_bytes)
            return 1
        attempts = 0
        while True:
            attempts += 1
            verdict = self.injector.on_network_send(sender, receiver)
            # The bytes hit the wire whether or not the batch arrives.
            self._charge(sender, receiver, tuples, tuple_bytes)
            if verdict is None:
                return 1
            if verdict == "duplicate":
                self.fault_counters.duplicates += 1
                self._charge(sender, receiver, tuples, tuple_bytes)
                return 2
            # verdict == "drop"
            self.fault_counters.drops += 1
            if attempts >= self.max_attempts:
                raise NetworkFaultError(
                    f"batch from node {sender} to node {receiver} dropped "
                    f"{attempts} times; retransmission budget "
                    f"({self.max_attempts} attempts) exhausted"
                )
            self.fault_counters.retransmits += 1

    def _charge(self, sender: int, receiver: int, tuples: int, tuple_bytes: int) -> None:
        link = self._links.setdefault((sender, receiver), LinkCounters())
        link.tuples += tuples
        link.bytes += tuples * tuple_bytes

    # -- accounting -----------------------------------------------------

    @property
    def total_tuples(self) -> int:
        """Tuples that crossed the interconnect."""
        return sum(link.tuples for link in self._links.values())

    @property
    def total_bytes(self) -> int:
        """Bytes that crossed the interconnect."""
        return sum(link.bytes for link in self._links.values())

    def _price(self, total_bytes: int) -> float:
        w = self.weights
        messages = -(-total_bytes // w.batch_bytes) if total_bytes else 0
        return messages * w.ms_per_message + (total_bytes / 1024) * w.ms_per_kib

    def cost_ms(self) -> float:
        """Model time for all traffic (links transfer in parallel is
        ignored here; use :meth:`busiest_receiver_ms` for the
        bottleneck view)."""
        return self._price(self.total_bytes)

    def busiest_receiver_ms(self) -> float:
        """Inbound traffic cost at the hottest receiver.

        With per-link parallelism, a phase cannot finish before its
        most loaded receiver has drained its inbound traffic; a central
        collection site shows up here long before it dominates
        :meth:`cost_ms`.
        """
        inbound: dict[int, int] = {}
        for (_sender, receiver), link in self._links.items():
            inbound[receiver] = inbound.get(receiver, 0) + link.bytes
        if not inbound:
            return 0.0
        return max(self._price(total) for total in inbound.values())

    def receiver_bytes(self) -> dict[int, int]:
        """Inbound bytes per receiver (diagnostics)."""
        inbound: dict[int, int] = {}
        for (_sender, receiver), link in self._links.items():
            inbound[receiver] = inbound.get(receiver, 0) + link.bytes
        return inbound
