"""Interconnect cost model for the shared-nothing simulation.

"Network activity can become a bottleneck in a shared-nothing database
machine" (Section 6).  The model here is deliberately simple and
deterministic: tuples travel in page-sized batches, and the network
charges per batch (message overhead) and per kilobyte (bandwidth).
Default weights make shipping a page across the interconnect cost
about half as much as reading it from disk -- the regime GAMMA
operated in, where repartitioning a large relation twice (the
with-join case) visibly "increas[es] the cost significantly".
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class NetworkWeights:
    """Milliseconds charged per interconnect event."""

    ms_per_message: float = 2.0
    ms_per_kib: float = 0.5
    batch_bytes: int = 8192


@dataclass
class LinkCounters:
    """Raw traffic counters for one (sender -> receiver) link."""

    tuples: int = 0
    bytes: int = 0


class Interconnect:
    """Traffic accounting between numbered processors.

    ``-1`` denotes the coordinator / collection site.  The model does
    not simulate contention; :meth:`cost_ms` prices total traffic, and
    :meth:`busiest_receiver_ms` prices the hottest inbound link set,
    which is how the collection-site bottleneck of Section 6 shows up.
    """

    def __init__(self, weights: NetworkWeights | None = None) -> None:
        self.weights = weights or NetworkWeights()
        self._links: dict[tuple[int, int], LinkCounters] = {}

    def send(self, sender: int, receiver: int, tuples: int, tuple_bytes: int) -> None:
        """Record ``tuples`` records of ``tuple_bytes`` each on a link.

        Local delivery (sender == receiver) is free: shared-nothing
        repartitioning only pays for tuples that change machines.
        """
        if sender == receiver or tuples <= 0:
            return
        link = self._links.setdefault((sender, receiver), LinkCounters())
        link.tuples += tuples
        link.bytes += tuples * tuple_bytes

    # -- accounting -----------------------------------------------------

    @property
    def total_tuples(self) -> int:
        """Tuples that crossed the interconnect."""
        return sum(link.tuples for link in self._links.values())

    @property
    def total_bytes(self) -> int:
        """Bytes that crossed the interconnect."""
        return sum(link.bytes for link in self._links.values())

    def _price(self, total_bytes: int) -> float:
        w = self.weights
        messages = -(-total_bytes // w.batch_bytes) if total_bytes else 0
        return messages * w.ms_per_message + (total_bytes / 1024) * w.ms_per_kib

    def cost_ms(self) -> float:
        """Model time for all traffic (links transfer in parallel is
        ignored here; use :meth:`busiest_receiver_ms` for the
        bottleneck view)."""
        return self._price(self.total_bytes)

    def busiest_receiver_ms(self) -> float:
        """Inbound traffic cost at the hottest receiver.

        With per-link parallelism, a phase cannot finish before its
        most loaded receiver has drained its inbound traffic; a central
        collection site shows up here long before it dominates
        :meth:`cost_ms`.
        """
        inbound: dict[int, int] = {}
        for (_sender, receiver), link in self._links.items():
            inbound[receiver] = inbound.get(receiver, 0) + link.bytes
        if not inbound:
            return 0.0
        return max(self._price(total) for total in inbound.values())

    def receiver_bytes(self) -> dict[int, int]:
        """Inbound bytes per receiver (diagnostics)."""
        inbound: dict[int, int] = {}
        for (_sender, receiver), link in self._links.items():
            inbound[receiver] = inbound.get(receiver, 0) + link.bytes
        return inbound
