"""CPU-operation metering shared by the executor and the division algorithms.

The paper compares algorithms in abstract cost units (Table 1): tuple
comparisons (``Comp``), hash-value computations (``Hash``), page-sized
memory moves (``Move``), and bit-map operations (``Bit``).  The original
implementation measured CPU time with ``getrusage``; a Python
reproduction cannot meaningfully compare interpreter milliseconds with
MicroVAX milliseconds, so instead every operator in this library counts
the same abstract operations the paper's cost model is written in.

:class:`CpuCounters` is the mutable accumulator threaded through query
execution (as part of :class:`repro.executor.iterator.ExecContext`).
Weighting the counters with :class:`repro.costmodel.units.CostUnits`
converts them to the paper's model-milliseconds, which is what the
Table 4 reproduction reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CpuCounters:
    """Counts of the abstract CPU operations of the paper's Table 1.

    Attributes:
        comparisons: Tuple (or key) comparisons performed (``Comp``).
        hashes: Hash values computed from tuples (``Hash``).
        moves: Page-sized memory-to-memory copies (``Move``).  Operators
            that copy individual tuples convert to page equivalents via
            :meth:`add_tuple_moves`.
        bit_ops: Bit-map operations -- setting, clearing, or testing a
            bit, and word-at-a-time scan steps (``Bit``).
    """

    comparisons: int = 0
    hashes: int = 0
    moves: float = 0.0
    bit_ops: int = 0

    def add_tuple_moves(self, tuple_count: int, tuple_bytes: int, page_bytes: int) -> None:
        """Record tuple copies as fractional page-sized moves.

        The paper's ``Move`` unit is a *page* copy; an algorithm that
        copies ``tuple_count`` records of ``tuple_bytes`` bytes each has
        moved ``tuple_count * tuple_bytes / page_bytes`` pages' worth of
        memory.
        """
        if page_bytes <= 0:
            raise ValueError("page_bytes must be positive")
        self.moves += (tuple_count * tuple_bytes) / page_bytes

    def merge(self, other: "CpuCounters") -> None:
        """Accumulate another counter set into this one (in place)."""
        self.comparisons += other.comparisons
        self.hashes += other.hashes
        self.moves += other.moves
        self.bit_ops += other.bit_ops

    def snapshot(self) -> "CpuCounters":
        """Return an independent copy of the current counts."""
        return CpuCounters(self.comparisons, self.hashes, self.moves, self.bit_ops)

    def delta_since(self, earlier: "CpuCounters") -> "CpuCounters":
        """Return the operations performed since ``earlier`` was taken."""
        return CpuCounters(
            comparisons=self.comparisons - earlier.comparisons,
            hashes=self.hashes - earlier.hashes,
            moves=self.moves - earlier.moves,
            bit_ops=self.bit_ops - earlier.bit_ops,
        )

    def reset(self) -> None:
        """Zero every counter."""
        self.comparisons = 0
        self.hashes = 0
        self.moves = 0.0
        self.bit_ops = 0


@dataclass
class MeterReading:
    """An immutable (cpu, io) cost reading in model milliseconds.

    Produced by the experiment harness after weighting
    :class:`CpuCounters` and :class:`repro.storage.stats.IoStatistics`
    with the paper's unit costs.
    """

    cpu_ms: float = 0.0
    io_ms: float = 0.0
    detail: dict = field(default_factory=dict)

    @property
    def total_ms(self) -> float:
        """Combined CPU + I/O model time, the paper's reporting metric."""
        return self.cpu_ms + self.io_ms

    def __add__(self, other: "MeterReading") -> "MeterReading":
        merged = dict(self.detail)
        for key, value in other.detail.items():
            merged[key] = merged.get(key, 0.0) + value
        return MeterReading(self.cpu_ms + other.cpu_ms, self.io_ms + other.io_ms, merged)
