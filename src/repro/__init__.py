"""repro -- relational division: four algorithms and their performance.

A production-quality Python reproduction of Goetz Graefe's paper
*Relational Division: Four Algorithms and Their Performance* (Oregon
Graduate Center TR CS/E 88-022, January 1988; ICDE 1989), including:

* the four division algorithms -- naive sort-based division, division
  by sort-based counting, division by hash-based counting, and the
  paper's new **hash-division** -- plus the classical algebraic
  identity as an oracle,
* the substrate they ran on: a simulated record-oriented file system
  (pages, extents, buffer manager, B+-trees) with the paper's I/O cost
  accounting,
* the analytical cost model (Table 1/Table 2) and the experiment
  harness regenerating every table of the paper,
* hash-table overflow handling (quotient/divisor partitioning) and the
  shared-nothing multi-processor adaptation with bit-vector filtering.

Quick start::

    from repro import Relation, divide

    transcript = Relation.of_ints(
        ("student_id", "course_no"),
        [(1, 10), (1, 11), (2, 10), (2, 12)],
        name="transcript",
    )
    courses = Relation.of_ints(("course_no",), [(10,), (11,)], name="courses")
    quotient = divide(transcript, courses)       # hash-division
    assert quotient.rows == [(1,)]               # student 1 took all courses
"""

from repro.errors import (
    DivisionError,
    HashTableOverflowError,
    ReproError,
    SchemaError,
)
from repro.metering import CpuCounters, MeterReading
from repro.relalg import (
    Attribute,
    DataType,
    Predicate,
    Relation,
    Schema,
    algebra,
)
from repro.core import (
    ALGORITHMS,
    Bitmap,
    HashDivision,
    NaiveDivision,
    algebraic_division,
    combined_partitioned_division,
    divide,
    divide_with_advisor,
    divisor_partitioned_division,
    hash_aggregate_division,
    hash_division,
    hash_division_with_overflow,
    naive_division,
    quotient_partitioned_division,
    sort_aggregate_division,
)
from repro.executor.iterator import ExecContext, run_to_relation
from repro.obs import (
    FakeClock,
    MetricsRegistry,
    QueryProfile,
    Tracer,
    build_profile,
)
from repro.query import ContainsQuery, ProfiledResult, Query
from repro.storage import StorageConfig

__version__ = "1.1.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "SchemaError",
    "DivisionError",
    "HashTableOverflowError",
    # model
    "Attribute",
    "DataType",
    "Schema",
    "Relation",
    "Predicate",
    "algebra",
    # algorithms
    "divide",
    "divide_with_advisor",
    "ALGORITHMS",
    "hash_division",
    "HashDivision",
    "naive_division",
    "NaiveDivision",
    "sort_aggregate_division",
    "hash_aggregate_division",
    "algebraic_division",
    "quotient_partitioned_division",
    "divisor_partitioned_division",
    "combined_partitioned_division",
    "hash_division_with_overflow",
    "Bitmap",
    # execution & metering
    "Query",
    "ContainsQuery",
    "ExecContext",
    "run_to_relation",
    "StorageConfig",
    "CpuCounters",
    "MeterReading",
    # observability (repro.obs)
    "Tracer",
    "FakeClock",
    "MetricsRegistry",
    "QueryProfile",
    "ProfiledResult",
    "build_profile",
]
