"""A metrics registry: counters, gauges, fixed-bucket histograms.

Metric naming convention (see DESIGN.md): Prometheus style --
``repro_<area>_<noun>`` with ``_total`` for counters and a unit suffix
(``_ms``, ``_bytes``, ``_ratio``) for gauges and histograms; labels are
lowercase ``snake_case``.

The registry also knows how to *absorb* the reproduction's existing
meters -- :class:`repro.metering.CpuCounters` (Table 1 operation
counts), :class:`repro.storage.buffer.BufferPoolStats`, and
:class:`repro.storage.stats.IoStatistics` (Table 3 device counters) --
so one call turns a run's raw accumulators into a uniform, exportable
metric set.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Tuple

from repro.errors import ReproError


class MetricsError(ReproError):
    """Misuse of the metrics registry (name/kind conflicts, bad input)."""


LabelItems = Tuple[Tuple[str, str], ...]


def _label_items(labels: dict) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclass
class Counter:
    """A monotonically increasing count."""

    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0)."""
        if amount < 0:
            raise MetricsError("counters only go up; use a gauge instead")
        self.value += amount


@dataclass
class Gauge:
    """A value that can go up and down (last write wins)."""

    value: float = 0.0

    def set(self, value: float) -> None:
        """Overwrite the reading."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the reading upward."""
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Adjust the reading downward."""
        self.value -= amount


#: Default histogram bucket upper bounds, in model milliseconds --
#: chosen to straddle the paper's Table 2/Table 4 range (sub-ms unit
#: costs up to the ~450,000 ms naive run at |S| = |Q| = 400).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.01, 0.1, 1.0, 10.0, 100.0, 1_000.0, 10_000.0, 100_000.0, 1_000_000.0,
)


class Histogram:
    """Fixed-boundary histogram (cumulative buckets, Prometheus-style).

    Args:
        boundaries: Strictly increasing bucket upper bounds; an
            implicit ``+Inf`` bucket always exists.
    """

    def __init__(self, boundaries: Iterable[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in boundaries)
        if not bounds:
            raise MetricsError("a histogram needs at least one bucket boundary")
        if any(b >= a for b, a in zip(bounds, bounds[1:])):
            raise MetricsError("bucket boundaries must be strictly increasing")
        self.boundaries = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot = +Inf
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self._counts[bisect.bisect_left(self.boundaries, value)] += 1
        self.count += 1
        self.sum += value

    def buckets(self) -> Iterator[tuple[float, int]]:
        """Yield ``(upper_bound, cumulative_count)``; ends with +Inf."""
        running = 0
        for bound, count in zip(self.boundaries, self._counts):
            running += count
            yield bound, running
        yield float("inf"), running + self._counts[-1]


@dataclass(frozen=True)
class MetricSample:
    """One collected metric: name, kind, labels, and the live object."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    labels: LabelItems
    metric: object = field(compare=False)

    @property
    def label_dict(self) -> dict:
        return dict(self.labels)


class MetricsRegistry:
    """Registry of named, labelled counters/gauges/histograms.

    A metric family (one name) has exactly one kind; asking for the
    same name with a different kind raises :class:`MetricsError`, which
    keeps exports coherent.
    """

    def __init__(self) -> None:
        self._kinds: dict[str, str] = {}
        self._metrics: dict[tuple[str, LabelItems], object] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> list[str]:
        """Sorted metric family names."""
        return sorted(self._kinds)

    def _get(self, name: str, kind: str, labels: dict, factory):
        known = self._kinds.get(name)
        if known is None:
            self._kinds[name] = kind
        elif known != kind:
            raise MetricsError(
                f"metric {name!r} is a {known}, not a {kind}"
            )
        key = (name, _label_items(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = factory()
        return metric

    def counter(self, name: str, **labels) -> Counter:
        """The counter ``name`` with ``labels`` (created on first use)."""
        return self._get(name, "counter", labels, Counter)

    def gauge(self, name: str, **labels) -> Gauge:
        """The gauge ``name`` with ``labels`` (created on first use)."""
        return self._get(name, "gauge", labels, Gauge)

    def histogram(
        self, name: str, boundaries: Iterable[float] = DEFAULT_BUCKETS, **labels
    ) -> Histogram:
        """The histogram ``name``; ``boundaries`` apply on first use."""
        return self._get(name, "histogram", labels, lambda: Histogram(boundaries))

    def collect(self) -> Iterator[MetricSample]:
        """Every metric, sorted by (name, labels) for stable exports."""
        for (name, labels), metric in sorted(
            self._metrics.items(), key=lambda item: item[0]
        ):
            yield MetricSample(name, self._kinds[name], labels, metric)

    def value(self, name: str, **labels) -> float:
        """Scalar value of an existing counter/gauge (KeyError if absent)."""
        metric = self._metrics[(name, _label_items(labels))]
        if isinstance(metric, Histogram):
            raise MetricsError(f"metric {name!r} is a histogram; read .buckets()")
        return metric.value  # type: ignore[union-attr]

    def to_dict(self) -> dict:
        """JSON-ready snapshot of every metric."""
        out: dict = {}
        for sample in self.collect():
            family = out.setdefault(
                sample.name, {"kind": sample.kind, "samples": []}
            )
            if isinstance(sample.metric, Histogram):
                value = {
                    "count": sample.metric.count,
                    "sum": sample.metric.sum,
                    "buckets": [
                        [bound, count] for bound, count in sample.metric.buckets()
                    ],
                }
            else:
                value = sample.metric.value  # type: ignore[union-attr]
            family["samples"].append({"labels": sample.label_dict, "value": value})
        return out


# -- absorbing the reproduction's native meters ------------------------


def absorb_cpu_counters(registry: MetricsRegistry, counters, **labels) -> None:
    """Fold a :class:`~repro.metering.CpuCounters` reading into counters.

    Emits ``repro_cpu_comparisons_total``, ``repro_cpu_hashes_total``,
    ``repro_cpu_moves_total`` (fractional page moves), and
    ``repro_cpu_bit_ops_total`` -- the Table 1 operation taxonomy.
    """
    registry.counter("repro_cpu_comparisons_total", **labels).inc(counters.comparisons)
    registry.counter("repro_cpu_hashes_total", **labels).inc(counters.hashes)
    registry.counter("repro_cpu_moves_total", **labels).inc(counters.moves)
    registry.counter("repro_cpu_bit_ops_total", **labels).inc(counters.bit_ops)


def absorb_buffer_stats(registry: MetricsRegistry, stats, **labels) -> None:
    """Fold :class:`~repro.storage.buffer.BufferPoolStats` into metrics.

    Counters for fixes/hits/misses/evictions/writebacks plus the
    ``repro_buffer_hit_ratio`` gauge, then one ``device``-labelled
    sample per device (``repro_buffer_device_*``) from the pool's
    per-device breakdown -- so a buffer-starved ``runs`` device is
    distinguishable from a well-cached ``data`` device.
    """
    registry.counter("repro_buffer_fixes_total", **labels).inc(stats.fixes)
    registry.counter("repro_buffer_hits_total", **labels).inc(stats.hits)
    registry.counter("repro_buffer_misses_total", **labels).inc(stats.misses)
    registry.counter("repro_buffer_evictions_total", **labels).inc(stats.evictions)
    registry.counter("repro_buffer_writebacks_total", **labels).inc(stats.writebacks)
    registry.gauge("repro_buffer_hit_ratio", **labels).set(stats.hit_ratio)
    for device, c in sorted(stats.by_device.items()):
        device_labels = dict(labels, device=device)
        registry.counter("repro_buffer_device_fixes_total", **device_labels).inc(
            c.fixes
        )
        registry.counter("repro_buffer_device_hits_total", **device_labels).inc(c.hits)
        registry.counter("repro_buffer_device_misses_total", **device_labels).inc(
            c.misses
        )
        registry.counter("repro_buffer_device_evictions_total", **device_labels).inc(
            c.evictions
        )
        registry.counter("repro_buffer_device_writebacks_total", **device_labels).inc(
            c.writebacks
        )
        registry.gauge("repro_buffer_device_hit_ratio", **device_labels).set(
            c.hit_ratio
        )


def absorb_btree(registry: MetricsRegistry, tree, **labels) -> None:
    """Fold a :class:`~repro.storage.btree.BPlusTree`'s counters in.

    Emits the ``repro_btree_*`` families: structural-maintenance
    counters (splits), access counters (searches, scans, leaves
    visited), and the ``repro_btree_height`` / ``repro_btree_entries``
    gauges.
    """
    stats = tree.stats
    registry.counter("repro_btree_searches_total", **labels).inc(stats.searches)
    registry.counter("repro_btree_inserts_total", **labels).inc(stats.inserts)
    registry.counter("repro_btree_deletes_total", **labels).inc(stats.deletes)
    registry.counter("repro_btree_leaf_splits_total", **labels).inc(stats.leaf_splits)
    registry.counter("repro_btree_interior_splits_total", **labels).inc(
        stats.interior_splits
    )
    registry.counter("repro_btree_leaf_scans_total", **labels).inc(stats.leaf_scans)
    registry.counter("repro_btree_leaves_visited_total", **labels).inc(
        stats.leaves_visited
    )
    registry.gauge("repro_btree_height", **labels).set(tree.height)
    registry.gauge("repro_btree_entries", **labels).set(len(tree))


def observe_buffer_pool(pool, registry: MetricsRegistry, **labels):
    """Attach a live observer to ``pool`` streaming events into metrics.

    Unlike :func:`absorb_buffer_stats` (a point-in-time fold), the
    observer counts ``repro_buffer_events_total{event,device}`` as the
    pool runs, so buffer churn is visible *during* execution.  Returns
    the observer callable (also installed as ``pool.observer``); pass
    it to :func:`unobserve_buffer_pool` or set ``pool.observer = None``
    to detach.
    """

    def observer(event: str, device: str, page_no: int) -> None:
        registry.counter(
            "repro_buffer_events_total", event=event, device=device, **labels
        ).inc()

    pool.observer = observer
    return observer


def unobserve_buffer_pool(pool, observer=None) -> None:
    """Detach a live buffer-pool observer (no-op if not attached)."""
    if observer is None or pool.observer is observer:
        pool.observer = None


def absorb_io_statistics(registry: MetricsRegistry, io_stats, **labels) -> None:
    """Fold per-device :class:`~repro.storage.stats.IoStatistics` in.

    One labelled sample per device (``device=data|temp|runs``) for
    reads/writes/seeks/bytes, plus the Table 3-costed
    ``repro_io_cost_ms`` gauge per device.
    """
    for device, c in io_stats.devices.items():
        device_labels = dict(labels, device=device)
        registry.counter("repro_io_reads_total", **device_labels).inc(c.reads)
        registry.counter("repro_io_writes_total", **device_labels).inc(c.writes)
        registry.counter("repro_io_seeks_total", **device_labels).inc(c.seeks)
        registry.counter("repro_io_bytes_read_total", **device_labels).inc(c.bytes_read)
        registry.counter("repro_io_bytes_written_total", **device_labels).inc(
            c.bytes_written
        )
        registry.gauge("repro_io_cost_ms", **device_labels).set(
            io_stats.cost_ms(device)
        )


def absorb_fault_stats(registry: MetricsRegistry, ctx, **labels) -> None:
    """Fold a context's fault-injection and defense meters into metrics.

    One ``device``-labelled sample per device for the injected faults
    (``repro_disk_faults_injected_total`` and its per-kind breakdown)
    and the defenses that answered them: ``repro_disk_retries_total``,
    ``repro_checksum_failures_total``, ``repro_disk_backoff_ms_total``,
    and ``repro_disk_fault_latency_ms_total``.  When an injector is
    attached, its per-kind fire counts are emitted as
    ``repro_fault_fires_total{kind=...}``.  All-zero when injection is
    disabled -- the families still exist, so dashboards need no special
    case for fault-free runs.
    """
    for device, stats in sorted(ctx.fault_stats.items()):
        device_labels = dict(labels, device=device)
        registry.counter("repro_disk_faults_injected_total", **device_labels).inc(
            stats.faults_injected
        )
        registry.counter("repro_disk_transient_faults_total", **device_labels).inc(
            stats.transient_faults
        )
        registry.counter("repro_disk_permanent_faults_total", **device_labels).inc(
            stats.permanent_faults
        )
        registry.counter("repro_disk_corruptions_total", **device_labels).inc(
            stats.corruptions
        )
        registry.counter("repro_disk_torn_writes_total", **device_labels).inc(
            stats.torn_writes
        )
        registry.counter("repro_checksum_failures_total", **device_labels).inc(
            stats.checksum_failures
        )
        registry.counter("repro_disk_retries_total", **device_labels).inc(stats.retries)
        registry.counter("repro_disk_backoff_ms_total", **device_labels).inc(
            stats.backoff_ms
        )
        registry.counter("repro_disk_fault_latency_ms_total", **device_labels).inc(
            stats.latency_ms
        )
    injector = getattr(ctx, "fault_injector", None)
    if injector is not None:
        for kind, count in sorted(injector.counters.by_kind.items()):
            registry.counter("repro_fault_fires_total", kind=kind, **labels).inc(count)


def absorb_network_fault_stats(registry: MetricsRegistry, network, **labels) -> None:
    """Fold an :class:`~repro.parallel.network.Interconnect`'s fault
    counters in: ``repro_network_drops_total``,
    ``repro_network_retransmits_total``,
    ``repro_network_duplicates_total``.
    """
    counters = network.fault_counters
    registry.counter("repro_network_drops_total", **labels).inc(counters.drops)
    registry.counter("repro_network_retransmits_total", **labels).inc(
        counters.retransmits
    )
    registry.counter("repro_network_duplicates_total", **labels).inc(
        counters.duplicates
    )


def absorb_context(registry: MetricsRegistry, ctx, **labels) -> None:
    """Absorb every meter of an :class:`~repro.executor.iterator.ExecContext`.

    Includes the fault/defense meters (all-zero for fault-free runs).
    """
    absorb_cpu_counters(registry, ctx.cpu, **labels)
    absorb_buffer_stats(registry, ctx.pool.stats, **labels)
    absorb_io_statistics(registry, ctx.io_stats, **labels)
    absorb_fault_stats(registry, ctx, **labels)
