"""repro.obs -- execution observability: spans, metrics, profiles, export.

The layered subsystem behind ``Query.explain_analyze()``, the
``repro profile`` CLI command, and the ``BENCH_*.json`` benchmark
trajectory:

* :mod:`repro.obs.span` -- hierarchical span tracer with an
  injectable clock and a zero-cost null default,
* :mod:`repro.obs.metrics` -- counters/gauges/histograms that absorb
  the reproduction's native meters (Table 1 CPU counters, buffer-pool
  statistics, Table 3 I/O statistics),
* :mod:`repro.obs.profile` -- per-operator meter attribution and the
  EXPLAIN ANALYZE operator tree,
* :mod:`repro.obs.export` -- JSON / Prometheus-text / ``BENCH_*.json``
  exporters.
"""

from repro.obs.export import (
    BENCH_SCHEMA_VERSION,
    bench_payload,
    load_bench_json,
    profile_to_json,
    registry_to_json,
    render_prometheus,
    validate_bench_payload,
    write_bench_json,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    absorb_buffer_stats,
    absorb_context,
    absorb_cpu_counters,
    absorb_io_statistics,
)
from repro.obs.profile import (
    OperatorStats,
    QueryProfile,
    build_profile,
)
from repro.obs.span import (
    NULL_TRACER,
    Clock,
    FakeClock,
    MonotonicClock,
    NullTracer,
    Span,
    Tracer,
)

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "Clock",
    "Counter",
    "FakeClock",
    "Gauge",
    "Histogram",
    "MetricsError",
    "MetricsRegistry",
    "MonotonicClock",
    "NULL_TRACER",
    "NullTracer",
    "OperatorStats",
    "QueryProfile",
    "Span",
    "Tracer",
    "absorb_buffer_stats",
    "absorb_context",
    "absorb_cpu_counters",
    "absorb_io_statistics",
    "bench_payload",
    "build_profile",
    "load_bench_json",
    "profile_to_json",
    "registry_to_json",
    "render_prometheus",
    "validate_bench_payload",
    "write_bench_json",
]
