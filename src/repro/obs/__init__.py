"""repro.obs -- execution observability: spans, metrics, profiles, export.

The layered subsystem behind ``Query.explain_analyze()``, the
``repro profile`` CLI command, and the ``BENCH_*.json`` benchmark
trajectory:

* :mod:`repro.obs.span` -- hierarchical span tracer with an
  injectable clock and a zero-cost null default,
* :mod:`repro.obs.metrics` -- counters/gauges/histograms that absorb
  the reproduction's native meters (Table 1 CPU counters, buffer-pool
  statistics, Table 3 I/O statistics),
* :mod:`repro.obs.profile` -- per-operator meter attribution and the
  EXPLAIN ANALYZE operator tree,
* :mod:`repro.obs.export` -- JSON / Prometheus-text / ``BENCH_*.json``
  exporters,
* :mod:`repro.obs.iotrace` -- page-level I/O event log (one event per
  physical transfer, with seek classification, Table 3 cost, and
  operator attribution), JSONL / Chrome ``trace_event`` exporters, and
  the cost-model conservation validator.
"""

from repro.obs.export import (
    ACCEPTED_BENCH_SCHEMA_VERSIONS,
    BENCH_SCHEMA_VERSION,
    bench_payload,
    provenance_info,
    load_bench_json,
    profile_to_json,
    registry_to_json,
    render_prometheus,
    validate_bench_payload,
    write_bench_json,
)
from repro.obs.iotrace import (
    AttributionReport,
    ConservationReport,
    IoEvent,
    IoEventLog,
    absorb_io_event_log,
    attribution_by_operator,
    events_from_jsonl,
    events_to_chrome_trace,
    events_to_jsonl,
    read_jsonl,
    render_summary,
    replay_cost_ms,
    replay_counters,
    top_seek_offenders,
    verify_attribution,
    verify_conservation,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    absorb_btree,
    absorb_buffer_stats,
    absorb_context,
    absorb_cpu_counters,
    absorb_fault_stats,
    absorb_io_statistics,
    absorb_network_fault_stats,
    observe_buffer_pool,
    unobserve_buffer_pool,
)
from repro.obs.profile import (
    OperatorStats,
    QueryProfile,
    build_profile,
)
from repro.obs.span import (
    NULL_TRACER,
    Clock,
    FakeClock,
    MonotonicClock,
    NullTracer,
    Span,
    Tracer,
)

__all__ = [
    "ACCEPTED_BENCH_SCHEMA_VERSIONS",
    "AttributionReport",
    "BENCH_SCHEMA_VERSION",
    "Clock",
    "ConservationReport",
    "Counter",
    "FakeClock",
    "Gauge",
    "Histogram",
    "IoEvent",
    "IoEventLog",
    "MetricsError",
    "MetricsRegistry",
    "MonotonicClock",
    "NULL_TRACER",
    "NullTracer",
    "OperatorStats",
    "QueryProfile",
    "Span",
    "Tracer",
    "absorb_btree",
    "absorb_buffer_stats",
    "absorb_context",
    "absorb_cpu_counters",
    "absorb_fault_stats",
    "absorb_io_event_log",
    "absorb_io_statistics",
    "absorb_network_fault_stats",
    "attribution_by_operator",
    "bench_payload",
    "build_profile",
    "events_from_jsonl",
    "events_to_chrome_trace",
    "events_to_jsonl",
    "load_bench_json",
    "read_jsonl",
    "observe_buffer_pool",
    "profile_to_json",
    "provenance_info",
    "registry_to_json",
    "render_prometheus",
    "render_summary",
    "replay_cost_ms",
    "replay_counters",
    "top_seek_offenders",
    "unobserve_buffer_pool",
    "validate_bench_payload",
    "verify_attribution",
    "verify_conservation",
    "write_bench_json",
    "write_chrome_trace",
    "write_jsonl",
]
