"""Machine-readable exports: JSON, Prometheus text, ``BENCH_*.json``.

Three consumers:

* humans and dashboards -- :func:`render_prometheus` emits the
  registry in the Prometheus text exposition format,
* scripts -- :func:`profile_to_json` / ``MetricsRegistry.to_dict`` give
  plain JSON,
* the perf trajectory -- :func:`write_bench_json` writes one
  ``BENCH_<name>.json`` per benchmark under ``benchmarks/results/``
  (wired through ``benchmarks/conftest.py``), and
  :func:`load_bench_json` validates it on the way back in, so CI can
  assert every run leaves a well-formed, comparable artifact.
"""

from __future__ import annotations

import json
import platform
import re
import time
from pathlib import Path

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.profile import QueryProfile

#: Version stamp of the BENCH payload layout; bump on breaking change.
#: v2 added the ``provenance`` block (git commit, storage parameters,
#: Table 3 I/O weights) so a stored trajectory point records *which*
#: code and which physical configuration produced it.  v3 adds a
#: ``fault_injection`` entry inside provenance (``{"enabled": False}``
#: for ordinary benchmarks; the injector's summary -- seed, rules, fire
#: counts -- when a run was measured under faults), so a trajectory
#: point can never silently mix faulty and fault-free measurements.
#: v4 adds an optional top-level ``serve`` block carrying the
#: concurrent-serving harness's results (client/request counts, virtual
#: latency percentiles, throughput, cache hit ratios, admission stats,
#: and the scheduler's interleaving ``trace_digest`` -- the replay
#: determinism witness CI compares across two runs of one seed).
BENCH_SCHEMA_VERSION = 4

#: Schema versions :func:`load_bench_json` accepts; old v1 artifacts
#: (no provenance block), v2 artifacts (no fault_injection entry), and
#: v3 artifacts (no serve block) remain loadable and comparable.
ACCEPTED_BENCH_SCHEMA_VERSIONS = (1, 2, 3, 4)

#: File-name prefix of benchmark export artifacts.
BENCH_PREFIX = "BENCH_"

_NAME_RE = re.compile(r"^[A-Za-z0-9_.\-]+$")


# -- Prometheus text format --------------------------------------------


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _label_text(labels, extra: tuple = ()) -> str:
    items = tuple(labels) + tuple(extra)
    if not items:
        return ""
    body = ",".join(f'{key}="{_escape_label(str(val))}"' for key, val in items)
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format (0.0.4)."""
    lines: list[str] = []
    seen_type: set[str] = set()
    for sample in registry.collect():
        if sample.name not in seen_type:
            seen_type.add(sample.name)
            lines.append(f"# TYPE {sample.name} {sample.kind}")
        if isinstance(sample.metric, Histogram):
            for bound, cumulative in sample.metric.buckets():
                le = "+Inf" if bound == float("inf") else _format_value(bound)
                lines.append(
                    f"{sample.name}_bucket"
                    f"{_label_text(sample.labels, (('le', le),))} {cumulative}"
                )
            lines.append(
                f"{sample.name}_sum{_label_text(sample.labels)} "
                f"{_format_value(sample.metric.sum)}"
            )
            lines.append(
                f"{sample.name}_count{_label_text(sample.labels)} "
                f"{sample.metric.count}"
            )
        else:
            lines.append(
                f"{sample.name}{_label_text(sample.labels)} "
                f"{_format_value(sample.metric.value)}"  # type: ignore[union-attr]
            )
    return "\n".join(lines) + ("\n" if lines else "")


# -- JSON --------------------------------------------------------------


def profile_to_json(profile: QueryProfile, indent: int = 2) -> str:
    """A :class:`~repro.obs.profile.QueryProfile` as a JSON document."""
    return json.dumps(profile.to_dict(), indent=indent, sort_keys=True)


def registry_to_json(registry: MetricsRegistry, indent: int = 2) -> str:
    """A :class:`~repro.obs.metrics.MetricsRegistry` as a JSON document."""
    return json.dumps(registry.to_dict(), indent=indent, sort_keys=True)


# -- BENCH_*.json ------------------------------------------------------


def _git_commit() -> str | None:
    """Best-effort current git commit hash, or ``None``.

    Never raises: benchmark export must work from a tarball checkout
    or an environment without ``git`` on PATH.
    """
    import subprocess

    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    commit = out.stdout.strip()
    return commit if out.returncode == 0 and commit else None


def provenance_info(config=None, fault_injection: dict | None = None) -> dict:
    """The BENCH provenance block: code + physical configuration.

    Records the git commit (best-effort), the storage parameters that
    shape every measured number (page sizes, buffer budget, sort
    buffer), and the Table 3 I/O weights -- everything needed to judge
    whether two trajectory points are comparable.  Since schema v3 the
    block also carries a ``fault_injection`` entry: ``{"enabled":
    False}`` for ordinary benchmarks, or the injector's
    :meth:`~repro.faults.injector.FaultInjector.summary` (seed, rules,
    fire counts) for runs measured under injected faults.

    Args:
        config: A :class:`~repro.storage.config.StorageConfig`;
            defaults to the paper's Section 5.1 parameters.
        fault_injection: Override for the fault-injection entry, e.g.
            ``injector.summary()``; defaults to disabled.
    """
    from dataclasses import asdict

    from repro.storage.config import StorageConfig

    config = config or StorageConfig()
    return {
        "git_commit": _git_commit(),
        "page_size": config.page_size,
        "sort_run_page_size": config.sort_run_page_size,
        "buffer_size": config.buffer_size,
        "memory_limit": config.memory_limit,
        "sort_buffer_size": config.sort_buffer_size,
        "io_weights": asdict(config.io_weights),
        "fault_injection": (
            {"enabled": False} if fault_injection is None else dict(fault_injection)
        ),
    }


def bench_payload(
    name: str,
    metrics: dict,
    profile: QueryProfile | dict | None = None,
    extra: dict | None = None,
    created_unix: float | None = None,
    provenance: dict | None = None,
    serve: dict | None = None,
) -> dict:
    """Build (and validate) one benchmark export payload (schema v4).

    Args:
        name: Benchmark identifier (letters, digits, ``._-``).
        metrics: Flat scalar measurements, e.g. model milliseconds per
            strategy.  Values must be real numbers.
        profile: Optional operator-tree profile of the measured run.
        extra: Free-form additional JSON-compatible context.
        created_unix: Stamp override (defaults to ``time.time()``),
            injectable for deterministic tests.
        provenance: Override for the v2 provenance block (defaults to
            :func:`provenance_info` of the paper's configuration);
            injectable for deterministic tests.
        serve: Optional v4 serving block (a
            :meth:`repro.serve.bench.LoadReport.to_dict` payload); must
            carry ``clients``, ``requests``, ``latency_ms``, and the
            ``trace_digest`` replay witness.
    """
    payload = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "name": name,
        "created_unix": time.time() if created_unix is None else created_unix,
        "paper": "Relational Division: Four Algorithms and Their Performance "
        "(ICDE 1989)",
        "environment": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
        },
        "provenance": provenance_info() if provenance is None else dict(provenance),
        "metrics": dict(metrics),
    }
    if profile is not None:
        payload["profile"] = (
            profile.to_dict() if isinstance(profile, QueryProfile) else dict(profile)
        )
    if extra:
        payload["extra"] = dict(extra)
    if serve is not None:
        payload["serve"] = dict(serve)
    validate_bench_payload(payload)
    return payload


def validate_bench_payload(payload: object) -> dict:
    """Check a BENCH payload against the schema; returns it when valid.

    Raises:
        ValueError: On any structural problem, with a message naming
            the offending field.
    """
    if not isinstance(payload, dict):
        raise ValueError("BENCH payload must be a JSON object")
    version = payload.get("schema_version")
    if version not in ACCEPTED_BENCH_SCHEMA_VERSIONS:
        raise ValueError(
            "BENCH schema_version must be one of "
            f"{ACCEPTED_BENCH_SCHEMA_VERSIONS}, got {version!r}"
        )
    if version >= 2:
        provenance = payload.get("provenance")
        if not isinstance(provenance, dict):
            raise ValueError(
                f"BENCH v{version} payloads must carry a provenance object"
            )
        # v3's fault_injection entry is optional (custom provenance
        # overrides predate it) but, when present, must be an object.
        fault_injection = provenance.get("fault_injection")
        if fault_injection is not None and not isinstance(fault_injection, dict):
            raise ValueError(
                "BENCH provenance fault_injection, when present, must be an object"
            )
    elif "provenance" in payload and not isinstance(payload["provenance"], dict):
        raise ValueError("BENCH provenance, when present, must be an object")
    name = payload.get("name")
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise ValueError(f"BENCH name must match {_NAME_RE.pattern}, got {name!r}")
    created = payload.get("created_unix")
    if not isinstance(created, (int, float)) or isinstance(created, bool):
        raise ValueError("BENCH created_unix must be a number")
    metrics = payload.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        raise ValueError("BENCH metrics must be a non-empty object")
    for key, value in metrics.items():
        if not isinstance(key, str):
            raise ValueError(f"BENCH metric names must be strings, got {key!r}")
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError(f"BENCH metric {key!r} must be a number, got {value!r}")
    if "profile" in payload and not isinstance(payload["profile"], dict):
        raise ValueError("BENCH profile, when present, must be an object")
    if "serve" in payload:
        serve = payload["serve"]
        if not isinstance(serve, dict):
            raise ValueError("BENCH serve, when present, must be an object")
        for field in ("clients", "requests", "latency_ms", "trace_digest"):
            if field not in serve:
                raise ValueError(f"BENCH serve block missing {field!r}")
        if not isinstance(serve["latency_ms"], dict):
            raise ValueError("BENCH serve latency_ms must be an object")
        digest = serve["trace_digest"]
        if not isinstance(digest, str) or not digest:
            raise ValueError(
                "BENCH serve trace_digest must be a non-empty string"
            )
    return payload


def bench_path(directory: Path | str, name: str) -> Path:
    """The ``BENCH_<name>.json`` path for a benchmark name."""
    return Path(directory) / f"{BENCH_PREFIX}{name}.json"


def write_bench_json(
    directory: Path | str,
    name: str,
    metrics: dict,
    profile: QueryProfile | dict | None = None,
    extra: dict | None = None,
    created_unix: float | None = None,
    serve: dict | None = None,
) -> Path:
    """Write one validated ``BENCH_<name>.json``; returns its path."""
    payload = bench_payload(
        name,
        metrics,
        profile=profile,
        extra=extra,
        created_unix=created_unix,
        serve=serve,
    )
    path = bench_path(directory, name)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_bench_json(path: Path | str) -> dict:
    """Read and validate a ``BENCH_*.json`` file from disk."""
    raw = Path(path).read_text()
    try:
        payload = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not valid JSON: {exc}") from exc
    return validate_bench_payload(payload)
