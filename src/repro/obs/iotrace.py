"""Page-level I/O event tracing and cost-model conservation checks.

The paper never times a disk: it *computes* I/O cost from file-system
statistics (Section 5.1) using the Table 3 weights, so every Table 4
number is only as credible as the storage layer's accounting.
:mod:`repro.obs.profile` instruments plans from above;
this module instruments them from *below*: every physical page
transfer of every simulated device becomes one :class:`IoEvent` in a
bounded ring buffer, carrying

* the device, page number, direction, and byte count,
* the seek-vs-sequential classification and the head movement in pages
  (one shared classification path with
  :class:`~repro.storage.stats.IoStatistics` -- the event is emitted by
  ``record_transfer`` itself, so the log *cannot* disagree with the
  counters about what happened),
* the Table 3 cost of that single transfer,
* the owning file (heap files register their page ranges), and
* the innermost executing operator (via the profile stack).

Because the log is fed by the same call that updates the aggregate
counters, replaying it through :class:`~repro.storage.stats.IoWeights`
must reproduce ``IoStatistics.cost_ms`` *exactly* -- the conservation
check of :func:`verify_conservation`, which turns the cost model from
"trusted" into "checked".  :func:`verify_attribution` closes the loop
upward: per-operator event totals must equal the EXPLAIN ANALYZE
profile's per-operator I/O deltas.

Tracing is off by default.  The storage layer's null sink
(:data:`repro.storage.stats.NULL_IO_TRACE`) costs one attribute test
per transfer and allocates nothing; the test suite proves the
zero-allocation claim by monkeypatching event construction to raise.

Exporters: :func:`events_to_jsonl` (one JSON object per line) and
:func:`events_to_chrome_trace` (Chrome ``trace_event`` format -- open
the file in ``chrome://tracing`` or Perfetto; each device is a lane,
each transfer a slice whose length is its modeled cost, seeks
categorised so they can be highlighted).
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Optional

from repro.storage.stats import DeviceCounters, IoStatistics, IoWeights

#: Default ring-buffer capacity (events).  A full nine-point Table 4
#: reproduction stays well under this; the log drops the *oldest*
#: events beyond it and counts the drops so validators can refuse.
DEFAULT_CAPACITY = 1 << 16


@dataclass(frozen=True)
class IoEvent:
    """One physical page transfer, fully attributed.

    Attributes:
        seq: Monotonic event index (0-based, survives ring overflow).
        device: Device name (``data`` / ``temp`` / ``runs``).
        page_no: Page number transferred.
        kind: ``"read"`` or ``"write"``.
        nbytes: Size of the transfer in bytes.
        sequential: True when the transfer landed where the head was.
        seek_distance: Head movement in pages (0 when sequential).
        cost_ms: Table 3 model milliseconds for this single transfer.
        file: Owning file name, when the page range was registered.
        operator: Innermost executing operator class, when a recording
            tracer's profile stack was active.
    """

    seq: int
    device: str
    page_no: int
    kind: str
    nbytes: int
    sequential: bool
    seek_distance: int
    cost_ms: float
    file: Optional[str] = None
    operator: Optional[str] = None

    @property
    def is_write(self) -> bool:
        """True for a write transfer."""
        return self.kind == "write"

    def to_dict(self) -> dict:
        """JSON-ready representation (one JSONL line)."""
        return {
            "seq": self.seq,
            "device": self.device,
            "page": self.page_no,
            "kind": self.kind,
            "bytes": self.nbytes,
            "sequential": self.sequential,
            "seek_distance": self.seek_distance,
            "cost_ms": self.cost_ms,
            "file": self.file,
            "operator": self.operator,
        }


class IoEventLog:
    """A bounded ring-buffer log of physical page transfers.

    Implements the sink protocol :class:`~repro.storage.stats.IoStatistics`
    expects (``enabled`` / ``record`` / ``register_pages`` /
    ``forget_pages`` / ``clear``), so attaching it is one assignment --
    :class:`~repro.executor.iterator.ExecContext` does it when
    constructed with ``io_trace=``.

    Args:
        capacity: Maximum events retained; older events are dropped
            (and counted in :attr:`dropped`).
        operator_provider: Zero-argument callable returning the
            innermost executing operator's label (or ``None``); wired
            to :meth:`repro.obs.span.Tracer.current_operator_label`.
    """

    enabled = True

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        operator_provider: Callable[[], Optional[str]] | None = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.operator_provider = operator_provider
        self.dropped = 0
        self._events: deque[IoEvent] = deque(maxlen=capacity)
        self._seq = 0
        self._owners: dict[tuple[str, int], str] = {}

    # -- sink protocol (called by IoStatistics.record_transfer) --------

    def record(
        self,
        device: str,
        page_no: int,
        nbytes: int,
        is_write: bool,
        sequential: bool,
        seek_distance: int,
        cost_ms: float,
    ) -> None:
        """Append one event (classification already done upstream)."""
        if len(self._events) == self.capacity:
            self.dropped += 1
        provider = self.operator_provider
        self._events.append(
            IoEvent(
                seq=self._seq,
                device=device,
                page_no=page_no,
                kind="write" if is_write else "read",
                nbytes=nbytes,
                sequential=sequential,
                seek_distance=seek_distance,
                cost_ms=cost_ms,
                file=self._owners.get((device, page_no)),
                operator=provider() if provider is not None else None,
            )
        )
        self._seq += 1

    def register_pages(self, device: str, pages: Iterable[int], file: str) -> None:
        """Record that ``file`` owns ``pages`` on ``device``."""
        owners = self._owners
        for page_no in pages:
            owners[(device, page_no)] = file

    def forget_pages(self, device: str, pages: Iterable[int]) -> None:
        """Drop ownership records (file destroyed, pages recyclable)."""
        owners = self._owners
        for page_no in pages:
            owners.pop((device, page_no), None)

    def clear(self) -> None:
        """Forget all events (ownership registrations are kept).

        :meth:`~repro.executor.iterator.ExecContext.reset_meters`
        calls this together with ``IoStatistics.reset()`` so the log
        and the counters always describe the same window -- the
        precondition of the conservation check.
        """
        self._events.clear()
        self.dropped = 0
        self._seq = 0

    @classmethod
    def from_events(cls, events: Iterable[IoEvent]) -> "IoEventLog":
        """Rebuild a log from previously exported events (verbatim).

        Used by ``repro trace summarize`` to re-analyse a JSONL trace;
        sequence numbers are preserved, nothing is re-stamped.
        """
        events = tuple(events)
        log = cls(capacity=max(1, len(events)))
        log._events.extend(events)
        log._seq = (events[-1].seq + 1) if events else 0
        return log

    # -- observers ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def events(self) -> tuple[IoEvent, ...]:
        """The retained events, oldest first."""
        return tuple(self._events)

    def __iter__(self) -> Iterator[IoEvent]:
        return iter(tuple(self._events))


# -- replay / conservation ---------------------------------------------


def replay_counters(events: Iterable[IoEvent]) -> dict[str, DeviceCounters]:
    """Rebuild per-device :class:`DeviceCounters` from an event stream.

    Integer counters only -- replaying then pricing with
    :class:`IoWeights` uses exactly the arithmetic of
    :meth:`IoStatistics.cost_ms`, so equality is exact, not
    approximate.
    """
    devices: dict[str, DeviceCounters] = {}
    for event in events:
        counters = devices.get(event.device)
        if counters is None:
            counters = devices[event.device] = DeviceCounters()
        if not event.sequential:
            counters.seeks += 1
        if event.is_write:
            counters.writes += 1
            counters.bytes_written += event.nbytes
        else:
            counters.reads += 1
            counters.bytes_read += event.nbytes
    return devices


def _price(counters: DeviceCounters, weights: IoWeights) -> float:
    return (
        counters.seeks * weights.seek_ms
        + counters.transfers
        * (weights.latency_ms_per_transfer + weights.cpu_ms_per_transfer)
        + (counters.bytes_total / 1024) * weights.transfer_ms_per_kib
    )


def replay_cost_ms(
    events: Iterable[IoEvent], weights: IoWeights | None = None
) -> dict[str, float]:
    """Per-device Table 3 milliseconds recomputed from the event log."""
    weights = weights or IoWeights()
    return {
        device: _price(counters, weights)
        for device, counters in replay_counters(events).items()
    }


@dataclass
class ConservationReport:
    """Outcome of replaying the event log against the aggregate meters.

    Attributes:
        ok: True when every device's replayed cost equals the reported
            cost exactly and no events were dropped.
        per_device: ``device -> (replayed_ms, reported_ms)``.
        dropped: Ring-buffer drops (any drop invalidates the check).
        mismatches: Human-readable descriptions of each failure.
    """

    ok: bool
    per_device: dict = field(default_factory=dict)
    dropped: int = 0
    mismatches: list = field(default_factory=list)

    def __str__(self) -> str:
        if self.ok:
            devices = ", ".join(
                f"{dev}={replayed:.3f}ms" for dev, (replayed, _) in sorted(self.per_device.items())
            )
            return f"conservation OK ({devices or 'no I/O'})"
        return "conservation FAILED: " + "; ".join(self.mismatches)


def verify_conservation(
    log: IoEventLog, io_stats: IoStatistics
) -> ConservationReport:
    """Check that the event log conserves the cost model.

    Replays every event through the Table 3 weights and compares, per
    device, with ``io_stats.cost_ms(device)`` *and* the raw counters.
    Equality is exact: the replay reconstructs integer counters and
    prices them with the same formula.

    A log that dropped events cannot conserve anything; the report
    fails with the drop count.
    """
    report = ConservationReport(ok=True, dropped=log.dropped)
    if log.dropped:
        report.ok = False
        report.mismatches.append(
            f"{log.dropped} events dropped by the ring buffer "
            f"(capacity {log.capacity}); raise the capacity to validate"
        )
    replayed = replay_counters(log.events())
    weights = io_stats.weights
    devices = set(replayed) | set(io_stats.devices)
    for device in sorted(devices):
        got = replayed.get(device, DeviceCounters())
        want = io_stats.devices.get(device, DeviceCounters())
        replayed_ms = _price(got, weights)
        reported_ms = io_stats.cost_ms(device) if device in io_stats.devices else 0.0
        report.per_device[device] = (replayed_ms, reported_ms)
        if (
            got.reads != want.reads
            or got.writes != want.writes
            or got.seeks != want.seeks
            or got.bytes_read != want.bytes_read
            or got.bytes_written != want.bytes_written
        ):
            report.ok = False
            report.mismatches.append(
                f"device {device!r}: replayed counters {got} != reported {want}"
            )
        elif replayed_ms != reported_ms:
            report.ok = False
            report.mismatches.append(
                f"device {device!r}: replayed {replayed_ms} ms != "
                f"reported {reported_ms} ms"
            )
    return report


# -- operator attribution ----------------------------------------------


def attribution_by_operator(
    events: Iterable[IoEvent],
) -> dict[Optional[str], DeviceCounters]:
    """Per-operator (by class) I/O counters rebuilt from the events.

    Events recorded outside any operator are grouped under ``None``.
    """
    operators: dict[Optional[str], DeviceCounters] = {}
    for event in events:
        counters = operators.get(event.operator)
        if counters is None:
            counters = operators[event.operator] = DeviceCounters()
        if not event.sequential:
            counters.seeks += 1
        if event.is_write:
            counters.writes += 1
            counters.bytes_written += event.nbytes
        else:
            counters.reads += 1
            counters.bytes_read += event.nbytes
    return operators


@dataclass
class AttributionReport:
    """Event-log operator attribution vs. the EXPLAIN ANALYZE profile.

    Attributes:
        ok: True when, for every operator class, the event log and the
            profile agree on reads/writes/seeks, and no event outside
            an operator was recorded during the profiled window.
        per_operator: ``op_class -> (event_counters, profile_counters)``.
        mismatches: Human-readable failure descriptions.
    """

    ok: bool
    per_operator: dict = field(default_factory=dict)
    mismatches: list = field(default_factory=list)

    def __str__(self) -> str:
        return (
            "attribution OK"
            if self.ok
            else "attribution FAILED: " + "; ".join(self.mismatches)
        )


def verify_attribution(log: IoEventLog, profile) -> AttributionReport:
    """Check per-operator I/O attribution sums to the run totals.

    The profile's per-operator deltas (exclusive, from the meter-stack
    accounting in :mod:`repro.obs.profile`) are aggregated by operator
    class and compared with the event log's per-operator counters.
    Both views observed the same transfers through independent
    mechanisms -- meter snapshots settled on operator enter/exit
    vs. per-event stack peeks -- so agreement means the attribution is
    self-consistent from single page transfer up to the run total.
    """
    report = AttributionReport(ok=True)
    if log.dropped:
        report.ok = False
        report.mismatches.append(f"{log.dropped} events dropped by the ring buffer")
    from_events = attribution_by_operator(log.events())
    from_profile: dict[str, DeviceCounters] = {}
    for stats in profile.all_operators():
        agg = from_profile.setdefault(stats.op_class, DeviceCounters())
        agg.reads += stats.io.reads
        agg.writes += stats.io.writes
        agg.seeks += stats.io.seeks
        agg.bytes_read += stats.io.bytes_read
        agg.bytes_written += stats.io.bytes_written
    unattributed = from_events.pop(None, None)
    if unattributed is not None and unattributed.transfers:
        report.ok = False
        report.mismatches.append(
            f"{unattributed.transfers} transfers recorded outside any operator"
        )
    for op_class in sorted(set(from_events) | set(from_profile)):
        got = from_events.get(op_class, DeviceCounters())
        want = from_profile.get(op_class, DeviceCounters())
        report.per_operator[op_class] = (got, want)
        if (
            got.reads != want.reads
            or got.writes != want.writes
            or got.seeks != want.seeks
        ):
            report.ok = False
            report.mismatches.append(
                f"operator {op_class}: events saw "
                f"r={got.reads} w={got.writes} s={got.seeks}, profile saw "
                f"r={want.reads} w={want.writes} s={want.seeks}"
            )
    return report


# -- summaries ---------------------------------------------------------


@dataclass(frozen=True)
class SeekOffender:
    """One (operator, device) group's share of the seek bill."""

    operator: str
    device: str
    seeks: int
    seek_ms: float
    transfers: int


def top_seek_offenders(
    events: Iterable[IoEvent],
    n: int = 5,
    weights: IoWeights | None = None,
) -> list[SeekOffender]:
    """The ``n`` (operator, device) groups paying the most seek cost.

    This is the question the paper's Table 4 raises but cannot answer
    from aggregates alone: *which operator* paid naive division's 20 ms
    seeks, and on which device.
    """
    weights = weights or IoWeights()
    groups: dict[tuple[str, str], list[int]] = {}
    for event in events:
        key = (event.operator or "(no operator)", event.device)
        entry = groups.get(key)
        if entry is None:
            entry = groups[key] = [0, 0]
        entry[1] += 1
        if not event.sequential:
            entry[0] += 1
    offenders = [
        SeekOffender(
            operator=op,
            device=dev,
            seeks=seeks,
            seek_ms=seeks * weights.seek_ms,
            transfers=transfers,
        )
        for (op, dev), (seeks, transfers) in groups.items()
        if seeks
    ]
    offenders.sort(key=lambda o: (-o.seeks, o.operator, o.device))
    return offenders[:n]


def render_summary(
    log: IoEventLog,
    io_stats: IoStatistics | None = None,
    top_n: int = 5,
) -> str:
    """Human-readable trace summary: per-device table, offenders,
    and (when the statistics are supplied) the conservation verdict."""
    weights = io_stats.weights if io_stats is not None else IoWeights()
    lines = [
        f"I/O trace: {len(log)} events"
        + (f" ({log.dropped} dropped)" if log.dropped else ""),
        "",
        f"{'device':8} {'reads':>7} {'writes':>7} {'seeks':>7} "
        f"{'KiB':>9} {'model ms':>10}",
    ]
    for device, counters in sorted(replay_counters(log.events()).items()):
        lines.append(
            f"{device:8} {counters.reads:>7} {counters.writes:>7} "
            f"{counters.seeks:>7} {counters.bytes_total / 1024:>9.1f} "
            f"{_price(counters, weights):>10.3f}"
        )
    offenders = top_seek_offenders(log.events(), n=top_n, weights=weights)
    if offenders:
        lines.append("")
        lines.append(f"top {len(offenders)} seek offenders (operator x device):")
        for off in offenders:
            lines.append(
                f"  {off.operator:28} {off.device:6} seeks={off.seeks:<6} "
                f"seek_ms={off.seek_ms:<10.1f} transfers={off.transfers}"
            )
    if io_stats is not None:
        lines.append("")
        lines.append(str(verify_conservation(log, io_stats)))
    return "\n".join(lines)


# -- exporters ---------------------------------------------------------


def events_to_jsonl(events: Iterable[IoEvent]) -> str:
    """One compact JSON object per line (trailing newline included)."""
    lines = [json.dumps(event.to_dict(), sort_keys=True) for event in events]
    return "\n".join(lines) + ("\n" if lines else "")


def events_from_jsonl(text: str) -> tuple[IoEvent, ...]:
    """Parse :func:`events_to_jsonl` output back into events.

    The round-trip is loss-free, so a recorded trace can be shipped as
    JSONL and summarised or re-exported later (``repro trace summarize``).

    Raises:
        ValueError: On malformed lines or missing fields.
    """
    events = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            raw = json.loads(line)
            events.append(
                IoEvent(
                    seq=raw["seq"],
                    device=raw["device"],
                    page_no=raw["page"],
                    kind=raw["kind"],
                    nbytes=raw["bytes"],
                    sequential=raw["sequential"],
                    seek_distance=raw["seek_distance"],
                    cost_ms=raw["cost_ms"],
                    file=raw.get("file"),
                    operator=raw.get("operator"),
                )
            )
        except (json.JSONDecodeError, KeyError, TypeError) as exc:
            raise ValueError(f"line {lineno}: not a valid I/O event: {exc}") from exc
    return tuple(events)


def read_jsonl(path) -> tuple[IoEvent, ...]:
    """Read a JSONL event file written by :func:`write_jsonl`."""
    from pathlib import Path

    return events_from_jsonl(Path(path).read_text())


def events_to_chrome_trace(
    events: Iterable[IoEvent], weights: IoWeights | None = None
) -> dict:
    """The event log in Chrome ``trace_event`` format.

    Open the JSON in ``chrome://tracing`` or https://ui.perfetto.dev:
    one process ("repro model I/O"), one thread lane per device, one
    complete-event slice per transfer whose *duration is the Table 3
    model cost* (timestamps are the device's cumulative model time, so
    a lane's width is exactly its ``cost_ms``).  Seeks carry category
    ``"seek"`` so they can be isolated with the category filter.
    """
    trace_events: list[dict] = [
        {
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "name": "process_name",
            "args": {"name": "repro model I/O (Table 3 ms)"},
        }
    ]
    tids: dict[str, int] = {}
    cursor_ms: dict[str, float] = {}
    for event in events:
        tid = tids.get(event.device)
        if tid is None:
            tid = tids[event.device] = len(tids) + 1
            trace_events.append(
                {
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                    "name": "thread_name",
                    "args": {"name": f"device:{event.device}"},
                }
            )
        start_ms = cursor_ms.get(event.device, 0.0)
        cursor_ms[event.device] = start_ms + event.cost_ms
        trace_events.append(
            {
                "ph": "X",
                "pid": 1,
                "tid": tid,
                "ts": start_ms * 1000.0,  # microseconds
                "dur": event.cost_ms * 1000.0,
                "cat": "sequential" if event.sequential else "seek",
                "name": f"{event.kind} p{event.page_no}",
                "args": {
                    "seq": event.seq,
                    "bytes": event.nbytes,
                    "seek_distance": event.seek_distance,
                    "file": event.file,
                    "operator": event.operator,
                },
            }
        )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(path, events: Iterable[IoEvent], weights=None) -> None:
    """Serialise :func:`events_to_chrome_trace` to ``path``."""
    from pathlib import Path

    Path(path).write_text(
        json.dumps(events_to_chrome_trace(events, weights), indent=None) + "\n"
    )


def write_jsonl(path, events: Iterable[IoEvent]) -> None:
    """Serialise :func:`events_to_jsonl` to ``path``."""
    from pathlib import Path

    Path(path).write_text(events_to_jsonl(events))


# -- metrics absorption ------------------------------------------------

#: Seek-distance histogram buckets, in pages.
SEEK_DISTANCE_BUCKETS: tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 1024)


def absorb_io_event_log(registry, log: IoEventLog, **labels) -> None:
    """Fold the event log into the metrics registry.

    Emits the ``repro_io_event_*`` families: per-device/kind/access
    event counts, per-device byte and model-cost counters, the
    ring-buffer drop counter, and a per-device seek-distance histogram.
    """
    totals: dict[tuple[str, str, str], int] = {}
    for event in log.events():
        access = "sequential" if event.sequential else "seek"
        key = (event.device, event.kind, access)
        totals[key] = totals.get(key, 0) + 1
        device_labels = dict(labels, device=event.device)
        registry.counter("repro_io_event_bytes_total", **device_labels).inc(
            event.nbytes
        )
        registry.counter("repro_io_event_cost_ms_total", **device_labels).inc(
            event.cost_ms
        )
        if not event.sequential:
            registry.histogram(
                "repro_io_seek_distance_pages",
                boundaries=SEEK_DISTANCE_BUCKETS,
                **device_labels,
            ).observe(event.seek_distance)
    for (device, kind, access), count in sorted(totals.items()):
        registry.counter(
            "repro_io_events_total",
            **dict(labels, device=device, kind=kind, access=access),
        ).inc(count)
    registry.counter("repro_io_events_dropped_total", **labels).inc(log.dropped)
