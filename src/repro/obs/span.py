"""Hierarchical span tracing with an injectable clock.

The paper's whole argument is quantitative -- Tables 1-4 compare the
division strategies by counted operations and costed I/O -- so the
reproduction needs *attribution*: which operator of a running plan
spent which share of the Comp/Hash/Move/Bit budget, the buffer
activity, and the Table 3 I/O milliseconds.  This module provides the
substrate:

* :class:`Clock` / :class:`MonotonicClock` / :class:`FakeClock` -- a
  tiny clock abstraction so anything that measures wall time (spans,
  the experiment runner) can be driven by a deterministic fake in
  tests,
* :class:`Span` -- one timed, named, attributed node in a tree,
* :class:`Tracer` -- records spans and per-operator meter attribution
  (see :mod:`repro.obs.profile`) and carries a
  :class:`~repro.obs.metrics.MetricsRegistry`,
* :class:`NullTracer` / :data:`NULL_TRACER` -- the default no-op: the
  paper-reproduction hot paths check a single ``enabled`` flag (or run
  a shared null context manager), so disabled tracing costs ~nothing
  and -- crucially for the reproduction -- *counts* nothing: the
  Comp/Hash/Move/Bit meters see identical values with tracing on or
  off, because tracing only ever snapshots the meters, never advances
  them.

Span naming convention (see DESIGN.md): dotted lowercase
``<area>.<phase>`` names, e.g. ``hash_division.build_divisor_table``;
operator spans recorded through the profile machinery use the
operator's class name.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional, Protocol, runtime_checkable


@runtime_checkable
class Clock(Protocol):
    """Anything with a monotonic ``now()`` in fractional seconds."""

    def now(self) -> float:  # pragma: no cover - protocol
        ...


class MonotonicClock:
    """The real clock: :func:`time.perf_counter`."""

    def now(self) -> float:
        """Current monotonic time in seconds."""
        return time.perf_counter()


class FakeClock:
    """A deterministic clock for tests: advances only when told to.

    Args:
        start: Initial reading in seconds.
        auto_tick: Seconds silently added on *every* :meth:`now` call;
            handy for tests that only need strictly increasing stamps.
    """

    def __init__(self, start: float = 0.0, auto_tick: float = 0.0) -> None:
        self._now = float(start)
        self.auto_tick = float(auto_tick)

    def now(self) -> float:
        """Current fake time (applies ``auto_tick`` first)."""
        self._now += self.auto_tick
        return self._now

    def advance(self, seconds: float) -> None:
        """Move the clock forward by ``seconds``."""
        if seconds < 0:
            raise ValueError("a monotonic clock cannot go backwards")
        self._now += seconds


#: Shared default real clock.
MONOTONIC_CLOCK = MonotonicClock()


@dataclass
class Span:
    """One node of the trace tree: a named, timed, attributed interval.

    Attributes:
        name: Dotted lowercase span name (``<area>.<phase>``).
        start_s: Clock reading when the span was opened.
        end_s: Clock reading when it closed (``None`` while open).
        attributes: Free-form key/value annotations.
        events: Point-in-time ``(clock, name, attributes)`` marks.
        children: Nested spans, in creation order.
    """

    name: str
    start_s: float
    end_s: Optional[float] = None
    attributes: dict = field(default_factory=dict)
    events: list = field(default_factory=list)
    children: list["Span"] = field(default_factory=list)

    @property
    def duration_s(self) -> Optional[float]:
        """Elapsed seconds, or ``None`` while the span is still open."""
        return None if self.end_s is None else self.end_s - self.start_s

    def annotate(self, **attributes) -> "Span":
        """Attach attributes to the span; returns the span for chaining."""
        self.attributes.update(attributes)
        return self

    def walk(self) -> Iterator["Span"]:
        """Yield this span and every descendant, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> Optional["Span"]:
        """First span (pre-order) in this subtree with ``name``."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def to_dict(self) -> dict:
        """JSON-ready representation of the subtree."""
        return {
            "name": self.name,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "attributes": dict(self.attributes),
            "events": [
                {"at_s": at, "name": name, "attributes": dict(attrs)}
                for at, name, attrs in self.events
            ],
            "children": [child.to_dict() for child in self.children],
        }


class _NullSpan:
    """The span handed out by :class:`NullTracer`: absorbs everything."""

    __slots__ = ()

    def annotate(self, **attributes) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The default tracer: every operation is a no-op.

    ``enabled`` is ``False`` so hot paths (one flag test per
    ``next()`` call) skip instrumentation entirely, and ``span()``
    returns a shared reusable null context manager for the coarse
    phase spans the division algorithms always emit.  A null-traced
    run produces no spans, no operator stats, and no metrics entries.
    """

    enabled = False
    metrics = None

    def span(self, name: str, **attributes) -> _NullSpan:
        """A reusable no-op context manager."""
        return _NULL_SPAN

    def event(self, name: str, **attributes) -> None:
        """Discard the event."""

    def count(self, name: str, value: float = 1.0, **labels) -> None:
        """Discard the counter increment."""

    def gauge(self, name: str, value: float, **labels) -> None:
        """Discard the gauge reading."""

    def observe(self, name: str, value: float, **labels) -> None:
        """Discard the histogram observation."""

    def operator_enter(self, operator, phase: str) -> None:
        """Ignore operator attribution."""

    def operator_exit(self, operator, phase: str) -> None:
        """Ignore operator attribution."""

    def current_operator_label(self) -> None:
        """No operator is ever executing under the null tracer."""
        return None


#: Process-wide shared no-op tracer (stateless, safe to share).
NULL_TRACER = NullTracer()


class Tracer:
    """A recording tracer: span tree + operator attribution + metrics.

    Args:
        clock: Time source; defaults to the real monotonic clock.
        metrics: Metrics registry to write through to; a fresh
            :class:`~repro.obs.metrics.MetricsRegistry` by default.

    The tracer is deliberately single-threaded (one per
    :class:`~repro.executor.iterator.ExecContext`), matching the
    paper's single-process execution model; the parallel simulation
    uses one context per simulated processor.
    """

    enabled = True

    def __init__(self, clock: Clock | None = None, metrics=None) -> None:
        from repro.obs.metrics import MetricsRegistry

        self.clock: Clock = clock or MONOTONIC_CLOCK
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        self._ops = None  # lazy OperatorAccounting (repro.obs.profile)

    # -- spans ---------------------------------------------------------

    @contextmanager
    def span(self, name: str, **attributes):
        """Open a child span of the current span (context manager)."""
        span = Span(name=name, start_s=self.clock.now(), attributes=attributes)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        try:
            yield span
        finally:
            span.end_s = self.clock.now()
            self._stack.pop()

    def current_span(self) -> Optional[Span]:
        """Innermost open span, or ``None`` outside any span."""
        return self._stack[-1] if self._stack else None

    def event(self, name: str, **attributes) -> None:
        """Record a point event on the current span (or a root mark)."""
        mark = (self.clock.now(), name, attributes)
        if self._stack:
            self._stack[-1].events.append(mark)
        else:
            root = Span(name=name, start_s=mark[0], end_s=mark[0], attributes=attributes)
            self.roots.append(root)

    def find_span(self, name: str) -> Optional[Span]:
        """First recorded span with ``name`` (pre-order over roots)."""
        for root in self.roots:
            hit = root.find(name)
            if hit is not None:
                return hit
        return None

    # -- metrics write-through -----------------------------------------

    def count(self, name: str, value: float = 1.0, **labels) -> None:
        """Increment counter ``name`` in the attached registry."""
        self.metrics.counter(name, **labels).inc(value)

    def gauge(self, name: str, value: float, **labels) -> None:
        """Set gauge ``name`` in the attached registry."""
        self.metrics.gauge(name, **labels).set(value)

    def observe(self, name: str, value: float, **labels) -> None:
        """Observe ``value`` into histogram ``name``."""
        self.metrics.histogram(name, **labels).observe(value)

    # -- operator attribution (delegated to repro.obs.profile) ---------

    @property
    def operators(self):
        """The per-operator accounting (created on first use)."""
        if self._ops is None:
            from repro.obs.profile import OperatorAccounting

            self._ops = OperatorAccounting(self.clock)
        return self._ops

    def operator_enter(self, operator, phase: str) -> None:
        """Attribution hook: operator ``phase`` call begins."""
        self.operators.enter(operator, phase)

    def operator_exit(self, operator, phase: str) -> None:
        """Attribution hook: operator ``phase`` call ends."""
        self.operators.exit(operator, phase)

    def current_operator_label(self) -> Optional[str]:
        """Class name of the innermost executing operator, or ``None``.

        This is the attribution hook :class:`repro.obs.iotrace.IoEventLog`
        uses to stamp each physical page transfer with the operator on
        whose behalf it happened -- the same stack the EXPLAIN ANALYZE
        profile charges meter deltas to, so the two attributions can be
        cross-checked event for event.
        """
        ops = self._ops
        if ops is None:
            return None
        current = ops.current()
        return None if current is None else current.op_class
