"""Operator-tree profiles: the reproduction's ``EXPLAIN ANALYZE``.

The tracer's :class:`OperatorAccounting` watches every
open/next/close call of every :class:`~repro.executor.iterator.QueryIterator`
and attributes *deltas* of the shared meters -- the Table 1
Comp/Hash/Move/Bit counters, buffer-pool hits/misses/evictions, and the
Table 3-costed per-device I/O statistics -- to the innermost operator
executing at the time.  Attribution is therefore **exclusive** (self
time, not self+children), and the per-operator deltas sum exactly to
the run's global meters: nothing is counted twice and nothing that
happens inside the plan escapes.

:class:`QueryProfile` assembles those per-operator records with the
run totals and prices them with :class:`~repro.costmodel.units.CostUnits`
(Table 1) -- producing the per-iterator rows-in/out, next() calls,
operation deltas, buffer and I/O activity, and model-milliseconds view
that ``repro profile`` and ``Query.explain_analyze()`` render.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.costmodel.units import CostUnits, PAPER_UNITS
from repro.metering import CpuCounters
from repro.storage.stats import DeviceCounters, IoWeights

#: The three phases of the iterator protocol.
PHASES = ("open", "next", "close")


@dataclass
class _Checkpoint:
    """A reading of every meter of one execution context."""

    ctx_id: int
    at_s: float
    cpu: CpuCounters
    io: dict  # device name -> DeviceCounters snapshot
    weights: IoWeights
    buffer: tuple  # (fixes, misses, evictions, writebacks)


@dataclass
class OperatorStats:
    """Exclusive (self-only) measurements for one plan operator.

    Attributes:
        label: ``describe()`` of the operator (refreshed on exit, so
            late-bound details like partition counts are current).
        op_class: Operator class name.
        calls: Protocol calls seen, keyed by phase (open/next/close).
        rows_out: Rows the operator produced (its ``rows_produced``).
        cpu: Comp/Hash/Move/Bit performed *by this operator itself*
            (children excluded -- they have their own records).
        wall_s: Wall-clock seconds attributed to this operator.
        io: Physical I/O performed by this operator, summed over
            devices; ``io_by_device`` keeps the per-device transfers.
        io_ms: Table 3 model milliseconds for that I/O.
        buffer: Buffer-pool fixes/misses/evictions/writebacks deltas.
        children: Input operators, in first-use order.
    """

    label: str
    op_class: str
    calls: dict = field(default_factory=dict)
    rows_out: int = 0
    cpu: CpuCounters = field(default_factory=CpuCounters)
    wall_s: float = 0.0
    io: DeviceCounters = field(default_factory=DeviceCounters)
    io_by_device: dict = field(default_factory=dict)
    io_ms: float = 0.0
    buffer: dict = field(default_factory=lambda: {
        "fixes": 0, "misses": 0, "evictions": 0, "writebacks": 0,
    })
    children: list["OperatorStats"] = field(default_factory=list)

    @property
    def next_calls(self) -> int:
        """How many times ``next()`` was invoked on this operator."""
        return self.calls.get("next", 0)

    def cpu_model_ms(self, units: CostUnits = PAPER_UNITS) -> float:
        """This operator's own CPU work in Table 1 model milliseconds."""
        return units.cpu_cost_ms(self.cpu)

    def total_model_ms(self, units: CostUnits = PAPER_UNITS) -> float:
        """Self CPU + self I/O model milliseconds."""
        return self.cpu_model_ms(units) + self.io_ms

    def walk(self) -> Iterator["OperatorStats"]:
        """This node and every descendant, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self, units: CostUnits = PAPER_UNITS) -> dict:
        """JSON-ready representation of the subtree."""
        return {
            "operator": self.op_class,
            "label": self.label,
            "rows_out": self.rows_out,
            "calls": dict(self.calls),
            "cpu": {
                "comparisons": self.cpu.comparisons,
                "hashes": self.cpu.hashes,
                "moves": self.cpu.moves,
                "bit_ops": self.cpu.bit_ops,
            },
            "cpu_model_ms": self.cpu_model_ms(units),
            "io": {
                "reads": self.io.reads,
                "writes": self.io.writes,
                "seeks": self.io.seeks,
                "bytes": self.io.bytes_total,
                "transfers_by_device": dict(self.io_by_device),
            },
            "io_model_ms": self.io_ms,
            "buffer": dict(self.buffer),
            "wall_ms": self.wall_s * 1e3,
            "children": [child.to_dict(units) for child in self.children],
        }


class OperatorAccounting:
    """Charges meter deltas to the innermost executing operator.

    Driven by the :class:`~repro.executor.iterator.QueryIterator`
    protocol hooks via :meth:`~repro.obs.span.Tracer.operator_enter` /
    ``operator_exit``.  Between two consecutive hook events, every
    meter tick belongs to the operator on top of the stack; entering a
    child first settles the parent's account.
    """

    def __init__(self, clock) -> None:
        self.clock = clock
        self.roots: list[OperatorStats] = []
        self._stats: dict[int, OperatorStats] = {}
        self._keepalive: list = []  # pin operators so id() stays unique
        self._stack: list[OperatorStats] = []
        self._last: Optional[_Checkpoint] = None

    # -- hook entry points ---------------------------------------------

    def enter(self, operator, phase: str) -> None:
        """An operator protocol call (``phase``) is starting."""
        now = self._checkpoint(operator.ctx)
        self._settle(now)
        stats = self._stats.get(id(operator))
        if stats is None:
            stats = OperatorStats(
                label=operator.describe(), op_class=type(operator).__name__
            )
            self._stats[id(operator)] = stats
            self._keepalive.append(operator)
            if self._stack:
                self._stack[-1].children.append(stats)
            else:
                self.roots.append(stats)
        stats.calls[phase] = stats.calls.get(phase, 0) + 1
        self._stack.append(stats)
        self._last = now

    def exit(self, operator, phase: str) -> None:
        """The matching protocol call is ending."""
        now = self._checkpoint(operator.ctx)
        self._settle(now)
        stats = self._stack.pop()
        stats.rows_out = operator.rows_produced
        stats.label = operator.describe()
        self._last = now

    def current(self) -> Optional[OperatorStats]:
        """The operator currently on top of the execution stack."""
        return self._stack[-1] if self._stack else None

    # -- internals -----------------------------------------------------

    def _checkpoint(self, ctx) -> _Checkpoint:
        pool_stats = ctx.pool.stats
        return _Checkpoint(
            ctx_id=id(ctx),
            at_s=self.clock.now(),
            cpu=ctx.cpu.snapshot(),
            io=ctx.io_stats.snapshot(),
            weights=ctx.io_stats.weights,
            buffer=(
                pool_stats.fixes,
                pool_stats.misses,
                pool_stats.evictions,
                pool_stats.writebacks,
            ),
        )

    def _settle(self, now: _Checkpoint) -> None:
        """Charge everything since the last checkpoint to the stack top."""
        then = self._last
        if not self._stack or then is None or then.ctx_id != now.ctx_id:
            return
        stats = self._stack[-1]
        stats.wall_s += now.at_s - then.at_s
        stats.cpu.merge(now.cpu.delta_since(then.cpu))
        w = now.weights
        for device, current in now.io.items():
            previous = then.io.get(device, DeviceCounters())
            reads = current.reads - previous.reads
            writes = current.writes - previous.writes
            seeks = current.seeks - previous.seeks
            bytes_read = current.bytes_read - previous.bytes_read
            bytes_written = current.bytes_written - previous.bytes_written
            if not (reads or writes or seeks or bytes_read or bytes_written):
                continue
            stats.io.reads += reads
            stats.io.writes += writes
            stats.io.seeks += seeks
            stats.io.bytes_read += bytes_read
            stats.io.bytes_written += bytes_written
            stats.io_by_device[device] = (
                stats.io_by_device.get(device, 0) + reads + writes
            )
            stats.io_ms += (
                seeks * w.seek_ms
                + (reads + writes) * (w.latency_ms_per_transfer + w.cpu_ms_per_transfer)
                + ((bytes_read + bytes_written) / 1024) * w.transfer_ms_per_kib
            )
        for key, index in (
            ("fixes", 0), ("misses", 1), ("evictions", 2), ("writebacks", 3),
        ):
            stats.buffer[key] += now.buffer[index] - then.buffer[index]


@dataclass
class QueryProfile:
    """A finished run's operator tree plus its global meters.

    The invariant the tests pin down: summing ``cpu`` over
    :meth:`all_operators` reproduces :attr:`cpu` exactly (and likewise
    for the I/O model milliseconds, modulo float addition order).
    """

    roots: list
    cpu: CpuCounters
    io_ms: float
    wall_s: float
    units: CostUnits = PAPER_UNITS
    buffer: dict = field(default_factory=dict)
    metrics: object | None = None
    #: Planner decisions (repro.plan.planner.DivisionDecision) made
    #: while compiling the profiled plan, in compile order; rendered as
    #: header lines so EXPLAIN ANALYZE shows plan-time choices next to
    #: run-time measurements.
    decisions: list = field(default_factory=list)

    def all_operators(self) -> Iterator[OperatorStats]:
        """Every operator record, pre-order across the roots."""
        for root in self.roots:
            yield from root.walk()

    def operator_cpu_total(self) -> CpuCounters:
        """Sum of the per-operator (exclusive) CPU deltas."""
        total = CpuCounters()
        for stats in self.all_operators():
            total.merge(stats.cpu)
        return total

    def operator_io_ms_total(self) -> float:
        """Sum of the per-operator I/O model milliseconds."""
        return sum(stats.io_ms for stats in self.all_operators())

    @property
    def cpu_model_ms(self) -> float:
        """Global Table 1 CPU model milliseconds."""
        return self.units.cpu_cost_ms(self.cpu)

    @property
    def total_model_ms(self) -> float:
        """Global CPU + I/O model milliseconds (the Table 4 metric)."""
        return self.cpu_model_ms + self.io_ms

    # -- rendering -----------------------------------------------------

    def render(self) -> str:
        """The EXPLAIN ANALYZE tree as indented text."""
        lines = [
            "EXPLAIN ANALYZE  (self-only deltas; Table 1 CPU + Table 3 I/O model ms)",
            "total: {:.3f} model ms  (cpu {:.3f} + io {:.3f})   wall {:.3f} ms".format(
                self.total_model_ms, self.cpu_model_ms, self.io_ms, self.wall_s * 1e3
            ),
            "       Comp={:,} Hash={:,} Move={:,.3f} Bit={:,}".format(
                self.cpu.comparisons, self.cpu.hashes, self.cpu.moves, self.cpu.bit_ops
            ),
        ]
        for decision in self.decisions:
            lines.extend(decision.render().splitlines())
        for root in self.roots:
            lines.extend(self._render_node(root, prefix="", is_last=True, is_root=True))
        return "\n".join(lines)

    def _render_node(
        self, node: OperatorStats, prefix: str, is_last: bool, is_root: bool = False
    ) -> list[str]:
        connector = "" if is_root else ("└─ " if is_last else "├─ ")
        line = (
            f"{prefix}{connector}{node.label}"
            f"  rows={node.rows_out} next={node.next_calls}"
            f"  cpu[Comp={node.cpu.comparisons} Hash={node.cpu.hashes}"
            f" Move={node.cpu.moves:.3f} Bit={node.cpu.bit_ops}]"
            f"  cpu_ms={node.cpu_model_ms(self.units):.3f}"
            f"  io_ms={node.io_ms:.3f}"
            f"  buf[fix={node.buffer['fixes']} miss={node.buffer['misses']}"
            f" evict={node.buffer['evictions']}]"
            f"  wall_ms={node.wall_s * 1e3:.3f}"
        )
        lines = [line]
        child_prefix = prefix if is_root else prefix + ("   " if is_last else "│  ")
        for index, child in enumerate(node.children):
            lines.extend(
                self._render_node(
                    child, child_prefix, is_last=index == len(node.children) - 1
                )
            )
        return lines

    def __str__(self) -> str:
        return self.render()

    def to_dict(self) -> dict:
        """JSON-ready representation (operators, totals, buffer)."""
        return {
            "totals": {
                "cpu": {
                    "comparisons": self.cpu.comparisons,
                    "hashes": self.cpu.hashes,
                    "moves": self.cpu.moves,
                    "bit_ops": self.cpu.bit_ops,
                },
                "cpu_model_ms": self.cpu_model_ms,
                "io_model_ms": self.io_ms,
                "total_model_ms": self.total_model_ms,
                "wall_ms": self.wall_s * 1e3,
            },
            "buffer": dict(self.buffer),
            "planner": [
                {
                    "strategy": decision.strategy,
                    "estimated_ms": decision.choice.estimated_ms,
                    "quotient": list(decision.quotient_names),
                }
                for decision in self.decisions
            ],
            "operators": [root.to_dict(self.units) for root in self.roots],
        }


def build_profile(
    tracer,
    ctx=None,
    units: CostUnits = PAPER_UNITS,
    cpu: CpuCounters | None = None,
    io_ms: float | None = None,
    wall_s: float | None = None,
    decisions: list | None = None,
) -> QueryProfile:
    """Assemble a :class:`QueryProfile` from a tracer (and its context).

    Args:
        tracer: A recording :class:`~repro.obs.span.Tracer` whose
            operator accounting observed the run.
        ctx: The execution context; supplies the global meters when the
            explicit ``cpu`` / ``io_ms`` overrides are not given (use
            the overrides when the context outlives the measured run).
        units: Table 1 weights used for model milliseconds.
        cpu: Global CPU counters for the run window.
        io_ms: Global Table 3 I/O milliseconds for the run window.
        wall_s: Wall-clock seconds for the run window.
        decisions: Planner decisions to attach to the profile (see
            :class:`repro.plan.planner.DivisionDecision`).
    """
    roots = list(tracer.operators.roots) if getattr(tracer, "enabled", False) else []
    if cpu is None:
        cpu = ctx.cpu.snapshot() if ctx is not None else CpuCounters()
    if io_ms is None:
        io_ms = ctx.io_cost_ms() if ctx is not None else 0.0
    if wall_s is None:
        # Exclusive wall sums to inclusive wall over the whole tree.
        wall_s = sum(s.wall_s for root in roots for s in root.walk())
    buffer: dict = {}
    if ctx is not None:
        stats = ctx.pool.stats
        buffer = {
            "fixes": stats.fixes,
            "misses": stats.misses,
            "evictions": stats.evictions,
            "writebacks": stats.writebacks,
            "hit_ratio": stats.hit_ratio,
        }
    return QueryProfile(
        roots=roots,
        cpu=cpu,
        io_ms=io_ms,
        wall_s=wall_s,
        units=units,
        buffer=buffer,
        metrics=getattr(tracer, "metrics", None),
        decisions=list(decisions) if decisions else [],
    )
