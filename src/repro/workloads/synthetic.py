"""Synthetic division workloads -- the paper's experimental inputs.

The experiments (Sections 4.6, 5) use the *assumed case* ``R = Q × S``:
the dividend is exactly the Cartesian product of the quotient and the
divisor, so every dividend tuple participates in the quotient.  Record
shapes match Section 5.1: one 8-byte integer for divisor and quotient
tuples, two for dividend tuples.

Relaxations of the assumed case, for the ablation benchmarks:

* :func:`make_with_nonmatching` adds dividend tuples whose divisor
  value matches no divisor tuple (the paper's "physics course"
  tuples) -- the case where hash-division's early discard pays off,
* :func:`make_with_partial_quotients` removes pairs so only a fraction
  of candidates completes the divisor,
* :func:`make_with_duplicates` duplicates dividend tuples -- the case
  that breaks counter-based variants and unpreprocessed aggregation.
"""

from __future__ import annotations

import random

from repro.errors import WorkloadError
from repro.relalg.relation import Relation
from repro.relalg.schema import Schema

DIVIDEND_SCHEMA = Schema.of_ints("quotient_key", "divisor_key")
DIVISOR_SCHEMA = Schema.of_ints("divisor_key")

#: Divisor values start here so "non-matching" values below can never
#: collide with real ones.
_DIVISOR_BASE = 1_000_000
_NONMATCHING_BASE = 9_000_000


def make_exact_division(
    divisor_tuples: int,
    quotient_tuples: int,
    seed: int = 0,
    shuffle: bool = True,
) -> tuple[Relation, Relation]:
    """The assumed case ``R = Q × S``.

    Returns ``(dividend, divisor)`` where the dividend holds
    ``quotient_tuples * divisor_tuples`` rows and the quotient of the
    division is exactly the ``quotient_tuples`` distinct keys.
    """
    if divisor_tuples < 0 or quotient_tuples < 0:
        raise WorkloadError("sizes must be non-negative")
    divisor_rows = [(_DIVISOR_BASE + i,) for i in range(divisor_tuples)]
    dividend_rows = [
        (q, _DIVISOR_BASE + d)
        for q in range(quotient_tuples)
        for d in range(divisor_tuples)
    ]
    if shuffle:
        random.Random(seed).shuffle(dividend_rows)
    return (
        Relation(DIVIDEND_SCHEMA, dividend_rows, name="dividend"),
        Relation(DIVISOR_SCHEMA, divisor_rows, name="divisor"),
    )


def make_with_nonmatching(
    divisor_tuples: int,
    quotient_tuples: int,
    nonmatching_fraction: float,
    seed: int = 0,
) -> tuple[Relation, Relation]:
    """``R = Q × S`` plus tuples that match no divisor value.

    ``nonmatching_fraction`` is relative to the matching tuple count:
    0.5 adds half as many non-matching tuples as there are matching
    ones.  Hash-division discards them after a single divisor-table
    probe; aggregation without a join would miscount them, so
    benchmarks must pair this workload with ``with_join=True``.
    """
    if not 0.0 <= nonmatching_fraction:
        raise WorkloadError("nonmatching_fraction must be >= 0")
    dividend, divisor = make_exact_division(
        divisor_tuples, quotient_tuples, seed=seed, shuffle=False
    )
    rng = random.Random(seed + 1)
    extra = int(len(dividend) * nonmatching_fraction)
    rows = list(dividend.rows)
    for i in range(extra):
        quotient_key = rng.randrange(max(1, quotient_tuples))
        rows.append((quotient_key, _NONMATCHING_BASE + i))
    rng.shuffle(rows)
    return Relation(DIVIDEND_SCHEMA, rows, name="dividend+nonmatching"), divisor


def make_with_partial_quotients(
    divisor_tuples: int,
    quotient_candidates: int,
    complete_fraction: float,
    seed: int = 0,
) -> tuple[Relation, Relation, int]:
    """Only a fraction of candidates has every divisor value.

    Returns ``(dividend, divisor, expected_quotient_size)``.  Each
    incomplete candidate is missing at least one (random) divisor
    value, so it enters the quotient table but never completes its bit
    map -- the cost regime the paper speculates about at the end of
    Section 4.
    """
    if not 0.0 <= complete_fraction <= 1.0:
        raise WorkloadError("complete_fraction must be within [0, 1]")
    if divisor_tuples <= 0:
        raise WorkloadError("partial-quotient workloads need a non-empty divisor")
    rng = random.Random(seed)
    divisor_rows = [(_DIVISOR_BASE + i,) for i in range(divisor_tuples)]
    complete = int(round(quotient_candidates * complete_fraction))
    rows = []
    for q in range(quotient_candidates):
        values = list(range(divisor_tuples))
        if q >= complete:
            keep = rng.randint(0, divisor_tuples - 1)
            values = rng.sample(range(divisor_tuples), keep)
        for d in values:
            rows.append((q, _DIVISOR_BASE + d))
    rng.shuffle(rows)
    return (
        Relation(DIVIDEND_SCHEMA, rows, name="dividend-partial"),
        Relation(DIVISOR_SCHEMA, divisor_rows, name="divisor"),
        complete,
    )


def make_with_duplicates(
    divisor_tuples: int,
    quotient_tuples: int,
    duplication_factor: float,
    seed: int = 0,
) -> tuple[Relation, Relation]:
    """``R = Q × S`` with randomly duplicated dividend tuples.

    ``duplication_factor`` is the expected number of *extra* copies per
    tuple (0.5 duplicates half the tuples once).  The quotient is
    unchanged -- for algorithms that handle duplicates correctly.
    """
    if duplication_factor < 0:
        raise WorkloadError("duplication_factor must be >= 0")
    dividend, divisor = make_exact_division(
        divisor_tuples, quotient_tuples, seed=seed, shuffle=False
    )
    rng = random.Random(seed + 2)
    rows = list(dividend.rows)
    extras = []
    for row in rows:
        copies = duplication_factor
        while copies >= 1.0:
            extras.append(row)
            copies -= 1.0
        if copies > 0 and rng.random() < copies:
            extras.append(row)
    rows.extend(extras)
    rng.shuffle(rows)
    return Relation(DIVIDEND_SCHEMA, rows, name="dividend+duplicates"), divisor
