"""The university schema -- the paper's running example.

Two relations (Section 2): ``Courses(course_no, title)`` and
``Transcript(student_id, course_no, grade)``.  The example queries are

1. students who have taken *all* courses,
2. students who have taken all courses whose title contains
   ``"database"`` (a restricted divisor -- the case that forces a
   semi-join into the aggregation strategies).

:func:`figure2_transcript` / :func:`figure2_courses` reproduce the
exact Figure 2 instance (Ann, Barb, Database1, Database2, Optics),
where the quotient is Ann alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.relalg.predicates import AttributeContains
from repro.relalg.relation import Relation
from repro.relalg.schema import Attribute, DataType, Schema
from repro.relalg import algebra

TITLE_WIDTH = 24
NAME_WIDTH = 12

COURSES_SCHEMA = Schema(
    (
        Attribute("course_no"),
        Attribute("title", DataType.STRING, TITLE_WIDTH),
    )
)

TRANSCRIPT_SCHEMA = Schema(
    (
        Attribute("student_id"),
        Attribute("course_no"),
        Attribute("grade"),
    )
)

#: Schemas of the Figure 2 instance, which uses names and titles as
#: the visible attributes.
FIGURE2_TRANSCRIPT_SCHEMA = Schema(
    (
        Attribute("student", DataType.STRING, NAME_WIDTH),
        Attribute("course", DataType.STRING, NAME_WIDTH),
    )
)
FIGURE2_COURSES_SCHEMA = Schema((Attribute("course", DataType.STRING, NAME_WIDTH),))


def figure2_transcript() -> Relation:
    """The Figure 2 Transcript instance (already projected/selected)."""
    return Relation(
        FIGURE2_TRANSCRIPT_SCHEMA,
        [
            ("Ann", "Database1"),
            ("Barb", "Database2"),
            ("Ann", "Database2"),
            ("Barb", "Optics"),
        ],
        name="Transcript",
    )


def figure2_courses() -> Relation:
    """The Figure 2 Courses instance (the database courses)."""
    return Relation(
        FIGURE2_COURSES_SCHEMA,
        [("Database1",), ("Database2",)],
        name="Courses",
    )


@dataclass
class UniversityWorkload:
    """A generated university database plus its division inputs."""

    courses: Relation
    transcript: Relation
    database_course_count: int

    def all_courses_divisor(self) -> Relation:
        """π course_no (Courses) -- the first example's divisor."""
        return algebra.project(self.courses, ("course_no",), name="all-courses")

    def database_courses_divisor(self) -> Relation:
        """π course_no (σ title contains 'database' (Courses)) -- the
        second example's restricted divisor."""
        database_courses = algebra.select(
            self.courses, AttributeContains("title", "database")
        )
        return algebra.project(database_courses, ("course_no",), name="db-courses")

    def enrollment_dividend(self) -> Relation:
        """π student_id, course_no (Transcript) -- the dividend of both
        example queries (bag projection; division algorithms that need
        duplicate-free input must eliminate duplicates themselves)."""
        return algebra.project(
            self.transcript,
            ("student_id", "course_no"),
            distinct=False,
            name="enrollment",
        )


def make_university(
    students: int,
    courses: int,
    database_courses: int,
    completionists: int,
    enrollment_probability: float = 0.5,
    seed: int = 0,
) -> UniversityWorkload:
    """Generate a university database with known division answers.

    Args:
        students: Total students.
        courses: Total courses.
        database_courses: How many course titles contain ``"database"``.
        completionists: Students guaranteed to enrol in *every* course
            (the expected quotient of the first example query).
        enrollment_probability: Chance each remaining (student, course)
            pair is enrolled.
        seed: RNG seed; generation is deterministic per seed.

    Raises:
        WorkloadError: for inconsistent sizes.
    """
    if database_courses > courses:
        raise WorkloadError("database_courses cannot exceed courses")
    if completionists > students:
        raise WorkloadError("completionists cannot exceed students")
    if not 0.0 <= enrollment_probability <= 1.0:
        raise WorkloadError("enrollment_probability must be within [0, 1]")
    rng = random.Random(seed)
    course_rows = []
    for course_no in range(courses):
        if course_no < database_courses:
            title = f"database systems {course_no}"
        else:
            title = f"topic {course_no}"
        course_rows.append((course_no, title))
    transcript_rows = []
    for student_id in range(students):
        if student_id < completionists:
            enrolled = range(courses)
        else:
            enrolled = [
                c for c in range(courses) if rng.random() < enrollment_probability
            ]
        for course_no in enrolled:
            grade = rng.randint(0, 4)
            transcript_rows.append((student_id, course_no, grade))
    return UniversityWorkload(
        courses=Relation(COURSES_SCHEMA, course_rows, name="Courses"),
        transcript=Relation(TRANSCRIPT_SCHEMA, transcript_rows, name="Transcript"),
        database_course_count=database_courses,
    )
