"""Workload generators for the paper's examples and experiments.

* :mod:`repro.workloads.university` -- the running example schema
  (Courses, Transcript), including the exact Figure 2 instance,
* :mod:`repro.workloads.synthetic` -- the experimental workloads:
  ``R = Q x S`` (Section 4.6's assumed case) and its relaxations
  (non-matching tuples, partial quotients, duplicates),
* :mod:`repro.workloads.zipf` -- skewed enrolment for partitioning and
  hash-chain ablations.
"""

from repro.workloads.university import (
    UniversityWorkload,
    figure2_courses,
    figure2_transcript,
    make_university,
)
from repro.workloads.synthetic import (
    make_exact_division,
    make_with_duplicates,
    make_with_nonmatching,
    make_with_partial_quotients,
)
from repro.workloads.zipf import make_zipf_enrollment, zipf_weights

__all__ = [
    "UniversityWorkload",
    "figure2_courses",
    "figure2_transcript",
    "make_university",
    "make_exact_division",
    "make_with_nonmatching",
    "make_with_partial_quotients",
    "make_with_duplicates",
    "make_zipf_enrollment",
    "zipf_weights",
]
