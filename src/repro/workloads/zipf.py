"""Zipf-skewed enrolment workloads.

Hash-based algorithms are sensitive to skew in two places: chain
lengths in the hash tables and cluster sizes under hash partitioning
(Sections 3.4, 6).  The paper's uniform ``R = Q × S`` workload cannot
expose either, so this generator draws each candidate's divisor values
with Zipf-distributed popularity: a few divisor values appear in almost
every candidate, most appear rarely.
"""

from __future__ import annotations

import random

from repro.errors import WorkloadError
from repro.relalg.relation import Relation
from repro.workloads.synthetic import DIVIDEND_SCHEMA, DIVISOR_SCHEMA, _DIVISOR_BASE


def zipf_weights(n: int, skew: float) -> list[float]:
    """Normalized Zipf(``skew``) weights for ranks 1..n.

    ``skew = 0`` is uniform; larger values concentrate mass on the
    first ranks.
    """
    if n <= 0:
        raise WorkloadError("n must be positive")
    if skew < 0:
        raise WorkloadError("skew must be >= 0")
    raw = [1.0 / (rank**skew) for rank in range(1, n + 1)]
    total = sum(raw)
    return [w / total for w in raw]


def make_zipf_enrollment(
    divisor_tuples: int,
    quotient_candidates: int,
    enrollments_per_candidate: int,
    skew: float = 1.0,
    completionists: int = 0,
    seed: int = 0,
) -> tuple[Relation, Relation, int]:
    """Skewed division workload.

    Each candidate enrols in ``enrollments_per_candidate`` divisor
    values drawn Zipf(``skew``) without replacement; the first
    ``completionists`` candidates enrol in everything (and are the
    guaranteed quotient members -- other candidates may complete by
    chance, so the returned count is the *guaranteed minimum*).

    Returns ``(dividend, divisor, completionists)``.
    """
    if enrollments_per_candidate > divisor_tuples:
        raise WorkloadError(
            "enrollments_per_candidate cannot exceed divisor_tuples"
        )
    if completionists > quotient_candidates:
        raise WorkloadError("completionists cannot exceed quotient_candidates")
    rng = random.Random(seed)
    weights = zipf_weights(divisor_tuples, skew)
    divisor_rows = [(_DIVISOR_BASE + i,) for i in range(divisor_tuples)]
    rows: list[tuple] = []
    values = list(range(divisor_tuples))
    for candidate in range(quotient_candidates):
        if candidate < completionists:
            chosen = values
        else:
            chosen = _weighted_sample(values, weights, enrollments_per_candidate, rng)
        rows.extend((candidate, _DIVISOR_BASE + v) for v in chosen)
    rng.shuffle(rows)
    return (
        Relation(DIVIDEND_SCHEMA, rows, name="dividend-zipf"),
        Relation(DIVISOR_SCHEMA, divisor_rows, name="divisor"),
        completionists,
    )


def _weighted_sample(
    values: list[int], weights: list[float], k: int, rng: random.Random
) -> list[int]:
    """Draw ``k`` distinct values with probability proportional to
    ``weights`` (simple rejection; fine for workload sizes)."""
    chosen: set[int] = set()
    while len(chosen) < k:
        value = rng.choices(values, weights=weights, k=1)[0]
        chosen.add(value)
    return sorted(chosen)
