"""Command-line interface: regenerate the paper's artifacts from a shell.

Examples::

    python -m repro figure2
    python -m repro table1
    python -m repro table2
    python -m repro table3
    python -m repro table4 --sizes 25x25,100x100 [--profile]
    python -m repro explain --scenario second-example
    python -m repro advisor --dividend 160000 --divisor 400 --restricted
    python -m repro parallel --processors 8 --strategy divisor
    python -m repro profile --strategy hash-division --divisor 25 --quotient 25
    python -m repro chaos --seed 42 --queries 30 --schedule-out faults.jsonl
    python -m repro chaos --scenario serve --rounds 5
    python -m repro serve --clients 4 --requests 8 --compare
    python -m repro --seed 7 serve --clients 2 --tiny-pages --faults --json

A global ``--seed N`` (before the subcommand) overrides every
subcommand's seed, so one flag re-seeds the workload generators
(``repro.workloads.synthetic`` / ``repro.workloads.zipf``), the chaos
campaign, and the serving scheduler together.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

from repro.costmodel.advisor import DivisionEstimates, rank_strategies
from repro.experiments import table1, table2, table3, table4
from repro.experiments.report import render_table


def _cmd_figure2(_args: argparse.Namespace) -> None:
    from repro import divide
    from repro.workloads.university import figure2_courses, figure2_transcript

    transcript = figure2_transcript()
    courses = figure2_courses()
    print("Transcript:", transcript.rows)
    print("Courses:   ", courses.rows)
    quotient = divide(transcript, courses)
    print("Quotient (students who took all database courses):", quotient.rows)


def _cmd_trace(args: argparse.Namespace) -> None:
    trace_cmd = getattr(args, "trace_cmd", None)
    if trace_cmd == "record":
        return _cmd_trace_record(args)
    if trace_cmd == "summarize":
        return _cmd_trace_summarize(args)
    if trace_cmd == "export":
        return _cmd_trace_export(args)
    # Default (no sub-command): narrate the worked example, the
    # original behaviour of `repro trace`.
    from repro.core.trace import trace_hash_division
    from repro.workloads.university import figure2_courses, figure2_transcript

    trace = trace_hash_division(figure2_transcript(), figure2_courses())
    print("Hash-division of the Figure 2 example, step by step (\u00a73.2):\n")
    print(trace.render())
    print(f"\nquotient: {trace.quotient}")


def _traced_run(args: argparse.Namespace):
    """Run one strategy with a recording tracer + I/O event log.

    Returns ``(run, ctx, log)`` so callers can verify conservation
    against the live statistics before the context goes away.
    """
    from repro.executor.iterator import ExecContext
    from repro.experiments.runner import run_strategy
    from repro.obs import IoEventLog, Tracer
    from repro.storage.catalog import Catalog
    from repro.workloads.synthetic import make_exact_division
    from repro.workloads.university import figure2_courses, figure2_transcript

    if args.workload == "figure2":
        dividend, divisor = figure2_transcript(), figure2_courses()
        expected_quotient = 1
    else:
        dividend, divisor = make_exact_division(
            args.divisor, args.quotient, seed=args.seed
        )
        expected_quotient = args.quotient
    tracer = Tracer()
    log = IoEventLog(capacity=args.capacity)
    ctx = ExecContext(tracer=tracer, io_trace=log)
    catalog = Catalog(ctx.pool, ctx.data_disk)
    catalog.store(dividend, name="dividend", cold=True)
    catalog.store(divisor, name="divisor", cold=True)
    # Storing is setup, not the measured experiment: reset counters and
    # event log together so the trace and the statistics describe the
    # same window (the conservation precondition).
    ctx.reset_meters()
    run = run_strategy(
        args.strategy,
        ctx,
        catalog,
        "dividend",
        "divisor",
        expected_quotient=expected_quotient,
    )
    return run, ctx, log


def _cmd_trace_record(args: argparse.Namespace) -> None:
    from repro.obs import (
        render_summary,
        verify_attribution,
        write_chrome_trace,
        write_jsonl,
    )

    run, ctx, log = _traced_run(args)
    print(
        f"division: {args.strategy}  |R|={run.dividend_tuples} "
        f"|S|={run.divisor_tuples} -> quotient {run.quotient_tuples} tuples "
        f"(cpu {run.cpu_ms:.1f} ms, io {run.io_ms:.1f} ms)"
    )
    print()
    print(render_summary(log, ctx.io_stats, top_n=args.top))
    if run.profile is not None:
        print(str(verify_attribution(log, run.profile)))
    if args.jsonl:
        write_jsonl(args.jsonl, log.events())
        print(f"wrote {len(log)} events to {args.jsonl}")
    if args.chrome:
        write_chrome_trace(args.chrome, log.events())
        print(f"wrote Chrome trace to {args.chrome} (open in chrome://tracing)")


def _cmd_trace_summarize(args: argparse.Namespace) -> None:
    from repro.obs import IoEventLog, read_jsonl, render_summary

    # Rebuild a log so render_summary sees the same shape as a live run
    # (no statistics: summary shows replayed costs, not conservation).
    log = IoEventLog.from_events(read_jsonl(args.file))
    print(render_summary(log, top_n=args.top))


def _cmd_trace_export(args: argparse.Namespace) -> None:
    from repro.obs import write_chrome_trace, write_jsonl

    run, _ctx, log = _traced_run(args)
    if args.format == "chrome":
        write_chrome_trace(args.out, log.events())
    else:
        write_jsonl(args.out, log.events())
    print(
        f"recorded {len(log)} events ({args.strategy}, "
        f"|R|={run.dividend_tuples}) -> {args.out} [{args.format}]"
    )


def _cmd_table1(_args: argparse.Namespace) -> None:
    print(table1.render())


def _cmd_table2(_args: argparse.Namespace) -> None:
    print(table2.render())
    print(f"\nworst deviation vs paper: {table2.max_deviation():.4%}")


def _cmd_table3(_args: argparse.Namespace) -> None:
    print(table3.render())


def _parse_sizes(text: str) -> tuple[tuple[int, int], ...]:
    sizes = []
    for chunk in text.split(","):
        s, sep, q = chunk.partition("x")
        if not sep or not s.strip().isdigit() or not q.strip().isdigit():
            raise SystemExit(
                f"--sizes expects comma-separated |S|x|Q| points "
                f"(e.g. 25x25,100x100), got {chunk!r}"
            )
        sizes.append((int(s), int(q)))
    return tuple(sizes)


def _cmd_table4(args: argparse.Namespace) -> None:
    sizes = _parse_sizes(args.sizes) if args.sizes else table4.TABLE2_SIZES
    rows = []
    for s, q in sizes:
        print(f"running |S|={s}, |Q|={q} ...", file=sys.stderr)
        rows.append(table4.run_point(s, q, profile=args.profile))
    print(table4.render(rows))
    if args.profile:
        for row in rows:
            for strategy, run in row.runs.items():
                if run.profile is None:
                    continue
                print()
                print(
                    f"-- profile: |S|={row.divisor_tuples} "
                    f"|Q|={row.quotient_tuples} {strategy}"
                )
                print(run.profile.render())


def _cmd_profile(args: argparse.Namespace) -> None:
    from repro.experiments.runner import run_strategy_on_relations
    from repro.obs import Tracer, profile_to_json, render_prometheus
    from repro.workloads.synthetic import make_exact_division
    from repro.workloads.university import figure2_courses, figure2_transcript

    if args.workload == "figure2":
        dividend, divisor = figure2_transcript(), figure2_courses()
        expected_quotient = 1
    else:
        dividend, divisor = make_exact_division(
            args.divisor, args.quotient, seed=args.seed
        )
        expected_quotient = args.quotient
    tracer = Tracer()
    run = run_strategy_on_relations(
        args.strategy,
        dividend,
        divisor,
        expected_quotient=expected_quotient,
        tracer=tracer,
    )
    assert run.profile is not None  # recording tracer was supplied
    if args.format == "json":
        print(profile_to_json(run.profile))
    elif args.format == "prom":
        print(render_prometheus(tracer.metrics), end="")
    else:
        print(
            f"division: {args.strategy}  |R|={run.dividend_tuples} "
            f"|S|={run.divisor_tuples} -> quotient {run.quotient_tuples} tuples"
        )
        print(run.profile.render())


#: Named workload scenarios for `repro explain`.
EXPLAIN_SCENARIOS = ("figure2", "first-example", "second-example", "synthetic")


def _explain_query(args: argparse.Namespace):
    """Build the ``contains`` query of one named scenario (no execution)."""
    from repro.query import Query
    from repro.relalg.predicates import AttributeContains

    if args.scenario == "figure2":
        from repro.workloads.university import figure2_courses, figure2_transcript

        return Query(figure2_transcript()).contains(Query(figure2_courses()))
    if args.scenario == "synthetic":
        from repro.workloads.synthetic import make_exact_division

        dividend, divisor = make_exact_division(
            args.divisor, args.quotient, seed=args.seed
        )
        return Query(dividend).contains(Query(divisor))
    from repro.workloads.university import make_university

    workload = make_university(
        students=args.students,
        courses=args.courses,
        database_courses=max(1, args.courses // 4),
        completionists=max(1, args.students // 10),
        seed=args.seed,
    )
    enrollment = Query(workload.transcript).project("student_id", "course_no")
    if args.scenario == "first-example":
        # "Students who have taken all courses" -- unrestricted divisor.
        divisor = Query(workload.courses).project("course_no")
    else:
        # "Students who have taken all *database* courses" -- the
        # restricted divisor that disqualifies the no-join counters.
        divisor = (
            Query(workload.courses)
            .where(AttributeContains("title", "database"))
            .project("course_no")
        )
    return enrollment.contains(divisor)


def _cmd_explain(args: argparse.Namespace) -> None:
    print(_explain_query(args).explain())


def _cmd_advisor(args: argparse.Namespace) -> None:
    estimates = DivisionEstimates(
        dividend_tuples=args.dividend,
        divisor_tuples=args.divisor,
        quotient_tuples=args.quotient,
        divisor_restricted=args.restricted,
        may_contain_duplicates=args.duplicates,
    )
    ranked = rank_strategies(estimates)
    print(
        render_table(
            ("rank", "strategy", "estimated ms", "note"),
            [
                (position + 1, entry.strategy, entry.estimated_ms, entry.note)
                for position, entry in enumerate(ranked)
            ],
            title="Division strategies, cheapest first "
            f"(|R|={args.dividend}, |S|={args.divisor}).",
        )
    )


def _cmd_chaos(args: argparse.Namespace) -> None:
    import json as _json

    from repro.faults.chaos import run_campaign, run_serve_campaign

    if args.scenario == "serve":
        serve_report = run_serve_campaign(
            seed=args.seed,
            rounds=args.rounds,
            memory_budget=args.memory_budget,
            max_seconds=args.max_seconds,
        )
        if args.json:
            print(_json.dumps(serve_report.to_dict(), indent=2, sort_keys=True))
        else:
            print(serve_report.summary_line())
            for violation in serve_report.violations():
                print(f"  VIOLATION: {violation}")
        if not serve_report.ok:
            raise SystemExit(1)
        return

    report = run_campaign(
        seed=args.seed,
        queries=args.queries,
        divisor_tuples=args.divisor,
        quotient_tuples=args.quotient,
        memory_budget=args.memory_budget,
        max_seconds=args.max_seconds,
    )
    if args.schedule_out:
        with open(args.schedule_out, "w", encoding="utf-8") as handle:
            handle.write(report.schedule_jsonl())
        print(
            f"wrote {report.faults_fired} fault-schedule lines to "
            f"{args.schedule_out}",
            file=sys.stderr,
        )
    if args.json:
        print(_json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.summary_line())
        errors: dict[str, int] = {}
        for record in report.records:
            if record.outcome.error_type is not None:
                errors[record.outcome.error_type] = (
                    errors.get(record.outcome.error_type, 0) + 1
                )
        if errors:
            breakdown = ", ".join(
                f"{name} x{count}" for name, count in sorted(errors.items())
            )
            print(f"  typed errors: {breakdown}")
        for violation in report.violations():
            print(f"  VIOLATION: {violation}")
    if not report.ok:
        raise SystemExit(1)


def _cmd_serve(args: argparse.Namespace) -> None:
    import json as _json
    import random as _random

    from repro.serve.bench import (
        SMOKE_CONFIG,
        LoadConfig,
        cache_comparison,
        export_serve_bench,
        run_load,
    )

    fault_rules: tuple = ()
    if args.faults:
        from repro.faults.chaos import default_chaos_rules

        fault_rules = tuple(
            default_chaos_rules(_random.Random(args.fault_seed ^ 0x5E12E))
        )
    config = LoadConfig(
        clients=args.clients,
        requests_per_client=args.requests,
        seed=args.seed,
        skew=args.skew,
        table_pairs=args.tables,
        divisor_tuples=args.divisor,
        quotient_tuples=args.quotient,
        update_fraction=args.update_fraction,
        deadline_ms=args.deadline_ms,
        plan_cache=not args.no_plan_cache,
        result_cache=not args.no_result_cache,
        memory_budget=args.memory_budget,
        storage_config=SMOKE_CONFIG if args.tiny_pages else None,
        fault_rules=fault_rules,
        fault_seed=args.fault_seed,
    )
    baseline = None
    if args.compare:
        report, baseline, speedup = cache_comparison(config)
    else:
        report = run_load(config)
    if args.replay_check:
        replay = run_load(config)
        if (
            replay.trace_digest != report.trace_digest
            or replay.to_dict() != report.to_dict()
        ):
            print(
                "REPLAY DIVERGED: "
                f"{report.trace_digest[:16]} != {replay.trace_digest[:16]}",
                file=sys.stderr,
            )
            raise SystemExit(1)
        print(
            f"replay check ok: digest {report.trace_digest[:16]} reproduced",
            file=sys.stderr,
        )
    if args.bench_out:
        path = export_serve_bench(
            args.bench_out, args.bench_name, report, baseline=baseline
        )
        print(f"wrote BENCH artifact to {path}", file=sys.stderr)
    if args.json:
        payload = report.to_dict()
        if baseline is not None:
            payload["baseline"] = baseline.to_dict()
            payload["cache_speedup"] = round(speedup, 4)
        print(_json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(report.summary_line())
        if baseline is not None:
            print(baseline.summary_line())
            print(f"result-cache speedup: {speedup:.2f}x (virtual throughput)")
    if report.untyped_failures:
        for line in report.untyped_failures:
            print(f"  UNTYPED FAILURE: {line}", file=sys.stderr)
        raise SystemExit(1)
    if report.oracle_mismatches:
        print(
            f"  ORACLE MISMATCHES: {report.oracle_mismatches}", file=sys.stderr
        )
        raise SystemExit(1)


def _cmd_parallel(args: argparse.Namespace) -> None:
    from repro.parallel import parallel_hash_division
    from repro.workloads.synthetic import make_exact_division

    dividend, divisor = make_exact_division(
        args.divisor, args.quotient, seed=args.seed
    )
    result = parallel_hash_division(
        dividend,
        divisor,
        args.processors,
        strategy=args.strategy,
        bit_vector_bits=args.bitvector,
    )
    print(result)
    print(f"  elapsed:      {result.elapsed_ms:,.1f} model ms")
    print(f"  total work:   {result.total_work_ms:,.1f} model ms")
    print(f"  network:      {result.network.total_bytes:,} bytes")
    print(f"  shipped:      {result.dividend_tuples_shipped:,} dividend tuples")
    print(f"  filtered:     {result.dividend_tuples_filtered:,} dividend tuples")


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Relational division: four algorithms and their performance "
        "(reproduction CLI).",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        dest="global_seed",
        metavar="N",
        help="global seed override: takes precedence over any "
        "subcommand --seed, re-seeding the workload generators "
        "(repro.workloads), the chaos campaign, and the serving "
        "scheduler from one flag",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("figure2", help="run the worked example").set_defaults(
        handler=_cmd_figure2
    )
    from repro.experiments.runner import STRATEGIES as _STRATEGIES

    trace_parser = commands.add_parser(
        "trace",
        help="narrate the worked example, or record/summarize/export "
        "page-level I/O event traces (repro.obs.iotrace)",
        description="Without a sub-command: narrate hash-division on the "
        "Figure 2 worked example, step by step.  With a sub-command: "
        "record every physical page transfer of one strategy run into "
        "the bounded I/O event log, verify the Table 3 cost model "
        "conserves (replayed per-event cost == reported aggregate cost), "
        "and export the events as JSONL or Chrome trace_event JSON.",
    )
    trace_parser.set_defaults(handler=_cmd_trace)
    trace_sub = trace_parser.add_subparsers(dest="trace_cmd")

    def _add_trace_workload_args(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--strategy",
            choices=_STRATEGIES,
            default="hash-division",
            help="division strategy to trace (default: hash-division)",
        )
        sub.add_argument(
            "--workload",
            choices=("figure2", "synthetic"),
            default="synthetic",
            help="the paper's worked example, or an R = Q x S workload",
        )
        sub.add_argument(
            "--divisor", type=int, default=25, help="|S| for --workload synthetic"
        )
        sub.add_argument(
            "--quotient", type=int, default=25, help="|Q| for --workload synthetic"
        )
        sub.add_argument("--seed", type=int, default=0)
        sub.add_argument(
            "--capacity",
            type=int,
            default=1 << 16,
            help="event ring-buffer capacity (drops invalidate conservation)",
        )

    record_parser = trace_sub.add_parser(
        "record",
        help="run one strategy, print the I/O trace summary and the "
        "conservation/attribution verdicts",
    )
    _add_trace_workload_args(record_parser)
    record_parser.add_argument(
        "--top", type=int, default=5, help="seek offenders to list (default: 5)"
    )
    record_parser.add_argument(
        "--jsonl", metavar="PATH", help="also write the events as JSONL"
    )
    record_parser.add_argument(
        "--chrome", metavar="PATH", help="also write a Chrome trace_event file"
    )

    summarize_parser = trace_sub.add_parser(
        "summarize", help="summarize a previously recorded JSONL event file"
    )
    summarize_parser.add_argument("file", help="JSONL file from `trace record --jsonl`")
    summarize_parser.add_argument(
        "--top", type=int, default=5, help="seek offenders to list (default: 5)"
    )

    export_parser = trace_sub.add_parser(
        "export",
        help="run one strategy and write its event trace to a file",
    )
    _add_trace_workload_args(export_parser)
    export_parser.add_argument(
        "--format",
        choices=("chrome", "jsonl"),
        default="chrome",
        help="Chrome trace_event JSON (chrome://tracing / Perfetto) or JSONL",
    )
    export_parser.add_argument("--out", required=True, metavar="PATH")
    commands.add_parser("table1", help="print the cost units").set_defaults(
        handler=_cmd_table1
    )
    commands.add_parser(
        "table2", help="recompute the analytical comparison"
    ).set_defaults(handler=_cmd_table2)
    commands.add_parser("table3", help="print the I/O weights").set_defaults(
        handler=_cmd_table3
    )

    table4_parser = commands.add_parser(
        "table4", help="run the experimental comparison"
    )
    table4_parser.add_argument(
        "--sizes",
        help="comma-separated |S|x|Q| points, e.g. 25x25,100x100 "
        "(default: the paper's nine points)",
    )
    table4_parser.add_argument(
        "--profile",
        action="store_true",
        help="run each strategy under the tracer and print its "
        "EXPLAIN ANALYZE operator tree",
    )
    table4_parser.set_defaults(handler=_cmd_table4)

    profile_parser = commands.add_parser(
        "profile",
        help="EXPLAIN ANALYZE one division strategy (repro.obs)",
        description="Run one division strategy over cold stored relations "
        "under the span tracer and render the per-operator profile: rows, "
        "next() calls, Comp/Hash/Move/Bit deltas, buffer and I/O activity, "
        "and Table 1/Table 3 model milliseconds.",
    )
    from repro.experiments.runner import STRATEGIES

    profile_parser.add_argument(
        "--strategy",
        choices=STRATEGIES,
        default="hash-division",
        help="division strategy to profile (default: hash-division)",
    )
    profile_parser.add_argument(
        "--workload",
        choices=("figure2", "synthetic"),
        default="figure2",
        help="the paper's worked example, or an R = Q x S workload",
    )
    profile_parser.add_argument(
        "--divisor", type=int, default=25, help="|S| for --workload synthetic"
    )
    profile_parser.add_argument(
        "--quotient", type=int, default=25, help="|Q| for --workload synthetic"
    )
    profile_parser.add_argument("--seed", type=int, default=0)
    profile_parser.add_argument(
        "--format",
        choices=("tree", "json", "prom"),
        default="tree",
        help="profile tree, JSON document, or Prometheus text metrics",
    )
    profile_parser.set_defaults(handler=_cmd_profile)

    explain_parser = commands.add_parser(
        "explain",
        help="render the compiled physical plan of a contains query "
        "(no execution)",
        description="Build one of the paper's example queries as a "
        "Query ... contains pipeline, compile it through the planner "
        "(the cost advisor picks the division operator at plan time), "
        "and print the decision plus the physical operator tree -- "
        "without executing the plan.",
    )
    explain_parser.add_argument(
        "--scenario",
        choices=EXPLAIN_SCENARIOS,
        default="second-example",
        help="figure2: the worked example; first-example: all courses "
        "(unrestricted divisor); second-example: all *database* courses "
        "(restricted divisor); synthetic: an R = Q x S workload "
        "(default: second-example)",
    )
    explain_parser.add_argument(
        "--students", type=int, default=40, help="university students"
    )
    explain_parser.add_argument(
        "--courses", type=int, default=12, help="university courses"
    )
    explain_parser.add_argument(
        "--divisor", type=int, default=25, help="|S| for --scenario synthetic"
    )
    explain_parser.add_argument(
        "--quotient", type=int, default=25, help="|Q| for --scenario synthetic"
    )
    explain_parser.add_argument("--seed", type=int, default=0)
    explain_parser.set_defaults(handler=_cmd_explain)

    advisor_parser = commands.add_parser(
        "advisor", help="rank strategies for given input estimates"
    )
    advisor_parser.add_argument("--dividend", type=int, required=True)
    advisor_parser.add_argument("--divisor", type=int, required=True)
    advisor_parser.add_argument("--quotient", type=int, default=0)
    advisor_parser.add_argument("--restricted", action="store_true")
    advisor_parser.add_argument("--duplicates", action="store_true")
    advisor_parser.set_defaults(handler=_cmd_advisor)

    chaos_parser = commands.add_parser(
        "chaos",
        help="run a deterministic fault-injection campaign (repro.faults)",
        description="Replay a seeded chaos campaign: each query runs the "
        "full planner -> executor path over cold stored relations on "
        "fault-injected devices, and must either return the oracle-equal "
        "answer or raise a typed ReproError -- with no fixed buffer "
        "frames, no live memory-pool bytes, no surviving temp/run pages, "
        "and exact Table 3 cost-meter conservation afterwards.  The same "
        "seed replays the same campaign byte-for-byte; exits 1 if any "
        "invariant is violated.",
    )
    chaos_parser.add_argument(
        "--scenario",
        choices=("query", "serve"),
        default="query",
        help="query: one division at a time through the planner path "
        "(the original campaign); serve: concurrent clients, caches, "
        "admission, and updates through repro.serve under the same "
        "fault programmes (default: query)",
    )
    chaos_parser.add_argument(
        "--seed", type=int, default=0, help="campaign seed (default: 0)"
    )
    chaos_parser.add_argument(
        "--queries", type=int, default=30, help="queries to run (default: 30)"
    )
    chaos_parser.add_argument(
        "--rounds",
        type=int,
        default=5,
        help="service rounds for --scenario serve (default: 5)",
    )
    chaos_parser.add_argument(
        "--divisor", type=int, default=8, help="|S| per query (default: 8)"
    )
    chaos_parser.add_argument(
        "--quotient", type=int, default=32, help="|Q| per query (default: 32)"
    )
    chaos_parser.add_argument(
        "--memory-budget",
        type=int,
        default=None,
        help="fixed memory budget in bytes (default: drawn per run, "
        "including overflow-inducing choices)",
    )
    chaos_parser.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        help="wall-clock cap: truncate the campaign after this many "
        "seconds (never changes what any individual run does)",
    )
    chaos_parser.add_argument(
        "--schedule-out",
        metavar="PATH",
        help="write the campaign's fault schedule as JSONL "
        "(byte-identical across replays of the same seed)",
    )
    chaos_parser.add_argument(
        "--json", action="store_true", help="print the full report as JSON"
    )
    chaos_parser.set_defaults(handler=_cmd_chaos)

    parallel_parser = commands.add_parser(
        "parallel", help="simulate shared-nothing hash-division"
    )
    parallel_parser.add_argument("--processors", type=int, default=8)
    parallel_parser.add_argument(
        "--strategy", choices=("quotient", "divisor"), default="quotient"
    )
    parallel_parser.add_argument("--divisor", type=int, default=100)
    parallel_parser.add_argument("--quotient", type=int, default=400)
    parallel_parser.add_argument("--bitvector", type=int, default=None)
    parallel_parser.add_argument(
        "--seed", type=int, default=0, help="workload seed (default: 0)"
    )
    parallel_parser.set_defaults(handler=_cmd_parallel)

    serve_parser = commands.add_parser(
        "serve",
        help="run the concurrent-serving load harness (repro.serve)",
        description="Drive N simulated clients through the deterministic "
        "query service: Zipf-skewed division mixes with optional catalog "
        "updates, admission control against the memory budget, and "
        "version-invalidated plan/result caches.  All reported times are "
        "virtual model milliseconds, so one seed reproduces one run "
        "byte-for-byte (--replay-check proves it).  Exits 1 on any "
        "untyped failure or serial-order-oracle mismatch.",
    )
    serve_parser.add_argument(
        "--clients", type=int, default=4, help="simulated clients (default: 4)"
    )
    serve_parser.add_argument(
        "--requests",
        type=int,
        default=8,
        help="requests per client (default: 8)",
    )
    serve_parser.add_argument(
        "--seed", type=int, default=0, help="harness seed (default: 0)"
    )
    serve_parser.add_argument(
        "--skew",
        type=float,
        default=1.0,
        help="Zipf exponent over table popularity (0 = uniform; default: 1)",
    )
    serve_parser.add_argument(
        "--tables", type=int, default=4, help="stored table pairs (default: 4)"
    )
    serve_parser.add_argument(
        "--divisor", type=int, default=4, help="|S| per pair (default: 4)"
    )
    serve_parser.add_argument(
        "--quotient", type=int, default=16, help="|Q| per pair (default: 16)"
    )
    serve_parser.add_argument(
        "--update-fraction",
        type=float,
        default=0.0,
        help="probability a request is an insert (default: 0)",
    )
    serve_parser.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="per-request deadline in model ms (default: none)",
    )
    serve_parser.add_argument(
        "--memory-budget",
        type=int,
        default=1 << 20,
        help="admission capacity in bytes (default: 1 MiB)",
    )
    serve_parser.add_argument(
        "--no-plan-cache", action="store_true", help="disable the plan cache"
    )
    serve_parser.add_argument(
        "--no-result-cache",
        action="store_true",
        help="disable the result cache",
    )
    serve_parser.add_argument(
        "--tiny-pages",
        action="store_true",
        help="use the 512-byte smoke storage configuration",
    )
    serve_parser.add_argument(
        "--faults",
        action="store_true",
        help="attach a seeded fault programme after the fault-free load",
    )
    serve_parser.add_argument(
        "--fault-seed", type=int, default=0, help="fault schedule seed"
    )
    serve_parser.add_argument(
        "--compare",
        action="store_true",
        help="also run with caches off and report the throughput speedup",
    )
    serve_parser.add_argument(
        "--replay-check",
        action="store_true",
        help="run twice and fail unless the interleaving digest and full "
        "report reproduce byte-for-byte",
    )
    serve_parser.add_argument(
        "--bench-out",
        metavar="DIR",
        help="write a schema-v4 BENCH_<name>.json artifact here",
    )
    serve_parser.add_argument(
        "--bench-name",
        default="serve_load",
        help="BENCH artifact name (default: serve_load)",
    )
    serve_parser.add_argument(
        "--json", action="store_true", help="print the full report as JSON"
    )
    serve_parser.set_defaults(handler=_cmd_serve)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    A closed output pipe (``repro table4 | head``) is a normal way for
    a consumer to stop reading, not a crash: the handler's
    ``BrokenPipeError`` is swallowed, stdout is redirected to devnull
    so the interpreter's exit-time flush cannot raise again, and the
    conventional ``128 + SIGPIPE`` exit code is returned.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "global_seed", None) is not None:
        # The global flag wins over any subcommand --seed: one knob
        # re-seeds workload generation, chaos, and serving together.
        args.seed = args.global_seed
    try:
        args.handler(args)
    except BrokenPipeError:
        try:
            devnull = os.open(os.devnull, os.O_WRONLY)
            os.dup2(devnull, sys.stdout.fileno())
        except (OSError, ValueError):  # pragma: no cover - capture objects
            pass
        return 128 + 13  # SIGPIPE
    return 0
