"""Index (semi-)joins.

Section 2.2.1 lists index join among the join methods usable before
sort-based aggregation ("typically merge join, index join, or their
semi-join versions").  These operators probe a
:class:`~repro.storage.index.SecondaryIndex` per outer tuple:

* :class:`IndexSemiJoin` passes outer tuples with at least one index
  match (an existence probe -- no record fetch, no random I/O),
* :class:`IndexJoin` additionally fetches the matching inner records
  by RID, paying random record access through the buffer pool.

An index join shines when the outer input is small relative to the
indexed relation; for the division workloads -- where the *dividend*
is the big input -- the benchmarks show exactly when it loses to the
hash semi-join.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ExecutionError
from repro.executor.iterator import QueryIterator
from repro.relalg.tuples import Row, projector
from repro.storage.index import SecondaryIndex


class IndexSemiJoin(QueryIterator):
    """Outer tuples with at least one match in the index.

    Args:
        outer: The probing input; its tuples are produced.
        index: Secondary index on the inner relation; its key
            attributes must all exist in the outer schema (matched by
            name).
    """

    def __init__(self, outer: QueryIterator, index: SecondaryIndex) -> None:
        super().__init__(outer.ctx, outer.schema)
        missing = [n for n in index.key_names if n not in outer.schema]
        if missing:
            raise ExecutionError(
                f"index key attributes {missing} not in outer schema "
                f"{outer.schema.names}"
            )
        self.outer = outer
        self.index = index
        self._key_of = projector(outer.schema, index.key_names)

    def _open(self) -> None:
        self.outer.open()

    def _next(self) -> Optional[Row]:
        while True:
            row = self.outer.next()
            if row is None:
                return None
            if self.index.contains(self._key_of(row)):
                return row

    def _close(self) -> None:
        self.outer.close()

    def children(self) -> tuple[QueryIterator, ...]:
        return (self.outer,)

    def describe(self) -> str:
        return f"IndexSemiJoin(on={','.join(self.index.key_names)})"


class IndexJoin(QueryIterator):
    """Join the outer input with the indexed relation by index probes.

    Output: outer attributes followed by the inner attributes not in
    the join key.  Each match is fetched by RID -- random access that
    the buffer pool prices as random I/O when cold.
    """

    def __init__(self, outer: QueryIterator, index: SecondaryIndex) -> None:
        inner_schema = index.stored.schema
        inner_rest = [
            n for n in inner_schema.names if n not in set(index.key_names)
        ]
        schema = (
            outer.schema.concat(inner_schema.project(inner_rest))
            if inner_rest
            else outer.schema
        )
        super().__init__(outer.ctx, schema)
        missing = [n for n in index.key_names if n not in outer.schema]
        if missing:
            raise ExecutionError(
                f"index key attributes {missing} not in outer schema "
                f"{outer.schema.names}"
            )
        self.outer = outer
        self.index = index
        self._key_of = projector(outer.schema, index.key_names)
        self._rest_of = (
            projector(inner_schema, inner_rest) if inner_rest else (lambda row: ())
        )
        self._pending: list[Row] = []

    def _open(self) -> None:
        self.outer.open()
        self._pending = []

    def _next(self) -> Optional[Row]:
        while True:
            if self._pending:
                return self._pending.pop()
            row = self.outer.next()
            if row is None:
                return None
            matches = list(self.index.fetch(self._key_of(row)))
            if matches:
                self._pending = [row + self._rest_of(inner) for inner in matches]

    def _close(self) -> None:
        self.outer.close()
        self._pending = []

    def children(self) -> tuple[QueryIterator, ...]:
        return (self.outer,)

    def describe(self) -> str:
        return f"IndexJoin(on={','.join(self.index.key_names)})"
