"""External merge sort with early aggregation and duplicate elimination.

The paper's sort (Sections 2.2.1 and 5.1):

* run generation quick-sorts buffer-sized chunks; runs go to 1 KB-page
  temp files "to allow high fan-in",
* "aggregation and duplicate elimination [happen] as early as
  possible, i.e., no intermediate run contains duplicate sort keys",
* opening the operator "prepares sorted runs and merges them until
  only one merge step is left.  The final merge is performed on demand
  by the next function" (footnote 2) -- so sort is a stop-and-go
  operator on open, streaming on next.

CPU metering follows the paper's own model: run generation charges the
quicksort bound ``2·n·log2(n)`` comparisons per run, merging charges
``log2(fan-in)`` comparisons per tuple popped, and each
aggregate/duplicate collapse charges one comparison per adjacent pair
inspected.

Aggregation during sorting is expressed with a :class:`Reducer`: every
input row is first mapped through ``init`` (e.g. ``(sid, cid) ->
(sid, 1)``) and rows with equal sort keys are folded with ``combine``
(e.g. add the counts).  ``distinct=True`` is the special case "keep the
first of equal rows".
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Sequence

from repro.errors import ExecutionError
from repro.executor.iterator import QueryIterator
from repro.relalg.schema import Schema
from repro.relalg.tuples import Row, projector
from repro.storage.heapfile import HeapFile


@dataclass(frozen=True)
class Reducer:
    """Fold rows with equal sort keys into one row.

    Attributes:
        output_schema: Schema of transformed rows (``init`` output).
        init: Map an input row to its one-row accumulator.
        combine: Fold two accumulators with equal sort keys.
    """

    output_schema: Schema
    init: Callable[[Row], Row]
    combine: Callable[[Row, Row], Row]


def count_reducer(input_schema: Schema, group_names: Sequence[str]) -> Reducer:
    """Reducer computing ``COUNT(*)`` per group during sorting.

    Output schema is the group attributes followed by a ``count``
    column -- the paper's "aggregate function" shape for division by
    counting.
    """
    from repro.relalg.schema import Attribute

    output_schema = Schema(
        tuple(input_schema.project(group_names)) + (Attribute("count"),)
    )
    extract = projector(input_schema, group_names)

    def init(row: Row) -> Row:
        return extract(row) + (1,)

    def combine(a: Row, b: Row) -> Row:
        return a[:-1] + (a[-1] + b[-1],)

    return Reducer(output_schema, init, combine)


class ExternalSort(QueryIterator):
    """Sort (and optionally aggregate) the input on ``key_names``.

    Args:
        input_op: Producer of the rows to sort.
        key_names: Sort key attributes, major first.  They must exist
            in the (possibly reduced) output schema.
        distinct: Eliminate rows with duplicate *full-row* value.  When
            the sort key covers the whole row this happens during run
            generation; otherwise the first row of each key group wins
            only if rows are full duplicates, so callers wanting
            key-level collapse should pass a :class:`Reducer`.
        reducer: Early-aggregation specification; mutually exclusive
            with ``distinct``.
    """

    def __init__(
        self,
        input_op: QueryIterator,
        key_names: Sequence[str],
        distinct: bool = False,
        reducer: Reducer | None = None,
    ) -> None:
        if distinct and reducer is not None:
            raise ExecutionError("pass either distinct=True or a reducer, not both")
        schema = reducer.output_schema if reducer is not None else input_op.schema
        super().__init__(input_op.ctx, schema)
        self.input_op = input_op
        self.key_names = tuple(key_names)
        self.distinct = distinct
        self.reducer = reducer
        self._codec = schema.codec()
        self._key = projector(schema, self.key_names)
        self._runs: list[HeapFile] = []
        self._output: Iterator[Row] | None = None
        self.merge_passes_performed = 0
        #: Initial runs spilled to run files during run generation
        #: (0 for an in-memory sort); surfaced as
        #: ``repro_sort_spill_runs_total``.
        self.runs_spilled = 0
        #: Length in rows of each initial run, in spill order; surfaced
        #: as the ``repro_sort_run_length_rows`` histogram.
        self.run_lengths: list[int] = []

    # -- open: run generation + all but the final merge ------------------

    def _open(self) -> None:
        self.merge_passes_performed = 0
        self.runs_spilled = 0
        self.run_lengths = []
        capacity = self.ctx.config.sort_run_capacity_records(self._codec.record_size)
        self.input_op.open()
        try:
            try:
                in_memory = self._generate_runs(capacity)
            finally:
                self.input_op.close()
            if in_memory is not None:
                self._output = iter(in_memory)
                return
            fan_in = self.ctx.config.sort_fan_in
            while len(self._runs) > fan_in:
                self._runs = self._merge_pass(self._runs, fan_in)
                self.merge_passes_performed += 1
            self._output = self._merge_streams(
                [self._run_rows(run) for run in self._runs]
            )
        except BaseException:
            # A failed open never reaches _close (the state machine
            # stays CLOSED), so spilled run files must be destroyed
            # here or they leak on the run device.
            for run in self._runs:
                run.destroy()
            self._runs = []
            raise

    def _next(self) -> Optional[Row]:
        assert self._output is not None
        return next(self._output, None)

    def _close(self) -> None:
        self._output = None
        for run in self._runs:
            run.destroy()
        self._runs = []
        # A re-open must re-pull from the input.

    def children(self) -> tuple[QueryIterator, ...]:
        return (self.input_op,)

    def describe(self) -> str:
        mode = "distinct" if self.distinct else ("reduce" if self.reducer else "plain")
        return f"ExternalSort(key={','.join(self.key_names)}, {mode})"

    # -- internals -----------------------------------------------------------

    def _transform(self, row: Row) -> Row:
        return self.reducer.init(row) if self.reducer is not None else row

    def _sort_chunk(self, chunk: list[Row]) -> list[Row]:
        """Quicksort one chunk and collapse equal keys.

        Charges the paper's quicksort bound, then one comparison per
        adjacent pair inspected during the collapse.
        """
        n = len(chunk)
        if n > 1:
            self.ctx.cpu.comparisons += int(2 * n * math.log2(n))
        chunk.sort(key=self._key)
        return self._collapse(chunk)

    def _collapse(self, sorted_rows: list[Row]) -> list[Row]:
        if not (self.distinct or self.reducer) or not sorted_rows:
            return sorted_rows
        out: list[Row] = [sorted_rows[0]]
        key = self._key
        cpu = self.ctx.cpu
        for row in sorted_rows[1:]:
            cpu.comparisons += 1
            if key(row) == key(out[-1]):
                if self.reducer is not None:
                    out[-1] = self.reducer.combine(out[-1], row)
                elif row != out[-1]:
                    # distinct removes only full duplicates; a row that
                    # shares the key but differs elsewhere is kept.
                    out.append(row)
            else:
                out.append(row)
        return out

    def _generate_runs(self, capacity: int) -> list[Row] | None:
        """Quicksort buffer-sized chunks into runs.

        Returns the sorted rows directly when the whole input fits in
        the sort buffer (no run files, no I/O); otherwise fills
        ``self._runs`` and returns ``None``.
        """
        chunk: list[Row] = []
        while True:
            row = self.input_op.next()
            if row is None:
                break
            chunk.append(self._transform(row))
            if len(chunk) >= capacity:
                self._write_run(self._sort_chunk(chunk))
                chunk = []
        if not self._runs:
            # Entire input fit in the sort buffer: no run files, no I/O.
            return self._sort_chunk(chunk)
        if chunk:
            self._write_run(self._sort_chunk(chunk))
        return None

    def _write_run(self, rows: list[Row]) -> None:
        run = self.ctx.temp_file("runs")
        # Register the run *before* writing it: if the append faults,
        # _open's failure handler finds (and destroys) the partial run
        # instead of leaking its pages.
        self._runs.append(run)
        encode = self._codec.encode
        run.append_many(encode(row) for row in rows)
        self.runs_spilled += 1
        self.run_lengths.append(len(rows))
        tracer = self.ctx.tracer
        if tracer.enabled:
            tracer.count("repro_sort_spill_runs_total")
            tracer.observe("repro_sort_run_length_rows", len(rows))

    def _run_rows(self, run: HeapFile) -> Iterator[Row]:
        decode = self._codec.decode
        return (decode(record) for _rid, record in run.scan())

    def _merge_streams(self, streams: list[Iterator[Row]]) -> Iterator[Row]:
        """K-way merge with collapse, charging log2(k) Comp per pop."""
        key = self._key
        cpu = self.ctx.cpu
        per_pop = max(1, math.ceil(math.log2(max(2, len(streams)))))
        merged = heapq.merge(*streams, key=key)

        def metered() -> Iterator[Row]:
            pending: Row | None = None
            for row in merged:
                cpu.comparisons += per_pop
                if pending is None:
                    pending = row
                    continue
                if self.distinct or self.reducer:
                    cpu.comparisons += 1
                    if key(row) == key(pending):
                        if self.reducer is not None:
                            pending = self.reducer.combine(pending, row)
                        elif row != pending:
                            yield pending
                            pending = row
                        continue
                yield pending
                pending = row
            if pending is not None:
                yield pending

        return metered()

    def _merge_pass(self, runs: list[HeapFile], fan_in: int) -> list[HeapFile]:
        """Merge groups of ``fan_in`` runs into longer runs."""
        next_runs: list[HeapFile] = []
        try:
            for start in range(0, len(runs), fan_in):
                group = runs[start : start + fan_in]
                if len(group) == 1:
                    next_runs.append(group[0])
                    continue
                merged = self._merge_streams([self._run_rows(run) for run in group])
                out = self.ctx.temp_file("runs")
                # Register before writing: a faulted append must leave the
                # partial output run reachable for cleanup below.
                next_runs.append(out)
                encode = self._codec.encode
                out.append_many(encode(row) for row in merged)
                for run in group:
                    run.destroy()
        except BaseException:
            # The caller only replaces self._runs on success, so output
            # runs created here are invisible to _open's failure handler
            # and must be reclaimed now.  destroy() is idempotent, so
            # pass-through runs shared with self._runs are safe to hit
            # twice.
            for run in next_runs:
                run.destroy()
            raise
        return next_runs
