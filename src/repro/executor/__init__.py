"""Demand-driven, iterator-based query execution (the paper's Section 5.1).

Every operator implements the *open-next-close* protocol and pulls
tuples from its inputs one at a time, so plans form trees evaluated by
demand-driven dataflow -- exactly the engine the paper's experiments
ran on.  Operators meter their work into the shared
:class:`~repro.executor.iterator.ExecContext`: tuple comparisons, hash
computations, and bit operations on the CPU side, and page transfers
(via the buffer pool and simulated disks) on the I/O side.

Operator inventory:

* sources -- :class:`~repro.executor.scan.StoredRelationScan`,
  :class:`~repro.executor.scan.RelationSource`
* tuple-at-a-time -- :class:`~repro.executor.filter.Select`,
  :class:`~repro.executor.project.Project`
* sorting -- :class:`~repro.executor.sort.ExternalSort` with early
  aggregation and duplicate elimination during run generation
* joins -- :class:`~repro.executor.merge_join.MergeJoin`,
  :class:`~repro.executor.merge_join.MergeSemiJoin`,
  :class:`~repro.executor.hash_join.HashJoin`,
  :class:`~repro.executor.hash_join.HashSemiJoin`
* aggregation -- :class:`~repro.executor.aggregate.ScalarCount`,
  :class:`~repro.executor.aggregate.SortedGroupCount`,
  :class:`~repro.executor.aggregate.HashGroupCount`
* plumbing -- :class:`~repro.executor.materialize.Materialize`
"""

from repro.executor.iterator import ExecContext, QueryIterator, run_to_relation
from repro.executor.scan import RelationSource, StoredRelationScan
from repro.executor.filter import Select
from repro.executor.project import Project
from repro.executor.materialize import Materialize
from repro.executor.sort import ExternalSort
from repro.executor.merge_join import MergeJoin, MergeSemiJoin
from repro.executor.hash_join import HashJoin, HashSemiJoin
from repro.executor.hash_table import ChainedHashTable
from repro.executor.aggregate import HashGroupCount, ScalarCount, SortedGroupCount

__all__ = [
    "ExecContext",
    "QueryIterator",
    "run_to_relation",
    "RelationSource",
    "StoredRelationScan",
    "Select",
    "Project",
    "Materialize",
    "ExternalSort",
    "MergeJoin",
    "MergeSemiJoin",
    "HashJoin",
    "HashSemiJoin",
    "ChainedHashTable",
    "HashGroupCount",
    "ScalarCount",
    "SortedGroupCount",
]
