"""The selection operator."""

from __future__ import annotations

from typing import Optional

from repro.executor.iterator import QueryIterator
from repro.relalg.predicates import Predicate
from repro.relalg.tuples import Row


class Select(QueryIterator):
    """σ: pass through the input tuples satisfying a predicate.

    Each evaluated tuple is charged one comparison -- predicate
    evaluation against a constant is the same unit of work the cost
    model's ``Comp`` stands for.
    """

    def __init__(self, input_op: QueryIterator, predicate: Predicate) -> None:
        super().__init__(input_op.ctx, input_op.schema)
        self.input_op = input_op
        self.predicate = predicate
        self._test = None

    def _open(self) -> None:
        # Compile before opening the input: a predicate that fails to
        # compile must not leave the child open.
        self._test = self.predicate.compile(self.schema)
        self.input_op.open()

    def _next(self) -> Optional[Row]:
        assert self._test is not None
        cpu = self.ctx.cpu
        while True:
            row = self.input_op.next()
            if row is None:
                return None
            cpu.comparisons += 1
            if self._test(row):
                return row

    def _close(self) -> None:
        self.input_op.close()
        self._test = None

    def children(self) -> tuple[QueryIterator, ...]:
        return (self.input_op,)

    def describe(self) -> str:
        return f"Select({self.predicate!r})"
