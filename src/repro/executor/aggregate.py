"""Aggregation operators: scalar count, sorted group count, hash group count.

Division by counting (Section 2.2) needs exactly three aggregation
pieces:

1. a *scalar aggregate* counting the divisor ("the courses offered by
   the university are counted using a scalar aggregate operator"),
2. an *aggregate function* counting dividend tuples per group, either
   sort-based (:class:`SortedGroupCount`, usually fused into
   :class:`~repro.executor.sort.ExternalSort` via a count reducer) or
   hash-based (:class:`HashGroupCount`),
3. a final selection comparing the two counts, expressed with
   :class:`~repro.executor.filter.Select`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.executor.hash_table import ChainedHashTable
from repro.executor.iterator import QueryIterator
from repro.relalg.schema import Attribute, Schema
from repro.relalg.tuples import Row, projector

COUNT_COLUMN = "count"


def counted_schema(input_schema: Schema, group_names: Sequence[str]) -> Schema:
    """Schema of a group-count output: group attributes + ``count``."""
    return Schema(
        tuple(input_schema.project(group_names)) + (Attribute(COUNT_COLUMN),)
    )


class ScalarCount(QueryIterator):
    """COUNT(*) over the whole input: one output row ``(count,)``.

    The paper ignores the per-tuple increment cost, and so does this
    operator -- the input's own scan cost is the real price.
    """

    def __init__(self, input_op: QueryIterator) -> None:
        super().__init__(input_op.ctx, Schema.of_ints(COUNT_COLUMN))
        self.input_op = input_op
        self._emitted = False

    def _open(self) -> None:
        self.input_op.open()
        self._emitted = False

    def _next(self) -> Optional[Row]:
        if self._emitted:
            return None
        count = 0
        while self.input_op.next() is not None:
            count += 1
        self._emitted = True
        return (count,)

    def _close(self) -> None:
        self.input_op.close()

    def children(self) -> tuple[QueryIterator, ...]:
        return (self.input_op,)


class SortedGroupCount(QueryIterator):
    """COUNT(*) per group over an input sorted on the group attributes.

    One comparison per input tuple (current group vs. tuple), the cost
    model's ``|R| Comp`` for sort-based aggregation.
    """

    def __init__(self, input_op: QueryIterator, group_names: Sequence[str]) -> None:
        super().__init__(input_op.ctx, counted_schema(input_op.schema, group_names))
        self.input_op = input_op
        self.group_names = tuple(group_names)
        self._extract = None
        self._current: tuple | None = None
        self._count = 0
        self._exhausted = False

    def _open(self) -> None:
        self.input_op.open()
        self._extract = projector(self.input_op.schema, self.group_names)
        self._current = None
        self._count = 0
        self._exhausted = False

    def _next(self) -> Optional[Row]:
        assert self._extract is not None
        if self._exhausted:
            return None
        cpu = self.ctx.cpu
        while True:
            row = self.input_op.next()
            if row is None:
                self._exhausted = True
                if self._current is not None and self._count > 0:
                    return self._current + (self._count,)
                return None
            group = self._extract(row)
            if self._current is None:
                self._current = group
                self._count = 1
                continue
            cpu.comparisons += 1
            if group == self._current:
                self._count += 1
                continue
            finished = self._current + (self._count,)
            self._current = group
            self._count = 1
            return finished

    def _close(self) -> None:
        self.input_op.close()

    def children(self) -> tuple[QueryIterator, ...]:
        return (self.input_op,)

    def describe(self) -> str:
        return f"SortedGroupCount(by={','.join(self.group_names)})"


class HashGroupCount(QueryIterator):
    """COUNT(*) per group using an in-memory hash table.

    "Hash-based aggregate functions keep the tuples of the output
    relation in a main memory hash-table ... since the hash table
    contains only the aggregation output, it is not necessary that the
    aggregation input fit into main memory." (Section 2.2.2.)

    The table holds one entry per *group*, so memory is charged by
    group count, not input size.  This operator is stop-and-go: the
    entire input is consumed at open.
    """

    def __init__(
        self,
        input_op: QueryIterator,
        group_names: Sequence[str],
        expected_groups: int = 0,
    ) -> None:
        super().__init__(input_op.ctx, counted_schema(input_op.schema, group_names))
        self.input_op = input_op
        self.group_names = tuple(group_names)
        self.expected_groups = expected_groups
        self._table: ChainedHashTable | None = None
        self._output = None

    def _open(self) -> None:
        extract = projector(self.input_op.schema, self.group_names)
        group_bytes = self.input_op.schema.project(self.group_names).record_size
        self.input_op.open()
        input_open = True
        try:
            if self.expected_groups == 0:
                # No sizing hint: size the table from the actual input
                # (the pessimistic all-distinct case).
                first_pass = list(self.input_op)
                self.input_op.close()
                input_open = False
                expected = max(1, len(first_pass))
                rows = iter(first_pass)
            else:
                expected = self.expected_groups
                rows = iter(self.input_op)
            self._table = ChainedHashTable(
                self.ctx.cpu,
                self.ctx.memory,
                bucket_count=ChainedHashTable.buckets_for(expected),
                entry_bytes=group_bytes + 8,
                tag="hash-aggregate",
                tracer=self.ctx.tracer,
            )
            for row in rows:
                counter, _ = self._table.find_or_insert(extract(row), lambda: [0])
                counter[0] += 1
            if input_open:
                self.input_op.close()
                input_open = False
        except BaseException:
            # A failed open (overflow mid-aggregation, a child error)
            # must not leave the input open or the charged table
            # allocated -- the operator stays re-openable.
            if self._table is not None:
                self._table.free()
                self._table = None
            if input_open:
                try:
                    self.input_op.close()
                except Exception:  # noqa: BLE001 - the original error wins
                    pass
            raise
        self._output = (
            group + (counter[0],) for group, counter in self._table.items()
        )

    def _next(self) -> Optional[Row]:
        assert self._output is not None
        return next(self._output, None)

    def _close(self) -> None:
        if self._table is not None:
            self._table.free()
            self._table = None
        self._output = None

    def children(self) -> tuple[QueryIterator, ...]:
        return (self.input_op,)

    def describe(self) -> str:
        return f"HashGroupCount(by={','.join(self.group_names)})"
