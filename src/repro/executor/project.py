"""The projection operator.

``Project`` is a pure bag projection: it never eliminates duplicates.
Duplicate elimination is a separate physical decision -- during sorting
(:class:`~repro.executor.sort.ExternalSort` with ``distinct=True``) or
hashing -- exactly the distinction the paper draws when discussing which
division algorithms need duplicate-free inputs.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.executor.iterator import QueryIterator
from repro.relalg.tuples import Row, projector


class Project(QueryIterator):
    """π (bag semantics): reorder/drop attributes, keep every tuple."""

    def __init__(self, input_op: QueryIterator, names: Sequence[str]) -> None:
        super().__init__(input_op.ctx, input_op.schema.project(names))
        self.input_op = input_op
        self.names = tuple(names)
        self._extract = None

    def _open(self) -> None:
        # Build the projector before opening the input: a bad name list
        # must not leave the child open.
        self._extract = projector(self.input_op.schema, self.names)
        self.input_op.open()

    def _next(self) -> Optional[Row]:
        assert self._extract is not None
        row = self.input_op.next()
        if row is None:
            return None
        return self._extract(row)

    def _close(self) -> None:
        self.input_op.close()
        self._extract = None

    def children(self) -> tuple[QueryIterator, ...]:
        return (self.input_op,)

    def describe(self) -> str:
        return f"Project({', '.join(self.names)})"
