"""Hash-based duplicate elimination.

The paper is careful about this operator's cost: "While efficient
duplicate elimination schemes based on hashing exist [Gerber 1986],
they require that the entire input must be kept in main memory hash
tables or in overflow files.  Thus, duplicate elimination based on
hashing may be impractical for a very large dividend relation."
(Section 2.2.2.)

:class:`HashDistinct` implements exactly that scheme: every distinct
input row is held in a memory-charged hash table, so running it over a
large dividend under a realistic memory budget overflows -- which is
the point.  The division-by-hash-aggregation strategy uses it when
asked to be duplicate-safe, and the benchmark suite uses it to show the
memory asymmetry against hash-division (which only ever holds the
divisor and quotient tables).
"""

from __future__ import annotations

from typing import Optional

from repro.executor.hash_table import ChainedHashTable
from repro.executor.iterator import QueryIterator
from repro.relalg.tuples import Row


class HashDistinct(QueryIterator):
    """Stream distinct rows, holding every distinct row in memory.

    Output order is input order of first occurrence; the operator
    streams (each row is checked and either passed through or
    swallowed), but its memory grows with the number of distinct rows.
    """

    def __init__(self, input_op: QueryIterator, expected_distinct: int = 0) -> None:
        super().__init__(input_op.ctx, input_op.schema)
        self.input_op = input_op
        self.expected_distinct = expected_distinct
        self._table: ChainedHashTable | None = None

    def _open(self) -> None:
        expected = self.expected_distinct or 1024
        self._table = ChainedHashTable(
            self.ctx.cpu,
            self.ctx.memory,
            bucket_count=ChainedHashTable.buckets_for(expected),
            entry_bytes=self.schema.record_size,
            tag="hash-distinct",
            tracer=self.ctx.tracer,
        )
        try:
            self.input_op.open()
        except BaseException:
            # A failed child open must not leak the charged table.
            self._table.free()
            self._table = None
            raise

    def _next(self) -> Optional[Row]:
        assert self._table is not None
        while True:
            row = self.input_op.next()
            if row is None:
                return None
            _, inserted = self._table.find_or_insert(row, lambda: True)
            if inserted:
                return row

    def _close(self) -> None:
        self.input_op.close()
        if self._table is not None:
            self._table.free()
            self._table = None

    def children(self) -> tuple[QueryIterator, ...]:
        return (self.input_op,)
