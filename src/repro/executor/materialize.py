"""Materialization: spool a plan's output to a temp file and rescan it.

Used when an intermediate result must be consumed more than once or
must exist in file form (e.g. partition spooling in the overflow
driver).  The spooled file lives on the 8 KB ``temp`` device and is
destroyed on close.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.executor.iterator import ExecContext, QueryIterator
from repro.relalg.schema import Schema
from repro.relalg.tuples import Row
from repro.storage.heapfile import HeapFile


class Materialize(QueryIterator):
    """Spool the input to a temp heap file at open, then scan it.

    The write pays sequential write I/O (on eviction/flush) and the
    scan pays read I/O only for pages that no longer sit in the buffer
    pool -- mirroring the paper's observation that temp pages often
    "remain in the buffer pool from run creation to merging and
    deletion" (Section 5.2).
    """

    def __init__(self, input_op: QueryIterator) -> None:
        super().__init__(input_op.ctx, input_op.schema)
        self.input_op = input_op
        self._file: HeapFile | None = None
        self._rows: Iterator[Row] | None = None
        self._codec = input_op.schema.codec()

    def _open(self) -> None:
        self._file = self.ctx.temp_file("temp")
        try:
            self.input_op.open()
            try:
                encode = self._codec.encode
                self._file.append_many(encode(row) for row in self.input_op)
            finally:
                self.input_op.close()
            decode = self._codec.decode
            self._rows = (decode(record) for _rid, record in self._file.scan())
        except BaseException:
            # A failed _open leaves the operator CLOSED, so _close will
            # never run -- the spool file must be reclaimed here or it
            # leaks temp pages (found by the chaos suite under injected
            # temp-device write faults).
            self._file.destroy()
            self._file = None
            raise

    def _next(self) -> Optional[Row]:
        assert self._rows is not None
        return next(self._rows, None)

    def _close(self) -> None:
        self._rows = None
        if self._file is not None:
            self._file.destroy()
            self._file = None

    def children(self) -> tuple[QueryIterator, ...]:
        return (self.input_op,)


class TempFileScan(QueryIterator):
    """Scan an existing temp heap file, optionally destroying it after.

    The partitioned-division driver writes partition files itself and
    uses this operator to feed each phase.
    """

    def __init__(
        self,
        ctx: ExecContext,
        file: HeapFile,
        schema: Schema,
        destroy_on_close: bool = False,
    ) -> None:
        super().__init__(ctx, schema)
        self.file = file
        self.destroy_on_close = destroy_on_close
        self._codec = schema.codec()
        self._rows: Iterator[Row] | None = None

    def _open(self) -> None:
        decode = self._codec.decode
        self._rows = (decode(record) for _rid, record in self.file.scan())

    def _next(self) -> Optional[Row]:
        assert self._rows is not None
        return next(self._rows, None)

    def _close(self) -> None:
        self._rows = None
        if self.destroy_on_close:
            self.file.destroy()

    def describe(self) -> str:
        return f"TempFileScan({self.file.name})"
