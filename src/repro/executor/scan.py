"""Source operators: file scans and in-memory relation sources.

:class:`StoredRelationScan` is the metered path -- it reads pages
through the buffer pool, so cold scans incur sequential read I/O
exactly as the paper's file scans did.  :class:`RelationSource` feeds
an in-memory :class:`~repro.relalg.relation.Relation` into a plan with
no I/O at all; it models an input arriving from an upstream operator in
a dataflow system, and is what lets unit tests exercise operators
without a storage setup.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.executor.iterator import ExecContext, QueryIterator
from repro.relalg.relation import Relation
from repro.relalg.tuples import Row
from repro.storage.catalog import StoredRelation


class StoredRelationScan(QueryIterator):
    """Sequential scan of a stored relation (heap file + codec).

    Each page is fixed once, in physical order; buffer misses become
    sequential read transfers on the backing device.
    """

    def __init__(self, ctx: ExecContext, stored: StoredRelation) -> None:
        super().__init__(ctx, stored.schema)
        self.stored = stored
        self._rows: Iterator[Row] | None = None

    def _open(self) -> None:
        self._rows = (row for _rid, row in self.stored.scan_rows())

    def _next(self) -> Optional[Row]:
        assert self._rows is not None
        return next(self._rows, None)

    def _close(self) -> None:
        self._rows = None

    def describe(self) -> str:
        return f"StoredRelationScan({self.stored.name})"


class RelationSource(QueryIterator):
    """Feed an in-memory relation into a plan (no I/O charged)."""

    def __init__(self, ctx: ExecContext, relation: Relation) -> None:
        super().__init__(ctx, relation.schema)
        self.relation = relation
        self._rows: Iterator[Row] | None = None

    def _open(self) -> None:
        self._rows = iter(self.relation)

    def _next(self) -> Optional[Row]:
        assert self._rows is not None
        return next(self._rows, None)

    def _close(self) -> None:
        self._rows = None

    def describe(self) -> str:
        label = self.relation.name or "anonymous"
        return f"RelationSource({label}, {len(self.relation)} tuples)"
