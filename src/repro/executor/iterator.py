"""The open-next-close iterator protocol and the execution context.

"All relational algebra operators are implemented as iterators, i.e.,
they support a simple open-next-close protocol" (Section 5.1).  Here:

* :meth:`QueryIterator.open` prepares the operator (and opens its
  inputs); stop-and-go operators such as sort do their heavy lifting
  here,
* :meth:`QueryIterator.next` returns one output tuple or ``None`` when
  exhausted,
* :meth:`QueryIterator.close` releases resources (and closes inputs).

The protocol is enforced with an explicit state machine so misuse is a
clear :class:`~repro.errors.ExecutionError` rather than silent garbage.

:class:`ExecContext` is the shared machinery an executing plan runs
against: storage configuration, buffer pool, I/O statistics, the CPU
operation counters, the main-memory pool for hash tables, and a temp
file allocator for sort runs and spooled partitions.
"""

from __future__ import annotations

import enum
import itertools
from typing import Iterator, Optional, Sequence

from repro.errors import ExecutionError
from repro.faults.retry import BackoffClock
from repro.metering import CpuCounters
from repro.obs.span import NULL_TRACER
from repro.relalg.relation import Relation
from repro.relalg.schema import Schema
from repro.relalg.tuples import Row
from repro.storage.buffer import BufferPool
from repro.storage.config import StorageConfig
from repro.storage.disk import SimulatedDisk
from repro.storage.heapfile import HeapFile
from repro.storage.memory import MemoryPool
from repro.storage.stats import NULL_IO_TRACE, IoStatistics


class ExecContext:
    """Everything a running plan shares: devices, meters, memory.

    Args:
        config: Physical storage parameters.
        memory_budget: Byte budget for in-memory hash tables and bit
            maps; ``None`` means unbounded.
        tracer: Optional :class:`repro.obs.span.Tracer` recording
            spans, metrics, and per-operator attribution; defaults to
            the no-op :data:`repro.obs.span.NULL_TRACER`.
        io_trace: Optional :class:`repro.obs.iotrace.IoEventLog`
            recording one event per physical page transfer; defaults
            to the zero-cost null sink
            (:data:`repro.storage.stats.NULL_IO_TRACE`).  When both a
            recording tracer and an event log are supplied, each event
            is stamped with the innermost executing operator.
        fault_injector: Optional
            :class:`repro.faults.injector.FaultInjector`; when given it
            is threaded through all three devices and the memory pool
            (see :meth:`attach_fault_injector`).  ``None`` (the
            default) leaves every fault hook on its zero-cost path.
        retry_policy: Optional
            :class:`repro.faults.retry.RetryPolicy` governing how the
            devices retry transient faults; defaults to
            :data:`repro.faults.retry.DEFAULT_RETRY_POLICY`.

    The context owns three devices:

    * ``data``  -- 8 KB pages, where base relations live,
    * ``temp``  -- 8 KB pages, for spooled intermediates and partitions,
    * ``runs``  -- 1 KB pages, for sort runs ("1 KB to allow high
      fan-in", Section 5.1).
    """

    def __init__(
        self,
        config: StorageConfig | None = None,
        memory_budget: int | None = None,
        storage_dir: str | None = None,
        tracer=None,
        io_trace=None,
        fault_injector=None,
        retry_policy=None,
    ) -> None:
        self.config = config or StorageConfig()
        #: Observability hook (repro.obs): the shared no-op NULL_TRACER
        #: by default, so un-profiled execution pays one flag test per
        #: protocol call; pass a repro.obs.Tracer to record spans,
        #: metrics, and per-operator meter attribution.
        self.tracer = NULL_TRACER if tracer is None else tracer
        #: Page-level I/O event log (repro.obs.iotrace): the shared
        #: no-op NULL_IO_TRACE by default, so un-traced execution pays
        #: one flag test per physical transfer and allocates nothing.
        self.io_trace = NULL_IO_TRACE if io_trace is None else io_trace
        if (
            self.io_trace.enabled
            and getattr(self.io_trace, "operator_provider", None) is None
        ):
            self.io_trace.operator_provider = getattr(
                self.tracer, "current_operator_label", None
            )
        self.io_stats = IoStatistics(self.config.io_weights, trace=self.io_trace)
        self.cpu = CpuCounters()
        self.pool = BufferPool(self.config)
        self.memory = MemoryPool(memory_budget)
        if storage_dir is None:
            # The paper's main-memory disk simulation.
            make_disk = lambda name, page_size: SimulatedDisk(
                name, page_size, self.io_stats
            )
        else:
            # The paper's alternative: "simulates a disk using a UNIX
            # file"; one backing file per device under storage_dir.
            import os

            from repro.storage.filedisk import FileBackedDisk

            os.makedirs(storage_dir, exist_ok=True)
            make_disk = lambda name, page_size: FileBackedDisk(
                name,
                page_size,
                os.path.join(storage_dir, f"{name}.disk"),
                self.io_stats,
            )
        self.data_disk = self.pool.register_device(
            make_disk("data", self.config.page_size)
        )
        self.temp_disk = self.pool.register_device(
            make_disk("temp", self.config.page_size)
        )
        self.run_disk = self.pool.register_device(
            make_disk("runs", self.config.sort_run_page_size)
        )
        self._temp_names = itertools.count()
        #: Fault-injection wiring (repro.faults): None by default, so
        #: every hook is a single ``is None`` test.  One BackoffClock
        #: is shared by all devices so retry waits aggregate per run.
        self.fault_injector = None
        self.backoff_clock = BackoffClock()
        if retry_policy is not None:
            for disk in (self.data_disk, self.temp_disk, self.run_disk):
                disk.retry_policy = retry_policy
        for disk in (self.data_disk, self.temp_disk, self.run_disk):
            disk.backoff_clock = self.backoff_clock
        if fault_injector is not None:
            self.attach_fault_injector(fault_injector)

    def attach_fault_injector(self, injector) -> None:
        """Thread one :class:`~repro.faults.injector.FaultInjector`
        through the context's devices and memory pool.

        Pass ``None`` to detach and restore the zero-cost paths.  The
        devices keep their retry policies and the shared
        :attr:`backoff_clock`.
        """
        self.fault_injector = injector
        for disk in (self.data_disk, self.temp_disk, self.run_disk):
            disk.injector = injector
        self.memory.injector = injector

    @property
    def fault_stats(self) -> dict:
        """Per-device fault / defense counters, keyed by device name."""
        return {
            disk.name: disk.fault_stats
            for disk in (self.data_disk, self.temp_disk, self.run_disk)
        }

    def close(self) -> None:
        """Release the context's devices (closes backing files)."""
        for disk in (self.data_disk, self.temp_disk, self.run_disk):
            disk.close()

    # -- temp files -----------------------------------------------------

    def temp_file(self, kind: str = "temp") -> HeapFile:
        """Create a scratch heap file.

        Args:
            kind: ``"temp"`` for 8 KB-page intermediates, ``"runs"``
                for 1 KB-page sort runs.
        """
        if kind == "runs":
            disk = self.run_disk
        elif kind == "temp":
            disk = self.temp_disk
        else:
            raise ExecutionError(f"unknown temp file kind {kind!r}")
        return HeapFile(self.pool, disk, name=f"{kind}-{next(self._temp_names)}")

    # -- meter access -----------------------------------------------------

    def io_cost_ms(self) -> float:
        """Total model I/O milliseconds so far (Table 3 weights)."""
        return self.io_stats.cost_ms()

    def reset_meters(self) -> None:
        """Zero the CPU counters, I/O statistics, and I/O event log
        (not the pool).

        The statistics and the event log are always reset *together*
        so they describe the same measurement window -- the
        precondition of the :mod:`repro.obs.iotrace` conservation
        check.
        """
        self.cpu.reset()
        self.io_stats.reset()
        self.io_trace.clear()


class _State(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    FINISHED = "finished"


class QueryIterator:
    """Base class for all operators: the open-next-close protocol.

    Subclasses implement ``_open``, ``_next``, and optionally
    ``_close``; the public methods enforce the protocol state machine.
    An operator may be re-opened after :meth:`close` when its inputs
    support it.
    """

    def __init__(self, ctx: ExecContext, schema: Schema) -> None:
        self.ctx = ctx
        self.schema = schema
        self.rows_produced = 0
        self._state = _State.CLOSED
        self._ever_opened = False

    # -- public protocol ---------------------------------------------------

    def open(self) -> None:
        """Prepare the operator for producing tuples."""
        if self._state is not _State.CLOSED:
            raise ExecutionError(
                f"{type(self).__name__}.open() called in state {self._state.value}"
            )
        self.rows_produced = 0
        tracer = self.ctx.tracer
        try:
            if tracer.enabled:
                tracer.operator_enter(self, "open")
                try:
                    self._open()
                finally:
                    tracer.operator_exit(self, "open")
            else:
                self._open()
        except BaseException:
            # Every ``_open`` cleans up after its own failure (closes
            # the children it opened, frees the tables it charged), so
            # the operator holds nothing -- but unwind paths above us
            # (a ``finally: root.close()``, an overflow fallback) will
            # still call ``close()``.  Count the attempt so that call
            # is the idempotent no-op, not a protocol error.
            self._ever_opened = True
            raise
        self._state = _State.OPEN
        self._ever_opened = True

    def next(self) -> Optional[Row]:
        """Produce the next tuple, or ``None`` when exhausted."""
        if self._state is _State.FINISHED:
            return None
        if self._state is not _State.OPEN:
            raise ExecutionError(
                f"{type(self).__name__}.next() called in state {self._state.value}"
            )
        tracer = self.ctx.tracer
        if tracer.enabled:
            tracer.operator_enter(self, "next")
            try:
                row = self._next()
            finally:
                tracer.operator_exit(self, "next")
        else:
            row = self._next()
        if row is None:
            self._state = _State.FINISHED
        else:
            self.rows_produced += 1
        return row

    def close(self) -> None:
        """Release resources; **idempotent** once the operator has ever
        been opened.

        A second ``close()`` after a successful close is a no-op rather
        than an error: cancellation and error-unwind paths (the
        scheduler throwing :class:`~repro.errors.QueryCancelledError`
        into a task, :func:`open_all`'s partial unwind, a plan-level
        ``close()`` after an operator already tore itself down) can
        each reach an operator that another path closed first, and a
        raising close used to abort the unwind halfway -- leaving
        *sibling* subtrees open (leaked fixed frames) or, for operators
        whose ``_close`` unfixes pages, double-unfixing.  The state
        machine guarantees ``_close`` runs at most once per ``open``.

        Closing an operator that was *never* opened is still a protocol
        error: it has no resources, so the call is a caller bug.
        """
        if self._state is _State.CLOSED:
            if not self._ever_opened:
                raise ExecutionError(
                    f"{type(self).__name__}.close() called while closed"
                )
            return  # idempotent: already closed after a previous open
        tracer = self.ctx.tracer
        if tracer.enabled:
            tracer.operator_enter(self, "close")
            try:
                self._close()
            finally:
                tracer.operator_exit(self, "close")
        else:
            self._close()
        self._state = _State.CLOSED

    # -- subclass hooks -------------------------------------------------------

    def _open(self) -> None:
        raise NotImplementedError

    def _next(self) -> Optional[Row]:
        raise NotImplementedError

    def _close(self) -> None:
        """Default: nothing to release."""

    # -- conveniences ------------------------------------------------------------

    def __iter__(self) -> Iterator[Row]:
        """Drain the (already opened) operator as a Python iterator."""
        while True:
            row = self.next()
            if row is None:
                return
            yield row

    def children(self) -> tuple["QueryIterator", ...]:
        """Direct input operators, for plan display."""
        return ()

    def explain(self, indent: int = 0, analyze: bool = False) -> str:
        """Render the operator subtree as an indented plan.

        With ``analyze=True`` each line carries the number of rows the
        operator has produced so far -- call after draining the plan
        for an EXPLAIN ANALYZE view.
        """
        label = self.describe()
        if analyze:
            label = f"{label}  [rows={self.rows_produced}]"
        lines = ["  " * indent + label]
        lines.extend(
            child.explain(indent + 1, analyze=analyze) for child in self.children()
        )
        return "\n".join(lines)

    def describe(self) -> str:
        """One-line operator description used by :meth:`explain`."""
        return type(self).__name__


def open_all(operators: Sequence[QueryIterator]) -> None:
    """Open several child operators, unwinding cleanly on failure.

    If ``open()`` of a later child raises, every child opened so far is
    closed (in reverse order) before the exception propagates -- the
    state-machine guarantee multi-input operators need so a failed
    ``_open`` never leaks an open subtree.  A close failure during the
    unwind is suppressed in favour of the original exception.
    """
    opened: list[QueryIterator] = []
    try:
        for operator in operators:
            operator.open()
            opened.append(operator)
    except BaseException:
        for operator in reversed(opened):
            try:
                operator.close()
            except Exception:  # noqa: BLE001 - the original error wins
                pass
        raise


def run_to_relation(operator: QueryIterator, name: str = "") -> Relation:
    """Open, drain, and close an operator, collecting a Relation."""
    operator.open()
    try:
        rows = list(operator)
    finally:
        operator.close()
    return Relation(operator.schema, rows, name=name)
