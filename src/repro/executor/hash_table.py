"""Bucket-chained in-memory hash tables with cost and memory metering.

"In our implementation of hash-based algorithms, we use bucket chaining
as conflict resolution in hash tables.  The hash algorithms use the
file system's memory manager to allocate space for hash tables, bit
maps, and chain elements." (Section 5.1.)

:class:`ChainedHashTable` is that structure: an array of buckets, each
a chain of (key, payload) entries.  Every operation is metered --
computing a hash value charges one ``Hash``, every chain entry
inspected during a probe charges one ``Comp`` -- and every entry is
charged against the :class:`~repro.storage.memory.MemoryPool`, so a
budget-limited table overflows with
:class:`~repro.errors.HashTableOverflowError` exactly when the paper's
would spill.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterator

from repro.errors import HashTableOverflowError, MemoryPoolError
from repro.metering import CpuCounters
from repro.storage.memory import (
    BUCKET_HEADER_BYTES,
    CHAIN_ELEMENT_BYTES,
    MemoryPool,
)

#: Default average chain length the table is sized for -- the paper's
#: analytical comparison assumes an average bucket size (hbs) of 2.
DEFAULT_TARGET_CHAIN_LENGTH = 2

_table_ids = itertools.count()


class ChainedHashTable:
    """A metered, memory-budgeted, bucket-chained hash table.

    Keys are hashable tuples; payloads are arbitrary (often mutable,
    e.g. a bit map or a counter list, so probes can update in place).

    Args:
        cpu: Counter sink for ``Hash``/``Comp`` charges.
        memory: Pool the table's space is charged against.
        bucket_count: Number of buckets; see :meth:`buckets_for`.
        entry_bytes: Payload bytes charged per entry, on top of the
            chain-element bookkeeping bytes.
        tag: Allocation tag (e.g. ``"divisor-table"``); also used to
            free the whole table at once.
        tracer: Optional :class:`repro.obs.span.Tracer`; when enabled,
            every budget overflow is counted into
            ``repro_hash_table_overflows_total{table=<tag>}`` so spill
            behaviour is visible alongside buffer and I/O metrics.
    """

    def __init__(
        self,
        cpu: CpuCounters,
        memory: MemoryPool,
        bucket_count: int,
        entry_bytes: int,
        tag: str = "hash-table",
        tracer=None,
    ) -> None:
        if bucket_count <= 0:
            raise ValueError("bucket_count must be positive")
        self.cpu = cpu
        self.memory = memory
        self.bucket_count = bucket_count
        self.entry_bytes = entry_bytes
        self.base_tag = tag
        self.tag = f"{tag}#{next(_table_ids)}"
        self.tracer = tracer
        #: Times this table hit the memory budget (any operation).
        self.overflows = 0
        self._buckets: list[list[list[Any]]] = [[] for _ in range(bucket_count)]
        self._size = 0
        self._freed = False
        try:
            self._array_handle = memory.allocate(
                bucket_count * BUCKET_HEADER_BYTES, tag=self.tag
            )
        except MemoryPoolError as exc:
            raise self._overflow(exc, site="bucket-array") from exc

    def _overflow(
        self, exc: MemoryPoolError, site: str
    ) -> HashTableOverflowError:
        """Count a budget overflow and build the error to raise."""
        self.overflows += 1
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.count(
                "repro_hash_table_overflows_total",
                table=self.base_tag,
                site=site,
            )
        return HashTableOverflowError(str(exc))

    @staticmethod
    def buckets_for(
        expected_entries: int,
        target_chain_length: int = DEFAULT_TARGET_CHAIN_LENGTH,
    ) -> int:
        """Bucket count giving the paper's average chain length.

        Sized so ``expected_entries / buckets ~= target_chain_length``
        (hbs = 2 in the analytical model), rounded up to a power of two.
        """
        if expected_entries <= 0:
            return 16
        needed = max(1, expected_entries // max(1, target_chain_length))
        return 1 << (needed - 1).bit_length()

    # -- observers -------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def average_chain_length(self) -> float:
        """Observed mean entries per non-empty bucket."""
        occupied = sum(1 for b in self._buckets if b)
        return 0.0 if occupied == 0 else self._size / occupied

    def _bucket_of(self, key: tuple) -> list[list[Any]]:
        self.cpu.hashes += 1
        return self._buckets[hash(key) % self.bucket_count]

    # -- operations ----------------------------------------------------------

    def insert(self, key: tuple, payload: Any) -> None:
        """Append an entry without checking for duplicates.

        Charges one ``Hash`` plus memory for the chain element and
        payload.

        Raises:
            HashTableOverflowError: when the memory pool is exhausted.
        """
        self._check_live()
        bucket = self._bucket_of(key)
        try:
            self.memory.allocate(CHAIN_ELEMENT_BYTES + self.entry_bytes, tag=self.tag)
        except MemoryPoolError as exc:
            raise self._overflow(exc, site="insert") from exc
        bucket.append([key, payload])
        self._size += 1

    def find(self, key: tuple) -> Any | None:
        """Probe for ``key``; returns the payload or ``None``.

        Charges one ``Hash`` plus one ``Comp`` per chain entry
        inspected (entries are inspected until a match is found or the
        chain ends).
        """
        self._check_live()
        bucket = self._bucket_of(key)
        cpu = self.cpu
        for entry in bucket:
            cpu.comparisons += 1
            if entry[0] == key:
                return entry[1]
        return None

    def find_or_insert(self, key: tuple, make_payload) -> tuple[Any, bool]:
        """Probe for ``key``; insert ``make_payload()`` when absent.

        Returns ``(payload, inserted)``.  This is the inner loop of
        hash aggregation and of hash-division's quotient table: one
        hash computation serves both the probe and the insert.
        """
        self._check_live()
        bucket = self._bucket_of(key)
        cpu = self.cpu
        for entry in bucket:
            cpu.comparisons += 1
            if entry[0] == key:
                return entry[1], False
        try:
            self.memory.allocate(CHAIN_ELEMENT_BYTES + self.entry_bytes, tag=self.tag)
        except MemoryPoolError as exc:
            raise self._overflow(exc, site="find_or_insert") from exc
        payload = make_payload()
        bucket.append([key, payload])
        self._size += 1
        return payload, True

    def items(self) -> Iterator[tuple[tuple, Any]]:
        """Scan all entries bucket by bucket (Figure 1, step 3)."""
        self._check_live()
        for bucket in self._buckets:
            for key, payload in bucket:
                yield key, payload

    def free(self) -> None:
        """Release the table's memory ("free divisor table", Figure 1)."""
        if self._freed:
            return
        self.memory.free_all(tag=self.tag)
        self._buckets = []
        self._size = 0
        self._freed = True

    def _check_live(self) -> None:
        if self._freed:
            raise HashTableOverflowError(f"hash table {self.tag} already freed")

    def __repr__(self) -> str:
        return (
            f"<ChainedHashTable {self.tag} {self._size} entries in "
            f"{self.bucket_count} buckets>"
        )
