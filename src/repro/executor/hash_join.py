"""Hash join and hash semi-join.

The hash-based aggregation strategy for the paper's second example
query ("students who have taken all *database* courses") needs a
semi-join of the dividend with the restricted divisor before counting
(Section 2.2.2): "The hash table in the semi-join is built by hashing
on course-no's."  :class:`HashSemiJoin` is that operator; the build
side is the (small) inner relation, the probe side streams.

:class:`HashJoin` is the full join for completeness; the division
pipelines only need the semi-join.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import ExecutionError
from repro.executor.hash_table import ChainedHashTable
from repro.executor.iterator import QueryIterator
from repro.relalg.tuples import Row, projector


class HashSemiJoin(QueryIterator):
    """Probe-side tuples that match at least one build-side tuple.

    Args:
        probe: The (large) streaming input; its tuples are produced.
        build: The (small) input loaded into the hash table at open.
        join_names: Equally named attributes to match on.
        expected_build_size: Sizing hint for the bucket array; defaults
            to building with a modest table that still yields the
            paper's hbs ~= 2 behaviour when the hint is accurate.
    """

    def __init__(
        self,
        probe: QueryIterator,
        build: QueryIterator,
        join_names: Sequence[str],
        expected_build_size: int = 0,
    ) -> None:
        if probe.ctx is not build.ctx:
            raise ExecutionError("join inputs must share one execution context")
        super().__init__(probe.ctx, probe.schema)
        self.join_names = tuple(join_names)
        self.probe = probe
        self.build = build
        self.expected_build_size = expected_build_size
        self._probe_key = projector(probe.schema, self.join_names)
        self._build_key = projector(build.schema, self.join_names)
        self._table: ChainedHashTable | None = None

    def _open(self) -> None:
        self.build.open()
        try:
            rows = list(self.build)
        finally:
            self.build.close()
        expected = self.expected_build_size or len(rows)
        self._table = ChainedHashTable(
            self.ctx.cpu,
            self.ctx.memory,
            bucket_count=ChainedHashTable.buckets_for(expected),
            entry_bytes=self.build.schema.record_size,
            tag="semijoin-build",
            tracer=self.ctx.tracer,
        )
        try:
            for row in rows:
                key = self._build_key(row)
                # Build-side duplicates would only lengthen chains; keep
                # one entry per key (a semi-join needs existence only).
                _, _inserted = self._table.find_or_insert(key, lambda: True)
            self.probe.open()
        except BaseException:
            # Overflow mid-build or a failed probe open must not leak
            # the charged build table.
            self._table.free()
            self._table = None
            raise

    def _next(self) -> Optional[Row]:
        assert self._table is not None
        while True:
            row = self.probe.next()
            if row is None:
                return None
            if self._table.find(self._probe_key(row)) is not None:
                return row

    def _close(self) -> None:
        self.probe.close()
        if self._table is not None:
            self._table.free()
            self._table = None

    def children(self) -> tuple[QueryIterator, ...]:
        return (self.probe, self.build)

    def describe(self) -> str:
        return f"HashSemiJoin(on={','.join(self.join_names)})"


class HashJoin(QueryIterator):
    """Classic build/probe hash join on equally named attributes.

    Output schema: probe attributes followed by the build attributes
    not in the join key.
    """

    def __init__(
        self,
        probe: QueryIterator,
        build: QueryIterator,
        join_names: Sequence[str],
        expected_build_size: int = 0,
    ) -> None:
        if probe.ctx is not build.ctx:
            raise ExecutionError("join inputs must share one execution context")
        self.join_names = tuple(join_names)
        build_rest = [n for n in build.schema.names if n not in set(join_names)]
        schema = (
            probe.schema.concat(build.schema.project(build_rest))
            if build_rest
            else probe.schema
        )
        super().__init__(probe.ctx, schema)
        self.probe = probe
        self.build = build
        self.expected_build_size = expected_build_size
        self._probe_key = projector(probe.schema, self.join_names)
        self._build_key = projector(build.schema, self.join_names)
        self._build_rest = (
            projector(build.schema, build_rest) if build_rest else (lambda row: ())
        )
        self._table: ChainedHashTable | None = None
        self._pending: list[Row] = []

    def _open(self) -> None:
        self.build.open()
        try:
            rows = list(self.build)
        finally:
            self.build.close()
        expected = self.expected_build_size or len(rows)
        self._table = ChainedHashTable(
            self.ctx.cpu,
            self.ctx.memory,
            bucket_count=ChainedHashTable.buckets_for(expected),
            entry_bytes=self.build.schema.record_size,
            tag="join-build",
            tracer=self.ctx.tracer,
        )
        try:
            for row in rows:
                key = self._build_key(row)
                group, _ = self._table.find_or_insert(key, list)
                group.append(self._build_rest(row))
            self.probe.open()
        except BaseException:
            # Overflow mid-build or a failed probe open must not leak
            # the charged build table.
            self._table.free()
            self._table = None
            raise
        self._pending = []

    def _next(self) -> Optional[Row]:
        assert self._table is not None
        while True:
            if self._pending:
                return self._pending.pop()
            row = self.probe.next()
            if row is None:
                return None
            group = self._table.find(self._probe_key(row))
            if group:
                self._pending = [row + rest for rest in reversed(group)]

    def _close(self) -> None:
        self.probe.close()
        if self._table is not None:
            self._table.free()
            self._table = None
        self._pending = []

    def children(self) -> tuple[QueryIterator, ...]:
        return (self.probe, self.build)

    def describe(self) -> str:
        return f"HashJoin(on={','.join(self.join_names)})"
