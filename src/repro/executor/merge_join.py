"""Merge join and merge semi-join over sorted inputs.

"Merge join consists of a merging scan of both inputs, in which tuples
from the inner relation with equal key values are kept in a linked
list of tuples pinned in the buffer pool.  For semi-joins in which the
outer relation produces the result, no linked lists are used."
(Section 5.1.)  Both operators here require their inputs already sorted
on the join attributes -- composing with
:class:`~repro.executor.sort.ExternalSort` is the planner's job, as it
was in the paper's sort-based aggregation strategy.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import ExecutionError
from repro.executor.iterator import QueryIterator
from repro.relalg.tuples import Row, projector


class MergeJoin(QueryIterator):
    """Join two key-sorted inputs on equally named attributes.

    Output schema: all outer attributes followed by the inner
    attributes not in the join key.  Inner tuples with equal keys are
    buffered (the paper's pinned linked list) so outer duplicates can
    re-join the group.
    """

    def __init__(
        self,
        outer: QueryIterator,
        inner: QueryIterator,
        join_names: Sequence[str],
    ) -> None:
        if outer.ctx is not inner.ctx:
            raise ExecutionError("join inputs must share one execution context")
        self.join_names = tuple(join_names)
        inner_rest = [n for n in inner.schema.names if n not in set(join_names)]
        schema = (
            outer.schema.concat(inner.schema.project(inner_rest))
            if inner_rest
            else outer.schema
        )
        super().__init__(outer.ctx, schema)
        self.outer = outer
        self.inner = inner
        self._outer_key = projector(outer.schema, self.join_names)
        self._inner_key = projector(inner.schema, self.join_names)
        self._inner_rest = (
            projector(inner.schema, inner_rest) if inner_rest else (lambda row: ())
        )
        self._inner_row: Row | None = None
        self._inner_done = False
        self._group_key: tuple | None = None
        self._group: list[tuple] = []
        self._group_index = 0
        self._outer_row: Row | None = None

    def _open(self) -> None:
        self.outer.open()
        self.inner.open()
        self._inner_row = self.inner.next()
        self._inner_done = self._inner_row is None
        self._group_key = None
        self._group = []
        self._group_index = 0
        self._outer_row = None

    def _next(self) -> Optional[Row]:
        cpu = self.ctx.cpu
        while True:
            if self._outer_row is not None and self._group_index < len(self._group):
                rest = self._group[self._group_index]
                self._group_index += 1
                return self._outer_row + rest
            self._outer_row = self.outer.next()
            if self._outer_row is None:
                return None
            key = self._outer_key(self._outer_row)
            if key != self._group_key:
                cpu.comparisons += 1
                self._load_group(key)
            else:
                cpu.comparisons += 1
            self._group_index = 0

    def _load_group(self, key: tuple) -> None:
        """Advance the inner scan to ``key`` and buffer its group."""
        cpu = self.ctx.cpu
        self._group = []
        self._group_key = key
        while not self._inner_done:
            assert self._inner_row is not None
            inner_key = self._inner_key(self._inner_row)
            cpu.comparisons += 1
            if inner_key < key:
                self._inner_row = self.inner.next()
                self._inner_done = self._inner_row is None
                continue
            if inner_key == key:
                self._group.append(self._inner_rest(self._inner_row))
                self._inner_row = self.inner.next()
                self._inner_done = self._inner_row is None
                continue
            break

    def _close(self) -> None:
        self.outer.close()
        self.inner.close()
        self._group = []
        self._outer_row = None
        self._inner_row = None

    def children(self) -> tuple[QueryIterator, ...]:
        return (self.outer, self.inner)

    def describe(self) -> str:
        return f"MergeJoin(on={','.join(self.join_names)})"


class MergeSemiJoin(QueryIterator):
    """Semi-join of key-sorted inputs: outer tuples with >=1 inner match.

    The outer relation produces the result, so no inner group is
    buffered -- only the current inner key is tracked.
    """

    def __init__(
        self,
        outer: QueryIterator,
        inner: QueryIterator,
        join_names: Sequence[str],
    ) -> None:
        if outer.ctx is not inner.ctx:
            raise ExecutionError("join inputs must share one execution context")
        super().__init__(outer.ctx, outer.schema)
        self.join_names = tuple(join_names)
        self.outer = outer
        self.inner = inner
        self._outer_key = projector(outer.schema, self.join_names)
        self._inner_key = projector(inner.schema, self.join_names)
        self._current_inner: tuple | None = None
        self._inner_done = False

    def _open(self) -> None:
        self.outer.open()
        self.inner.open()
        self._current_inner = None
        self._inner_done = False
        self._advance_inner()

    def _advance_inner(self) -> None:
        row = self.inner.next()
        if row is None:
            self._inner_done = True
            self._current_inner = None
        else:
            self._current_inner = self._inner_key(row)

    def _next(self) -> Optional[Row]:
        cpu = self.ctx.cpu
        while True:
            outer_row = self.outer.next()
            if outer_row is None:
                return None
            key = self._outer_key(outer_row)
            while not self._inner_done:
                cpu.comparisons += 1
                assert self._current_inner is not None
                if self._current_inner < key:
                    self._advance_inner()
                    continue
                break
            if self._inner_done:
                return None
            cpu.comparisons += 1
            if self._current_inner == key:
                return outer_row

    def _close(self) -> None:
        self.outer.close()
        self.inner.close()

    def children(self) -> tuple[QueryIterator, ...]:
        return (self.outer, self.inner)

    def describe(self) -> str:
        return f"MergeSemiJoin(on={','.join(self.join_names)})"
