"""The high-level :func:`divide` entry point.

``divide(R, S)`` runs relational division over two in-memory relations
with a chosen -- or automatically chosen -- algorithm.  The automatic
choice follows the paper's conclusions: hash-division, being "both fast
and general" (Section 7), is the default whenever it applies; the other
algorithms are available by name for comparison and teaching.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import DivisionError
from repro.core.aggregate_division import (
    hash_aggregate_division,
    sort_aggregate_division,
)
from repro.core.algebraic_division import algebraic_division
from repro.core.hash_division import hash_division
from repro.core.naive_division import naive_division
from repro.executor.iterator import ExecContext
from repro.relalg.algebra import divide_set_semantics, division_attribute_split
from repro.relalg.relation import Relation

DivisionFunction = Callable[..., Relation]

ALGORITHMS: dict[str, DivisionFunction] = {
    "hash": hash_division,
    "naive": naive_division,
    "sort-aggregate": sort_aggregate_division,
    "hash-aggregate": hash_aggregate_division,
    "algebraic": algebraic_division,
    "oracle": lambda dividend, divisor, ctx=None, name="quotient": (
        divide_set_semantics(dividend, divisor, name=name)
    ),
}
"""Algorithm registry: name -> callable(dividend, divisor, ...)."""


def divide(
    dividend: Relation,
    divisor: Relation,
    algorithm: str = "auto",
    ctx: ExecContext | None = None,
    name: str = "quotient",
    **options,
) -> Relation:
    """Compute ``dividend ÷ divisor``.

    Args:
        dividend: Relation whose schema contains the divisor attributes
            plus at least one quotient attribute.
        divisor: Relation of the universally quantified values.
        algorithm: One of ``"auto"``, ``"hash"``, ``"naive"``,
            ``"sort-aggregate"``, ``"hash-aggregate"``,
            ``"algebraic"``, or ``"oracle"``.
        ctx: Execution context for cost metering; a fresh unbudgeted
            context is created when omitted.
        name: Name of the returned quotient relation.
        **options: Algorithm-specific keywords, e.g. ``with_join=True``
            for the aggregation strategies, ``early_output=True`` or
            ``mode="counter"`` for hash-division.

    Returns:
        The quotient relation (duplicate-free).

    Raises:
        DivisionError: for an unknown algorithm name or schemas that do
            not form a valid division.
    """
    division_attribute_split(dividend, divisor)  # validate early
    chosen = _resolve(algorithm, divisor)
    function = ALGORITHMS[chosen]
    return function(dividend, divisor, ctx=ctx, name=name, **options)


def _resolve(algorithm: str, divisor: Relation) -> str:
    if algorithm == "auto":
        # Hash-division is the paper's general answer; only the
        # aggregation strategies cannot handle an empty divisor, and
        # hash-division handles duplicates in either input, so there is
        # no input shape that forces a different automatic choice.
        return "hash"
    if algorithm not in ALGORITHMS:
        raise DivisionError(
            f"unknown division algorithm {algorithm!r}; "
            f"expected one of {sorted(ALGORITHMS)} or 'auto'/'advisor'"
        )
    return algorithm


#: Maps the cost advisor's strategy names onto divide() invocations.
#: Private storage -- read it through :func:`advisor_dispatch`.
_ADVISOR_DISPATCH: dict[str, tuple[str, dict]] = {
    "hash-division": ("hash", {}),
    "naive": ("naive", {}),
    "sort-agg no join": ("sort-aggregate", {"with_join": False}),
    "sort-agg with join": ("sort-aggregate", {"with_join": True}),
    "hash-agg no join": ("hash-aggregate", {"with_join": False}),
    "hash-agg with join": ("hash-aggregate", {"with_join": True}),
}


def advisor_dispatch(strategy: str | None = None):
    """Public accessor for the advisor-strategy -> divide() registry.

    Args:
        strategy: An advisor strategy name (e.g. ``"sort-agg with
            join"``).  When given, returns its ``(algorithm, options)``
            pair -- ``options`` is a fresh dict, safe to mutate.  When
            omitted, returns a copy of the whole registry.

    Raises:
        DivisionError: for an unknown strategy name.
    """
    if strategy is None:
        return {name: (algo, dict(opts)) for name, (algo, opts) in
                _ADVISOR_DISPATCH.items()}
    try:
        algorithm, options = _ADVISOR_DISPATCH[strategy]
    except KeyError:
        raise DivisionError(
            f"unknown advisor strategy {strategy!r}; "
            f"expected one of {sorted(_ADVISOR_DISPATCH)}"
        ) from None
    return algorithm, dict(options)


def divide_with_advisor(
    dividend: Relation,
    divisor: Relation,
    divisor_restricted: bool = False,
    ctx: ExecContext | None = None,
    name: str = "quotient",
) -> tuple[Relation, str]:
    """Divide using the cost advisor's pick; returns (quotient, strategy).

    Feeds the *actual* input statistics (cardinalities, duplicate
    presence) to :func:`repro.costmodel.advisor.choose_strategy` and
    runs the winner.  ``divisor_restricted`` must be set when the
    divisor is a selection result whose values may miss some dividend
    tuples -- the advisor then refuses the no-join counting strategies
    (Section 2.2's correctness requirement).
    """
    from repro.costmodel.advisor import DivisionEstimates, choose_strategy

    quotient_names, _ = division_attribute_split(dividend, divisor)
    estimates = DivisionEstimates(
        dividend_tuples=len(dividend),
        divisor_tuples=len(set(divisor.rows)),
        quotient_tuples=len({tuple(row[i] for i in
                             dividend.schema.positions_of(quotient_names))
                             for row in dividend}),
        divisor_restricted=divisor_restricted,
        may_contain_duplicates=dividend.has_duplicates() or divisor.has_duplicates(),
    )
    picked = choose_strategy(estimates)
    algorithm, options = advisor_dispatch(picked.strategy)
    if algorithm in ("sort-aggregate", "hash-aggregate"):
        options["eliminate_duplicates"] = estimates.may_contain_duplicates
    quotient = divide(
        dividend, divisor, algorithm=algorithm, ctx=ctx, name=name, **options
    )
    return quotient, picked.strategy
