"""Division via the classical operator identity (Section 1).

    R ÷ S  =  π_q(R) − π_q((π_q(R) × S) − R)

The paper dismisses this formulation as "of merely theoretical
validity since the equivalent expression contains a Cartesian product
operator".  It is provided here for three reasons: as an independent
correctness oracle, as the fifth competitor in the ablation benchmarks
(to show *how* impractical it is), and because a complete division
library should ship the textbook definition.

The heavy lifting lives in :func:`repro.relalg.algebra.divide_by_identity`;
this module adds cost accounting so the identity can appear in the same
experiment tables as the four real algorithms: the Cartesian product
charges one ``Move``-equivalent tuple copy and the set difference one
comparison per probed tuple.
"""

from __future__ import annotations

from repro.executor.iterator import ExecContext
from repro.relalg import algebra
from repro.relalg.relation import Relation
from repro.relalg.tuples import projector


def algebraic_division(
    dividend: Relation,
    divisor: Relation,
    ctx: ExecContext | None = None,
    name: str = "quotient",
) -> Relation:
    """Divide via π_q(R) − π_q((π_q(R) × S) − R), with cost accounting.

    The charge model: building the Cartesian product costs one
    hash-unit per produced tuple (set insertion) plus the tuple copies,
    the subtraction one comparison per tuple probed -- and, crucially,
    the product is spooled to and re-read from temporary storage, as a
    real Cartesian product operator must do, charged as sequential
    transfers on a dedicated ``identity-spool`` device.  The product
    has ``|Q| · |S|`` tuples *before* any pruning, which is the
    quadratic wall the paper dismisses the identity over.
    """
    quotient_names, _divisor_names = algebra.division_attribute_split(
        dividend, divisor
    )
    result = algebra.divide_by_identity(dividend, divisor, name=name)
    if ctx is not None:
        quotient_of = projector(dividend.schema, quotient_names)
        candidates = len({quotient_of(row) for row in dividend})
        distinct_divisor = len(set(map(tuple, divisor)))
        product_size = candidates * distinct_divisor
        cpu = ctx.cpu
        cpu.comparisons += len(dividend)          # candidate projection dedup
        cpu.comparisons += len(divisor)           # divisor dedup
        cpu.hashes += product_size                # building the product set
        cpu.comparisons += product_size           # probing R during subtraction
        cpu.comparisons += candidates             # final anti-join probe
        cpu.add_tuple_moves(
            product_size, dividend.schema.record_size, ctx.config.page_size
        )
        # The product is materialized: written out once and read back
        # for the subtraction, sequentially, on its own spool device.
        record_size = dividend.schema.record_size
        records_per_page = max(1, ctx.config.page_size // record_size)
        product_pages = -(-product_size // records_per_page)
        for page_no in range(product_pages):
            ctx.io_stats.record_transfer(
                "identity-spool", page_no, ctx.config.page_size, is_write=True
            )
        for page_no in range(product_pages):
            ctx.io_stats.record_transfer(
                "identity-spool", page_no, ctx.config.page_size, is_write=False
            )
    return result
