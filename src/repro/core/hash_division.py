"""Hash-division -- the paper's new algorithm (Section 3, Figure 1).

Two hash tables:

* the **divisor table** maps each distinct divisor tuple to a unique
  integer *divisor number* (step 1; duplicates in the divisor are
  eliminated on the fly),
* the **quotient table** maps each quotient candidate (the dividend
  tuple projected on the quotient attributes) to a *bit map* with one
  bit per divisor tuple (step 2; a dividend tuple that matches no
  divisor tuple is discarded immediately, and dividend duplicates are
  ignored automatically because they map to the same bit in the same
  bit map),
* the quotient is the set of candidates whose bit map contains no zero
  (step 3).

Variants from the paper's discussion (Section 3.3):

* ``early_output=True`` -- the second observation: keep a counter per
  candidate; when a fresh bit raises the counter to the divisor count,
  emit the quotient tuple immediately, making the operator a streaming
  producer for dataflow systems.
* ``mode="counter"`` -- the sixth observation: "If duplicates are known
  not to be a problem, hash-division could be modified to employ
  counters instead of divisor numbers and bit maps."  Cheaper per
  tuple, but dividend duplicates are double-counted (the tests
  demonstrate exactly that failure).

Division convention: an empty divisor yields every distinct quotient
candidate (the universal quantifier over an empty set is vacuously
true), matching the algebraic identity.  Figure 1 read literally would
return nothing because no dividend tuple finds a divisor match; the
implementation special-cases ``divisor count == 0`` to keep all
algorithms and oracles in agreement.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import DivisionError, ExecutionError, HashTableOverflowError, MemoryPoolError
from repro.core.bitmap import Bitmap
from repro.executor.hash_table import ChainedHashTable
from repro.executor.iterator import ExecContext, QueryIterator, run_to_relation
from repro.executor.scan import RelationSource
from repro.relalg.algebra import division_attribute_split
from repro.relalg.relation import Relation
from repro.relalg.tuples import Row, projector

import itertools

#: Per-instance tags for quotient-table bit maps, so two concurrently
#: open operators on one context never free each other's maps.
_bitmap_tags = itertools.count()

_MODES = ("bitmap", "counter")


class HashDivision(QueryIterator):
    """The hash-division operator.

    Args:
        dividend: Input producing dividend tuples; its schema must
            contain every divisor attribute plus at least one quotient
            attribute.
        divisor: Input producing divisor tuples.
        early_output: Emit each quotient tuple as soon as its bit map
            completes (streaming producer) instead of scanning the
            quotient table after the dividend is exhausted.
        mode: ``"bitmap"`` (duplicate-safe, the algorithm of Figure 1)
            or ``"counter"`` (Section 3.3's cheaper variant that
            assumes a duplicate-free dividend).
        expected_divisor: Sizing hint for the divisor table's bucket
            array (defaults to sizing after the divisor is consumed).
        expected_quotient: Sizing hint for the quotient table.
    """

    def __init__(
        self,
        dividend: QueryIterator,
        divisor: QueryIterator,
        early_output: bool = False,
        mode: str = "bitmap",
        expected_divisor: int = 0,
        expected_quotient: int = 0,
    ) -> None:
        if dividend.ctx is not divisor.ctx:
            raise ExecutionError("division inputs must share one execution context")
        if mode not in _MODES:
            raise DivisionError(f"unknown hash-division mode {mode!r}; expected {_MODES}")
        quotient_names, divisor_names = _split_names(dividend, divisor)
        super().__init__(dividend.ctx, dividend.schema.project(quotient_names))
        self.dividend = dividend
        self.divisor = divisor
        self.early_output = early_output
        self.mode = mode
        self.expected_divisor = expected_divisor
        self.expected_quotient = expected_quotient
        self.quotient_names = quotient_names
        self.divisor_names = divisor_names
        self._divisor_of = projector(dividend.schema, divisor_names)
        self._quotient_of = projector(dividend.schema, quotient_names)
        self._divisor_table: ChainedHashTable | None = None
        self._quotient_table: ChainedHashTable | None = None
        self._divisor_count = 0
        self._output = None
        self._bitmap_tag = f"quotient-bitmaps#{next(_bitmap_tags)}"

    # -- protocol ----------------------------------------------------------

    def _open(self) -> None:
        tracer = self.ctx.tracer
        try:
            with tracer.span("hash_division.build_divisor_table"):
                self._build_divisor_table()
            tracer.count(
                "repro_division_divisor_tuples_total",
                self._divisor_count,
                algorithm="hash-division",
            )
            self._make_quotient_table()
            if self.early_output:
                # Step 2 runs lazily inside next(); the dividend is
                # opened here so the operator streams.
                self.dividend.open()
                self._output = None
            else:
                with tracer.span("hash_division.consume_dividend") as span:
                    self.dividend.open()
                    try:
                        consume = self._consume_tuple
                        while True:
                            row = self.dividend.next()
                            if row is None:
                                break
                            consume(row)
                    finally:
                        self.dividend.close()
                    span.annotate(
                        dividend_tuples=self.dividend.rows_produced,
                        quotient_candidates=len(self._quotient_table),
                    )
                tracer.count(
                    "repro_division_quotient_candidates_total",
                    len(self._quotient_table),
                    algorithm="hash-division",
                )
                self._free_divisor_table()
                self._output = self._scan_quotient_table()
        except MemoryPoolError as exc:
            # A raw pool failure mid-build (e.g. an injected memory
            # fault firing outside the hash table's own conversion
            # sites) degrades exactly like a hash-table overflow, so
            # the partitioned fallback can take over instead of the
            # query aborting.
            self._release_tables()
            raise HashTableOverflowError(
                f"memory pool exhausted during hash-division build: {exc}"
            ) from exc
        except BaseException:
            # Release everything so an overflow driver can retry with
            # partitioning against the same memory pool -- and so any
            # other failure during open leaves no charged table behind
            # and no child input open (each build/consume step closes
            # its own input on the way out).
            self._release_tables()
            raise

    def _next(self) -> Optional[Row]:
        if not self.early_output:
            assert self._output is not None
            return next(self._output, None)
        consume = self._consume_tuple
        while True:
            row = self.dividend.next()
            if row is None:
                return None
            emitted = consume(row)
            if emitted is not None:
                return emitted

    def _close(self) -> None:
        if self.early_output:
            self.dividend.close()
        self._release_tables()
        self._output = None
        self.ctx.tracer.count(
            "repro_division_quotient_tuples_total",
            self.rows_produced,
            algorithm="hash-division",
        )

    def _release_tables(self) -> None:
        self._free_divisor_table()
        if self._quotient_table is not None:
            self._quotient_table.free()
            self.ctx.memory.free_all(tag=self._bitmap_tag)
            self._quotient_table = None

    def children(self) -> tuple[QueryIterator, ...]:
        return (self.dividend, self.divisor)

    def describe(self) -> str:
        flags = [self.mode]
        if self.early_output:
            flags.append("early-output")
        return f"HashDivision(÷{','.join(self.divisor_names)}; {' '.join(flags)})"

    # -- step 1: divisor table ------------------------------------------------

    def _build_divisor_table(self) -> None:
        """Insert all divisor tuples, numbering them 0..n-1.

        Duplicates in the divisor are "eliminated while building the
        divisor table" (Section 3.3): a tuple already present is not
        inserted and does not advance the divisor count.
        """
        self.divisor.open()
        try:
            rows = list(self.divisor)
        finally:
            self.divisor.close()
        expected = self.expected_divisor or max(1, len(rows))
        table = ChainedHashTable(
            self.ctx.cpu,
            self.ctx.memory,
            bucket_count=ChainedHashTable.buckets_for(expected),
            entry_bytes=self.divisor.schema.record_size + 8,
            tag="divisor-table",
            tracer=self.ctx.tracer,
        )
        # Assign before filling so an overflow mid-build is released by
        # the _open() cleanup path rather than leaked.
        self._divisor_table = table
        count = 0
        for row in rows:
            _, inserted = table.find_or_insert(tuple(row), lambda c=count: c)
            if inserted:
                count += 1
        self._divisor_count = count

    def _free_divisor_table(self) -> None:
        if self._divisor_table is not None:
            self._divisor_table.free()
            self._divisor_table = None

    # -- step 2: quotient table --------------------------------------------------

    def _make_quotient_table(self) -> None:
        expected = self.expected_quotient or 64
        self._quotient_table = ChainedHashTable(
            self.ctx.cpu,
            self.ctx.memory,
            bucket_count=ChainedHashTable.buckets_for(expected),
            entry_bytes=self.schema.record_size + 8,
            tag="quotient-table",
            tracer=self.ctx.tracer,
        )

    def _consume_tuple(self, row: Row) -> Optional[Row]:
        """Process one dividend tuple; returns a quotient tuple when the
        early-output variant completes one, else ``None``."""
        assert self._divisor_table is not None and self._quotient_table is not None
        if self._divisor_count == 0:
            divisor_number = -1  # vacuous division: no bit to set
        else:
            divisor_number = self._divisor_table.find(self._divisor_of(row))
            if divisor_number is None:
                return None  # no matching divisor tuple: discard
        quotient_key = self._quotient_of(row)
        payload, inserted = self._quotient_table.find_or_insert(
            quotient_key, lambda: self._new_candidate()
        )
        if self.mode == "counter":
            return self._consume_counter(quotient_key, payload, divisor_number)
        return self._consume_bitmap(quotient_key, payload, divisor_number)

    def _new_candidate(self):
        """Payload for a fresh quotient candidate.

        Bitmap mode: ``[bitmap, emitted_flag]``.  Counter mode:
        ``[count]``.  Bit maps are charged to the memory pool under
        their own tag so overflow accounting sees them.
        """
        if self.mode == "counter":
            return [0]
        try:
            self.ctx.memory.allocate(
                Bitmap.bytes_for(self._divisor_count), tag=self._bitmap_tag
            )
        except MemoryPoolError as exc:
            raise HashTableOverflowError(str(exc)) from exc
        return [Bitmap(self._divisor_count, cpu=self.ctx.cpu), False]

    def _consume_bitmap(
        self, quotient_key: Row, payload: list, divisor_number: int
    ) -> Optional[Row]:
        bitmap: Bitmap = payload[0]
        if divisor_number >= 0:
            fresh = bitmap.set(divisor_number)
        else:
            fresh = False
        if not self.early_output:
            return None
        if payload[1]:
            return None  # already produced
        if (fresh or divisor_number < 0) and bitmap.set_count == self._divisor_count:
            payload[1] = True
            return quotient_key
        return None

    def _consume_counter(
        self, quotient_key: Row, payload: list, divisor_number: int
    ) -> Optional[Row]:
        if divisor_number >= 0:
            payload[0] += 1
        if not self.early_output:
            return None
        if payload[0] == self._divisor_count and (
            self._divisor_count > 0 or len(payload) == 1
        ):
            payload.append("emitted")
            return quotient_key
        return None

    # -- step 3: scan the quotient table --------------------------------------------

    def _scan_quotient_table(self):
        assert self._quotient_table is not None
        if self.mode == "counter":
            target = self._divisor_count
            return (
                key
                for key, payload in self._quotient_table.items()
                if payload[0] == target
            )
        return (
            key
            for key, payload in self._quotient_table.items()
            if payload[0].all_set()
        )


def _split_names(
    dividend: QueryIterator, divisor: QueryIterator
) -> tuple[tuple[str, ...], tuple[str, ...]]:
    """Schema-level validation shared with the algebra oracle."""
    shell_dividend = Relation(dividend.schema)
    shell_divisor = Relation(divisor.schema)
    return division_attribute_split(shell_dividend, shell_divisor)


def hash_division(
    dividend: Relation,
    divisor: Relation,
    ctx: ExecContext | None = None,
    early_output: bool = False,
    mode: str = "bitmap",
    name: str = "quotient",
) -> Relation:
    """Divide two in-memory relations with hash-division.

    Convenience wrapper building the two-source plan and draining it.
    For metered experiments over stored relations, construct
    :class:`HashDivision` over :class:`~repro.executor.scan.StoredRelationScan`
    inputs instead.
    """
    ctx = ctx or ExecContext()
    operator = HashDivision(
        RelationSource(ctx, dividend),
        RelationSource(ctx, divisor),
        early_output=early_output,
        mode=mode,
        expected_divisor=len(divisor),
    )
    return run_to_relation(operator, name=name)
