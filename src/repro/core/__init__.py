"""The four division algorithms -- the paper's subject matter.

* :mod:`repro.core.naive_division` -- the sort-based merge-scan
  algorithm of Smith (Section 2.1),
* :mod:`repro.core.aggregate_division` -- division by counting, with
  sort-based or hash-based aggregation, with or without the preceding
  (semi-)join (Section 2.2),
* :mod:`repro.core.hash_division` -- the paper's new algorithm
  (Section 3, Figure 1), with the early-output and counter variants of
  Section 3.3,
* :mod:`repro.core.algebraic_division` -- the classical operator
  identity, as an oracle and a cautionary benchmark (Section 1),
* :mod:`repro.core.partitioned` -- hash-table-overflow handling via
  quotient partitioning and divisor partitioning (Section 3.4),
* :mod:`repro.core.bitmap` -- word-at-a-time bit maps,
* :mod:`repro.core.divide` -- the high-level :func:`repro.divide`
  entry point that picks an algorithm.
"""

from repro.core.bitmap import Bitmap
from repro.core.hash_division import HashDivision, hash_division
from repro.core.naive_division import NaiveDivision, naive_division
from repro.core.aggregate_division import (
    hash_aggregate_division,
    sort_aggregate_division,
)
from repro.core.algebraic_division import algebraic_division
from repro.core.partitioned import (
    combined_partitioned_division,
    divisor_partitioned_division,
    hash_division_with_overflow,
    quotient_partitioned_division,
)
from repro.core.divide import (
    ALGORITHMS,
    advisor_dispatch,
    divide,
    divide_with_advisor,
)
from repro.core.trace import DivisionTrace, TraceEvent, trace_hash_division

__all__ = [
    "Bitmap",
    "HashDivision",
    "hash_division",
    "NaiveDivision",
    "naive_division",
    "sort_aggregate_division",
    "hash_aggregate_division",
    "algebraic_division",
    "quotient_partitioned_division",
    "divisor_partitioned_division",
    "combined_partitioned_division",
    "hash_division_with_overflow",
    "divide",
    "divide_with_advisor",
    "advisor_dispatch",
    "ALGORITHMS",
    "DivisionTrace",
    "TraceEvent",
    "trace_hash_division",
]
