"""The naive sort-based division algorithm (Section 2.1, after Smith 1975).

The dividend is sorted on the quotient attributes (major) and divisor
attributes (minor); the divisor is sorted on all its attributes.  The
two sorted streams are then merge-scanned: the dividend is the outer
input, and for every candidate quotient group the divisor is walked in
step with the group's divisor-attribute values.  A group produces a
quotient tuple exactly when the walk reaches the end of the divisor
list -- "producing a quotient tuple each time the end of the divisor
list is reached" (Section 5.1).

Per the paper's implementation, the operator "first consumes the entire
divisor relation, building a linked list of divisor tuples fixed in the
buffer pool" -- here, a Python list -- and requires duplicate-free,
sorted inputs.  :func:`naive_division` wraps the operator with the
necessary sorts (with duplicate elimination) for in-memory relations.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import DivisionError, ExecutionError
from repro.executor.iterator import ExecContext, QueryIterator, run_to_relation
from repro.executor.scan import RelationSource
from repro.executor.sort import ExternalSort
from repro.relalg.algebra import division_attribute_split
from repro.relalg.relation import Relation
from repro.relalg.tuples import Row, projector


class NaiveDivision(QueryIterator):
    """Merge-scan division over *sorted, duplicate-free* inputs.

    Args:
        dividend: Sorted on (quotient attributes, divisor attributes).
        divisor: Sorted on all its attributes, duplicate-free.

    The sorted-input requirement is the algorithm's defining cost: the
    operator itself is a cheap single scan, but its inputs must be
    produced by full sorts.  Sortedness of the divisor is verified
    while it is consumed; dividend order is trusted (verifying it would
    double the comparison count the cost model attributes to the merge
    scan).
    """

    def __init__(self, dividend: QueryIterator, divisor: QueryIterator) -> None:
        if dividend.ctx is not divisor.ctx:
            raise ExecutionError("division inputs must share one execution context")
        quotient_names, divisor_names = division_attribute_split(
            Relation(dividend.schema), Relation(divisor.schema)
        )
        super().__init__(dividend.ctx, dividend.schema.project(quotient_names))
        self.dividend = dividend
        self.divisor = divisor
        self.quotient_names = quotient_names
        self.divisor_names = divisor_names
        self._quotient_of = projector(dividend.schema, quotient_names)
        self._divisor_of = projector(dividend.schema, divisor_names)
        self._divisor_list: list[tuple] = []
        self._pending: Row | None = None
        self._done = False

    def _open(self) -> None:
        tracer = self.ctx.tracer
        with tracer.span("naive_division.load_divisor_list") as span:
            self.divisor.open()
            try:
                self._divisor_list = []
                previous: tuple | None = None
                for row in self.divisor:
                    value = tuple(row)
                    if previous is not None:
                        self.ctx.cpu.comparisons += 1
                        if value <= previous:
                            raise DivisionError(
                                "naive division requires a sorted, duplicate-free "
                                f"divisor; saw {value!r} after {previous!r}"
                            )
                    previous = value
                    self._divisor_list.append(value)
            finally:
                self.divisor.close()
            span.annotate(divisor_tuples=len(self._divisor_list))
        tracer.count(
            "repro_division_divisor_tuples_total",
            len(self._divisor_list),
            algorithm="naive",
        )
        try:
            self.dividend.open()
        except BaseException:
            # Leave the operator re-openable: a failed dividend open
            # must not keep the divisor list of the aborted attempt.
            self._divisor_list = []
            raise
        self._pending = None
        self._done = False

    def _next(self) -> Optional[Row]:
        if self._done:
            return None
        cpu = self.ctx.cpu
        divisor_list = self._divisor_list
        divisor_len = len(divisor_list)
        while True:
            # Fetch the first tuple of the next candidate group.
            row = self._pending if self._pending is not None else self.dividend.next()
            self._pending = None
            if row is None:
                self._done = True
                return None
            group_key = self._quotient_of(row)
            index = 0
            failed = False
            while row is not None:
                cpu.comparisons += 1  # does the tuple belong to this group?
                if self._quotient_of(row) != group_key:
                    break
                value = self._divisor_of(row)
                while index < divisor_len:
                    cpu.comparisons += 1
                    if divisor_list[index] < value:
                        # divisor_list[index] found no match in this group.
                        failed = True
                        index += 1
                        continue
                    break
                if index < divisor_len and divisor_list[index] == value:
                    index += 1
                # else: the dividend tuple matches no divisor tuple
                # (e.g. a physics course in the paper's second example);
                # it is simply skipped.
                row = self.dividend.next()
            self._pending = row
            if not failed and index == divisor_len:
                return group_key
            # Group disqualified; continue with the next group.

    def _close(self) -> None:
        self.dividend.close()
        self._divisor_list = []
        self._pending = None
        self.ctx.tracer.count(
            "repro_division_quotient_tuples_total",
            self.rows_produced,
            algorithm="naive",
        )

    def children(self) -> tuple[QueryIterator, ...]:
        return (self.dividend, self.divisor)

    def describe(self) -> str:
        return f"NaiveDivision(÷{','.join(self.divisor_names)})"


def naive_division(
    dividend: Relation,
    divisor: Relation,
    ctx: ExecContext | None = None,
    name: str = "quotient",
) -> Relation:
    """Divide two in-memory relations with the naive algorithm.

    Builds the full plan the paper analyzes: sort the dividend on
    (quotient, divisor) attributes with duplicate elimination, sort the
    divisor with duplicate elimination, then merge-scan.
    """
    ctx = ctx or ExecContext()
    quotient_names, divisor_names = division_attribute_split(dividend, divisor)
    sorted_dividend = ExternalSort(
        RelationSource(ctx, dividend),
        key_names=quotient_names + divisor_names,
        distinct=True,
    )
    sorted_divisor = ExternalSort(
        RelationSource(ctx, divisor),
        key_names=divisor.schema.names,
        distinct=True,
    )
    operator = NaiveDivision(sorted_dividend, sorted_divisor)
    return run_to_relation(operator, name=name)
