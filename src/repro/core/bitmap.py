"""Word-at-a-time bit maps for hash-division's quotient table.

Each quotient candidate carries "a bit map ... with one bit for each
divisor tuple" (Section 3.1).  The paper notes the algorithm "requires
efficient handling of bit maps, including a scan over a possibly large
bit map ... initializing a bit map and searching for a single zero in a
bit map can be done by inspecting a word at a time" (Section 3.3).

:class:`Bitmap` stores bits in 64-bit words and meters its work in the
cost model's ``Bit`` unit: one per set/test, and one per *word*
inspected during initialization and all-ones scans.
"""

from __future__ import annotations

from array import array

from repro.metering import CpuCounters

WORD_BITS = 64
_FULL_WORD = (1 << WORD_BITS) - 1


class Bitmap:
    """A fixed-size bit map over 64-bit words.

    Args:
        nbits: Number of bits (one per divisor tuple).
        cpu: Optional counter sink; when given, operations charge the
            ``Bit`` unit as described in the module docstring.
            Construction charges one ``Bit`` per word (the "clear bit
            map" of Figure 1, word at a time).
    """

    __slots__ = ("nbits", "_words", "cpu", "_set_count")

    def __init__(self, nbits: int, cpu: CpuCounters | None = None) -> None:
        if nbits < 0:
            raise ValueError(f"nbits must be >= 0, got {nbits}")
        self.nbits = nbits
        self.cpu = cpu
        nwords = (nbits + WORD_BITS - 1) // WORD_BITS
        self._words = array("Q", [0]) * nwords if nwords else array("Q")
        self._set_count = 0
        if cpu is not None:
            cpu.bit_ops += max(1, nwords)

    @property
    def size_bytes(self) -> int:
        """Memory footprint charged to the memory pool (word-aligned)."""
        return max(8, len(self._words) * 8)

    @staticmethod
    def bytes_for(nbits: int) -> int:
        """Footprint of a bitmap of ``nbits`` bits, without building it."""
        nwords = (nbits + WORD_BITS - 1) // WORD_BITS
        return max(8, nwords * 8)

    # -- single-bit operations ----------------------------------------

    def _locate(self, index: int) -> tuple[int, int]:
        if not 0 <= index < self.nbits:
            raise IndexError(f"bit {index} out of range ({self.nbits} bits)")
        return index // WORD_BITS, 1 << (index % WORD_BITS)

    def set(self, index: int) -> bool:
        """Set one bit; returns True when the bit was previously zero.

        The return value is what the early-output variant of
        hash-division tests "whether or not this bit position is set
        already" (Section 3.3) -- one ``Bit`` covers the test-and-set.
        """
        word, mask = self._locate(index)
        if self.cpu is not None:
            self.cpu.bit_ops += 1
        if self._words[word] & mask:
            return False
        self._words[word] |= mask
        self._set_count += 1
        return True

    def test(self, index: int) -> bool:
        """Return the value of one bit (charges one ``Bit``)."""
        word, mask = self._locate(index)
        if self.cpu is not None:
            self.cpu.bit_ops += 1
        return bool(self._words[word] & mask)

    # -- whole-map operations -------------------------------------------

    @property
    def set_count(self) -> int:
        """Number of one-bits (maintained incrementally, free to read)."""
        return self._set_count

    def all_set(self) -> bool:
        """True when no zero bit remains (Figure 1, step 3).

        Scans word at a time, stopping at the first word containing a
        zero; charges one ``Bit`` per word inspected.
        """
        if self.nbits == 0:
            if self.cpu is not None:
                self.cpu.bit_ops += 1
            return True
        full_words, tail_bits = divmod(self.nbits, WORD_BITS)
        for word_index in range(full_words):
            if self.cpu is not None:
                self.cpu.bit_ops += 1
            if self._words[word_index] != _FULL_WORD:
                return False
        if tail_bits:
            if self.cpu is not None:
                self.cpu.bit_ops += 1
            tail_mask = (1 << tail_bits) - 1
            return self._words[full_words] & tail_mask == tail_mask
        return True

    def zero_positions(self) -> list[int]:
        """Indexes of all zero bits (diagnostics; charges one ``Bit``
        per word plus one per zero found)."""
        zeros: list[int] = []
        for word_index, word in enumerate(self._words):
            if self.cpu is not None:
                self.cpu.bit_ops += 1
            if word == _FULL_WORD:
                continue
            base = word_index * WORD_BITS
            for offset in range(min(WORD_BITS, self.nbits - base)):
                if not word & (1 << offset):
                    zeros.append(base + offset)
                    if self.cpu is not None:
                        self.cpu.bit_ops += 1
        return zeros

    def __repr__(self) -> str:
        return f"<Bitmap {self._set_count}/{self.nbits} set>"
