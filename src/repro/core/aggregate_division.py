"""Division by counting -- the aggregation strategies (Section 2.2).

Both strategies evaluate the paper's three-step plan:

1. count the divisor with a *scalar aggregate*,
2. count dividend tuples per quotient candidate with an *aggregate
   function* -- preceded by a (semi-)join with the divisor when the
   divisor was restricted by a selection (``with_join=True``, the
   paper's second example query),
3. keep the candidates whose count equals the divisor count.

:class:`SortAggregateDivision` uses sorting for step 2 (INGRES-style,
Section 2.2.1) with aggregation performed during the sort;
:class:`HashAggregateDivision` uses hash aggregation (GAMMA-style,
Section 2.2.2).

**Correctness precondition of the no-join variants.**  Counting "as
many courses taken as offered" equates two counts, so without the join
it is only valid when every divisor-attribute value occurring in the
dividend also occurs in the divisor (the paper's first example query,
where referential integrity guarantees each Transcript course exists
in Courses).  When the divisor is restricted -- the paper's second
example, "all *database* courses" -- dividend tuples referencing
non-divisor values would be counted too, so ``with_join=True`` must be
used: "it is important to count only those tuples from the Transcript
relation which refer to database courses" (Section 2.2).  The direct
algorithms (naive, hash-division) have no such precondition.

Duplicate handling follows the paper's footnote 1: counting is only
correct over duplicate-free inputs, so by default
(``eliminate_duplicates=True``) an explicit duplicate-elimination step
is inserted -- during sorting for the sort strategy, and via the
memory-hungry :class:`~repro.executor.distinct.HashDistinct` for the
hash strategy.  Passing ``eliminate_duplicates=False`` reproduces the
paper's analyzed configuration (inputs known duplicate-free), fusing
the count into the sort / skipping the distinct step.

A division with an *empty divisor* is rejected: "students who have
taken as many courses as there are courses" cannot produce students
with zero transcript tuples, so counting cannot express the vacuous
universal quantifier that the direct algorithms (and the algebraic
identity) resolve to "every candidate qualifies".
"""

from __future__ import annotations

from typing import Optional

from repro.errors import DivisionError, ExecutionError
from repro.executor.aggregate import HashGroupCount, SortedGroupCount
from repro.executor.distinct import HashDistinct
from repro.executor.hash_join import HashSemiJoin
from repro.executor.iterator import ExecContext, QueryIterator, run_to_relation
from repro.executor.merge_join import MergeSemiJoin
from repro.executor.scan import RelationSource
from repro.executor.sort import ExternalSort, count_reducer
from repro.relalg.algebra import division_attribute_split
from repro.relalg.relation import Relation
from repro.relalg.tuples import Row


class _AggregateDivisionBase(QueryIterator):
    """Shared step-1/step-3 machinery for both counting strategies."""

    def __init__(
        self,
        dividend: QueryIterator,
        divisor: QueryIterator,
        with_join: bool,
        eliminate_duplicates: bool,
    ) -> None:
        if dividend.ctx is not divisor.ctx:
            raise ExecutionError("division inputs must share one execution context")
        quotient_names, divisor_names = division_attribute_split(
            Relation(dividend.schema), Relation(divisor.schema)
        )
        super().__init__(dividend.ctx, dividend.schema.project(quotient_names))
        self.dividend = dividend
        self.divisor = divisor
        self.with_join = with_join
        self.eliminate_duplicates = eliminate_duplicates
        self.quotient_names = quotient_names
        self.divisor_names = divisor_names
        self.divisor_count = 0
        self._counts: QueryIterator | None = None

    # -- step 1: scalar aggregate ------------------------------------

    def _count_divisor(self) -> Relation:
        """Count the divisor; returns the (distinct) divisor tuples.

        The divisor is drained into memory -- it is the small input by
        the division's nature -- so the join path can reuse it without
        re-reading the base relation.  Duplicate elimination here is
        the "explicitly requested" uniqueness of footnote 1.
        """
        tracer = self.ctx.tracer
        with tracer.span("aggregate_division.count_divisor") as span:
            self.divisor.open()
            try:
                rows = list(self.divisor)
            finally:
                self.divisor.close()
            if self.eliminate_duplicates:
                rows = list(dict.fromkeys(rows))
                # One comparison per tuple for the uniqueness check.
                self.ctx.cpu.comparisons += len(rows)
            divisor_relation = Relation(self.divisor.schema, rows, name="divisor")
            self.divisor_count = len(divisor_relation)
            span.annotate(divisor_tuples=self.divisor_count)
        tracer.count(
            "repro_division_divisor_tuples_total",
            self.divisor_count,
            algorithm=self._algorithm_label(),
        )
        if self.divisor_count == 0:
            raise DivisionError(
                "division by aggregation cannot express a vacuous for-all "
                "(empty divisor); use hash_division or naive_division"
            )
        return divisor_relation

    def _algorithm_label(self) -> str:
        """Metric label: strategy family plus the join variant."""
        family = (
            "sort-aggregate"
            if isinstance(self, SortAggregateDivision)
            else "hash-aggregate"
        )
        return f"{family} {'with join' if self.with_join else 'no join'}"

    # -- step 3: final selection -----------------------------------------

    def _next(self) -> Optional[Row]:
        assert self._counts is not None
        cpu = self.ctx.cpu
        while True:
            row = self._counts.next()
            if row is None:
                return None
            cpu.comparisons += 1
            if row[-1] == self.divisor_count:
                return row[:-1]

    def _close(self) -> None:
        if self._counts is not None:
            self._counts.close()
            self._counts = None
        self.ctx.tracer.count(
            "repro_division_quotient_tuples_total",
            self.rows_produced,
            algorithm=self._algorithm_label(),
        )

    def children(self) -> tuple[QueryIterator, ...]:
        return (self.dividend, self.divisor)


class SortAggregateDivision(_AggregateDivisionBase):
    """Division by counting with sort-based aggregation (Section 2.2.1).

    Without a join, the dividend is sorted once on the quotient
    attributes; with a join it is sorted first on the divisor
    attributes (for the merge semi-join) and the join result is sorted
    again on the quotient attributes -- "it must be sorted first on
    course-no's for the join and then on student-id's for aggregation".
    """

    def _open(self) -> None:
        divisor_relation = self._count_divisor()
        if self.with_join:
            outer = ExternalSort(
                self.dividend,
                key_names=self.divisor_names + self.quotient_names,
                distinct=self.eliminate_duplicates,
            )
            inner = ExternalSort(
                RelationSource(self.ctx, divisor_relation),
                key_names=self.divisor_names,
            )
            joined = MergeSemiJoin(outer, inner, self.divisor_names)
            counts: QueryIterator = ExternalSort(
                joined,
                key_names=self.quotient_names,
                reducer=count_reducer(joined.schema, self.quotient_names),
            )
        elif self.eliminate_duplicates:
            deduplicated = ExternalSort(
                self.dividend,
                key_names=self.quotient_names + self.divisor_names,
                distinct=True,
            )
            counts = SortedGroupCount(deduplicated, self.quotient_names)
        else:
            counts = ExternalSort(
                self.dividend,
                key_names=self.quotient_names,
                reducer=count_reducer(self.dividend.schema, self.quotient_names),
            )
        with self.ctx.tracer.span(
            "aggregate_division.aggregate_dividend", strategy=self._algorithm_label()
        ):
            counts.open()
        self._counts = counts

    def describe(self) -> str:
        join = "with join" if self.with_join else "no join"
        return f"SortAggregateDivision({join})"


class HashAggregateDivision(_AggregateDivisionBase):
    """Division by counting with hash aggregation (Section 2.2.2).

    The aggregation hash table holds one entry per quotient candidate,
    so the dividend need not fit in memory.  With a join, a hash
    semi-join on the divisor attributes precedes the aggregation, built
    on its own hash table ("the hash table used for the join is a
    different one than the one used for aggregation").  Duplicate
    elimination, when requested, requires holding the entire distinct
    dividend in memory (:class:`~repro.executor.distinct.HashDistinct`)
    -- the impracticality the paper calls out.
    """

    def __init__(
        self,
        dividend: QueryIterator,
        divisor: QueryIterator,
        with_join: bool = False,
        eliminate_duplicates: bool = True,
        expected_quotient: int = 0,
    ) -> None:
        super().__init__(dividend, divisor, with_join, eliminate_duplicates)
        self.expected_quotient = expected_quotient

    def _open(self) -> None:
        divisor_relation = self._count_divisor()
        source: QueryIterator = self.dividend
        if self.with_join:
            source = HashSemiJoin(
                source,
                RelationSource(self.ctx, divisor_relation),
                self.divisor_names,
                expected_build_size=self.divisor_count,
            )
        if self.eliminate_duplicates:
            source = HashDistinct(source)
        counts = HashGroupCount(
            source,
            self.quotient_names,
            expected_groups=self.expected_quotient,
        )
        with self.ctx.tracer.span(
            "aggregate_division.aggregate_dividend", strategy=self._algorithm_label()
        ):
            counts.open()
        self._counts = counts

    def describe(self) -> str:
        join = "with join" if self.with_join else "no join"
        return f"HashAggregateDivision({join})"


def sort_aggregate_division(
    dividend: Relation,
    divisor: Relation,
    with_join: bool = False,
    eliminate_duplicates: bool = True,
    ctx: ExecContext | None = None,
    name: str = "quotient",
) -> Relation:
    """Divide two in-memory relations by sort-based counting."""
    ctx = ctx or ExecContext()
    operator = SortAggregateDivision(
        RelationSource(ctx, dividend),
        RelationSource(ctx, divisor),
        with_join=with_join,
        eliminate_duplicates=eliminate_duplicates,
    )
    return run_to_relation(operator, name=name)


def hash_aggregate_division(
    dividend: Relation,
    divisor: Relation,
    with_join: bool = False,
    eliminate_duplicates: bool = True,
    ctx: ExecContext | None = None,
    name: str = "quotient",
) -> Relation:
    """Divide two in-memory relations by hash-based counting."""
    ctx = ctx or ExecContext()
    operator = HashAggregateDivision(
        RelationSource(ctx, dividend),
        RelationSource(ctx, divisor),
        with_join=with_join,
        eliminate_duplicates=eliminate_duplicates,
        expected_quotient=0,
    )
    return run_to_relation(operator, name=name)
