"""A tracing hash-division that narrates Section 3.2's walkthrough.

The paper explains the algorithm with a blow-by-blow account of the
Figure 2 example: Database1 gets divisor number 0, Ann gets a fresh
bit map, (Barb, Optics) is discarded, and so on.  This module runs the
same algorithm while emitting that narrative as structured events --
useful for teaching, debugging, and for the test that pins the
implementation to the paper's own story
(`tests/core/test_trace.py`).

Tracing is deliberately separate from
:class:`repro.core.hash_division.HashDivision`: the production operator
stays lean, and the trace implementation follows Figure 1 line by line
instead, acting as a third independent implementation of the
algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.relalg.algebra import division_attribute_split
from repro.relalg.relation import Relation
from repro.relalg.tuples import projector


@dataclass(frozen=True)
class TraceEvent:
    """One step of the hash-division narrative.

    Kinds: ``assign-divisor-number``, ``duplicate-divisor``,
    ``discard`` (no matching divisor tuple), ``new-candidate`` (fresh
    quotient tuple + bit map), ``set-bit``, ``bit-already-set``
    (dividend duplicate), ``emit`` (step 3), ``reject`` (zero bit
    remains).
    """

    kind: str
    tuple_: tuple = ()
    divisor_number: Optional[int] = None
    detail: str = ""

    def render(self) -> str:
        parts = [self.kind, repr(self.tuple_)]
        if self.divisor_number is not None:
            parts.append(f"divisor#{self.divisor_number}")
        if self.detail:
            parts.append(f"({self.detail})")
        return " ".join(parts)


@dataclass
class DivisionTrace:
    """The full narrative plus the quotient it arrives at."""

    events: list[TraceEvent] = field(default_factory=list)
    quotient: list[tuple] = field(default_factory=list)

    def of_kind(self, kind: str) -> list[TraceEvent]:
        """All events of one kind, in order."""
        return [event for event in self.events if event.kind == kind]

    def render(self) -> str:
        """The narrative as numbered lines."""
        return "\n".join(
            f"{index + 1:3d}. {event.render()}"
            for index, event in enumerate(self.events)
        )


def trace_hash_division(dividend: Relation, divisor: Relation) -> DivisionTrace:
    """Run hash-division, recording every step of Figure 1.

    A reference implementation in plain dictionaries -- no metering, no
    memory budget -- written to mirror the pseudo-code and the §3.2
    narration as closely as possible.
    """
    quotient_names, divisor_names = division_attribute_split(dividend, divisor)
    divisor_of = projector(dividend.schema, divisor_names)
    quotient_of = projector(dividend.schema, quotient_names)
    trace = DivisionTrace()

    # Step 1: build the divisor table, numbering divisor tuples.
    divisor_table: dict[tuple, int] = {}
    for row in divisor:
        key = tuple(row)
        if key in divisor_table:
            trace.events.append(
                TraceEvent("duplicate-divisor", key, divisor_table[key],
                           "eliminated on the fly")
            )
            continue
        number = len(divisor_table)
        divisor_table[key] = number
        trace.events.append(TraceEvent("assign-divisor-number", key, number))
    divisor_count = len(divisor_table)

    # Step 2: consume the dividend.
    quotient_table: dict[tuple, set] = {}
    for row in dividend:
        divisor_key = divisor_of(row)
        if divisor_count and divisor_key not in divisor_table:
            trace.events.append(
                TraceEvent("discard", tuple(row), None,
                           "no matching divisor tuple")
            )
            continue
        number = divisor_table.get(divisor_key)
        candidate = quotient_of(row)
        if candidate not in quotient_table:
            quotient_table[candidate] = set()
            trace.events.append(
                TraceEvent("new-candidate", candidate, None,
                           f"bit map of {divisor_count} bits, all zero")
            )
        if number is None:
            continue  # vacuous division: no bit to set
        bits = quotient_table[candidate]
        if number in bits:
            trace.events.append(
                TraceEvent("bit-already-set", candidate, number,
                           "dividend duplicate ignored")
            )
        else:
            bits.add(number)
            trace.events.append(TraceEvent("set-bit", candidate, number))

    # Step 3: scan the quotient table.
    for candidate, bits in quotient_table.items():
        if len(bits) == divisor_count:
            trace.events.append(
                TraceEvent("emit", candidate, None, "no zero bit remains")
            )
            trace.quotient.append(candidate)
        else:
            missing = divisor_count - len(bits)
            trace.events.append(
                TraceEvent("reject", candidate, None,
                           f"{missing} zero bit(s) remain")
            )
    return trace
