"""Hash-table overflow handling: partitioned hash-division (Section 3.4).

When divisor table plus quotient table exceed available memory, "the
input data must be partitioned into disjoint subsets called clusters
that can be processed in multiple phases".  Two strategies:

* **Quotient partitioning** -- partition the dividend on the *quotient*
  attributes.  Every cluster is divided by the *entire* divisor (whose
  table therefore stays in memory across all phases), and the quotient
  is simply the concatenation of the per-cluster quotients.

* **Divisor partitioning** -- partition both inputs on the *divisor*
  attributes with the same hash function.  Each phase divides one
  dividend cluster by one divisor cluster; a quotient tuple must
  survive *every* phase, so the per-phase quotients are tagged with
  their phase number and a final *collection phase* divides the union
  of all tagged clusters by the set of phase numbers -- "this problem
  is exactly the division problem again", and this implementation
  indeed reuses :class:`~repro.core.hash_division.HashDivision` for it.

:func:`hash_division_with_overflow` is the adaptive driver: it attempts
single-phase hash-division and, on
:class:`~repro.errors.HashTableOverflowError`, retries with a doubling
number of partitions.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.errors import HashTableOverflowError, PartitioningError
from repro.core.hash_division import HashDivision
from repro.executor.iterator import ExecContext, QueryIterator, run_to_relation
from repro.executor.materialize import TempFileScan
from repro.executor.scan import RelationSource
from repro.relalg.algebra import division_attribute_split
from repro.relalg.relation import Relation
from repro.relalg.schema import Attribute, Schema
from repro.relalg.tuples import projector
from repro.storage.heapfile import HeapFile

#: Name of the synthetic column carrying the phase number in the
#: collection phase's dividend.
PHASE_COLUMN = "__phase__"


def _destroy_files(files: Sequence[HeapFile]) -> None:
    """Best-effort destruction of partition temp files on a failure path.

    :meth:`~repro.storage.heapfile.HeapFile.destroy` is idempotent, so
    files already consumed (and destroyed) by a ``TempFileScan`` are
    skipped harmlessly; files whose phases never ran are reclaimed.
    Destruction never raises -- cleanup must not mask the original
    error -- which is why the phase drivers call this from ``except``
    blocks before re-raising.
    """
    for file in files:
        file.destroy()


def _spool_partitions(
    source: QueryIterator,
    key_names: Sequence[str],
    partitions: int,
    ctx: ExecContext,
) -> tuple[list[HeapFile], Schema]:
    """Hash-partition a stream into ``partitions`` temp files.

    Each tuple is hashed on ``key_names`` (one ``Hash`` charged) and
    appended to its cluster file; the files live on the 8 KB temp
    device and are destroyed by the consumer.
    """
    schema = source.schema
    codec = schema.codec()
    key_of = projector(schema, key_names)
    files = [ctx.temp_file("temp") for _ in range(partitions)]
    cpu = ctx.cpu
    try:
        source.open()
        try:
            for row in source:
                cpu.hashes += 1
                files[hash(key_of(row)) % partitions].append(codec.encode(row))
        finally:
            source.close()
    except BaseException:
        # A failed spool (e.g. a temp-device fault mid-write) must not
        # leak the partition files it already allocated.
        _destroy_files(files)
        raise
    return files, schema


def quotient_partitioned_division(
    dividend: QueryIterator,
    divisor: QueryIterator,
    partitions: int,
    name: str = "quotient",
    hybrid: bool = False,
) -> Relation:
    """Multi-phase hash-division with quotient partitioning.

    The dividend is hash-partitioned on the quotient attributes; each
    cluster is divided by the entire divisor.  Because the clusters are
    disjoint in their quotient values, the final quotient is the
    concatenation of the per-phase quotients -- no collection phase.

    With ``hybrid=True``, "the first cluster is kept in main memory
    while the other clusters are spooled to temporary files ... in a
    way similar to hybrid hash-join" (§3.4): cluster 0 never touches
    the temp device, saving one write+read round trip for its share of
    the dividend.
    """
    if partitions <= 0:
        raise PartitioningError(f"partitions must be positive, got {partitions}")
    ctx = dividend.ctx
    quotient_names, _divisor_names = division_attribute_split(
        Relation(dividend.schema), Relation(divisor.schema)
    )
    # The divisor table must survive all phases, so the divisor is
    # drained once and replayed per phase from memory.
    divisor.open()
    try:
        divisor_relation = Relation(divisor.schema, list(divisor), name="divisor")
    finally:
        divisor.close()
    result = Relation(dividend.schema.project(quotient_names), name=name)
    if hybrid:
        resident, files, schema = _spool_partitions_hybrid(
            dividend, quotient_names, partitions, ctx
        )
        phase_inputs: list[QueryIterator] = [
            RelationSource(ctx, Relation(schema, resident, name="cluster-0"))
        ]
        phase_inputs.extend(
            TempFileScan(ctx, file, schema, destroy_on_close=True) for file in files
        )
    else:
        files, schema = _spool_partitions(dividend, quotient_names, partitions, ctx)
        phase_inputs = [
            TempFileScan(ctx, file, schema, destroy_on_close=True) for file in files
        ]
    try:
        for phase_input in phase_inputs:
            phase_op = HashDivision(
                phase_input,
                RelationSource(ctx, divisor_relation),
                expected_divisor=len(divisor_relation),
            )
            result.extend(run_to_relation(phase_op))
    except BaseException:
        # A failed phase (overflow, injected disk fault, ...) closes
        # *its own* TempFileScan -- destroying that file -- but the
        # clusters queued behind it would otherwise leak temp pages.
        _destroy_files(files)
        raise
    return result


def _spool_partitions_hybrid(
    source: QueryIterator,
    key_names: Sequence[str],
    partitions: int,
    ctx: ExecContext,
) -> tuple[list[tuple], list[HeapFile], Schema]:
    """Like :func:`_spool_partitions`, but cluster 0 stays in memory.

    Returns ``(resident_rows, spooled_files, schema)`` where the files
    cover clusters 1..partitions-1.
    """
    schema = source.schema
    codec = schema.codec()
    key_of = projector(schema, key_names)
    resident: list[tuple] = []
    files = [ctx.temp_file("temp") for _ in range(max(0, partitions - 1))]
    cpu = ctx.cpu
    try:
        source.open()
        try:
            for row in source:
                cpu.hashes += 1
                cluster = hash(key_of(row)) % partitions
                if cluster == 0:
                    resident.append(row)
                else:
                    files[cluster - 1].append(codec.encode(row))
        finally:
            source.close()
    except BaseException:
        _destroy_files(files)
        raise
    return resident, files, schema


def divisor_partitioned_division(
    dividend: QueryIterator,
    divisor: QueryIterator,
    partitions: int,
    name: str = "quotient",
) -> Relation:
    """Multi-phase hash-division with divisor partitioning.

    Both inputs are hash-partitioned on the divisor attributes with the
    same function.  Empty divisor clusters are dropped together with
    their dividend clusters: a dividend tuple routed to an empty
    divisor cluster matches no divisor tuple and would be discarded by
    step 2 anyway.  Each phase's quotient is tagged with the phase
    number, and the collection phase divides the tagged union by the
    set of phase numbers (division, again).
    """
    if partitions <= 0:
        raise PartitioningError(f"partitions must be positive, got {partitions}")
    ctx = dividend.ctx
    quotient_names, divisor_names = division_attribute_split(
        Relation(dividend.schema), Relation(divisor.schema)
    )
    divisor.open()
    try:
        divisor_rows = list(divisor)
    finally:
        divisor.close()
    if not divisor_rows:
        # Vacuous division: delegate to single-phase hash-division,
        # which resolves an empty divisor to "every candidate".
        empty = RelationSource(ctx, Relation(divisor.schema, (), name="divisor"))
        return run_to_relation(HashDivision(dividend, empty), name=name)

    cpu = ctx.cpu
    divisor_clusters: list[list[tuple]] = [[] for _ in range(partitions)]
    for row in divisor_rows:
        cpu.hashes += 1
        divisor_clusters[hash(tuple(row)) % partitions].append(row)
    files, schema = _spool_partitions(dividend, divisor_names, partitions, ctx)

    # Phase numbering skips empty divisor clusters (see docstring).
    quotient_schema = dividend.schema.project(quotient_names)
    tagged_schema = Schema(tuple(quotient_schema) + (Attribute(PHASE_COLUMN),))
    tagged = Relation(tagged_schema, name="tagged-quotients")
    phase_count = 0
    try:
        for cluster_index in range(partitions):
            cluster_file = files[cluster_index]
            cluster_divisor = divisor_clusters[cluster_index]
            if not cluster_divisor:
                cluster_file.destroy()
                continue
            phase_op = HashDivision(
                TempFileScan(ctx, cluster_file, schema, destroy_on_close=True),
                RelationSource(
                    ctx,
                    Relation(divisor.schema, cluster_divisor, name="divisor-cluster"),
                ),
                expected_divisor=len(cluster_divisor),
            )
            phase_quotient = run_to_relation(phase_op)
            for row in phase_quotient:
                tagged.append(row + (phase_count,))
            phase_count += 1
    except BaseException:
        # Reclaim the clusters whose phases never ran (destroy is
        # idempotent for the ones already consumed).
        _destroy_files(files)
        raise

    # Collection phase: divide the tagged union by the phase numbers.
    phases = Relation.of_ints((PHASE_COLUMN,), [(i,) for i in range(phase_count)])
    collection = HashDivision(
        RelationSource(ctx, tagged),
        RelationSource(ctx, phases),
        expected_divisor=phase_count,
    )
    return run_to_relation(collection, name=name)


def combined_partitioned_division(
    dividend: QueryIterator,
    divisor: QueryIterator,
    quotient_partitions: int,
    divisor_partitions: int,
    name: str = "quotient",
) -> Relation:
    """Both partitioning strategies together (§3.4's final question).

    "What happens if neither one of these partitioning strategies work
    because both divisor and quotient are too large?  In this case it
    will be necessary to resort to combinations of the techniques."

    The dividend is first hash-partitioned on the *quotient*
    attributes; each quotient cluster is then divided with *divisor
    partitioning* (its own phases plus collection).  A phase therefore
    holds only ``1/divisor_partitions`` of the divisor table and about
    ``1/quotient_partitions`` of the quotient candidates -- both tables
    shrink.  The outer clusters are disjoint in their quotient values,
    so the final result is their concatenation.
    """
    if quotient_partitions <= 0 or divisor_partitions <= 0:
        raise PartitioningError("partition counts must be positive")
    ctx = dividend.ctx
    quotient_names, _divisor_names = division_attribute_split(
        Relation(dividend.schema), Relation(divisor.schema)
    )
    divisor.open()
    try:
        divisor_relation = Relation(divisor.schema, list(divisor), name="divisor")
    finally:
        divisor.close()
    files, schema = _spool_partitions(
        dividend, quotient_names, quotient_partitions, ctx
    )
    result = Relation(dividend.schema.project(quotient_names), name=name)
    try:
        for file in files:
            cluster_quotient = divisor_partitioned_division(
                TempFileScan(ctx, file, schema, destroy_on_close=True),
                RelationSource(ctx, divisor_relation),
                divisor_partitions,
            )
            result.extend(cluster_quotient)
    except BaseException:
        _destroy_files(files)
        raise
    return result


def hash_division_with_overflow(
    make_dividend: Callable[[], QueryIterator],
    make_divisor: Callable[[], QueryIterator],
    strategy: str = "quotient",
    max_partitions: int = 256,
    name: str = "quotient",
) -> Relation:
    """Adaptive hash-division that survives hash-table overflow.

    Attempts single-phase hash-division first; when the memory pool
    overflows, retries with 2, 4, 8, ... partitions of the requested
    strategy until it fits or ``max_partitions`` is exceeded.

    Args:
        make_dividend: Factory producing a *fresh* dividend iterator
            per attempt (a failed attempt consumes its input).
        make_divisor: Factory producing a fresh divisor iterator.
        strategy: ``"quotient"`` or ``"divisor"`` partitioning.
    """
    if strategy not in ("quotient", "divisor"):
        raise PartitioningError(f"unknown partitioning strategy {strategy!r}")
    partitioner = (
        quotient_partitioned_division
        if strategy == "quotient"
        else divisor_partitioned_division
    )
    dividend = make_dividend()
    tracer = dividend.ctx.tracer
    try:
        return run_to_relation(HashDivision(dividend, make_divisor()), name=name)
    except HashTableOverflowError:
        pass
    partitions = 2
    while partitions <= max_partitions:
        if tracer.enabled:
            # One retry per doubling; the gauge keeps the last fan-out
            # attempted, i.e. the one that succeeded (or the ceiling).
            tracer.count("repro_division_overflow_retries_total", strategy=strategy)
            tracer.gauge(
                "repro_division_partition_fanout", partitions, strategy=strategy
            )
        try:
            return partitioner(make_dividend(), make_divisor(), partitions, name=name)
        except HashTableOverflowError:
            partitions *= 2
    raise HashTableOverflowError(
        f"hash-division still overflows with {max_partitions} partitions; "
        "increase the memory budget or max_partitions"
    )
