"""Exception hierarchy for the ``repro`` package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch one type to handle any
library-level failure while letting genuine programming errors
(``TypeError``, ``KeyError``, ...) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SchemaError(ReproError):
    """A schema is malformed or two schemas are incompatible.

    Raised, for example, when a projection names a column that does not
    exist, or when a division is attempted whose divisor attributes are
    not a subset of the dividend attributes.
    """


class DivisionError(ReproError):
    """A relational-division request is invalid.

    Raised when the dividend/divisor schemas do not satisfy the
    preconditions of the division operator (the divisor attributes must
    be a proper, non-empty subset of the dividend attributes).
    """


class StorageError(ReproError):
    """Base class for storage-layer failures."""


class DiskError(StorageError):
    """An I/O request addressed a page outside the device, or a device
    was used after being closed."""


class DiskFaultError(DiskError):
    """An injected (or, in principle, real) device failure.

    Args:
        message: Human-readable description.
        transient: ``True`` when a retry may succeed (the
            :mod:`repro.faults` retry wrapper re-issues the transfer
            with capped exponential backoff); ``False`` for permanent
            faults, which propagate immediately.
    """

    def __init__(self, message: str, transient: bool = True) -> None:
        super().__init__(message)
        self.transient = transient


class ChecksumError(StorageError):
    """A page image failed its CRC32 verification on read.

    Raised by :class:`repro.storage.diskbase.PagedDiskBase` when the
    bytes coming back from the device do not match the checksum
    recorded when the page was last written -- the defense that turns
    silent corruption (bit flips, torn writes) into a typed error.
    """


class BufferPoolError(StorageError):
    """The buffer pool cannot satisfy a request.

    Raised when every frame is fixed and the pool has exhausted its
    memory budget, or when unfixing a page that is not fixed.
    """


class PageError(StorageError):
    """A slotted-page operation failed (record too large, bad slot...)."""


class RecordNotFoundError(StorageError):
    """A record identifier does not resolve to a live record."""


class MemoryPoolError(StorageError):
    """The main-memory manager ran out of its configured budget."""


class BTreeError(StorageError):
    """A B+-tree structural invariant would be violated."""


class ExecutionError(ReproError):
    """A query-evaluation operator was used incorrectly.

    Raised for protocol violations of the open-next-close iterator
    contract, e.g. calling ``next()`` on an operator that has not been
    opened.
    """


class HashTableOverflowError(ExecutionError):
    """An in-memory hash table exceeded its memory budget.

    The partitioned division driver in :mod:`repro.core.partitioned`
    catches this to fall back to multi-phase processing; user code that
    calls the single-phase operators directly sees it as an error.
    """


class PartitioningError(ReproError):
    """A partitioned or parallel execution was configured incorrectly."""


class NetworkFaultError(PartitioningError):
    """The interconnect gave up on a batch.

    Raised when a send exhausted its retransmission budget against
    injected drop faults -- the typed surface of a partitioned network,
    as opposed to silently losing tuples.
    """


class FaultConfigError(ReproError):
    """A fault-injection rule or injector was configured incorrectly."""


class ServeError(ReproError):
    """Base class for query-service (``repro.serve``) failures."""


class QueryTimeoutError(ServeError):
    """A served query exceeded its session deadline.

    Raised *into* the query's task by the cooperative scheduler at the
    first step boundary past the deadline (virtual model time), so the
    task's ``finally`` blocks release every grant, lock, and iterator
    before the error surfaces to the client.
    """


class QueryCancelledError(ServeError):
    """A served query was cancelled before completing.

    Like :class:`QueryTimeoutError`, delivered at a step boundary so
    cancellation unwinds through the task's cleanup path (the reason
    ``QueryIterator.close()`` must be idempotent).
    """


class ServiceOverloadError(ServeError):
    """The service shed load instead of queueing another request.

    Raised at submit time when the admission controller's bounded wait
    queue is full -- the backpressure signal that replaces mid-build
    :class:`MemoryPoolError` overflow under concurrent load.
    """


class SchedulerError(ServeError):
    """The cooperative scheduler was misused or deadlocked.

    Raised when every live task is parked on a condition no runnable
    task can satisfy, or on protocol misuse (stepping a finished task).
    """


class WorkloadError(ReproError):
    """A workload generator received inconsistent parameters."""


class ExperimentError(ReproError):
    """An experiment harness was asked for an unknown experiment or an
    inconsistent configuration."""
