"""A cooperative, deterministic scheduler for serving concurrent queries.

The paper measures one division at a time; a *service* runs many at
once, and the interesting failures (grant contention, cache races,
cancellation mid-build) only appear under interleaving.  Real thread
schedulers make those interleavings unreproducible, so this module
provides the serving substrate as a **cooperative scheduler over
generator-stepped tasks in virtual time**:

* a task is a Python generator that ``yield``\\ s at its own safe
  points, either a *cost* (model milliseconds of work done since the
  last yield -- typically the Table 1/Table 3 meter delta) or a
  :class:`Wait` condition (a lock, an admission grant),
* the scheduler owns a :class:`VirtualClock` advanced only by yielded
  costs, so latency percentiles are **deterministic model
  milliseconds**, not wall time,
* ready-task tie-breaking is drawn from a seeded RNG, so one seed
  replays one interleaving, byte for byte -- the scheduler records the
  full interleaving in :attr:`CooperativeScheduler.trace` and the CI
  replay-determinism check compares two runs' traces,
* per-task **deadlines** (absolute virtual ms) and **cancellation** are
  delivered by throwing the typed
  :class:`~repro.errors.QueryTimeoutError` /
  :class:`~repro.errors.QueryCancelledError` *into* the generator at a
  step boundary, so ``finally`` blocks release grants, locks, and
  iterators before the error reaches the client.

Nothing here imports the executor: the scheduler schedules generators,
and :mod:`repro.serve.service` supplies generators that step query
plans.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Callable, Generator, Optional

from repro.errors import (
    QueryCancelledError,
    QueryTimeoutError,
    SchedulerError,
)


class VirtualClock:
    """Deterministic model-time clock, in fractional milliseconds.

    Only task step costs advance it; two runs that do the same model
    work read the same times.  API-compatible with nothing else on
    purpose -- serving latencies are *model* milliseconds (Table 1 CPU
    + Table 3 I/O), the same currency as the paper's tables.
    """

    def __init__(self, start_ms: float = 0.0) -> None:
        self._now_ms = float(start_ms)

    @property
    def now_ms(self) -> float:
        """Current virtual time in model milliseconds."""
        return self._now_ms

    def advance(self, ms: float) -> float:
        """Move time forward; returns the new reading."""
        if ms < 0:
            raise SchedulerError(f"virtual time cannot go backwards ({ms} ms)")
        self._now_ms += ms
        return self._now_ms


@dataclass
class Wait:
    """A parked task's wake condition.

    Args:
        reason: Short label for diagnostics and the interleaving trace
            (``"lock"``, ``"grant"``).
        ready: Zero-argument callable; the scheduler re-polls it each
            round (in task-submission order) and wakes the task when it
            returns true.  Must be cheap and side-effect-free.
    """

    reason: str
    ready: Callable[[], bool]


class TaskState(enum.Enum):
    READY = "ready"
    PARKED = "parked"
    DONE = "done"
    FAILED = "failed"


@dataclass
class Task:
    """One scheduled unit of work: a generator plus its bookkeeping.

    ``deadline_ms`` is an *absolute* virtual time; ``None`` means no
    deadline.  It is deliberately mutable: a client task serving a
    sequence of requests re-arms it per request.
    """

    seq: int
    name: str
    gen: Generator = field(repr=False)
    state: TaskState = TaskState.READY
    deadline_ms: float | None = None
    result: object = None
    error: BaseException | None = None
    submitted_ms: float = 0.0
    finished_ms: float | None = None
    steps: int = 0
    wait: Wait | None = field(default=None, repr=False)
    _cancel_requested: bool = False
    #: Whether the generator has begun executing.  Cancellation and
    #: timeouts are *thrown into* the generator, which only works once
    #: it is suspended at a yield; an unstarted generator would re-raise
    #: without ever entering its body -- skipping the request's
    #: bookkeeping and cleanup paths.  So delivery waits until after
    #: the first ordinary step.
    _started: bool = False

    @property
    def live(self) -> bool:
        return self.state in (TaskState.READY, TaskState.PARKED)


class CooperativeScheduler:
    """Run tasks to completion under seeded, reproducible interleaving.

    Args:
        seed: Tie-breaking seed.  Same seed + same tasks + same yielded
            costs => same interleaving, same virtual timestamps.
        clock: Injectable :class:`VirtualClock` (shared with the
            service so grant-wait and latency measurements agree).
        quantum_ms: Fixed dispatch overhead charged per step on top of
            the task's yielded cost -- guarantees time advances even
            through zero-cost steps, so deadlines always fire.
    """

    def __init__(
        self,
        seed: int = 0,
        clock: VirtualClock | None = None,
        quantum_ms: float = 0.01,
    ) -> None:
        if quantum_ms <= 0:
            raise SchedulerError("quantum_ms must be positive")
        self.clock = clock or VirtualClock()
        self.quantum_ms = quantum_ms
        self.seed = seed
        self._rng = random.Random(seed)
        self.tasks: list[Task] = []
        #: The interleaving log: one ``(task_seq, step_index, event)``
        #: triple per scheduling decision.  Byte-identical across
        #: replays of the same seed -- the CI determinism artifact.
        self.trace: list[tuple[int, int, str]] = []

    # -- task management -----------------------------------------------

    def spawn(
        self,
        gen: Generator | None = None,
        name: str = "task",
        deadline_ms: float | None = None,
        factory: Callable[[Task], Generator] | None = None,
    ) -> Task:
        """Register a task (a generator, or a factory given the Task).

        The factory form exists for tasks that need a handle on their
        own :class:`Task` (e.g. to re-arm :attr:`Task.deadline_ms`
        between the requests of one client session).
        """
        if (gen is None) == (factory is None):
            raise SchedulerError("spawn() takes exactly one of gen= or factory=")
        task = Task(
            seq=len(self.tasks),
            name=name,
            gen=iter(()),  # placeholder until the factory runs
            deadline_ms=deadline_ms,
            submitted_ms=self.clock.now_ms,
        )
        task.gen = gen if gen is not None else factory(task)
        self.tasks.append(task)
        return task

    def cancel(self, task: Task) -> None:
        """Request cancellation; delivered at the task's next step."""
        if task.live:
            task._cancel_requested = True
            if task.state is TaskState.PARKED:
                # A parked task must wake to receive the cancellation.
                task.state = TaskState.READY
                task.wait = None

    # -- the loop ------------------------------------------------------

    def _wake_parked(self) -> None:
        """Move parked tasks whose condition holds back to READY.

        Polled in task-submission order, so wake order (and therefore
        FIFO fairness of downstream lock/grant queues) is
        deterministic.  A parked task past its deadline wakes too --
        to receive its :class:`~repro.errors.QueryTimeoutError`.
        """
        now = self.clock.now_ms
        for task in self.tasks:
            if task.state is not TaskState.PARKED:
                continue
            expired = task.deadline_ms is not None and now >= task.deadline_ms
            # A pending cancellation wakes the task as well: cancel()
            # requested before the first step cannot be delivered until
            # the task has started, and the first step may park it.
            if (
                expired
                or task._cancel_requested
                or task.wait is None
                or task.wait.ready()
            ):
                task.state = TaskState.READY
                task.wait = None

    def _pick(self, runnable: list[Task]) -> Task:
        """Seeded tie-breaking among ready tasks."""
        if len(runnable) == 1:
            return runnable[0]
        return runnable[self._rng.randrange(len(runnable))]

    def _finish(self, task: Task, result: object) -> None:
        task.state = TaskState.DONE
        task.result = result
        task.finished_ms = self.clock.now_ms
        self.trace.append((task.seq, task.steps, "done"))

    def _fail(self, task: Task, error: BaseException) -> None:
        task.state = TaskState.FAILED
        task.error = error
        task.finished_ms = self.clock.now_ms
        self.trace.append((task.seq, task.steps, type(error).__name__))

    def step(self, task: Task) -> None:
        """Advance one task by one step (one yield-to-yield stretch)."""
        if not task.live:
            raise SchedulerError(f"task {task.name!r} is {task.state.value}")
        task.steps += 1
        self.trace.append((task.seq, task.steps, "step"))
        try:
            if task._cancel_requested and task._started:
                task._cancel_requested = False
                yielded = task.gen.throw(
                    QueryCancelledError(f"{task.name}: cancelled")
                )
            elif (
                task._started
                and task.deadline_ms is not None
                and self.clock.now_ms >= task.deadline_ms
            ):
                yielded = task.gen.throw(
                    QueryTimeoutError(
                        f"{task.name}: deadline {task.deadline_ms:.2f} ms "
                        f"exceeded at {self.clock.now_ms:.2f} ms"
                    )
                )
            else:
                # First step always runs the body (see Task._started); a
                # pending cancel/timeout is delivered on the next step.
                task._started = True
                yielded = next(task.gen)
        except StopIteration as stop:
            self.clock.advance(self.quantum_ms)
            self._finish(task, stop.value)
            return
        except (QueryTimeoutError, QueryCancelledError) as exc:
            # The typed error unwound the generator's cleanup path and
            # surfaced -- the normal way a timeout/cancel terminates.
            self.clock.advance(self.quantum_ms)
            self._fail(task, exc)
            return
        except BaseException as exc:  # noqa: BLE001 - recorded, re-raised by caller policy
            self.clock.advance(self.quantum_ms)
            self._fail(task, exc)
            return
        if isinstance(yielded, Wait):
            task.state = TaskState.PARKED
            task.wait = yielded
            self.clock.advance(self.quantum_ms)
            self.trace.append((task.seq, task.steps, f"park:{yielded.reason}"))
        else:
            cost = float(yielded) if yielded is not None else 0.0
            if cost < 0:
                self._fail(
                    task,
                    SchedulerError(f"{task.name}: yielded negative cost {cost}"),
                )
                return
            self.clock.advance(cost + self.quantum_ms)

    def run_until_complete(self) -> list[Task]:
        """Drive every task to DONE/FAILED; returns the task list.

        Raises:
            SchedulerError: When every live task is parked and none can
                wake (a genuine deadlock -- e.g. a lock cycle), naming
                the stuck tasks and their wait reasons.
        """
        while True:
            self._wake_parked()
            runnable = [t for t in self.tasks if t.state is TaskState.READY]
            if not runnable:
                parked = [t for t in self.tasks if t.state is TaskState.PARKED]
                if not parked:
                    return self.tasks
                stuck = ", ".join(
                    f"{t.name} (waiting on "
                    f"{t.wait.reason if t.wait else '?'})"
                    for t in parked
                )
                raise SchedulerError(f"deadlock: all live tasks parked: {stuck}")
            self.step(self._pick(runnable))

    # -- reproducibility artifacts -------------------------------------

    def trace_lines(self) -> list[str]:
        """The interleaving as stable text lines (for digests/files)."""
        return [f"{seq}:{step}:{event}" for seq, step, event in self.trace]

    def trace_digest(self) -> str:
        """SHA-256 over the interleaving trace -- the one-line replay
        determinism witness exported into BENCH artifacts."""
        import hashlib

        payload = "\n".join(self.trace_lines()).encode()
        return hashlib.sha256(payload).hexdigest()
