"""Plan and result caches with monotonic-version invalidation.

The rank-aware-division literature (PAPERS.md) motivates the serving
pattern this module exploits: the same parameterized division is asked
again and again over slowly-changing relations.  Two caches:

* the **plan cache** memoizes the expensive part of planning -- the
  exact statistics pass (:func:`repro.plan.planner.collect_division_estimates`
  *reads both inputs*, paying metered I/O) and the advisor decision --
  keyed by the normalized logical-plan key,
* the **result cache** memoizes whole quotients, keyed by the plan key
  *plus the input relations' versions*.

Staleness is impossible **by construction**: every catalog-mediated
write bumps the written relation's monotonic version counter
(:class:`repro.storage.catalog.StoredRelation.version`), and a cached
entry is returned only when the versions recorded at compute time
equal the versions read under the same table locks the query itself
holds.  There is no invalidation walk to forget and no TTL to tune;
an entry computed at versions ``V`` simply never matches a lookup at
``V' != V``.  (The division algorithm *choice* is data-dependent --
e.g. the no-join counting strategies are only correct while the
dividend's divisor values are covered -- so the plan cache is
version-guarded too: a write invalidates the decision along with the
result.)

Both caches are bounded LRU and count hits / misses / evictions /
invalidations into the ``repro_serve_*`` metric families.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from repro.errors import ServeError
from repro.plan.logical import (
    DistinctNode,
    DivideNode,
    FilterNode,
    LogicalNode,
    ProjectNode,
    SourceNode,
    StoredSourceNode,
)

#: ``((table_name, version), ...)`` sorted by name -- the snapshot half
#: of a cache key (see :meth:`repro.storage.catalog.Catalog.versions_of`).
VersionVector = tuple[tuple[str, int], ...]


def plan_key(node: LogicalNode) -> str:
    """Normalize a logical plan into a canonical cache-key string.

    Stored sources key by *catalog name* (stable across plan objects);
    in-memory sources key by object identity, which makes two plans
    over distinct ad-hoc relations distinct -- correct, just never
    shared.  Filters key by predicate ``repr`` (predicates are small
    frozen dataclasses whose repr is canonical).
    """
    if isinstance(node, StoredSourceNode):
        return f"stored({node.stored.name})"
    if isinstance(node, SourceNode):
        return f"source@{id(node.relation):x}"
    if isinstance(node, FilterNode):
        return f"filter({node.predicate!r},{plan_key(node.child)})"
    if isinstance(node, ProjectNode):
        return f"project({','.join(node.names)},{plan_key(node.child)})"
    if isinstance(node, DistinctNode):
        return f"distinct({plan_key(node.child)})"
    if isinstance(node, DivideNode):
        restricted = ",restricted" if node.divisor_restricted else ""
        return (
            f"divide({plan_key(node.dividend)},"
            f"{plan_key(node.divisor)}{restricted})"
        )
    raise ServeError(f"unkeyable logical node {type(node).__name__}")


def stored_table_names(node: LogicalNode) -> tuple[str, ...]:
    """Every catalog table a logical plan reads (sorted, deduplicated).

    These are the tables whose versions key the caches and whose locks
    the service acquires before touching either cache.
    """
    names: set[str] = set()

    def walk(n: LogicalNode) -> None:
        if isinstance(n, StoredSourceNode):
            names.add(n.stored.name)
        for child in n.children():
            walk(child)

    walk(node)
    return tuple(sorted(names))


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class _Entry:
    versions: VersionVector
    payload: object


class VersionedCache:
    """Bounded LRU mapping ``plan_key`` -> payload valid at one
    version vector.

    One entry per plan key: a lookup whose current versions differ
    from the stored entry's versions counts as an *invalidation* (the
    entry is dropped -- versions are monotonic, it can never match
    again) plus a miss.  The subsequent :meth:`put` re-fills the slot.

    Args:
        name: Metric label (``plan`` / ``result``).
        capacity: Maximum entries; least recently *used* is evicted.
        metrics: Optional registry for ``repro_serve_<name>_cache_*``.
    """

    def __init__(self, name: str, capacity: int = 64, metrics=None) -> None:
        if capacity <= 0:
            raise ServeError("cache capacity must be positive")
        self.name = name
        self.capacity = capacity
        self.metrics = metrics
        self.stats = CacheStats()
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def _count(self, event: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(
                f"repro_serve_{self.name}_cache_{event}_total"
            ).inc()

    def get(self, key: str, versions: VersionVector) -> Optional[object]:
        """The payload cached for ``key`` at exactly ``versions``.

        The caller must already hold (shared) locks on every table in
        ``versions`` -- the service guarantees this -- so the versions
        cannot move between this check and the use of the payload.
        """
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            self._count("misses")
            return None
        if entry.versions != versions:
            # Monotonic counters: a mismatched entry is dead forever.
            del self._entries[key]
            self.stats.invalidations += 1
            self.stats.misses += 1
            self._count("invalidations")
            self._count("misses")
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        self._count("hits")
        return entry.payload

    def put(self, key: str, versions: VersionVector, payload: object) -> None:
        """Install/replace the entry for ``key`` (valid at ``versions``)."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = _Entry(versions, payload)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
            self._count("evictions")

    def clear(self) -> None:
        """Drop every entry (stats survive)."""
        self._entries.clear()


@dataclass
class CachedDecision:
    """The plan cache's payload: one advisor decision, reusable without
    re-running the statistics pass.  Mirrors the fields
    :func:`repro.plan.physical.build_division_operator` needs."""

    strategy: str
    estimates: object  # DivisionEstimates (kept opaque: no costmodel import)
    quotient_names: tuple[str, ...]
    eliminate_duplicates: bool
    choice: object = None  # full AdvisorChoice, for explain parity


@dataclass
class CachedResult:
    """The result cache's payload: a finished quotient."""

    rows: tuple
    schema: object
    strategy: str
