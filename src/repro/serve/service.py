"""The concurrent query service: sessions, locks, caches, execution.

:class:`QueryService` turns the single-query planner/executor into a
deterministic multi-client service.  One request travels:

1. **table locks** -- shared for queries, exclusive for updates,
   FIFO-fair per table (no overtaking on a contended table, so writers
   cannot starve), acquired all-at-once to exclude deadlock,
2. **caches** -- under the shared locks the input versions cannot
   move, so the version-keyed result / plan caches
   (:mod:`repro.serve.cache`) are consulted race-free,
3. **admission** -- a memory grant sized from the planner's estimates
   (:mod:`repro.serve.admission`); bounded waiting, shed on overload,
4. **execution** -- the compiled operator tree is stepped
   cooperatively, ``rows_per_step`` tuples per scheduler step, with
   the Table 3 I/O meter delta as the step's virtual cost; hash-table
   overflow degrades to the Section 3.4 partitioned fallback,
5. **teardown** -- grants, locks, and iterators are released in
   ``finally`` blocks, so timeouts/cancellations (thrown in at step
   boundaries by the scheduler) cannot leak; :meth:`QueryService.run`
   audits for leaks after drain.

Because locking is two-phase per request and requests are stepped by a
seeded deterministic scheduler, the service is **serializable**: the
equivalent serial order is the lock-grant order, and the optional
oracle shadow (:meth:`QueryService.seed_shadow`) recomputes each
query's answer in exactly that order -- the harness the Hypothesis
suite uses to prove cache-on ≡ cache-off ≡ oracle under any
interleaving of updates and queries.

The service allocates nothing on the single-query path: it is a layer
*above* :mod:`repro.plan` and touches no operator code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator, Iterable, Optional, Sequence

from repro.costmodel.advisor import advise
from repro.costmodel.units import PAPER_UNITS
from repro.errors import (
    HashTableOverflowError,
    QueryCancelledError,
    QueryTimeoutError,
    ReproError,
    ServeError,
    ServiceOverloadError,
)
from repro.core.partitioned import hash_division_with_overflow
from repro.executor.iterator import ExecContext
from repro.executor.scan import StoredRelationScan
from repro.obs.metrics import MetricsRegistry
from repro.plan.logical import DivideNode, StoredSourceNode
from repro.plan.physical import build_division_operator
from repro.plan.planner import collect_division_estimates
from repro.relalg.algebra import divide_set_semantics
from repro.relalg.relation import Relation
from repro.serve.admission import AdmissionController, estimate_grant_bytes
from repro.serve.cache import (
    CachedDecision,
    CachedResult,
    VersionedCache,
    plan_key,
)
from repro.serve.scheduler import (
    CooperativeScheduler,
    Task,
    VirtualClock,
    Wait,
)
from repro.storage.catalog import Catalog

#: Histogram buckets for request latency in model milliseconds.
LATENCY_BUCKETS = (0.1, 1.0, 10.0, 100.0, 1_000.0, 10_000.0, 100_000.0)


# -- table locks -------------------------------------------------------


@dataclass
class _LockTicket:
    ticket_id: int
    names: tuple[str, ...]
    mode: str  # "shared" | "exclusive"
    granted: bool = False
    abandoned: bool = False


class TableLockManager:
    """Shared/exclusive table locks with FIFO fairness.

    All of a request's locks are requested as one ticket and granted
    atomically, in submission order per contended table -- so there is
    no lock-ordering deadlock and no writer starvation.  Determinism
    follows from the scheduler polling tickets in submission order.
    """

    def __init__(self) -> None:
        self._shared: dict[str, int] = {}
        self._exclusive: set[str] = set()
        self._waiting: list[_LockTicket] = []
        self._next_ticket = 0

    @property
    def held_tables(self) -> int:
        """Tables with at least one live lock (leak-audit probe)."""
        return len(self._exclusive) + sum(
            1 for count in self._shared.values() if count > 0
        )

    def request(self, names: Iterable[str], mode: str) -> _LockTicket:
        if mode not in ("shared", "exclusive"):
            raise ServeError(f"unknown lock mode {mode!r}")
        ticket = _LockTicket(
            ticket_id=self._next_ticket,
            names=tuple(sorted(set(names))),
            mode=mode,
        )
        self._next_ticket += 1
        self._waiting.append(ticket)
        return ticket

    def _held_conflict(self, name: str, mode: str) -> bool:
        if name in self._exclusive:
            return True
        return mode == "exclusive" and self._shared.get(name, 0) > 0

    @staticmethod
    def _tickets_conflict(a: _LockTicket, b: _LockTicket) -> bool:
        if a.mode == "shared" and b.mode == "shared":
            return False
        return bool(set(a.names) & set(b.names))

    def can_grant(self, ticket: _LockTicket) -> bool:
        """True when the ticket could be granted right now (fairly)."""
        if ticket.granted or ticket.abandoned:
            return ticket.granted
        for earlier in self._waiting:
            if earlier is ticket:
                break
            if not earlier.abandoned and self._tickets_conflict(earlier, ticket):
                return False  # no overtaking on contended tables
        return not any(self._held_conflict(n, ticket.mode) for n in ticket.names)

    def try_acquire(self, ticket: _LockTicket) -> bool:
        """Grant the ticket if fair and conflict-free."""
        if ticket.granted:
            return True
        if not self.can_grant(ticket):
            return False
        self._waiting.remove(ticket)
        ticket.granted = True
        for name in ticket.names:
            if ticket.mode == "exclusive":
                self._exclusive.add(name)
            else:
                self._shared[name] = self._shared.get(name, 0) + 1
        return True

    def release(self, ticket: _LockTicket) -> None:
        """Release a granted ticket, or withdraw a waiting one.

        Idempotent -- the teardown path may run more than once.
        """
        if ticket.abandoned:
            return
        if not ticket.granted:
            ticket.abandoned = True
            if ticket in self._waiting:
                self._waiting.remove(ticket)
            return
        ticket.abandoned = True
        for name in ticket.names:
            if ticket.mode == "exclusive":
                self._exclusive.discard(name)
            else:
                remaining = self._shared.get(name, 0) - 1
                if remaining > 0:
                    self._shared[name] = remaining
                else:
                    self._shared.pop(name, None)


# -- requests and outcomes ---------------------------------------------


@dataclass(frozen=True)
class QueryRequest:
    """Divide ``dividend`` by ``divisor`` (both catalog names)."""

    dividend: str
    divisor: str


@dataclass(frozen=True)
class InsertRequest:
    """Append ``rows`` to stored relation ``table``."""

    table: str
    rows: tuple


@dataclass(frozen=True)
class DeleteRequest:
    """Delete rows of ``table`` failing ``keep(row)``."""

    table: str
    keep: Callable

    def __repr__(self) -> str:  # keep outcomes reprs deterministic
        return f"DeleteRequest(table={self.table!r})"


Request = "QueryRequest | InsertRequest | DeleteRequest"


@dataclass
class ServeResult:
    """A successful query's answer plus serving provenance."""

    rows: tuple
    strategy: str
    cached: bool = False
    plan_cached: bool = False
    fell_back: bool = False


@dataclass
class RequestOutcome:
    """One request's lifecycle record (appended at submission, in
    deterministic submission order; completed in place)."""

    client: str
    index: int
    kind: str  # "query" | "insert" | "delete"
    tables: tuple[str, ...]
    submitted_ms: float
    outcome: str = "pending"  # ok|timeout|cancelled|shed|error|pending
    error_type: str | None = None
    latency_ms: float | None = None
    strategy: str | None = None
    cached: bool = False
    plan_cached: bool = False
    fell_back: bool = False
    result_tuples: int | None = None
    oracle_ok: bool | None = None

    def to_dict(self) -> dict:
        return {
            "client": self.client,
            "index": self.index,
            "kind": self.kind,
            "tables": list(self.tables),
            "outcome": self.outcome,
            "error_type": self.error_type,
            "latency_ms": (
                None if self.latency_ms is None else round(self.latency_ms, 4)
            ),
            "strategy": self.strategy,
            "cached": self.cached,
            "plan_cached": self.plan_cached,
            "fell_back": self.fell_back,
            "result_tuples": self.result_tuples,
            "oracle_ok": self.oracle_ok,
        }


@dataclass
class ServiceConfig:
    """Tunables of one :class:`QueryService`.

    Attributes:
        seed: Scheduler tie-breaking seed -- the whole service replay
            derives from it.
        rows_per_step: Cooperative quantum: output tuples produced per
            scheduler step (stop-and-go phases like sort still run
            within one step).
        quantum_ms: Fixed dispatch cost per scheduler step.
        max_waiters: Admission wait-queue bound; beyond it, shed.
        plan_cache / result_cache: Enable the two caches.
        plan_cache_entries / result_cache_entries: LRU capacities.
        default_deadline_ms: Per-request deadline applied by
            :meth:`QueryService.submit_script` when the script does not
            override it; ``None`` = no deadline.
        track_oracle: Maintain the serial-order shadow copies seeded
            via :meth:`QueryService.seed_shadow` and verify each query
            against the algebraic oracle (test/chaos harness mode;
            zero work when off).
    """

    seed: int = 0
    rows_per_step: int = 64
    quantum_ms: float = 0.01
    max_waiters: int = 16
    plan_cache: bool = True
    result_cache: bool = True
    plan_cache_entries: int = 64
    result_cache_entries: int = 64
    default_deadline_ms: float | None = None
    track_oracle: bool = False


class QueryService:
    """Deterministic concurrent serving over one execution context.

    Args:
        ctx: Execution context (devices, buffer pool, memory pool);
            its ``memory`` budget is the admission capacity.
        catalog: Stored relations served (and updated) by requests.
        config: :class:`ServiceConfig`; defaults are test-friendly.
        metrics: Metric registry; one is created when omitted.  All
            service families are prefixed ``repro_serve_``.
    """

    def __init__(
        self,
        ctx: ExecContext,
        catalog: Catalog,
        config: ServiceConfig | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.ctx = ctx
        self.catalog = catalog
        self.config = config or ServiceConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.clock = VirtualClock()
        self.scheduler = CooperativeScheduler(
            seed=self.config.seed,
            clock=self.clock,
            quantum_ms=self.config.quantum_ms,
        )
        self.admission = AdmissionController(
            ctx.memory,
            self.clock,
            max_waiters=self.config.max_waiters,
            metrics=self.metrics,
        )
        self.locks = TableLockManager()
        self.plan_cache: VersionedCache | None = (
            VersionedCache(
                "plan", self.config.plan_cache_entries, metrics=self.metrics
            )
            if self.config.plan_cache
            else None
        )
        self.result_cache: VersionedCache | None = (
            VersionedCache(
                "result", self.config.result_cache_entries, metrics=self.metrics
            )
            if self.config.result_cache
            else None
        )
        self.outcomes: list[RequestOutcome] = []
        self._shadow: dict[str, list] = {}
        self._tainted: set[str] = set()

    # -- oracle shadow (harness mode) ----------------------------------

    def seed_shadow(self, name: str, rows: Iterable) -> None:
        """Install the oracle shadow copy of one stored relation.

        Only meaningful with ``track_oracle=True``: update requests
        mutate the shadow at the moment they hold the exclusive lock
        (the serialization point), and every query recomputes the
        algebraic oracle from the shadows at its own lock point.
        """
        self._shadow[name] = list(rows)

    def _oracle_rows(self, dividend: str, divisor: str) -> frozenset | None:
        if not self.config.track_oracle:
            return None
        if dividend in self._tainted or divisor in self._tainted:
            return None
        if dividend not in self._shadow or divisor not in self._shadow:
            return None
        dividend_rel = Relation(
            self.catalog.get(dividend).schema, list(self._shadow[dividend])
        )
        divisor_rel = Relation(
            self.catalog.get(divisor).schema, list(self._shadow[divisor])
        )
        return frozenset(divide_set_semantics(dividend_rel, divisor_rel))

    # -- submission API ------------------------------------------------

    def submit_query(
        self,
        dividend: str,
        divisor: str,
        client: str = "client",
        deadline_ms: float | None = None,
    ) -> Task:
        """Queue one division query; returns its scheduler task.

        The task's ``result`` is a :class:`ServeResult` on success; on
        timeout/cancel/shed/typed failure the task is FAILED with the
        typed error (the matching :class:`RequestOutcome` is recorded
        either way).
        """
        rec = self._new_outcome(client, "query", (dividend, divisor))
        absolute = None if deadline_ms is None else self.clock.now_ms + deadline_ms
        return self.scheduler.spawn(
            gen=self._division_request(rec, dividend, divisor),
            name=f"{client}/q{rec.index}",
            deadline_ms=absolute,
        )

    def submit_insert(
        self, table: str, rows: Iterable, client: str = "client"
    ) -> Task:
        """Queue an append to a stored relation (exclusive lock)."""
        rec = self._new_outcome(client, "insert", (table,))
        return self.scheduler.spawn(
            gen=self._update_request(rec, table, rows=tuple(rows)),
            name=f"{client}/u{rec.index}",
        )

    def submit_delete(
        self, table: str, keep: Callable, client: str = "client"
    ) -> Task:
        """Queue a predicate delete (keep rows passing ``keep``)."""
        rec = self._new_outcome(client, "delete", (table,))
        return self.scheduler.spawn(
            gen=self._update_request(rec, table, keep=keep),
            name=f"{client}/u{rec.index}",
        )

    def submit_script(
        self,
        client: str,
        requests: Sequence,
        deadline_ms: float | None = None,
    ) -> Task:
        """Queue one client *session*: requests run sequentially.

        This is the load-harness entry point: each simulated client is
        one session task, so requests of different clients interleave
        while each client waits for its previous answer.  Per-request
        deadlines are re-armed from ``deadline_ms`` (or the config
        default); a timed-out / shed / failed request is recorded and
        the session continues with the next one.
        """
        effective = (
            deadline_ms
            if deadline_ms is not None
            else self.config.default_deadline_ms
        )
        return self.scheduler.spawn(
            factory=lambda task: self._client_session(
                task, client, list(requests), effective
            ),
            name=f"{client}/session",
        )

    def run(self, check_leaks: bool = True) -> list[RequestOutcome]:
        """Drive every queued task to completion; audit; return outcomes.

        Raises:
            ServeError: With ``check_leaks`` (the default), when any
                grant bytes, table locks, fixed buffer frames, or live
                memory-pool bytes survive the drain.
        """
        self.scheduler.run_until_complete()
        if check_leaks:
            leaks = self.leak_report()
            if leaks:
                raise ServeError("service drained dirty: " + "; ".join(leaks))
        return self.outcomes

    def leak_report(self) -> list[str]:
        """Post-drain invariant audit (empty == clean)."""
        leaks = []
        if self.admission.outstanding_bytes:
            leaks.append(
                f"{self.admission.outstanding_bytes} grant bytes outstanding"
            )
        if self.locks.held_tables:
            leaks.append(f"{self.locks.held_tables} table locks still held")
        fixed = self.ctx.pool.fixed_page_count()
        if fixed:
            leaks.append(f"{fixed} buffer frames still fixed")
        if self.ctx.memory.bytes_in_use:
            leaks.append(f"{self.ctx.memory.bytes_in_use} pool bytes live")
        return leaks

    # -- request lifecycle ---------------------------------------------

    def _new_outcome(
        self, client: str, kind: str, tables: tuple[str, ...]
    ) -> RequestOutcome:
        rec = RequestOutcome(
            client=client,
            index=len(self.outcomes),
            kind=kind,
            tables=tables,
            submitted_ms=self.clock.now_ms,
        )
        self.outcomes.append(rec)
        self.metrics.counter("repro_serve_requests_total", kind=kind).inc()
        return rec

    def _complete(
        self, rec: RequestOutcome, outcome: str, error: BaseException | None = None
    ) -> None:
        rec.outcome = outcome
        rec.error_type = type(error).__name__ if error is not None else None
        rec.latency_ms = self.clock.now_ms - rec.submitted_ms
        self.metrics.counter(
            "repro_serve_request_outcomes_total", kind=rec.kind, outcome=outcome
        ).inc()
        self.metrics.histogram(
            "repro_serve_latency_ms", LATENCY_BUCKETS, kind=rec.kind
        ).observe(rec.latency_ms)

    def _classify(self, error: BaseException) -> str:
        if isinstance(error, QueryTimeoutError):
            return "timeout"
        if isinstance(error, QueryCancelledError):
            return "cancelled"
        if isinstance(error, ServiceOverloadError):
            return "shed"
        return "error"

    # -- the query path ------------------------------------------------

    def _division_request(
        self, rec: RequestOutcome, dividend_name: str, divisor_name: str
    ) -> Generator:
        """The full serving path of one division query (generator)."""
        names = (dividend_name, divisor_name)
        lock = self.locks.request(names, "shared")
        grant = None
        try:
            while not self.locks.try_acquire(lock):
                yield Wait("lock", lambda: self.locks.can_grant(lock))
            stored_dividend = self.catalog.get(dividend_name)
            stored_divisor = self.catalog.get(divisor_name)
            node = DivideNode(
                StoredSourceNode(stored_dividend), StoredSourceNode(stored_divisor)
            )
            key = plan_key(node)
            versions = self.catalog.versions_of(names)
            oracle = self._oracle_rows(dividend_name, divisor_name)

            # Result cache: a hit answers under the shared locks with
            # zero execution I/O; staleness is excluded by the version
            # key (the locks pin the versions for the whole lookup).
            if self.result_cache is not None:
                hit = self.result_cache.get(key, versions)
                if hit is not None:
                    result = ServeResult(
                        rows=hit.rows, strategy=hit.strategy, cached=True
                    )
                    rec.cached = True
                    rec.strategy = hit.strategy
                    rec.result_tuples = len(hit.rows)
                    self._check_oracle(rec, hit.rows, oracle)
                    self._complete(rec, "ok")
                    return result

            # Plan: reuse the advisor decision when the versions still
            # match; otherwise pay the exact statistics pass (metered
            # reads of both inputs) and re-decide.
            decision = (
                self.plan_cache.get(key, versions)
                if self.plan_cache is not None
                else None
            )
            rec.plan_cached = decision is not None
            if decision is None:
                io_before = self.ctx.io_cost_ms()
                estimates, quotient_names = collect_division_estimates(
                    node.dividend, node.divisor, node.divisor_restricted
                )
                choice = advise(estimates, PAPER_UNITS)
                eliminate = (
                    estimates.may_contain_duplicates
                    if choice.strategy.startswith(("sort-agg", "hash-agg"))
                    else False
                )
                decision = CachedDecision(
                    strategy=choice.strategy,
                    estimates=estimates,
                    quotient_names=quotient_names,
                    eliminate_duplicates=eliminate,
                    choice=choice,
                )
                if self.plan_cache is not None:
                    self.plan_cache.put(key, versions, decision)
                yield self.ctx.io_cost_ms() - io_before
            rec.strategy = decision.strategy

            # Admission: reserve the estimated footprint before any
            # operator allocates; shed/waits happen here, not mid-build.
            grant = yield from self.admission.wait_for_grant(
                estimate_grant_bytes(decision.estimates), tag=rec.client
            )

            rows = yield from self._execute_division(
                rec, decision, stored_dividend, stored_divisor
            )
            result = ServeResult(
                rows=tuple(rows),
                strategy=decision.strategy,
                plan_cached=rec.plan_cached,
                fell_back=rec.fell_back,
            )
            rec.result_tuples = len(result.rows)
            if self.result_cache is not None:
                self.result_cache.put(
                    key,
                    versions,
                    CachedResult(
                        rows=result.rows,
                        schema=node.schema,
                        strategy=decision.strategy,
                    ),
                )
            self._check_oracle(rec, result.rows, oracle)
            self._complete(rec, "ok")
            return result
        except ReproError as exc:
            self._complete(rec, self._classify(exc), exc)
            raise
        finally:
            if grant is not None:
                self.admission.release(grant)
            self.locks.release(lock)

    def _execute_division(
        self, rec: RequestOutcome, decision: CachedDecision, stored_dividend,
        stored_divisor,
    ) -> Generator:
        """Cooperatively step the compiled operator tree (generator).

        Yields the Table 3 I/O-meter delta of each stretch as its
        virtual cost.  Stop-and-go phases (sorts, hash build inside
        ``open()``) complete within one step; the streaming probe phase
        yields every ``rows_per_step`` tuples.  Hash-table overflow
        degrades to the Section 3.4 partitioned driver.
        """
        ctx = self.ctx
        estimates = decision.estimates
        root = build_division_operator(
            decision.strategy,
            StoredRelationScan(ctx, stored_dividend),
            StoredRelationScan(ctx, stored_divisor),
            expected_divisor=estimates.divisor_tuples,
            expected_quotient=estimates.estimated_quotient,
            eliminate_duplicates=decision.eliminate_duplicates,
            distinct_sorts=True,
        )
        rows: list = []
        try:
            try:
                io_before = ctx.io_cost_ms()
                root.open()
                yield ctx.io_cost_ms() - io_before
                exhausted = False
                while not exhausted:
                    io_before = ctx.io_cost_ms()
                    for _ in range(self.config.rows_per_step):
                        row = root.next()
                        if row is None:
                            exhausted = True
                            break
                        rows.append(row)
                    yield ctx.io_cost_ms() - io_before
            except HashTableOverflowError:
                # The admission estimate undershot (or pressure faults
                # shrank the budget under us): degrade, don't fail.
                rec.fell_back = True
                self.metrics.counter("repro_serve_overflow_fallbacks_total").inc()
                root.close()
                rows = yield from self._partitioned_fallback(
                    decision, stored_dividend, stored_divisor
                )
            return rows
        finally:
            root.close()  # idempotent: safe after the overflow path

    def _partitioned_fallback(
        self, decision: CachedDecision, stored_dividend, stored_divisor
    ) -> Generator:
        ctx = self.ctx
        estimates = decision.estimates
        strategy = "quotient"
        if (
            estimates.divisor_tuples > 0
            and estimates.divisor_tuples > estimates.estimated_quotient
        ):
            strategy = "divisor"
        io_before = ctx.io_cost_ms()
        relation = hash_division_with_overflow(
            lambda: StoredRelationScan(ctx, stored_dividend),
            lambda: StoredRelationScan(ctx, stored_divisor),
            strategy=strategy,
            name="quotient",
        )
        yield ctx.io_cost_ms() - io_before
        return list(relation.rows)

    def _check_oracle(
        self, rec: RequestOutcome, rows: tuple, oracle: frozenset | None
    ) -> None:
        if oracle is None:
            return
        rec.oracle_ok = frozenset(rows) == oracle
        if not rec.oracle_ok:
            self.metrics.counter("repro_serve_oracle_mismatches_total").inc()

    # -- the update path -----------------------------------------------

    def _update_request(
        self,
        rec: RequestOutcome,
        table: str,
        rows: tuple | None = None,
        keep: Callable | None = None,
    ) -> Generator:
        lock = self.locks.request((table,), "exclusive")
        try:
            while not self.locks.try_acquire(lock):
                yield Wait("lock", lambda: self.locks.can_grant(lock))
            io_before = self.ctx.io_cost_ms()
            try:
                if rows is not None:
                    version = self.catalog.insert_rows(table, rows)
                    if self.config.track_oracle and table in self._shadow:
                        self._shadow[table].extend(rows)
                else:
                    deleted, version = self.catalog.delete_rows(table, keep)
                    if self.config.track_oracle and table in self._shadow:
                        self._shadow[table] = [
                            r for r in self._shadow[table] if keep(r)
                        ]
            except ReproError:
                # The write may have partially applied: the catalog
                # already bumped the version (cache safety), but the
                # shadow no longer reflects ground truth.
                self._tainted.add(table)
                raise
            yield self.ctx.io_cost_ms() - io_before
            self._complete(rec, "ok")
            return version
        except ReproError as exc:
            self._complete(rec, self._classify(exc), exc)
            raise
        finally:
            self.locks.release(lock)

    # -- client sessions -----------------------------------------------

    def _client_session(
        self,
        task: Task,
        client: str,
        requests: list,
        deadline_ms: float | None,
    ) -> Generator:
        """Run one client's requests sequentially; survive per-request
        typed failures (timeout/shed/typed error); stop on cancel."""
        completed = 0
        for request in requests:
            if deadline_ms is not None:
                task.deadline_ms = self.clock.now_ms + deadline_ms
            try:
                if isinstance(request, QueryRequest):
                    rec = self._new_outcome(
                        client, "query", (request.dividend, request.divisor)
                    )
                    yield from self._division_request(
                        rec, request.dividend, request.divisor
                    )
                elif isinstance(request, InsertRequest):
                    rec = self._new_outcome(client, "insert", (request.table,))
                    yield from self._update_request(
                        rec, request.table, rows=request.rows
                    )
                elif isinstance(request, DeleteRequest):
                    rec = self._new_outcome(client, "delete", (request.table,))
                    yield from self._update_request(
                        rec, request.table, keep=request.keep
                    )
                else:
                    raise ServeError(f"unknown request {request!r}")
                completed += 1
            except QueryCancelledError:
                raise  # cancelling the session cancels the client
            except (QueryTimeoutError, ServiceOverloadError, ReproError):
                # Recorded by the request generator; session continues.
                continue
            finally:
                task.deadline_ms = None
        return completed
